#!/usr/bin/env python3
"""Regenerate every figure of the paper's §VIII without pytest.

Prints the same series the benchmark suite produces, one figure after
another, with paper-reported values alongside where the paper states
them.  Useful for a quick eyeball; `pytest benchmarks/ --benchmark-only
-s` additionally asserts every shape.
"""

import sys

sys.path.insert(0, "benchmarks")

from bench_fig9a_nbench import run_figure_9a
from bench_fig9b_support_overhead import run_figure_9b
from bench_fig9c_twophase import run_figure_9c
from bench_fig9d_dump_all import run_figure_9d
from bench_fig10a_restore import run_figure_10a
from bench_fig10bcd_vm_migration import ENCLAVE_COUNTS, run_sweep
from bench_fig11_memcached import run_figure_11
from bench_ablation_ciphers import run_cipher_ablation
from bench_ablation_agent import run_agent_ablation
from bench_ablation_hw_proposal import run_hw_ablation
from harness import print_figure


def main() -> None:
    print_figure(
        "Figure 9(a): nbench normalized time (native = 1.0)",
        ["kernel", "intel-sdk", "our-sdk"],
        [[k, round(v["intel"], 2), round(v["ours"], 2)] for k, v in run_figure_9a().items()],
    )
    print_figure(
        "Figure 9(b): migration support overhead (w/o = 1.0)",
        ["application", "with support"],
        [[k, round(v, 4)] for k, v in run_figure_9b().items()],
    )
    print_figure(
        "Figure 9(c): avg two-phase checkpointing (paper: 255us flat, 263us @ 8)",
        ["enclaves", "us"],
        [[n, round(v, 1)] for n, v in run_figure_9c().items()],
    )
    print_figure(
        "Figure 9(d): total dumping time (paper: <=940us @ 8, ~1.7ms @ 16)",
        ["enclaves", "us"],
        [[n, round(v, 1)] for n, v in run_figure_9d().items()],
    )
    print_figure(
        "Figure 10(a): restore time (paper: linear, ~175us/enclave)",
        ["enclaves", "us"],
        [[n, round(v, 1)] for n, v in run_figure_10a().items()],
    )
    sweep = run_sweep()
    base = sweep["baseline"]
    print_figure(
        "Figure 10(b)/(c)/(d): VM migration (paper: ~2-5% overhead, +3ms downtime)",
        ["config", "total ms", "downtime ms", "transfer MB"],
        [["baseline", round(base.total_ms, 1), round(base.downtime_ms, 2), round(base.transferred_mb, 1)]]
        + [
            [
                f"{n} enclaves",
                round(sweep[n].report.total_ms, 1),
                round(sweep[n].report.downtime_ms, 2),
                round(sweep[n].report.transferred_mb, 1),
            ]
            for n in ENCLAVE_COUNTS
        ],
    )
    print_figure(
        "Figure 11: Memcached checkpoint time (paper: linear, ~190ms @ 32MB)",
        ["state MB", "ms"],
        [[mb, round(ms, 2)] for mb, ms in run_figure_11().items()],
    )
    print_figure(
        "Ablation: ciphers (paper: DES ~1.5x RC4)",
        ["cipher", "us"],
        [[k, round(v, 1)] for k, v in run_cipher_ablation().items()],
    )
    print_figure(
        "Ablation: agent enclave (§VI-D)",
        ["path", "us"],
        [[k, round(v, 1)] for k, v in run_agent_ablation().items()],
    )
    print_figure(
        "Ablation: proposed hardware (§VII-B)",
        ["path", "us"],
        [[k, round(v, 1)] for k, v in run_hw_ablation().items()],
    )


if __name__ == "__main__":
    main()
