#!/usr/bin/env python3
"""Calibrate ``CostModel.journal_commit_ns`` against a real fsync.

The durability layer charges one ``journal_commit_ns`` per write-ahead
journal record (append + fsync + monotonic-counter bump).  The constant
should track what an actual small append-and-fsync costs on the machine
class the paper targets, not a guess.  This script measures it:

1. append a journal-record-sized payload (256 bytes) to a scratch file;
2. ``os.fsync`` it;
3. repeat N times after a warmup, take the median.

The median (not the mean) is the calibration target: fsync latency has a
heavy tail (page-cache flushes, allocator noise) and the simulator
charges the *typical* commit, while the tail belongs to fault plans.

With ``--write`` the measured constant is rewritten into
``src/repro/sim/costs.py`` (rounded to the nearest microsecond) together
with a provenance comment recording the distribution; ``--dry-run``
(default) only prints what would change.

Usage::

    python scripts/calibrate_fsync.py             # measure + show diff
    python scripts/calibrate_fsync.py --write     # measure + patch costs.py
"""

from __future__ import annotations

import argparse
import os
import re
import statistics
import sys
import tempfile
import time

RECORD_BYTES = 256  # typical CRC-framed journal record
WARMUP = 50
DEFAULT_SAMPLES = 2000

_COSTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "src", "repro", "sim", "costs.py",
)

_LINE_RE = re.compile(r"^(\s*)journal_commit_ns: int = [\d_]+.*$", re.MULTILINE)


def measure(samples: int = DEFAULT_SAMPLES) -> dict[str, int]:
    """Median / p10 / p90 / mean of an append+fsync, in nanoseconds."""
    payload = b"\xa5" * RECORD_BYTES
    latencies: list[int] = []
    with tempfile.NamedTemporaryFile(dir=os.path.dirname(_COSTS_PATH)) as scratch:
        fd = scratch.fileno()
        for i in range(WARMUP + samples):
            t0 = time.perf_counter_ns()
            os.write(fd, payload)
            os.fsync(fd)
            elapsed = time.perf_counter_ns() - t0
            if i >= WARMUP:
                latencies.append(elapsed)
    latencies.sort()
    return {
        "median_ns": int(statistics.median(latencies)),
        "p10_ns": latencies[len(latencies) // 10],
        "p90_ns": latencies[(len(latencies) * 9) // 10],
        "mean_ns": int(statistics.fmean(latencies)),
        "samples": samples,
    }


def render_patch(stats: dict[str, int]) -> tuple[int, str]:
    """(calibrated constant, replacement source line block)."""
    # Round to the nearest microsecond: the simulator's other costs are
    # round figures, and sub-microsecond precision here is noise.
    calibrated = round(stats["median_ns"], -3)
    line = (
        "    # Calibrated by scripts/calibrate_fsync.py: median of "
        f"{stats['samples']} timed\n"
        f"    # {RECORD_BYTES}-byte append+fsync cycles on this repo's filesystem "
        f"(median\n"
        f"    # {stats['median_ns']:,} ns, p10 {stats['p10_ns']:,} ns, "
        f"p90 {stats['p90_ns']:,} ns, mean {stats['mean_ns']:,} ns).\n"
        f"    journal_commit_ns: int = {calibrated:_d}"
    )
    return calibrated, line


def patch_costs(stats: dict[str, int], write: bool) -> int:
    with open(_COSTS_PATH, "r", encoding="utf-8") as fh:
        source = fh.read()
    match = _LINE_RE.search(source)
    if match is None:
        print(f"error: journal_commit_ns line not found in {_COSTS_PATH}")
        return 1
    calibrated, replacement = render_patch(stats)
    # Drop any previous calibration provenance comment directly above
    # the line, so re-running never stacks comments.
    start = match.start()
    lines = source[:start].splitlines(keepends=True)
    while lines and lines[-1].lstrip().startswith("#") and (
        "calibrate_fsync" in lines[-1]
        or "append+fsync cycles" in lines[-1]
        or "ns, p10" in lines[-1]
        or "p90" in lines[-1]
    ):
        lines.pop()
    patched = "".join(lines) + replacement + source[match.end():]
    print(f"measured: median {stats['median_ns']:,} ns "
          f"(p10 {stats['p10_ns']:,}, p90 {stats['p90_ns']:,}, "
          f"mean {stats['mean_ns']:,}) over {stats['samples']} samples")
    print(f"calibrated journal_commit_ns = {calibrated:,} ns")
    if not write:
        print("dry run: pass --write to patch src/repro/sim/costs.py")
        return 0
    if patched == source:
        print("costs.py already up to date")
        return 0
    with open(_COSTS_PATH, "w", encoding="utf-8") as fh:
        fh.write(patched)
    print(f"patched {_COSTS_PATH}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--samples", type=int, default=DEFAULT_SAMPLES,
        help=f"timed fsync cycles after warmup (default {DEFAULT_SAMPLES})",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="rewrite journal_commit_ns in src/repro/sim/costs.py",
    )
    args = parser.parse_args(argv)
    return patch_costs(measure(args.samples), write=args.write)


if __name__ == "__main__":
    sys.exit(main())
