#!/usr/bin/env python
"""Benchmark regression ratchet.

Compares freshly generated ``BENCH_<figure>.json`` series against the
committed baselines and fails when any virtual-time metric regressed by
more than the tolerance (default 15%).  All tracked series are
lower-is-better quantities (checkpoint microseconds, downtime and total
nanoseconds, transferred bytes, pre-copy rounds), so the ratchet only
ever tightens: improvements are reported and become the new baseline
when the refreshed file is committed.

Usage (CI runs exactly this; see .github/workflows/ci.yml):

    REPRO_BENCH_DIR=fresh-bench python -m pytest benchmarks/bench_fig9c_twophase.py \
        benchmarks/bench_fig10bcd_vm_migration.py -q
    python scripts/bench_ratchet.py --fresh-dir fresh-bench \
        --report ratchet-report.json

Exit status: 0 when every metric is within tolerance, 1 on regression or
a metric that disappeared from the fresh run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_FIGURES = ("fig9", "fig10", "fleet", "fleet_contention")
DEFAULT_MAX_REGRESSION = 0.15

#: Leaf keys that are annotations, not measurements.
_NON_METRIC_KEYS = {"unit", "series"}


def iter_numeric_leaves(tree, prefix=()):
    """Yield (path, value) for every numeric leaf of a nested dict."""
    if isinstance(tree, dict):
        for key, value in tree.items():
            if key in _NON_METRIC_KEYS:
                continue
            yield from iter_numeric_leaves(value, prefix + (str(key),))
    elif isinstance(tree, bool):
        return
    elif isinstance(tree, (int, float)):
        yield prefix, float(tree)


def compare_series(baseline: dict, fresh: dict, max_regression: float) -> list[dict]:
    """Compare two figure trees; one finding per baseline metric.

    A metric regresses when the fresh value exceeds the baseline by more
    than ``max_regression`` (relative).  A metric missing from a series
    the fresh run *did* regenerate also fails — a vanishing data point
    must not read as green.  A whole top-level series absent from the
    fresh run is merely "not-regenerated": ``write_bench_json`` merges
    per-series, so partial refreshes (and frozen before/after records
    like ``fig9c_before_hot_path_fix``) are expected.  Metrics that only
    exist in the fresh run are informational (no baseline to regress
    against yet).
    """
    base_leaves = dict(iter_numeric_leaves(baseline))
    fresh_leaves = dict(iter_numeric_leaves(fresh))
    findings = []
    for path, base in sorted(base_leaves.items()):
        name = "/".join(path)
        if path not in fresh_leaves:
            if path[0] not in fresh:
                findings.append(
                    {"metric": name, "status": "not-regenerated", "baseline": base}
                )
            else:
                findings.append({"metric": name, "status": "missing", "baseline": base})
            continue
        value = fresh_leaves[path]
        delta = (value - base) / base if base else (1.0 if value > base else 0.0)
        status = "regressed" if delta > max_regression else (
            "improved" if delta < -0.005 else "ok"
        )
        findings.append(
            {
                "metric": name,
                "status": status,
                "baseline": base,
                "fresh": value,
                "delta_pct": round(100 * delta, 2),
            }
        )
    for path in sorted(fresh_leaves.keys() - base_leaves.keys()):
        findings.append(
            {"metric": "/".join(path), "status": "new", "fresh": fresh_leaves[path]}
        )
    return findings


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def run_ratchet(
    figures=DEFAULT_FIGURES,
    baseline_dir: str = REPO_ROOT,
    fresh_dir: str | None = None,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> dict:
    """Compare every figure file; returns the full report dict."""
    fresh_dir = fresh_dir or os.environ.get("REPRO_BENCH_DIR", REPO_ROOT)
    report = {"max_regression": max_regression, "figures": {}, "failed": False}
    for figure in figures:
        base_path = os.path.join(baseline_dir, f"BENCH_{figure}.json")
        fresh_path = os.path.join(fresh_dir, f"BENCH_{figure}.json")
        if not os.path.exists(base_path):
            # No committed baseline yet: nothing to ratchet against.
            report["figures"][figure] = {"status": "no-baseline"}
            continue
        if not os.path.exists(fresh_path):
            report["figures"][figure] = {"status": "no-fresh-run"}
            report["failed"] = True
            continue
        findings = compare_series(_load(base_path), _load(fresh_path), max_regression)
        bad = [f for f in findings if f["status"] in ("regressed", "missing")]
        report["figures"][figure] = {
            "status": "regressed" if bad else "ok",
            "findings": findings,
        }
        if bad:
            report["failed"] = True
    return report


def attribute_regression(
    baseline_snapshot: str,
    spec: str = "seed=1",
    report_path: str | None = None,
) -> str | None:
    """On ratchet failure: *why* did the numbers move?

    Re-runs the canonical migration (``spec``), diffs it against the
    committed baseline run snapshot, and returns the ranked blame report
    ("downtime +1.4 ms, 92% from journal.commit") as text.  Returns None
    when the baseline snapshot is absent or the diff cannot be built —
    attribution is best-effort color on a failure that already happened,
    never a reason to mask it.
    """
    if not os.path.exists(baseline_snapshot):
        return None
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    try:
        from repro.telemetry.diff import diff_runs, resolve_run
        from repro.telemetry.exporters import json_safe

        diff = diff_runs(resolve_run(baseline_snapshot), resolve_run(spec))
    except Exception as exc:  # pragma: no cover - defensive best-effort
        return f"(attribution unavailable: {type(exc).__name__}: {exc})"
    if report_path:
        with open(report_path, "w", encoding="utf-8") as fh:
            fh.write(diff.render_markdown())
    return diff.render_text()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--figure", action="append", dest="figures",
        help="figure name (fig9, fig10); repeatable, default both",
    )
    parser.add_argument("--baseline-dir", default=REPO_ROOT)
    parser.add_argument(
        "--fresh-dir", default=None,
        help="where the fresh BENCH files were written (default: $REPRO_BENCH_DIR)",
    )
    parser.add_argument("--max-regression", type=float, default=DEFAULT_MAX_REGRESSION)
    parser.add_argument("--report", default=None, help="write the JSON report here")
    parser.add_argument(
        "--attribution-baseline",
        default=os.path.join(REPO_ROOT, "BENCH_baseline_run.json"),
        help="committed run snapshot to diff a failing run against",
    )
    parser.add_argument(
        "--attribution-spec", default="seed=1",
        help="run spec to re-run for attribution (see `repro diff`)",
    )
    parser.add_argument(
        "--attribution-report", default=None,
        help="on failure, write the attribution as markdown here",
    )
    args = parser.parse_args(argv)

    report = run_ratchet(
        figures=tuple(args.figures) if args.figures else DEFAULT_FIGURES,
        baseline_dir=args.baseline_dir,
        fresh_dir=args.fresh_dir,
        max_regression=args.max_regression,
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    for figure, entry in report["figures"].items():
        print(f"[{figure}] {entry['status']}")
        for finding in entry.get("findings", []):
            if finding["status"] != "ok":
                print(
                    f"  {finding['status']:>9}  {finding['metric']}"
                    f"  baseline={finding.get('baseline')}"
                    f"  fresh={finding.get('fresh')}"
                    f"  delta={finding.get('delta_pct')}%"
                )
    if report["failed"]:
        print("ratchet: FAILED (regression or missing metric)", file=sys.stderr)
        attribution = attribute_regression(
            args.attribution_baseline,
            spec=args.attribution_spec,
            report_path=args.attribution_report,
        )
        if attribution:
            print("\n-- regression attribution (repro diff vs committed baseline)")
            print(attribution)
        return 1
    print("ratchet: ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
