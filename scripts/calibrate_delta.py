#!/usr/bin/env python
"""Calibrate `CostModel.precopy_delta_ratio` from synthetic dirty pages.

Pre-copy rounds ≥2 resend pages the guest re-dirtied since the previous
round.  Most re-dirtied pages were touched by ordinary writers (a few
cache lines changed: counters, locks, list heads); a minority were bulk
rewritten (buffer copies, memset).  The delta encoder ships only the
changed byte runs: XOR the page against the previously sent copy, then
emit (offset u16, len u16, bytes) runs for the non-zero spans, plus a
fixed per-page header (page number + run count — the 16 bytes charged
as `delta_page_header_bytes`).

This script synthesizes that workload, runs the real encoder over it,
and prints the mean wire-bytes/page-bytes ratio.  The committed
`precopy_delta_ratio = 0.32` is the rounded mean of the default run
(seed 7, 4096 pages); rerun with `--pages/--seed/--bulk-fraction` to
probe sensitivity.  Like `calibrate_fsync.py`, the measurement feeds a
constant — the simulation itself never delta-encodes real bytes, it
charges `PAGE_SIZE * ratio + header` of virtual wire time per resent
page (`QemuMonitor._delta_wire_bytes`).
"""

from __future__ import annotations

import argparse
import random
import statistics

PAGE_SIZE = 4096
CACHE_LINE = 64
RUN_HEADER = 4  # offset u16 + length u16
PAGE_HEADER = 16  # page number + run count + reserved

# Workload mixture: fraction of re-dirtied pages that were bulk
# rewritten rather than sparsely touched.  Pre-copy traces in the
# migration literature put bulk rewrites (I/O buffers, copies) at
# roughly 30% of the re-dirty set; sparse writers dominate the rest.
DEFAULT_BULK_FRACTION = 0.30


def encode_delta(old: bytes, new: bytes) -> int:
    """Return the wire size of the XOR+run-length delta old→new."""
    size = PAGE_HEADER
    run = 0
    for a, b in zip(old, new):
        if a != b:
            run += 1
        elif run:
            size += RUN_HEADER + run
            run = 0
    if run:
        size += RUN_HEADER + run
    return min(size, PAGE_HEADER + PAGE_SIZE)  # never worse than raw


def synthesize_page(rng: random.Random, bulk_fraction: float) -> tuple[bytes, bytes]:
    old = rng.randbytes(PAGE_SIZE)
    new = bytearray(old)
    if rng.random() < bulk_fraction:
        # Bulk rewrite: the whole page changed (memset / buffer copy).
        new = bytearray(rng.randbytes(PAGE_SIZE))
    else:
        # Sparse writer: 1–8 dirty cache lines, geometric-ish — most
        # re-dirtied pages saw one or two stores.
        lines = min(8, 1 + int(rng.expovariate(1 / 1.5)))
        for line in rng.sample(range(PAGE_SIZE // CACHE_LINE), lines):
            start = line * CACHE_LINE
            new[start : start + CACHE_LINE] = rng.randbytes(CACHE_LINE)
    return old, bytes(new)


def measure(pages: int, seed: int, bulk_fraction: float) -> dict:
    rng = random.Random(seed)
    ratios = []
    for _ in range(pages):
        old, new = synthesize_page(rng, bulk_fraction)
        ratios.append(encode_delta(old, new) / PAGE_SIZE)
    ratios.sort()
    return {
        "pages": pages,
        "mean": statistics.fmean(ratios),
        "median": ratios[len(ratios) // 2],
        "p10": ratios[int(0.10 * len(ratios))],
        "p90": ratios[int(0.90 * len(ratios))],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pages", type=int, default=4096)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--bulk-fraction", type=float, default=DEFAULT_BULK_FRACTION)
    args = parser.parse_args(argv)

    stats = measure(args.pages, args.seed, args.bulk_fraction)
    print(
        f"pages={stats['pages']}  mean={stats['mean']:.4f}  "
        f"median={stats['median']:.4f}  p10={stats['p10']:.4f}  "
        f"p90={stats['p90']:.4f}"
    )
    print(f"suggested precopy_delta_ratio = {round(stats['mean'], 2)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
