"""End-to-end smoke test: migrate one enclave app source -> target."""
from repro.migration.testbed import build_testbed
from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk.host import HostApplication, WorkerSpec
from repro.sdk.program import AtomicEntry, EnclaveProgram, ResumableEntry


def build_counter_program():
    program = EnclaveProgram("smoke/counter-v1")

    def incr(rt, args):
        value = rt.load_global("counter") + int(1 if args is None else args)
        rt.store_global("counter", value)
        return value

    program.add_entry("incr", AtomicEntry(incr))

    def prepare(rt, args):
        return {"remaining": int(args), "done": 0}

    def step(rt, regs):
        if regs["remaining"] > 0:
            rt.store_global("counter", rt.load_global("counter") + 1)
            regs["remaining"] -= 1
            regs["__pc"] -= 1  # loop on this step until drained
        else:
            regs["result"] = rt.load_global("counter")

    program.add_entry("slow_incr", ResumableEntry(prepare=prepare, steps=(step, lambda rt, regs: None)))
    return program


def main():
    tb = build_testbed(seed=42)
    program = build_counter_program()
    built = tb.builder.build("counter", program, n_workers=2, global_names=("counter",))
    tb.owner.register_image(built)

    app = HostApplication(
        tb.source, tb.source_os, built.image,
        workers=[
            WorkerSpec("incr", args=1, repeat=5),
            WorkerSpec("slow_incr", args=500, repeat=1),  # long-running: will be parked mid-flight
        ],
        owner=tb.owner,
    ).launch()

    # Let the workers make some progress, then checkpoint mid-flight.
    for _ in range(60):
        tb.source_os.engine.step_round()
    counter_before = app.ecall_once(0, "incr", 0)
    print("counter before migration:", counter_before)

    orch = MigrationOrchestrator(tb)
    result = orch.migrate_enclave(app)
    print("replay plan:", result.replay_plan)
    print("checkpoint bytes:", result.checkpoint_bytes)

    tgt = result.target_app
    # Let the resumed slow worker finish on the target.
    tb.target_os.run_until(
        lambda: all(t.finished for t in tgt.process.live_threads()) or False,
        max_rounds=20000,
    )
    counter_after = tgt.ecall_once(0, "incr", 0)
    print("counter after migration :", counter_after)
    assert counter_after >= counter_before, "state went backwards!"
    # The slow worker should have completed all 500 increments in total.
    print("slow_incr results:", tgt.results.get("slow_incr"), app.results.get("slow_incr"))

    # Source must be self-destroyed: a fresh ecall spins forever.
    spin_thread = tb.source_os.spawn_thread(
        app.process, "post-destroy", app.library.ecall_body(0, "incr", 1)
    )
    for _ in range(200):
        tb.source_os.engine.step_round()
    assert not spin_thread.finished, "source enclave ran after self-destroy!"
    print("source stays dead after self-destroy: ok")
    print("virtual time: %.2f ms" % tb.clock.now_ms)


if __name__ == "__main__":
    main()
