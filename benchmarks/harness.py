"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure from the paper's §VIII.
pytest-benchmark measures the *wall-clock* cost of running the simulation;
the *results* the paper plots are virtual-time metrics, printed as a small
table per figure and summarized in EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.migration.testbed import Testbed, build_testbed
from repro.sdk.host import HostApplication, WorkerSpec


def print_figure(title: str, header: list[str], rows: list[list]) -> None:
    """Print one figure's series the way the paper reports it."""
    print()
    print(f"=== {title} ===")
    widths = [max(len(str(x)) for x in [h] + [r[i] for r in rows]) for i, h in enumerate(header)]
    print("  " + " | ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + " | ".join(str(x).ljust(w) for x, w in zip(row, widths)))


def launch_shared_image_apps(
    tb: Testbed,
    built,
    n: int,
    workers: list[WorkerSpec] | None = None,
    provision: bool = True,
) -> list[HostApplication]:
    """Launch ``n`` enclave apps from one image on the source machine."""
    tb.owner.register_image(built)
    apps = []
    for i in range(n):
        app = HostApplication(
            tb.source,
            tb.source_os,
            built.image,
            workers=list(workers or []),
            owner=tb.owner if provision else None,
            name=f"{built.image.name}-{i}",
        )
        app.launch()
        apps.append(app)
    return apps


def checkpoint_durations_us(tb: Testbed) -> list[float]:
    """Per-enclave two-phase checkpointing times from the trace."""
    starts = {e.payload["enclave"]: e.t_ns for e in tb.trace.select("ckpt", "start")}
    durations = []
    for event in tb.trace.select("ckpt", "done"):
        enclave = event.payload["enclave"]
        durations.append((event.t_ns - starts[enclave]) / 1_000)
    return durations
