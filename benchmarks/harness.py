"""Shared helpers for the figure-reproduction benchmarks.

Every benchmark regenerates one table/figure from the paper's §VIII.
pytest-benchmark measures the *wall-clock* cost of running the simulation;
the *results* the paper plots are virtual-time metrics, printed as a small
table per figure and summarized in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os

from repro.migration.testbed import Testbed, build_testbed
from repro.sdk.host import HostApplication, WorkerSpec

#: Where the machine-readable figure series land; the repo root keeps
#: them next to EXPERIMENTS.md so CI can diff them across runs.
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def bench_json_path(figure: str) -> str:
    """Path of the machine-readable series for ``figure`` (e.g. "fig10")."""
    return os.path.join(
        os.environ.get("REPRO_BENCH_DIR", _REPO_ROOT), f"BENCH_{figure}.json"
    )


def write_bench_json(figure: str, series: dict) -> str:
    """Merge one figure's series into ``BENCH_<figure>.json``.

    Read-modify-write under sorted keys: a sweep that only regenerates
    one series (or runs the benches in a different order) never clobbers
    the others, and the file diffs cleanly across runs.
    """
    path = bench_json_path(figure)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    payload: dict = {}
    if os.path.exists(path):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            payload = {}
    payload.update(series)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def print_figure(title: str, header: list[str], rows: list[list]) -> None:
    """Print one figure's series the way the paper reports it."""
    print()
    print(f"=== {title} ===")
    widths = [max(len(str(x)) for x in [h] + [r[i] for r in rows]) for i, h in enumerate(header)]
    print("  " + " | ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  " + " | ".join(str(x).ljust(w) for x, w in zip(row, widths)))


def launch_shared_image_apps(
    tb: Testbed,
    built,
    n: int,
    workers: list[WorkerSpec] | None = None,
    provision: bool = True,
) -> list[HostApplication]:
    """Launch ``n`` enclave apps from one image on the source machine."""
    tb.owner.register_image(built)
    apps = []
    for i in range(n):
        app = HostApplication(
            tb.source,
            tb.source_os,
            built.image,
            workers=list(workers or []),
            owner=tb.owner if provision else None,
            name=f"{built.image.name}-{i}",
        )
        app.launch()
        apps.append(app)
    return apps


def checkpoint_durations_us(tb: Testbed) -> list[float]:
    """Per-enclave two-phase checkpointing times, from the span layer.

    Falls back to the raw ``ckpt`` start/done events only when no tracer
    is attached (hand-assembled testbeds that never touched telemetry).
    """
    tracer = getattr(tb.trace, "tracer", None)
    if tracer is not None:
        spans = tracer.find("checkpoint.two_phase")
        if spans:
            return [s.duration_ns / 1_000 for s in spans]
    starts = {e.payload["enclave"]: e.t_ns for e in tb.trace.select("ckpt", "start")}
    durations = []
    for event in tb.trace.select("ckpt", "done"):
        enclave = event.payload["enclave"]
        durations.append((event.t_ns - starts[enclave]) / 1_000)
    return durations


def metrics_snapshot(tb: Testbed) -> dict:
    """The testbed's full metrics snapshot (series key -> value)."""
    return tb.trace.metrics.snapshot()


def report_from_metrics(tb: Testbed, live_report) -> "MigrationReport":
    """Rebuild a :class:`MigrationReport` from the metrics registry.

    The figure benchmarks read this instead of the hypervisor's live
    report object: it proves the registry carries the same numbers the
    monitor computed (prep/restore windows are not registry gauges and
    come from the live report).
    """
    from repro.hypervisor.qemu import MigrationReport

    figures = migration_figures(tb)
    return MigrationReport(
        total_ns=int(figures["total_ns"]),
        downtime_ns=int(figures["downtime_ns"]),
        transferred_bytes=int(figures["transferred_bytes"]),
        precopy_rounds=int(tb.trace.metrics.value("migration.precopy_rounds")),
        prep_ns=live_report.prep_ns,
        restore_ns=live_report.restore_ns,
    )


def migration_figures(tb: Testbed) -> dict[str, float]:
    """The Figure-10 quantities, sourced from the metrics registry.

    Benchmarks read these instead of grepping the event stream: the
    registry's gauges are written by the orchestrator / QEMU monitor at
    the moment the migration completes, from the same spans the trace
    exporters render.
    """
    metrics = tb.trace.metrics
    return {
        "downtime_ns": metrics.value("migration.downtime_ns"),
        "total_ns": metrics.value("migration.total_ns"),
        "transferred_bytes": metrics.value("migration.transferred_bytes"),
        "wire_bytes": metrics.sum_across_labels("wire.bytes"),
        "completed": metrics.value("migration.completed_total"),
    }
