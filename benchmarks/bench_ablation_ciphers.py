"""Ablation (§VIII-B text): checkpoint cipher choice.

"we use RC4 ... the encryption process takes about 200us.  If DES is
chosen as the encryption method, the encryption process will take about
300us.  An optimized method is to utilize hardware support for
encryption" — we sweep all four ciphers over the same checkpoint.
"""

import pytest

from benchmarks.harness import checkpoint_durations_us, launch_shared_image_apps, print_figure
from repro.migration.testbed import build_testbed
from repro.workloads.apps import build_app_image

CIPHERS = ("rc4", "des", "aes", "aes-ni")


def _checkpoint_us(algorithm: str) -> float:
    tb = build_testbed(seed=f"ablation-cipher-{algorithm}")
    built = build_app_image(tb.builder, "mcrypt", flavor=f"cipher-{algorithm}")
    app = launch_shared_image_apps(tb, built, 1)[0]
    app.library.checkpoint_algorithm = algorithm
    tb.source_os.on_migration_notify()
    return checkpoint_durations_us(tb)[0]


def run_cipher_ablation() -> dict[str, float]:
    return {algorithm: _checkpoint_us(algorithm) for algorithm in CIPHERS}


@pytest.mark.benchmark(group="ablation-ciphers")
def test_ablation_checkpoint_ciphers(benchmark):
    results = benchmark.pedantic(run_cipher_ablation, rounds=1, iterations=1)
    print_figure(
        "Ablation: two-phase checkpointing time by cipher",
        ["cipher", "time (us)", "vs rc4"],
        [
            [name, round(us, 1), f"{us / results['rc4']:.2f}x"]
            for name, us in results.items()
        ],
    )
    # The paper's ordering: DES ~1.5x RC4; hardware AES the fastest.
    assert results["des"] > results["rc4"]
    assert results["des"] / results["rc4"] == pytest.approx(1.5, rel=0.35)
    assert results["aes-ni"] < results["rc4"]
    assert results["aes-ni"] < results["aes"]
