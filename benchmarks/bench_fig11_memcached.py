"""Figure 11: two-phase checkpointing time vs. Memcached state size.

Paper result: with four threads in the enclave and the checkpoint
encrypted with AES-CBC over AES-NI, two-phase checkpointing time grows
linearly with the state size (1-32 MB sweep, up to ~190 ms at 32 MB).

Our pipeline runs real AES over the real slab bytes (the numpy-batched
AES standing in for AES-NI), so both the virtual-time series and the
actual ciphertext are genuine.
"""

import pytest

from benchmarks.harness import checkpoint_durations_us, launch_shared_image_apps, print_figure
from repro.migration.testbed import build_testbed
from repro.workloads.memcached import build_memcached_image

STATE_MB = (1, 2, 4, 8, 16, 32)


def _checkpoint_ms(state_mb: int) -> float:
    pages_needed = state_mb * 256 + 64
    tb = build_testbed(
        seed=f"fig11-{state_mb}", vepc_pages=pages_needed + 128, epc_pages=pages_needed + 512
    )
    built = build_memcached_image(tb.builder, state_mb=state_mb, n_workers=4)
    app = launch_shared_image_apps(tb, built, 1)[0]
    app.library.checkpoint_algorithm = "aes-ni"
    app.ecall_once(0, "fill", 1)  # warm the slab: real bytes everywhere
    tb.source_os.on_migration_notify()
    durations = checkpoint_durations_us(tb)
    return durations[0] / 1_000


def run_figure_11() -> dict[int, float]:
    return {mb: _checkpoint_ms(mb) for mb in STATE_MB}


@pytest.mark.benchmark(group="fig11")
def test_fig11_memcached_checkpoint_scaling(benchmark):
    results = benchmark.pedantic(run_figure_11, rounds=1, iterations=1)
    print_figure(
        "Figure 11: Memcached two-phase checkpointing time (AES-NI)",
        ["state (MB)", "time (ms)"],
        [[mb, round(ms, 2)] for mb, ms in results.items()],
    )
    # Linear scaling in the state size (the paper's straight line).
    assert results[32] == pytest.approx(32 / 4 * results[4], rel=0.25)
    assert results[16] == pytest.approx(2 * results[8], rel=0.25)
    # Millisecond scale at the top end, as the paper reports.
    assert 20 < results[32] < 1_000
