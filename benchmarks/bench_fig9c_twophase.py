"""Figure 9(c): two-phase checkpointing time vs. concurrent enclaves.

Paper result: the average time is flat (~255us) while the enclaves
(each 2 workers + 1 control thread) fit on the 4 VCPUs, and rises (~263us
at 8 enclaves) once scheduling contention kicks in.

Our enclaves dump their whole readable memory (the paper's 20 KB is its
configured output size; ours is fixed by the image layout), so absolute
values differ by a constant factor — EXPERIMENTS.md records both — while
the *flat-then-rising* contention shape is the reproduced claim.
"""

import pytest

from benchmarks.harness import (
    checkpoint_durations_us,
    launch_shared_image_apps,
    print_figure,
    write_bench_json,
)
from repro.migration.testbed import build_testbed
from repro.sdk.host import WorkerSpec
from repro.workloads.apps import build_app_image

ENCLAVE_COUNTS = (1, 2, 4, 8)


def _average_checkpoint_us(n_enclaves: int) -> float:
    tb = build_testbed(seed=f"fig9c-{n_enclaves}", n_vcpus=4)
    built = build_app_image(tb.builder, "mcrypt", flavor=f"f9c{n_enclaves}")
    apps = launch_shared_image_apps(
        tb, built, n_enclaves,
        workers=[WorkerSpec("process", args=1, repeat=None, think_time_ns=300_000)] * 2,
    )
    for _ in range(30):
        tb.source_os.engine.step_round()
    tb.source_os.on_migration_notify()
    durations = checkpoint_durations_us(tb)
    assert len(durations) == n_enclaves
    return sum(durations) / len(durations)


def run_figure_9c() -> dict[int, float]:
    results = {n: _average_checkpoint_us(n) for n in ENCLAVE_COUNTS}
    write_bench_json(
        "fig9",
        {
            "fig9c": {
                "unit": "us",
                "series": "average two-phase checkpointing time",
                "avg_checkpoint_us": {
                    str(n): round(us, 3) for n, us in results.items()
                },
            }
        },
    )
    return results


@pytest.mark.benchmark(group="fig9c")
def test_fig9c_two_phase_checkpointing(benchmark):
    results = benchmark.pedantic(run_figure_9c, rounds=1, iterations=1)
    print_figure(
        "Figure 9(c): average two-phase checkpointing time",
        ["enclaves", "avg time (us)"],
        [[n, round(us, 1)] for n, us in results.items()],
    )
    # Shape: near-flat while enclaves fit the 4 VCPUs.  The calibrated
    # write-ahead-journal fsync (scripts/calibrate_fsync.py; the paper
    # has no durable journal) blocks only the committing control thread
    # — the cost is yielded to the scheduler, so concurrent checkpoint
    # commits overlap instead of serializing...
    assert results[2] == pytest.approx(results[1], rel=0.25)
    assert results[4] == pytest.approx(results[1], rel=0.55)
    # ...then clearly rising under contention (paper: 255us -> 263us).
    assert results[8] > results[4]
