"""Ablation (§VI-D): the agent enclave vs. on-path remote attestation.

"one remote attestation needs at least two network round trips ... The
latency of remote attestation could harm the performance of migration if
not hidden."  With the agent enclave the keys are escrowed ahead of time
and the target only performs *local* attestation at resume.
"""

import pytest

from benchmarks.harness import launch_shared_image_apps, print_figure
from repro.migration.agent import AgentService, build_agent_image
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.workloads.apps import build_app_image


def _restore_latency_us(use_agent: bool) -> float:
    tb = build_testbed(seed=f"ablation-agent-{use_agent}")
    agent_built = build_agent_image(tb.builder)
    tb.owner.set_agent_image(agent_built)
    built = build_app_image(tb.builder, "des", flavor=f"ag{int(use_agent)}")
    app = launch_shared_image_apps(tb, built, 1)[0]
    agent = AgentService(tb, agent_built) if use_agent else None
    orch = MigrationOrchestrator(tb)
    orch.checkpoint_enclave(app)
    if agent is not None:
        agent.escrow_from(app)  # happens during pre-copy, off the path
    start = tb.clock.now_ns
    target = orch.build_virgin_target(app)
    if agent is not None:
        agent.release_to(target)
    else:
        orch.establish_channel(app, target)
        orch.handoff_key(app, target)
    ckpt = app.library.last_checkpoint.envelope.to_bytes()
    plan = orch.restore(target, ckpt)
    target.respawn_after_restore(plan)
    return (tb.clock.now_ns - start) / 1_000


def run_agent_ablation() -> dict[str, float]:
    return {
        "remote attestation on path": _restore_latency_us(False),
        "agent enclave (local attestation)": _restore_latency_us(True),
    }


@pytest.mark.benchmark(group="ablation-agent")
def test_ablation_agent_enclave(benchmark):
    results = benchmark.pedantic(run_agent_ablation, rounds=1, iterations=1)
    print_figure(
        "Ablation: target-side restore latency per enclave",
        ["configuration", "latency (us)"],
        [[name, round(us, 1)] for name, us in results.items()],
    )
    plain = results["remote attestation on path"]
    with_agent = results["agent enclave (local attestation)"]
    # The WAN round trips dominate the plain path; the agent removes them.
    assert with_agent < plain / 20
