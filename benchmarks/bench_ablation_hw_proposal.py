"""Ablation (§VII-B): the software protocol vs. the proposed hardware.

The paper closes by proposing new instructions (EPUTKEY, EMIGRATE,
ESWPOUT/ESWPIN, ECHANGEOUT/ECHANGEIN, EMIGRATEDONE) that would let system
software migrate an enclave transparently.  We implemented the proposed
ISA; this ablation compares one enclave migration both ways:

* software path: two-phase checkpointing + attested channel + replayed
  CSSA + verification (everything §III-§V builds);
* proposed hardware path: freeze, per-page re-keying, stream MAC.
"""

import pytest

from benchmarks.harness import launch_shared_image_apps, print_figure
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.sgx import proposed
from repro.workloads.apps import build_app_image


def _software_path_us() -> float:
    tb = build_testbed(seed="ablation-hw-sw")
    built = build_app_image(tb.builder, "cr4", flavor="hw-sw")
    app = launch_shared_image_apps(tb, built, 1)[0]
    orch = MigrationOrchestrator(tb)
    start = tb.clock.now_ns
    orch.migrate_enclave(app)
    return (tb.clock.now_ns - start) / 1_000


def _hardware_path_us() -> float:
    tb = build_testbed(seed="ablation-hw-hw")
    built = build_app_image(tb.builder, "cr4", flavor="hw-hw")
    app = launch_shared_image_apps(tb, built, 1)[0]
    src, tgt = tb.source.cpu, tb.target.cpu
    start = tb.clock.now_ns
    ce_src, ce_tgt = proposed.ControlEnclave(src), proposed.ControlEnclave(tgt)
    keys = ce_src.negotiate_keys(ce_tgt)
    proposed.eputkey(src, ce_src, keys)
    proposed.eputkey(tgt, ce_tgt, keys)
    enclave = app.library.hw()
    proposed.emigrate(src, enclave)
    blobs = [proposed.eswpout_secs(src, enclave)]
    for vaddr in list(enclave.mapped_vaddrs()):
        if enclave.page_present(vaddr):
            blobs.append(proposed.eswpout(src, enclave, vaddr))
    mac = proposed.finalize_stream(enclave)
    tb.network.transfer("hw-stream", b"".join(b.ciphertext for b in blobs))
    new_enclave = proposed.eswpin_secs(tgt, blobs[0])
    for blob in blobs[1:]:
        proposed.eswpin(tgt, new_enclave, blob)
    proposed.emigratedone(tgt, new_enclave, mac)
    return (tb.clock.now_ns - start) / 1_000


def run_hw_ablation() -> dict[str, float]:
    return {
        "software protocol (this paper)": _software_path_us(),
        "proposed hardware (§VII-B)": _hardware_path_us(),
    }


@pytest.mark.benchmark(group="ablation-hw")
def test_ablation_hardware_proposal(benchmark):
    results = benchmark.pedantic(run_hw_ablation, rounds=1, iterations=1)
    print_figure(
        "Ablation: one-enclave migration, software vs proposed hardware",
        ["path", "time (us)"],
        [[name, round(us, 1)] for name, us in results.items()],
    )
    software = results["software protocol (this paper)"]
    hardware = results["proposed hardware (§VII-B)"]
    # The hardware path skips remote attestation, channel crypto and the
    # CSSA replay dance — transparent and much cheaper.
    assert hardware < software / 5
