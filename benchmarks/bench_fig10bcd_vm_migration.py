"""Figures 10(b), 10(c), 10(d): whole-VM live migration with enclaves.

One sweep (8/16/32/64 enclaves, with a no-enclave baseline) yields all
three series the paper plots:

* 10(b) total migration time — "about 2% overhead [<=32 enclaves] ...
  increases to 5% when the number of enclaves reaches 64";
* 10(c) downtime — "grows as enclave number increases ... by only 3
  milliseconds" (two-phase checkpointing is counted into the downtime);
* 10(d) transferred memory — the enclave VM ships its sealed checkpoints
  and records on top of its RAM.

The sweep is computed once and shared by the three benchmark entries;
the virtual-time series printed below are the reproduced results.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import (
    launch_shared_image_apps,
    print_figure,
    report_from_metrics,
    write_bench_json,
)
from repro.migration.testbed import build_testbed
from repro.migration.vm import VmMigrationManager, migrate_plain_vm
from repro.sdk.host import WorkerSpec
from repro.workloads.apps import build_app_image

ENCLAVE_COUNTS = (8, 16, 32, 64)
_CACHE: dict = {}


def _one_point(n_enclaves: int):
    tb = build_testbed(seed=f"fig10-{n_enclaves}", vepc_pages=16384, epc_pages=32768)
    built = build_app_image(tb.builder, "cr4", flavor=f"f10-{n_enclaves}")
    apps = launch_shared_image_apps(
        tb, built, n_enclaves,
        workers=[WorkerSpec("process", args=1, repeat=None, think_time_ns=400_000)],
    )
    for _ in range(30):
        tb.source_os.engine.step_round()
    result = VmMigrationManager(tb, apps).migrate()
    # The plotted figures come from the telemetry metrics snapshot, not
    # from the live report object (which only supplies the prep/restore
    # windows the registry does not carry).
    result.report = report_from_metrics(tb, result.report)
    return result


def _report_series(report) -> dict:
    return {
        "downtime_ns": report.downtime_ns,
        "total_ns": report.total_ns,
        "transferred_bytes": report.transferred_bytes,
        "precopy_rounds": report.precopy_rounds,
    }


def run_sweep():
    if _CACHE:
        return _CACHE
    baseline_tb = build_testbed(seed="fig10-baseline")
    baseline_report = migrate_plain_vm(baseline_tb)
    _CACHE["baseline"] = report_from_metrics(baseline_tb, baseline_report)
    for n in ENCLAVE_COUNTS:
        _CACHE[n] = _one_point(n)
    write_bench_json(
        "fig10",
        {
            "fig10bcd": {
                "series": "whole-VM live migration with enclaves (2 GB VM)",
                "baseline": _report_series(_CACHE["baseline"]),
                "enclaves": {
                    str(n): _report_series(_CACHE[n].report) for n in ENCLAVE_COUNTS
                },
            }
        },
    )
    return _CACHE


@pytest.mark.benchmark(group="fig10b")
def test_fig10b_total_migration_time(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base = results["baseline"]
    rows = [["baseline (no enclaves)", round(base.total_ms, 1), "-"]]
    for n in ENCLAVE_COUNTS:
        report = results[n].report
        overhead = 100 * (report.total_ns - base.total_ns) / base.total_ns
        rows.append([f"{n} enclaves", round(report.total_ms, 1), f"{overhead:.1f}%"])
    print_figure(
        "Figure 10(b): total migration time (2 GB VM)",
        ["configuration", "total (ms)", "overhead"],
        rows,
    )
    # Paper shape: small overhead, growing with enclave count.
    overhead_32 = (results[32].report.total_ns - base.total_ns) / base.total_ns
    overhead_64 = (results[64].report.total_ns - base.total_ns) / base.total_ns
    assert 0 < overhead_32 < 0.06
    assert overhead_32 < overhead_64 < 0.12


@pytest.mark.benchmark(group="fig10c")
def test_fig10c_downtime(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base = results["baseline"]
    rows = [["baseline (no enclaves)", round(base.downtime_ms, 2), "-"]]
    for n in ENCLAVE_COUNTS:
        report = results[n].report
        delta = report.downtime_ms - base.downtime_ms
        rows.append([f"{n} enclaves", round(report.downtime_ms, 2), f"+{delta:.2f} ms"])
    print_figure(
        "Figure 10(c): downtime (includes two-phase checkpointing)",
        ["configuration", "downtime (ms)", "growth"],
        rows,
    )
    downtimes = [results[n].report.downtime_ns for n in ENCLAVE_COUNTS]
    # Monotone growth with enclave count...
    assert all(a <= b for a, b in zip(downtimes, downtimes[1:]))
    # ...on the milliseconds scale the paper reports (~+3ms at 64).
    growth_ms = (downtimes[-1] - base.downtime_ns) / 1e6
    assert 0.5 < growth_ms < 60


@pytest.mark.benchmark(group="fig10d")
def test_fig10d_transferred_memory(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    base = results["baseline"]
    rows = [["baseline (no enclaves)", round(base.transferred_mb, 1), "-"]]
    for n in ENCLAVE_COUNTS:
        report = results[n].report
        delta = report.transferred_mb - base.transferred_mb
        rows.append([f"{n} enclaves", round(report.transferred_mb, 1), f"+{delta:.1f} MB"])
    print_figure(
        "Figure 10(d): transferred memory",
        ["configuration", "transferred (MB)", "extra"],
        rows,
    )
    transfers = [results[n].report.transferred_bytes for n in ENCLAVE_COUNTS]
    assert all(a <= b for a, b in zip(transfers, transfers[1:]))
    assert transfers[0] >= base.transferred_bytes
