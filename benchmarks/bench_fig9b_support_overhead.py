"""Figure 9(b): overhead of migration support on real applications.

Paper result: "migration support brings almost no overhead" — the extra
per-ecall work is checking the global flag, setting the local flag and
recording EENTER's return value.

We run each §VIII-A application with the full migration-aware SDK and
with a stripped SDK (no stubs, no flags, no CSSA bookkeeping) and report
normalized virtual time.
"""

import pytest

from benchmarks.harness import launch_shared_image_apps, print_figure
from repro.migration.testbed import build_testbed
from repro.workloads.apps import APP_NAMES, build_app_image

RUNS = 4


def _app_time_ns(app_name: str, migration_support: bool) -> int:
    tb = build_testbed(seed=f"fig9b-{app_name}-{migration_support}")
    built = build_app_image(tb.builder, app_name, flavor=f"f9b{int(migration_support)}")
    app = launch_shared_image_apps(tb, built, 1)[0]
    app.library.migration_support = migration_support
    start = tb.clock.now_ns
    for run in range(RUNS):
        app.ecall_once(0, "process", run + 1)
    return tb.clock.now_ns - start


def run_figure_9b() -> dict[str, float]:
    results = {}
    for app_name in APP_NAMES:
        with_support = _app_time_ns(app_name, True)
        without = _app_time_ns(app_name, False)
        results[app_name] = with_support / without
    return results


@pytest.mark.benchmark(group="fig9b")
def test_fig9b_migration_support_overhead(benchmark):
    results = benchmark.pedantic(run_figure_9b, rounds=1, iterations=1)
    print_figure(
        "Figure 9(b): normalized time with migration support (w/o = 1.0)",
        ["application", "w/o support", "with support"],
        [[name, 1.0, round(ratio, 4)] for name, ratio in results.items()],
    )
    # The paper's claim: negligible overhead across all six applications.
    for app_name, ratio in results.items():
        assert ratio < 1.05, f"{app_name} shows {ratio:.3f}x overhead"
