"""Figure 9(a): nbench slowdown inside an enclave.

Paper result: running nbench in an enclave costs little for compute-bound
kernels with small footprints, but memory-hungry String Sort slows down
by close to an order of magnitude because its working set exceeds the
EPC and every miss pays the eviction/reload round trip.

We report normalized virtual time (enclave / native) for each kernel
under both SDK flavours ("Intel SDK" and "our SDK" behave nearly the
same, as in the paper).
"""

import pytest

from benchmarks.harness import launch_shared_image_apps, print_figure
from repro.migration.testbed import build_testbed
from repro.workloads.nbench import NBENCH_KERNELS, build_nbench_image, native_run

#: Small vEPC so the big kernels actually page (the paper's EPC is a
#: scarce resource: ~93MB usable of 128MB reserved).
VEPC_PAGES = 72
RUNS = 3


def _kernel_slowdown(kernel_name: str, sdk_flavor: str) -> float:
    tb = build_testbed(seed=f"fig9a-{kernel_name}-{sdk_flavor}", vepc_pages=VEPC_PAGES)
    built = build_nbench_image(tb.builder, kernel_name, sdk_flavor=sdk_flavor)
    app = launch_shared_image_apps(tb, built, 1)[0]
    app.ecall_once(0, "run", 0)  # warm the EPC once
    start = tb.clock.now_ns
    for run in range(RUNS):
        app.ecall_once(0, "run", run + 1)
    enclave_ns = tb.clock.now_ns - start
    start = tb.clock.now_ns
    for run in range(RUNS):
        native_run(kernel_name, tb.clock, run + 1)
    native_ns = tb.clock.now_ns - start
    return enclave_ns / native_ns


def run_figure_9a() -> dict[str, dict[str, float]]:
    results: dict[str, dict[str, float]] = {}
    for kernel_name in NBENCH_KERNELS:
        results[kernel_name] = {
            "ours": _kernel_slowdown(kernel_name, "ours"),
            "intel": _kernel_slowdown(kernel_name, "intel"),
        }
    return results


@pytest.mark.benchmark(group="fig9a")
def test_fig9a_nbench_slowdown(benchmark):
    results = benchmark.pedantic(run_figure_9a, rounds=1, iterations=1)
    rows = [
        [k, 1.0, round(v["intel"], 2), round(v["ours"], 2)]
        for k, v in results.items()
    ]
    print_figure(
        "Figure 9(a): normalized nbench time (native = 1.0)",
        ["kernel", "native", "intel-sdk", "our-sdk"],
        rows,
    )
    # Shape assertions from the paper:
    # 1. String Sort is the outlier — far slower than everything else.
    others = [v["ours"] for k, v in results.items() if k != "string_sort"]
    assert results["string_sort"]["ours"] > 3 * max(others)
    # 2. Compute-bound kernels see modest overhead.
    assert results["fp_emulation"]["ours"] < 1.5
    assert results["idea"]["ours"] < 1.5
    # 3. Both SDK flavours behave alike.
    for kernel_name, values in results.items():
        assert values["ours"] == pytest.approx(values["intel"], rel=0.25)
