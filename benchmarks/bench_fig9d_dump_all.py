"""Figure 9(d): total dumping time vs. number of enclaves.

Paper result: measured "from the guest OS receiving a migration
notification to all the enclaves getting ready" — within ~940us for <=8
enclaves, ~1.7ms at 16, growing superlinearly to 64 as the scheduler
juggles ever more control and worker threads on 4 VCPUs.
"""

import pytest

from benchmarks.harness import launch_shared_image_apps, print_figure
from repro.migration.testbed import build_testbed
from repro.sdk.host import WorkerSpec
from repro.workloads.apps import build_app_image

ENCLAVE_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def _total_dump_us(n_enclaves: int) -> float:
    tb = build_testbed(seed=f"fig9d-{n_enclaves}", n_vcpus=4, vepc_pages=16384)
    built = build_app_image(tb.builder, "libjpeg", flavor=f"f9d{n_enclaves}")
    launch_shared_image_apps(
        tb, built, n_enclaves,
        workers=[WorkerSpec("process", args=1, repeat=None, think_time_ns=300_000)] * 2,
    )
    for _ in range(30):
        tb.source_os.engine.step_round()
    start = tb.clock.now_ns
    tb.source_os.on_migration_notify()
    return (tb.clock.now_ns - start) / 1_000


def run_figure_9d() -> dict[int, float]:
    return {n: _total_dump_us(n) for n in ENCLAVE_COUNTS}


@pytest.mark.benchmark(group="fig9d")
def test_fig9d_total_dumping_time(benchmark):
    results = benchmark.pedantic(run_figure_9d, rounds=1, iterations=1)
    print_figure(
        "Figure 9(d): total dumping time (notify -> all enclaves ready)",
        ["enclaves", "total time (us)"],
        [[n, round(us, 1)] for n, us in results.items()],
    )
    # Shape: monotone growth...
    values = list(results.values())
    assert all(a <= b * 1.05 for a, b in zip(values, values[1:]))
    # ...which is superlinear once threads outnumber VCPUs: going from
    # 8 to 64 enclaves costs more than 8x (the paper's curve bends up).
    assert results[64] > 6 * results[8]
    # And scheduling overlap keeps it well below fully serial dumping.
    assert results[64] < 64 * results[1]
