"""Figure 10(a): time to restore all enclaves on the target machine.

Paper result: "The total time grows linearly as the number of enclaves
increases, because the enclaves are rebuilt one by one."

We use the agent-enclave path so remote-attestation latency (hidden by
§VI-D, and not part of the paper's Fig 10(a) curve) stays off the
restore path; what remains is the serial rebuild (ECREATE/EADD/EEXTEND/
EINIT per page) plus in-enclave restore — the linear component.
"""

import pytest

from benchmarks.harness import launch_shared_image_apps, print_figure
from repro.migration.agent import AgentService, build_agent_image
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.workloads.apps import build_app_image

ENCLAVE_COUNTS = (1, 2, 4, 8, 16)


def _restore_all_us(n_enclaves: int) -> float:
    tb = build_testbed(seed=f"fig10a-{n_enclaves}", vepc_pages=16384)
    agent_built = build_agent_image(tb.builder)
    tb.owner.set_agent_image(agent_built)
    apps = []
    for i in range(n_enclaves):
        built = build_app_image(tb.builder, "mcrypt", flavor=f"f10a-{n_enclaves}-{i}")
        apps.extend(launch_shared_image_apps(tb, built, 1))
    agent = AgentService(tb, agent_built)
    orch = MigrationOrchestrator(tb)
    for app in apps:
        orch.checkpoint_enclave(app)
        agent.escrow_from(app)
    # Measure only the target-side rebuild + restore, enclave by enclave.
    start = tb.clock.now_ns
    for app in apps:
        target = orch.build_virgin_target(app)
        agent.release_to(target)
        ckpt = app.library.last_checkpoint.envelope.to_bytes()
        plan = orch.restore(target, ckpt)
        target.respawn_after_restore(plan)
    return (tb.clock.now_ns - start) / 1_000


def run_figure_10a() -> dict[int, float]:
    return {n: _restore_all_us(n) for n in ENCLAVE_COUNTS}


@pytest.mark.benchmark(group="fig10a")
def test_fig10a_restore_time(benchmark):
    results = benchmark.pedantic(run_figure_10a, rounds=1, iterations=1)
    print_figure(
        "Figure 10(a): total restore time on the target",
        ["enclaves", "total time (us)", "per enclave (us)"],
        [[n, round(us, 1), round(us / n, 1)] for n, us in results.items()],
    )
    # Linear growth: per-enclave cost is constant across the sweep.
    per_enclave = [us / n for n, us in results.items()]
    assert max(per_enclave) < 1.25 * min(per_enclave)
    # 16 enclaves cost ~16x one enclave (serial rebuild).
    assert results[16] == pytest.approx(16 * results[1], rel=0.25)
