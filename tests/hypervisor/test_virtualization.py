"""EPT, VMCS, virtual EPC, hypervisor hypercalls, and pre-copy."""

import pytest

from repro.errors import EptViolation, HypervisorError, SgxEpcExhausted
from repro.hypervisor.ept import Ept
from repro.hypervisor.vepc import VirtualEpc
from repro.hypervisor.vm import GuestMemoryModel
from repro.hypervisor.vmcs import ENCLAVE_INTERRUPTION_BIT, ExitReason, Vmcs
from repro.machine import Machine
from repro.sgx.structures import PAGE_SIZE
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace

GPA = 0x8000_0000


@pytest.fixture
def machine(clock, trace):
    return Machine("host", clock, trace, DeterministicRng("m"), epc_pages=512)


class TestEpt:
    def test_translate_unmapped_faults(self):
        ept = Ept(GPA, 16)
        with pytest.raises(EptViolation):
            ept.translate(GPA)
        assert ept.violations == 1

    def test_map_then_translate(self):
        ept = Ept(GPA, 16)
        ept.map(GPA + PAGE_SIZE, 7)
        assert ept.translate(GPA + PAGE_SIZE) == 7

    def test_outside_region_rejected(self):
        ept = Ept(GPA, 16)
        with pytest.raises(EptViolation):
            ept.map(GPA + 17 * PAGE_SIZE, 0)
        assert not ept.in_vepc(GPA - PAGE_SIZE)
        assert ept.in_vepc(GPA)

    def test_unaligned_rejected(self):
        ept = Ept(GPA, 16)
        with pytest.raises(EptViolation):
            ept.translate(GPA + 1)

    def test_unmap(self):
        ept = Ept(GPA, 16)
        ept.map(GPA, 3)
        assert ept.unmap(GPA) == 3
        with pytest.raises(EptViolation):
            ept.unmap(GPA)


class TestVmcs:
    def test_enclave_interruption_bit_set(self):
        vmcs = Vmcs(0)
        vmcs.record_exit(ExitReason.EXTERNAL_INTERRUPT, in_enclave=True)
        assert vmcs.enclave_interruption
        assert vmcs.exit_reason_bits & ENCLAVE_INTERRUPTION_BIT

    def test_bit_clear_when_outside_enclave(self):
        vmcs = Vmcs(0)
        vmcs.record_exit(ExitReason.EXTERNAL_INTERRUPT, in_enclave=False)
        assert not vmcs.enclave_interruption

    def test_clear_enclave_interruption(self):
        vmcs = Vmcs(0)
        vmcs.record_exit(ExitReason.ILLEGAL_INSTRUCTION, in_enclave=True)
        vmcs.clear_enclave_interruption()
        assert not vmcs.enclave_interruption

    def test_qualification_recorded(self):
        vmcs = Vmcs(0)
        vmcs.record_exit(ExitReason.EPT_VIOLATION, in_enclave=True, gpa=0x1234000)
        assert vmcs.exit_qualification == {"gpa": 0x1234000}


class TestVirtualEpc:
    def make(self, n_pages=8, premapped=4):
        mapped = []
        vepc = VirtualEpc(GPA, n_pages, premapped, on_demand_map=mapped.append)
        return vepc, mapped

    def test_alloc_within_quota(self):
        vepc, _ = self.make()
        gpas = {vepc.alloc_page() for _ in range(8)}
        assert len(gpas) == 8

    def test_quota_exhaustion(self):
        vepc, _ = self.make(n_pages=4, premapped=4)
        for _ in range(4):
            vepc.alloc_page()
        with pytest.raises(SgxEpcExhausted):
            vepc.alloc_page()

    def test_on_demand_mapping_only_beyond_premap(self):
        vepc, mapped = self.make(n_pages=8, premapped=4)
        for _ in range(4):
            vepc.alloc_page()
        assert mapped == []  # premapped region: no EPT violations
        vepc.alloc_page()
        assert len(mapped) == 1  # first touch beyond the premapped part

    def test_free_allows_realloc(self):
        vepc, _ = self.make(n_pages=2, premapped=2)
        gpa = vepc.alloc_page()
        vepc.alloc_page()
        vepc.free_page(gpa)
        vepc.alloc_page()  # no exhaustion

    def test_used_pages_counter(self):
        vepc, _ = self.make()
        assert vepc.used_pages == 0
        vepc.alloc_page()
        assert vepc.used_pages == 1


class TestHypervisor:
    def test_create_vm_reserves_vepc(self, machine):
        vm = machine.hypervisor.create_vm("vm", memory_mb=64, vepc_pages=32)
        assert vm.vepc.n_pages == 32
        assert vm.memory.total_pages == 64 * 1024 // 4

    def test_duplicate_vm_rejected(self, machine):
        machine.hypervisor.create_vm("vm", memory_mb=64)
        with pytest.raises(HypervisorError):
            machine.hypervisor.create_vm("vm", memory_mb=64)

    def test_epc_info_hypercall(self, machine):
        vm = machine.hypervisor.create_vm("vm", memory_mb=64, vepc_pages=32)
        base, pages = machine.hypervisor.hc_get_epc_info(vm)
        assert base == vm.vepc.base_gpa and pages == 32

    def test_migration_ready_flow(self, machine):
        vm = machine.hypervisor.create_vm("vm", memory_mb=64)
        assert not machine.hypervisor.migration_ready(vm)
        machine.hypervisor.hc_migration_ready(vm)
        assert machine.hypervisor.migration_ready(vm)
        machine.hypervisor.reset_migration_state(vm)
        assert not machine.hypervisor.migration_ready(vm)

    def test_upcall_requires_guest_os(self, machine):
        vm = machine.hypervisor.create_vm("vm", memory_mb=64)
        with pytest.raises(HypervisorError):
            machine.hypervisor.upcall_migration_notify(vm)

    def test_ept_violation_maps_page(self, machine):
        vm = machine.hypervisor.create_vm("vm", memory_mb=64, vepc_pages=32, premapped_fraction=0.0)
        gpa = vm.vepc.alloc_page()  # triggers on-demand mapping
        assert vm.vepc.ept.is_mapped(gpa)
        assert vm.vmcs[0].exit_reason is ExitReason.EPT_VIOLATION


class TestGuestMemoryModel:
    def test_initially_all_used_pages_dirty(self):
        memory = GuestMemoryModel(total_pages=1000, working_set_pages=100, dirty_rate_pps=10)
        assert memory.dirty_pages == memory.used_pages

    def test_dirtying_bounded_by_working_set(self):
        memory = GuestMemoryModel(total_pages=1000, working_set_pages=100, dirty_rate_pps=1000)
        memory.take_dirty()
        memory.advance(10 * 1_000_000_000)
        assert memory.dirty_pages == 100

    def test_take_dirty_resets(self):
        memory = GuestMemoryModel(total_pages=1000, working_set_pages=100, dirty_rate_pps=10)
        assert memory.take_dirty() == memory.used_pages
        assert memory.dirty_pages == 0

    def test_dirty_rate(self):
        memory = GuestMemoryModel(total_pages=10_000, working_set_pages=5000, dirty_rate_pps=100)
        memory.take_dirty()
        memory.advance(1_000_000_000)
        assert memory.dirty_pages == 100

    def test_working_set_capped_by_used(self):
        memory = GuestMemoryModel(
            total_pages=1000, working_set_pages=900, dirty_rate_pps=10, used_pages=200
        )
        assert memory.working_set_pages == 200


class TestPreCopy:
    def make_vm(self, machine, dirty_rate=2_000):
        return machine.hypervisor.create_vm(
            "vm", memory_mb=256, vepc_pages=32, dirty_rate_pps=dirty_rate
        )

    def test_migration_converges(self, machine):
        vm = self.make_vm(machine)
        report = machine.qemu.migrate(vm)
        assert report.precopy_rounds >= 1
        assert report.total_ns > 0
        assert not vm.paused

    def test_transfers_at_least_used_memory(self, machine):
        vm = self.make_vm(machine)
        report = machine.qemu.migrate(vm)
        assert report.transferred_bytes >= vm.memory.used_pages * PAGE_SIZE

    def test_higher_dirty_rate_more_rounds_and_bytes(self, clock, trace):
        results = []
        for rate in (1_000, 200_000):
            machine = Machine(f"host-{rate}", VirtualClock(), trace, DeterministicRng("x"))
            vm = machine.hypervisor.create_vm("vm", memory_mb=256, dirty_rate_pps=rate)
            results.append(machine.qemu.migrate(vm))
        assert results[1].transferred_bytes > results[0].transferred_bytes

    def test_downtime_much_smaller_than_total(self, machine):
        vm = self.make_vm(machine)
        report = machine.qemu.migrate(vm)
        assert report.downtime_ns < report.total_ns / 100

    def test_prepare_hook_runs_and_counts(self, machine):
        vm = self.make_vm(machine)
        ran = []

        def hook():
            ran.append(True)
            machine.clock.advance(5_000_000)
            return 5_000_000
        report = machine.qemu.migrate(vm, prepare_hook=hook)
        assert ran
        assert report.prep_ns >= 5_000_000
        assert report.downtime_ns >= 5_000_000

    def test_prepare_hook_downtime_override(self, machine):
        vm = self.make_vm(machine)

        def hook():
            machine.clock.advance(50_000_000)  # long background work
            return 1_000_000  # only 1ms counts as downtime
        report = machine.qemu.migrate(vm, prepare_hook=hook)
        assert report.prep_ns >= 50_000_000
        assert report.downtime_ns < 20_000_000

    def test_extra_bytes_transferred_once(self, machine):
        vm = self.make_vm(machine)
        baseline_vm = machine.hypervisor.create_vm("vm2", memory_mb=256, dirty_rate_pps=2_000)
        vm.memory.park_extra_bytes(50 * 1024 * 1024)
        with_extra = machine.qemu.migrate(vm)
        without = machine.qemu.migrate(baseline_vm)
        assert with_extra.transferred_bytes - without.transferred_bytes == pytest.approx(
            50 * 1024 * 1024, rel=0.2
        )

    def test_paused_vm_rejected(self, machine):
        vm = self.make_vm(machine)
        vm.pause()
        with pytest.raises(HypervisorError):
            machine.qemu.migrate(vm)
