"""VMExit dispatch with the Enclave Interruption bit (§VI-A)."""

import pytest

from repro.hypervisor.vmcs import ExitReason
from repro.machine import Machine
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace


@pytest.fixture
def machine():
    clock = VirtualClock()
    return Machine("host", clock, EventTrace(clock), DeterministicRng("vmx"))


@pytest.fixture
def vm(machine):
    return machine.hypervisor.create_vm("vm", memory_mb=64)


class TestVmexitDispatch:
    def test_handler_invoked(self, machine, vm):
        calls = []
        machine.hypervisor.handle_vmexit(
            vm, ExitReason.EXTERNAL_INTERRUPT, in_enclave=False, handler=lambda: calls.append(1)
        )
        assert calls == [1]

    def test_enclave_bit_cleared_before_reusing_original_handlers(self, machine, vm):
        # "currently we clear the bit in EXIT_REASON field and then reuse
        # the original handlers" — after dispatch, the bit must be gone.
        machine.hypervisor.handle_vmexit(
            vm, ExitReason.ILLEGAL_INSTRUCTION, in_enclave=True
        )
        assert not vm.vmcs[0].enclave_interruption
        assert vm.vmcs[0].exit_reason is ExitReason.ILLEGAL_INSTRUCTION

    def test_qualification_passed_through(self, machine, vm):
        machine.hypervisor.handle_vmexit(
            vm, ExitReason.EXTERNAL_INTERRUPT, in_enclave=True, vector=32
        )
        assert vm.vmcs[0].exit_qualification == {"vector": 32}

    def test_exit_charges_time(self, machine, vm):
        before = machine.clock.now_ns
        machine.hypervisor.handle_vmexit(vm, ExitReason.HYPERCALL, in_enclave=False)
        assert machine.clock.now_ns > before

    def test_ept_violation_path_keeps_bit_until_mapped(self, machine, vm):
        # The EPT-violation handler is the one path that *uses* the bit
        # (to route to the vEPC mapper) before clearing it.
        gpa = vm.vepc.base_gpa
        machine.hypervisor.handle_ept_violation(vm.name, gpa)
        assert vm.vmcs[0].exit_reason is ExitReason.EPT_VIOLATION
        assert not vm.vmcs[0].enclave_interruption  # cleared after mapping
        assert vm.vepc.ept.is_mapped(gpa)
