"""Hypervisor-level EPC overcommit across VMs (§VI-A).

"The hypervisor overcommits the EPC resources through swapping which is
transparent to the VMs."  Two guests share one physical EPC that cannot
hold both; the second guest's enclave build forces the hypervisor to
revoke pages from the first, which keeps working through reload faults.
"""

import pytest

from repro.errors import HypervisorError
from repro.guestos.kernel import GuestOs
from repro.machine import Machine
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace

from tests.conftest import make_counter_program


def build_two_tenant_machine(epc_pages=80):
    clock = VirtualClock()
    trace = EventTrace(clock)
    machine = Machine("host", clock, trace, DeterministicRng("oc"), epc_pages=epc_pages)
    vms = []
    for i in range(2):
        vm = machine.hypervisor.create_vm(
            f"tenant-{i}", memory_mb=64, vepc_pages=60, premapped_fraction=1.0
        )
        GuestOs(machine, vm)
        vms.append(vm)
    return machine, vms


def launch_counter(machine, vm, tag):
    """Launch a counter enclave in a specific VM, bypassing the testbed."""
    from repro.crypto.keys import KeyPair
    from repro.crypto.rsa import generate_rsa_keypair
    from repro.sdk.builder import SdkBuilder
    from repro.sdk.host import HostApplication

    vendor = KeyPair(generate_rsa_keypair(DeterministicRng(f"v-{tag}")), "vendor")
    builder = SdkBuilder(vendor, DeterministicRng(f"b-{tag}"))
    built = builder.build(
        f"oc-{tag}", make_counter_program(f"oc-{tag}"), n_workers=1, global_names=("counter",)
    )
    app = HostApplication(machine, vm.guest_os, built.image, [], owner=None)
    app.launch()
    return app


class TestOvercommit:
    def test_second_tenant_triggers_reclaim(self):
        machine, vms = build_two_tenant_machine(epc_pages=32)
        # Tenant 0 fills most of the physical EPC.
        app0 = launch_counter(machine, vms[0], "t0")
        # Tenant 1's build must force revocations from tenant 0.
        app1 = launch_counter(machine, vms[1], "t1")
        assert machine.trace.count_of("kvm", "epc_reclaim") > 0
        # Both enclaves work: tenant 0's evicted pages fault back in.
        assert app1.ecall_once(0, "incr", 2) == 2
        assert app0.ecall_once(0, "incr", 5) == 5

    def test_reclaim_prefers_other_vms(self):
        machine, vms = build_two_tenant_machine(epc_pages=32)
        launch_counter(machine, vms[0], "t0")
        launch_counter(machine, vms[1], "t1")
        for event in machine.trace.select("kvm", "epc_reclaim"):
            assert event.payload["victim"] != event.payload["requester"]

    def test_reclaim_with_no_victim_raises(self):
        clock = VirtualClock()
        machine = Machine("host", clock, EventTrace(clock), DeterministicRng("solo"))
        machine.hypervisor.create_vm("only", memory_mb=64)
        with pytest.raises(HypervisorError):
            machine.hypervisor.reclaim_physical("only")

    def test_single_tenant_self_evicts_under_physical_pressure(self):
        clock = VirtualClock()
        trace = EventTrace(clock)
        machine = Machine("host", clock, trace, DeterministicRng("self"), epc_pages=16)
        vm = machine.hypervisor.create_vm(
            "only", memory_mb=64, vepc_pages=64, premapped_fraction=1.0
        )
        GuestOs(machine, vm)
        app = launch_counter(machine, vm, "solo")
        # The image needs more pages than physical EPC: self-eviction ran.
        assert trace.counter("driver.evictions") > 0
        assert app.ecall_once(0, "incr", 3) == 3
