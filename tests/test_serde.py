"""Canonical serialization: the byte format hardware state lives in."""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.strategies import recursive

from repro.serde import SerdeError, pack, unpack


class TestSerde:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -17,
            2**80,
            "text",
            b"bytes\x00\xff",
            [1, 2, 3],
            (4, 5),
            {"a": 1, "b": [b"x", None]},
            {"nested": {"deep": {"bytes": b"\x01"}}},
        ],
    )
    def test_roundtrip(self, value):
        assert unpack(pack(value)) == value

    def test_deterministic_key_order(self):
        assert pack({"b": 1, "a": 2}) == pack({"a": 2, "b": 1})

    def test_tuple_distinct_from_list(self):
        assert unpack(pack((1, 2))) == (1, 2)
        assert unpack(pack([1, 2])) == [1, 2]

    def test_floats_rejected(self):
        with pytest.raises(SerdeError):
            pack(1.5)

    def test_non_string_keys_rejected(self):
        with pytest.raises(SerdeError):
            pack({1: "a"})

    def test_reserved_keys_rejected(self):
        with pytest.raises(SerdeError):
            pack({"__bytes__": "hex"})

    def test_unserializable_rejected(self):
        with pytest.raises(SerdeError):
            pack(object())

    def test_malformed_bytes_rejected(self):
        with pytest.raises(SerdeError):
            unpack(b"not json at all {{{")
        with pytest.raises(SerdeError):
            unpack(b"\xff\xfe")

    canonical = recursive(
        st.none()
        | st.booleans()
        | st.integers()
        | st.text(max_size=20)
        | st.binary(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(
            st.text(max_size=8).filter(lambda k: not k.startswith("__")), children, max_size=4
        ),
        max_leaves=20,
    )

    @given(canonical)
    @settings(max_examples=80)
    def test_roundtrip_property(self, value):
        assert unpack(pack(value)) == value
