"""The live invariant monitor: active in every test, catches real breaks.

The sentinel tests deliberately violate an invariant and assert the
monitor fires — proving the watchdog is live, not decorative.  Each
sentinel calls ``monitor.acknowledge()`` before returning so the autouse
teardown fixture does not re-raise the intentional violation.
"""

from __future__ import annotations

import pytest

from repro.errors import InvariantViolation
from repro.invariants import active_monitors
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.sgx.structures import Tcs
from tests.conftest import build_counter_app


class TestCleanRuns:
    def test_normal_migration_is_clean(self):
        tb = build_testbed(seed=91)
        app = build_counter_app(tb, tag="clean")
        app.ecall_once(0, "incr", 4)
        result = MigrationOrchestrator(tb).migrate_enclave(app)
        assert result.target_app.ecall_once(0, "read") == 4
        tb.monitor.assert_clean()
        assert tb.monitor.violations == []

    def test_monitor_ticks_during_the_run(self):
        """The engine round hook actually fires — the watch is live."""
        tb = build_testbed(seed=92)
        app = build_counter_app(tb, tag="ticking")
        MigrationOrchestrator(tb).migrate_enclave(app)
        assert tb.monitor._tick > 0

    def test_every_testbed_is_watched(self):
        tb = build_testbed(seed=93)
        assert tb.monitor in active_monitors()
        assert tb.source.monitor is tb.monitor
        assert tb.target.monitor is tb.monitor

    def test_snapshot_fork_is_not_flagged(self):
        """§V-C checkpoint/resume legally yields a second instance of the
        measurement; only migration lineages are subject to P-5."""
        from repro.migration.snapshot import SnapshotManager

        tb = build_testbed(seed=94)
        app = build_counter_app(tb, tag="legal-fork")
        app.ecall_once(0, "incr", 2)
        manager = SnapshotManager(tb, tb.owner)
        snapshot = manager.snapshot(app, reason="backup")
        manager.resume(snapshot, app, reason="restore")
        tb.monitor.assert_clean()


class TestSentinels:
    def test_resurrected_source_is_caught(self):
        """Deliberately break single-instance: bring the self-destroyed
        source back to life next to the live migrated target."""
        tb = build_testbed(seed=95)
        app = build_counter_app(tb, tag="sentinel-fork")
        MigrationOrchestrator(tb).migrate_enclave(app)

        def resurrect(rt):
            rt.set_channel_state(0)
            rt.set_global_flag(0)

        app.library.control_call(resurrect)
        with pytest.raises(InvariantViolation):
            tb.monitor.check_now()
        assert tb.monitor.violations
        tb.monitor.acknowledge()

    def test_double_escrow_release_is_caught(self):
        tb = build_testbed(seed=96)
        tb.trace.emit("agent", "release", key_id="ab" * 16)
        with pytest.raises(InvariantViolation):
            tb.trace.emit("agent", "release", key_id="ab" * 16)
        assert tb.monitor.violations
        tb.monitor.acknowledge()

    def test_distinct_escrow_keys_are_fine(self):
        tb = build_testbed(seed=97)
        tb.trace.emit("agent", "release", key_id="aa" * 16)
        tb.trace.emit("agent", "release", key_id="bb" * 16)
        tb.monitor.assert_clean()

    def test_readable_cssa_is_caught(self, monkeypatch):
        """If TCS.CSSA ever became software-readable, the probe trips."""
        monkeypatch.setattr(Tcs, "cssa", property(lambda self: self._cssa))
        tb = build_testbed(seed=98)
        app = build_counter_app(tb, tag="cssa-leak")
        tb.monitor.register_lineage(app)
        with pytest.raises(InvariantViolation):
            tb.monitor.check_now()
        assert any("CSSA" in v for v in tb.monitor.violations)
        tb.monitor.acknowledge()

    def test_snapshot_sequence_rollback_is_caught(self):
        """A §V-C take whose sequence is not strictly above the last take
        for that image means a rolled-back lineage is checkpointing."""
        tb = build_testbed(seed=101)
        tb.trace.emit("snapshot", "take", image="db", sequence=3)
        tb.trace.emit("snapshot", "take", image="db", sequence=4)
        with pytest.raises(InvariantViolation):
            tb.trace.emit("snapshot", "take", image="db", sequence=3)
        assert any("snapshot sequence" in v for v in tb.monitor.violations)
        tb.monitor.acknowledge()

    def test_snapshot_sequences_are_tracked_per_image(self):
        tb = build_testbed(seed=102)
        tb.trace.emit("snapshot", "take", image="db", sequence=5)
        tb.trace.emit("snapshot", "take", image="cache", sequence=1)
        tb.trace.emit("snapshot", "resume", image="db", sequence=5)
        tb.monitor.assert_clean()

    def test_real_snapshot_takes_feed_the_monitor(self):
        """SnapshotManager emits the take event the monitor watches."""
        from repro.migration.snapshot import SnapshotManager

        tb = build_testbed(seed=103)
        app = build_counter_app(tb, tag="seq-watch")
        manager = SnapshotManager(tb, tb.owner)
        first = manager.snapshot(app, reason="backup")
        second = manager.snapshot(app, reason="backup")
        assert second.sequence > first.sequence
        assert tb.monitor._snapshot_taken[app.image.name] == second.sequence
        tb.monitor.assert_clean()

    def test_escrow_table_leak_is_caught(self):
        """The escrow table may never outgrow the distinct measurements
        ever escrowed — a larger table means entries leak under churn."""
        tb = build_testbed(seed=104)
        tb.trace.emit("agent", "escrow", key_id="aa" * 16, table_size=1)
        tb.trace.emit("agent", "escrow", key_id="bb" * 16, table_size=2)
        # Re-escrow of a released measurement overwrites in place: fine.
        tb.trace.emit("agent", "escrow", key_id="aa" * 16, table_size=2)
        with pytest.raises(InvariantViolation):
            tb.trace.emit("agent", "escrow", key_id="aa" * 16, table_size=3)
        assert any("escrow table" in v for v in tb.monitor.violations)
        tb.monitor.acknowledge()

    def test_acknowledge_stands_the_monitor_down(self):
        tb = build_testbed(seed=99)
        tb.trace.emit("agent", "release", key_id="cc" * 16)
        with pytest.raises(InvariantViolation):
            tb.trace.emit("agent", "release", key_id="cc" * 16)
        tb.monitor.acknowledge()
        tb.monitor.assert_clean()  # disabled: no re-raise at teardown


class TestSloLedger:
    def test_slo_violations_are_soft(self):
        """SLO breaches are performance events, not safety failures:
        they land on their own ledger and never trip assert_clean."""
        tb = build_testbed(seed=61)
        monitor = tb.source.monitor
        tb.trace.emit(
            "slo", "violation", party="source",
            message="downtime-budget/fast burn 4.2x",
        )
        assert monitor.slo_violations == ["downtime-budget/fast burn 4.2x"]
        assert monitor.violations == []
        monitor.assert_clean()

    def test_slo_resolutions_are_not_recorded_as_violations(self):
        tb = build_testbed(seed=62)
        monitor = tb.source.monitor
        tb.trace.emit("slo", "resolved", party="source", message="all clear")
        assert monitor.slo_violations == []
        monitor.assert_clean()

    def test_payload_without_message_still_lands_on_the_ledger(self):
        tb = build_testbed(seed=63)
        monitor = tb.source.monitor
        tb.trace.emit("slo", "violation", party="source", objective="refusals")
        assert len(monitor.slo_violations) == 1
        assert "refusals" in monitor.slo_violations[0]
