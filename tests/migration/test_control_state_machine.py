"""The control thread's channel state machine, unit level.

CHANNEL_NONE → (source_open_channel) → CHANNEL_OPEN →
(source_release_key) → CHANNEL_SPENT, with every illegal transition
refused from inside the enclave.
"""

import pytest

from repro.errors import ChannelError, MigrationError, SelfDestroyed
from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk import control
from repro.sgx import instructions as isa

from tests.conftest import build_counter_app


def channel_state(app):
    template = app.image.control_tcs
    session = isa.eenter(app.machine.cpu, app.library.hw(), template.vaddr)
    rt = app.library._runtime(session)
    state = rt.channel_state()
    isa.eexit(session)
    return state


class TestChannelStateMachine:
    def test_initial_state_none(self, testbed, counter_app):
        assert channel_state(counter_app) == control.CHANNEL_NONE

    def test_open_after_channel(self, testbed):
        app = build_counter_app(testbed, tag="sm-open")
        orch = MigrationOrchestrator(testbed)
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        orch.establish_channel(app, target)
        assert channel_state(app) == control.CHANNEL_OPEN

    def test_spent_after_key_release(self, testbed):
        app = build_counter_app(testbed, tag="sm-spent")
        orch = MigrationOrchestrator(testbed)
        orch.migrate_enclave(app)
        assert channel_state(app) == control.CHANNEL_SPENT

    def test_cancel_returns_to_none(self, testbed):
        app = build_counter_app(testbed, tag="sm-cancel")
        orch = MigrationOrchestrator(testbed)
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        orch.establish_channel(app, target)
        orch.cancel(app)
        assert channel_state(app) == control.CHANNEL_NONE

    def test_release_from_none_refused(self, testbed):
        app = build_counter_app(testbed, tag="sm-none")
        with pytest.raises((ChannelError, MigrationError)):
            app.library.control_call(control.source_release_key)

    def test_every_source_op_refused_when_spent(self, testbed):
        app = build_counter_app(testbed, tag="sm-dead")
        orch = MigrationOrchestrator(testbed)
        orch.migrate_enclave(app)
        with pytest.raises(SelfDestroyed):
            app.library.control_call(control.source_release_key)
        with pytest.raises(SelfDestroyed):
            app.library.control_call(control.source_cancel_migration)
        with pytest.raises(SelfDestroyed):
            orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        with pytest.raises((ChannelError, SelfDestroyed)):
            orch.establish_channel(app, target)

    def test_checkpoint_sequence_survives_state_transitions(self, testbed):
        app = build_counter_app(testbed, tag="sm-seq")
        orch = MigrationOrchestrator(testbed)
        sequences = []
        for _ in range(3):
            orch.checkpoint_enclave(app)
            sequences.append(app.library.last_checkpoint.sequence)
            orch.cancel(app)
        assert sequences == [1, 2, 3]
