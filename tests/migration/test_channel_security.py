"""Active attacks on the migration secure channel (§V-B).

The channel's mutual authentication must survive an adversary who owns
the wire *and* can create enclaves of their own: the source must only
talk to an IAS-attested enclave with its own measurement; the target
must only accept a DH answer signed by the image private key that only
owner-provisioned instances hold.
"""

import pytest

from repro.crypto.dh import MODP_2048_G, MODP_2048_P
from repro.errors import AttestationError, ChannelError, IntegrityError, QuoteRejected, SignatureError
from repro.migration.orchestrator import MigrationOrchestrator, _quote_to_dict
from repro.migration.testbed import build_testbed
from repro.sdk import control
from repro.sdk.host import HostApplication
from repro.serde import pack, unpack
from repro.sim.rng import DeterministicRng

from tests.conftest import build_counter_app


@pytest.fixture
def orch(testbed):
    return MigrationOrchestrator(testbed)


class TestSourceSideAuthentication:
    def test_wrong_measurement_target_rejected(self, testbed, orch):
        """An attested-but-different enclave must not receive a channel."""
        app = build_counter_app(testbed, tag="chansec-a")
        orch.checkpoint_enclave(app)
        # A genuine enclave, genuinely attested — but a different image.
        other = build_counter_app(testbed, tag="chansec-other")
        other_target = HostApplication(
            testbed.target, testbed.target_os, other.image, [], name="lookalike"
        )
        other_target.library.launch(owner=None)
        quote, dh_pub = other_target.library.control_call(
            control.target_channel_request, testbed.target.quoting_enclave
        )
        avr = testbed.ias.verify_quote(quote)
        with pytest.raises(QuoteRejected):
            app.library.control_call(control.source_open_channel, avr, dh_pub)

    def test_mitm_dh_substitution_rejected_by_source(self, testbed, orch):
        """An attacker swapping the target's DH half breaks the binding.

        The quote's report_data commits to the DH value, so a
        man-in-the-middle cannot splice their own key into an honest
        attestation.
        """
        app = build_counter_app(testbed, tag="chansec-mitm")
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        quote, _honest_dh = target.library.control_call(
            control.target_channel_request, testbed.target.quoting_enclave
        )
        avr = testbed.ias.verify_quote(quote)
        attacker_dh = pow(
            MODP_2048_G, DeterministicRng("mitm").getrandbits(256), MODP_2048_P
        )
        with pytest.raises(AttestationError):
            app.library.control_call(control.source_open_channel, avr, attacker_dh)

    def test_unattested_quote_never_reaches_channel(self, testbed, orch):
        """Quotes from an unregistered platform die at IAS."""
        rogue = build_testbed(seed=901)  # its platforms unknown to testbed.ias
        app = build_counter_app(testbed, tag="chansec-rogue")
        orch.checkpoint_enclave(app)
        rogue_app = build_counter_app(rogue, tag="chansec-rogue")
        rogue_target = HostApplication(
            rogue.target, rogue.target_os, rogue_app.image, [], name="rogue"
        )
        rogue_target.library.launch(owner=None)
        quote, _dh = rogue_target.library.control_call(
            control.target_channel_request, rogue.target.quoting_enclave
        )
        with pytest.raises(QuoteRejected):
            testbed.ias.verify_quote(quote)


class TestTargetSideAuthentication:
    def test_mitm_dh_substitution_rejected_by_target(self, testbed, orch):
        """The source's signature binds both DH halves; swapping the
        source half invalidates it."""
        app = build_counter_app(testbed, tag="chansec-t")
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        quote, target_dh = target.library.control_call(
            control.target_channel_request, testbed.target.quoting_enclave
        )
        avr = testbed.ias.verify_quote(quote)
        _source_dh, signature = app.library.control_call(
            control.source_open_channel, avr, target_dh
        )
        attacker_dh = pow(
            MODP_2048_G, DeterministicRng("mitm2").getrandbits(256), MODP_2048_P
        )
        with pytest.raises(SignatureError):
            target.library.control_call(
                control.target_complete_channel, attacker_dh, signature
            )

    def test_unprovisioned_impostor_cannot_sign(self, testbed, orch):
        """Only instances the owner provisioned hold the image private
        key; a fresh enclave cannot impersonate a migration source."""
        app = build_counter_app(testbed, tag="chansec-imp", provision=False)
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        target.library.control_call(
            control.target_channel_request, testbed.target.quoting_enclave
        )
        with pytest.raises(ChannelError):
            orch.establish_channel(app, target)

    def test_complete_channel_requires_pending_request(self, testbed, orch):
        app = build_counter_app(testbed, tag="chansec-norq")
        target = orch.build_virgin_target(app)
        with pytest.raises(ChannelError):
            target.library.control_call(control.target_complete_channel, 5, b"sig")


class TestSessionKeyProperties:
    def test_fresh_session_key_per_migration(self, testbed, orch):
        """Two migrations of two apps produce unrelated key envelopes."""
        app_a = build_counter_app(testbed, tag="fresh-a")
        app_b = build_counter_app(testbed, tag="fresh-b")
        orch.migrate_enclave(app_a)
        orch.migrate_enclave(app_b)
        envelopes = testbed.network.captured("kmigrate")
        assert len(envelopes) == 2
        assert envelopes[0] != envelopes[1]

    def test_key_envelope_opaque_without_session_key(self, testbed, orch):
        from repro.crypto.authenc import Envelope, open_envelope
        from repro.crypto.keys import SymmetricKey

        app = build_counter_app(testbed, tag="opaque")
        orch.migrate_enclave(app)
        sealed = testbed.network.captured("kmigrate")[0]
        guess = SymmetricKey(b"\x00" * 32, "guess")
        with pytest.raises(IntegrityError):
            open_envelope(guess, Envelope.from_bytes(sealed), aad=b"kmigrate")
