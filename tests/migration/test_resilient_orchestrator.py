"""Unit tests for the degraded-mode machinery around the orchestrator.

The matrix (tests/integration/test_fault_matrix.py) proves the end-to-end
obligation; these tests pin the individual mechanisms: bounded step
waits, the chunked resumable transfer, retransmission caps, the abort /
restart contract, the stats counters, and the agent's escrow retries.
"""

from __future__ import annotations

import pytest

from repro.errors import ChunkError, MigrationAborted, SelfDestroyed, StepTimeout
from repro.faults import FaultInjector, FaultPlan
from repro.migration.agent import AgentService, build_agent_image
from repro.migration.checkpoint import ChunkReassembler, chunk_blob
from repro.migration.orchestrator import (
    FAULT_TOLERANT_RETRY,
    MigrationOrchestrator,
    RetryPolicy,
)
from repro.migration.testbed import build_testbed
from repro.sdk import control
from repro.sgx import instructions as isa

from tests.conftest import build_counter_app


class TestChunking:
    def test_roundtrip_any_order(self):
        blob = bytes(range(256)) * 37
        frames = chunk_blob(blob, chunk_bytes=512)
        r = ChunkReassembler()
        for frame in reversed(frames):
            assert r.accept(frame)
        assert r.complete and r.assemble() == blob

    def test_empty_blob_is_one_frame(self):
        frames = chunk_blob(b"", chunk_bytes=512)
        assert len(frames) == 1
        r = ChunkReassembler()
        r.accept(frames[0])
        assert r.assemble() == b""

    def test_duplicates_are_idempotent(self):
        frames = chunk_blob(b"x" * 2000, chunk_bytes=512)
        r = ChunkReassembler()
        for frame in frames + frames:
            r.accept(frame)
        assert r.duplicates_seen == len(frames)
        assert r.assemble() == b"x" * 2000

    def test_corrupt_frame_raises_and_names_the_gap(self):
        frames = chunk_blob(b"y" * 2000, chunk_bytes=512)
        r = ChunkReassembler()
        r.accept(frames[0])
        bad = bytearray(frames[1])
        bad[-10] ^= 0x40
        with pytest.raises(ChunkError):
            r.accept(bytes(bad))
        assert 1 in r.missing() and 0 not in r.missing()

    def test_geometry_disagreement_rejected(self):
        frames_a = chunk_blob(b"a" * 2000, chunk_bytes=512)
        frames_b = chunk_blob(b"b" * 4000, chunk_bytes=512)
        r = ChunkReassembler()
        r.accept(frames_a[0])
        with pytest.raises(ChunkError):
            r.accept(frames_b[1])

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ChunkError):
            chunk_blob(b"zz", chunk_bytes=0)


class TestStepTimeout:
    def test_wedged_worker_times_out_instead_of_hanging(self, testbed):
        """The satellite fix: a worker that never reaches the quiescent
        point must surface as StepTimeout, not hang ``run_until``."""
        app = build_counter_app(testbed, tag="wedged")
        worker = app.image.worker_tcs(0)
        # Enter a worker ecall and never leave: its local flag stays
        # BUSY, so the control thread can never finish checkpointing.
        session = isa.eenter(app.machine.cpu, app.library.hw(), worker.vaddr)
        rt = app.library._runtime(session)
        assert rt.entry_stub(worker.index) == "proceed"

        orch = MigrationOrchestrator(testbed, retry=RetryPolicy(max_step_rounds=2_000))
        with pytest.raises(StepTimeout) as excinfo:
            orch.checkpoint_enclave(app)
        assert excinfo.value.step == "checkpoint"
        assert orch.stats.step_timeouts == 1
        assert testbed.trace.tally("migration")["step_timeout"] == 1

    def test_default_budget_matches_seed_behaviour(self, testbed):
        """With the default policy an ordinary checkpoint completes well
        inside the budget — the bound changes nothing on the happy path."""
        app = build_counter_app(testbed, tag="budget")
        MigrationOrchestrator(testbed).checkpoint_enclave(app)
        assert app.library.last_checkpoint is not None


class TestKeyHandoffExhaustion:
    def test_key_lost_forever_aborts_with_zero_instances(self, testbed):
        """Every kmigrate delivery fails: released key is unrecoverable,
        so the protocol must end with *no* live instance (P-5 beats
        availability) rather than retrying the whole migration."""
        plan = FaultPlan(seed=3)
        for nth in range(1, FAULT_TOLERANT_RETRY.max_transfer_rounds + 1):
            plan.drop("kmigrate", nth=nth)
        app = build_counter_app(testbed, tag="keyloss")
        orch = MigrationOrchestrator(
            testbed, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        with pytest.raises(MigrationAborted):
            orch.migrate_enclave(app)
        # Post-release failure is terminal: no whole-protocol retry.
        assert orch.stats.attempts == 1
        assert orch.stats.key_retransmits == FAULT_TOLERANT_RETRY.max_transfer_rounds - 1
        # Source self-destroyed, target torn down: zero live instances.
        with pytest.raises(SelfDestroyed):
            app.library.control_call(control.source_release_key)
        assert not testbed.target_os.driver.live_enclave_ids()


class TestAbortAndRestart:
    def test_aborted_migration_can_be_restarted_from_scratch(self, testbed):
        """A migration that exhausts its retries pre-release leaves the
        source serving; a later migration renegotiates everything —
        fresh channel, fresh K_migrate — and succeeds."""
        app = build_counter_app(testbed, tag="restart")
        app.ecall_once(0, "incr", 21)
        # A partition far longer than the whole retry budget.
        plan = FaultPlan(seed=4).partition(10_000_000_000)
        orch = MigrationOrchestrator(
            testbed, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        with pytest.raises(MigrationAborted):
            orch.migrate_enclave(app)
        assert orch.stats.aborts == 1
        # Key never left the enclave: the source still serves.
        assert not testbed.network.captured("kmigrate")
        assert app.ecall_once(0, "read") == 21

        # Infrastructure fixed (injector removed): a fresh attempt works
        # end to end, renegotiating the attested channel from scratch.
        orch.faults.detach()
        result = MigrationOrchestrator(testbed, retry=FAULT_TOLERANT_RETRY).migrate_enclave(app)
        assert result.target_app.ecall_once(0, "read") == 21
        assert len(testbed.network.captured("kmigrate")) == 1

    def test_spent_source_never_retried(self, testbed):
        """Once the source is SPENT, a retry loop must not resurrect it:
        a second migrate_enclave aborts immediately with SelfDestroyed
        semantics instead of renegotiating."""
        app = build_counter_app(testbed, tag="spent")
        orch = MigrationOrchestrator(testbed, retry=FAULT_TOLERANT_RETRY)
        orch.migrate_enclave(app)
        orch2 = MigrationOrchestrator(testbed, retry=FAULT_TOLERANT_RETRY)
        with pytest.raises(MigrationAborted):
            orch2.migrate_enclave(app)
        assert orch2.stats.attempts == 1  # no blind retry of a dead source


class TestStatsAndTrace:
    def test_retry_events_hit_the_trace(self, testbed):
        plan = FaultPlan(seed=5).drop("channel-answer")
        app = build_counter_app(testbed, tag="trace")
        orch = MigrationOrchestrator(
            testbed, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        result = orch.migrate_enclave(app)
        assert result.stats.retries == 1
        tally = testbed.trace.tally("migration")
        assert tally["retry"] == 1
        assert testbed.trace.tally("fault")["drop"] == 1

    def test_result_carries_stats_and_attempts(self, testbed):
        app = build_counter_app(testbed, tag="stats")
        result = MigrationOrchestrator(testbed, retry=FAULT_TOLERANT_RETRY).migrate_enclave(app)
        assert result.attempts == 1
        assert result.stats.as_dict()["retries"] == 0


class TestAgentRetries:
    def _make(self, seed, plan, retry):
        tb = build_testbed(seed=seed)
        agent_built = build_agent_image(tb.builder)
        tb.owner.set_agent_image(agent_built)
        app = build_counter_app(tb, tag=f"agentretry{seed}")
        app.ecall_once(0, "incr", 8)
        agent = AgentService(tb, agent_built, retry=retry)
        if plan is not None:
            FaultInjector(plan).attach(tb)
        return tb, app, agent

    def test_escrow_survives_dropped_message(self):
        plan = FaultPlan(seed=6).drop("agent-escrow")
        tb, app, agent = self._make(601, plan, FAULT_TOLERANT_RETRY)
        MigrationOrchestrator(tb).checkpoint_enclave(app)
        agent.escrow_from(app)
        assert tb.trace.tally("migration")["agent_resend"] == 1
        # The escrowed key still releases to the legitimate target only.
        target = MigrationOrchestrator(tb).build_virgin_target(app)
        agent.release_to(target)

    def test_default_policy_surfaces_fault_unchanged(self):
        from repro.errors import LinkTimeout

        plan = FaultPlan(seed=7).drop("agent-escrow")
        tb, app, agent = self._make(602, plan, None)
        MigrationOrchestrator(tb).checkpoint_enclave(app)
        with pytest.raises(LinkTimeout):
            agent.escrow_from(app)
