"""Checkpoint format, sealing and the two-phase generation mechanics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.keys import SymmetricKey
from repro.errors import IntegrityError
from repro.migration.checkpoint import (
    EnclaveCheckpoint,
    TcsState,
    open_checkpoint,
    seal_checkpoint,
)
from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk.host import WorkerSpec
from repro.sdk.image import FLAG_FREE, FLAG_SPIN

from tests.conftest import build_counter_app


def make_checkpoint(n_pages=3, seq=1):
    return EnclaveCheckpoint(
        image_name="img",
        code_id="code-v1",
        mrenclave=b"\xaa" * 32,
        sequence=seq,
        pages={0x1000 * (i + 1): bytes([i]) * 4096 for i in range(n_pages)},
        tcs_states=[TcsState(0, 0, FLAG_FREE), TcsState(1, 1, FLAG_SPIN)],
        skipped_pages=[0x9000],
    )


class TestCheckpointFormat:
    def test_bytes_roundtrip(self):
        ckpt = make_checkpoint()
        again = EnclaveCheckpoint.from_bytes(ckpt.to_bytes())
        assert again.pages == ckpt.pages
        assert again.tcs_states == ckpt.tcs_states
        assert again.skipped_pages == ckpt.skipped_pages
        assert again.sequence == ckpt.sequence
        assert again.mrenclave == ckpt.mrenclave

    def test_memory_bytes(self):
        assert make_checkpoint(n_pages=4).memory_bytes == 4 * 4096

    def test_tcs_state_lookup(self):
        ckpt = make_checkpoint()
        assert ckpt.tcs_state(1).cssa == 1
        from repro.errors import RestoreError

        with pytest.raises(RestoreError):
            ckpt.tcs_state(9)

    def test_seal_open_roundtrip(self):
        key = SymmetricKey(b"\x01" * 32, "k")
        env = seal_checkpoint(make_checkpoint(), key, b"n" * 16)
        opened = open_checkpoint(key, env)
        assert opened.pages == make_checkpoint().pages

    def test_sealed_is_confidential(self):
        key = SymmetricKey(b"\x01" * 32, "k")
        ckpt = make_checkpoint()
        ckpt.pages[0x1000] = b"TOP-SECRET-ACCOUNT-DATA!" * 100
        env = seal_checkpoint(ckpt, key, b"n" * 16)
        assert b"TOP-SECRET-ACCOUNT-DATA!" not in env.to_bytes()

    def test_wrong_key_rejected(self):
        env = seal_checkpoint(make_checkpoint(), SymmetricKey(b"\x01" * 32, "a"), b"n" * 16)
        with pytest.raises(IntegrityError):
            open_checkpoint(SymmetricKey(b"\x02" * 32, "b"), env)

    @pytest.mark.parametrize("algorithm", ["rc4", "des", "aes", "aes-ni"])
    def test_all_ciphers(self, algorithm):
        key = SymmetricKey(b"\x03" * 32, "k")
        env = seal_checkpoint(make_checkpoint(), key, b"n" * 16, algorithm)
        assert open_checkpoint(key, env).sequence == 1

    @given(st.integers(min_value=1, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_roundtrip_property(self, n_pages):
        ckpt = make_checkpoint(n_pages=n_pages)
        assert EnclaveCheckpoint.from_bytes(ckpt.to_bytes()).memory_bytes == ckpt.memory_bytes


def _legacy_to_bytes(ckpt: EnclaveCheckpoint) -> bytes:
    """The original all-JSON checkpoint serialization (pre-ECKPT2).

    Deliberately re-implemented here rather than imported: the point of
    the lock is that blobs with *this exact shape* — hex page keys, no
    magic, no ``storage_version`` field — keep parsing forever.
    """
    from repro.serde import pack

    return pack(
        {
            "image_name": ckpt.image_name,
            "code_id": ckpt.code_id,
            "mrenclave": ckpt.mrenclave,
            "sequence": ckpt.sequence,
            "pages": {f"{vaddr:x}": data for vaddr, data in ckpt.pages.items()},
            "tcs": [
                {"index": s.index, "cssa": s.cssa, "flag": s.local_flag}
                for s in ckpt.tcs_states
            ],
            "skipped": ckpt.skipped_pages,
        }
    )


class TestLegacyJsonFallback:
    """Regression lock for the pre-ECKPT2 read path.

    Checkpoints sealed before the binary format (and before the
    storage-handoff step added ``storage_version``) live in old journals
    and old snapshots; ``from_bytes`` must keep accepting them, with the
    absent storage field defaulting to 0 = "no storage constraint".
    """

    def test_legacy_blob_parses_with_default_storage_version(self):
        ckpt = make_checkpoint()
        again = EnclaveCheckpoint.from_bytes(_legacy_to_bytes(ckpt))
        assert again.pages == ckpt.pages
        assert again.tcs_states == ckpt.tcs_states
        assert again.skipped_pages == ckpt.skipped_pages
        assert again.sequence == ckpt.sequence
        assert again.mrenclave == ckpt.mrenclave
        assert again.storage_version == 0

    def test_legacy_sealed_envelope_opens(self):
        key = SymmetricKey(b"\x07" * 32, "legacy")
        from repro.crypto.authenc import seal_envelope

        env = seal_envelope(
            key, _legacy_to_bytes(make_checkpoint()), b"n" * 16, "aes",
            aad=b"enclave-ckpt",
        )
        assert open_checkpoint(key, env).sequence == 1

    def test_full_migration_over_legacy_serialization(self, testbed, monkeypatch):
        """A migration whose checkpoint travels in the legacy format must
        still restore and go live: the missing ``storage_version`` means
        the target skips the storage-freshness constraint, not that it
        refuses the blob."""
        monkeypatch.setattr(EnclaveCheckpoint, "to_bytes", _legacy_to_bytes)
        from repro.sdk import control

        app = build_counter_app(testbed, tag="legacy-wire")
        app.ecall_once(0, "incr", 9)
        app.library.control_call(control.storage_put, "note", "sealed rides along")
        result = MigrationOrchestrator(testbed).migrate_enclave(app)
        assert result.target_app.ecall_once(0, "read") == 9
        assert (
            result.target_app.library.control_call(control.storage_get, "note")
            == "sealed rides along"
        )


class TestTwoPhaseGeneration:
    def test_checkpoint_covers_all_readable_pages(self, testbed):
        app = build_counter_app(testbed, tag="cover")
        MigrationOrchestrator(testbed).checkpoint_enclave(app)
        result = app.library.last_checkpoint
        key_rt_pages = set(app.image.readable_reg_vaddrs())
        from repro.crypto.keys import SymmetricKey as SK

        # The checkpoint body length matches all readable REG pages.
        assert result.memory_bytes == len(key_rt_pages) * 4096

    def test_idle_workers_checkpoint_as_free(self, testbed):
        app = build_counter_app(testbed, tag="idle")
        MigrationOrchestrator(testbed).checkpoint_enclave(app)
        assert app.library.last_checkpoint.skipped_pages == 0

    def test_busy_worker_parks_before_dump(self, testbed):
        app = build_counter_app(
            testbed, tag="busy", workers=[WorkerSpec("slow_incr", args=5000, repeat=1)]
        )
        for _ in range(30):
            testbed.source_os.engine.step_round()
        orch = MigrationOrchestrator(testbed)
        orch.checkpoint_enclave(app)
        # The long-running worker was parked via AEX + handler: its TCS
        # must appear in the replay plan with CSSA 1 after restore.
        target = orch.build_virgin_target(app)
        orch.establish_channel(app, target)
        delivered = orch.transfer_checkpoint(app)
        orch.handoff_key(app, target)
        plan = orch.restore(target, delivered)
        assert plan == {0: 1}

    def test_sequence_increments_per_checkpoint(self, testbed):
        from repro.sdk import control

        app = build_counter_app(testbed, tag="seq")
        orch = MigrationOrchestrator(testbed)
        orch.checkpoint_enclave(app)
        first = app.library.last_checkpoint.sequence
        orch.cancel(app)
        orch.checkpoint_enclave(app)
        assert app.library.last_checkpoint.sequence == first + 1

    def test_unreadable_page_skipped(self, testbed):
        from tests.conftest import make_counter_program

        built = testbed.builder.build(
            "counter-wx",
            make_counter_program("wx"),
            n_workers=2,
            global_names=("counter",),
            add_unreadable_page=True,
        )
        testbed.owner.register_image(built)
        from repro.sdk.host import HostApplication

        app = HostApplication(
            testbed.source, testbed.source_os, built.image, workers=[], owner=testbed.owner
        ).launch()
        MigrationOrchestrator(testbed).checkpoint_enclave(app)
        # The §IV-B SGX v1 limitation: the W+X page cannot be dumped.
        assert app.library.last_checkpoint.skipped_pages == 1
