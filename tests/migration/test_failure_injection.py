"""Failure injection: the protocol under infrastructure misbehaviour.

The paper's threat model excludes DoS ("Such attacks are not introduced
by migration"), but the *mechanism* must still fail safe: a migration
that dies mid-way must leave a resumable source (before key handoff) or
a dead-but-consistent pair (after), never a forked or corrupted one.
"""

import pytest

from repro.errors import (
    AttestationError,
    ChannelError,
    MigrationError,
    QuoteRejected,
    SelfDestroyed,
)
from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk import control
from repro.sdk.host import WorkerSpec

from tests.conftest import build_counter_app


@pytest.fixture
def orch(testbed):
    return MigrationOrchestrator(testbed)


class TestNetworkFailureBeforePointOfNoReturn:
    def test_abort_after_checkpoint_source_resumes(self, testbed, orch):
        app = build_counter_app(
            testbed, tag="net1", workers=[WorkerSpec("slow_incr", args=150, repeat=1)]
        )
        for _ in range(30):
            testbed.source_os.engine.step_round()
        orch.checkpoint_enclave(app)
        # "Network dies" here: the operator cancels.
        orch.cancel(app)
        testbed.source_os.run_until(
            lambda: not [t for t in app.process.live_threads() if "worker" in t.name]
        )
        assert app.ecall_once(1, "read") == 150

    def test_abort_after_channel_source_resumes(self, testbed, orch):
        app = build_counter_app(testbed, tag="net2")
        app.ecall_once(0, "incr", 9)
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        orch.establish_channel(app, target)
        orch.cancel(app)  # key never left: cancellation is clean
        assert app.ecall_once(0, "read") == 9
        # A later, complete migration still works.
        result = orch.migrate_enclave(app)
        assert result.target_app.ecall_once(0, "read") == 9

    def test_orphaned_checkpoint_is_useless_after_cancel(self, testbed, orch):
        app = build_counter_app(testbed, tag="net3")
        orch.checkpoint_enclave(app)
        orphan = app.library.last_checkpoint.envelope.to_bytes()
        orch.cancel(app)  # "the source enclave will delete the K_migrate"
        # Even a *fully cooperative* target cannot open the orphan: the
        # only key that ever existed is gone.
        target = orch.build_virgin_target(app)
        from repro.errors import RestoreError

        with pytest.raises(RestoreError):
            target.library.control_call(control.target_restore_memory, orphan)


class TestFailureAfterPointOfNoReturn:
    def test_crash_after_key_release_leaves_no_second_chance(self, testbed, orch):
        """If the world ends between key release and restore, the source
        stays dead (single instance beats availability, by design)."""
        app = build_counter_app(testbed, tag="late")
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        orch.establish_channel(app, target)
        orch.transfer_checkpoint(app)
        app.library.control_call(control.source_release_key)
        # "Target machine explodes" — and the source cannot come back:
        with pytest.raises(SelfDestroyed):
            orch.cancel(app)
        with pytest.raises(SelfDestroyed):
            orch.checkpoint_enclave(app)


class TestServiceOutages:
    def test_ias_outage_blocks_channel_not_source(self, testbed, orch):
        app = build_counter_app(testbed, tag="ias")
        app.ecall_once(0, "incr", 4)
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        quote, dh = target.library.control_call(
            control.target_channel_request, testbed.target.quoting_enclave
        )
        # IAS "returns garbage" (an unverifiable AVR from some impostor).
        from repro.crypto.keys import KeyPair
        from repro.crypto.rsa import generate_rsa_keypair
        from repro.sgx.attestation import AttestationService
        from repro.sim.rng import DeterministicRng

        impostor = AttestationService(
            testbed.clock,
            testbed.costs,
            KeyPair(generate_rsa_keypair(DeterministicRng("impostor")), "fake-ias"),
        )
        impostor.register_platform(
            testbed.target.cpu.platform_id,
            testbed.target.quoting_enclave._attestation_key.public,
        )
        fake_avr = impostor.verify_quote(quote)
        with pytest.raises(Exception):
            app.library.control_call(control.source_open_channel, fake_avr, dh)
        # The source is unharmed and can cancel + keep serving.
        orch.cancel(app)
        assert app.ecall_once(0, "read") == 4

    def test_owner_outage_blocks_launch_only(self, testbed):
        """Without the owner, a new enclave cannot be provisioned — but
        migration of already-provisioned enclaves needs no owner at all."""
        app = build_counter_app(testbed, tag="owner-out")
        app.ecall_once(0, "incr", 2)
        # Owner "goes offline" — migration still completes end to end.
        testbed.owner._images.clear()
        result = MigrationOrchestrator(testbed).migrate_enclave(app)
        assert result.target_app.ecall_once(0, "read") == 2
