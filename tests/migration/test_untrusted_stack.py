"""P-6 (minimal TCB): the enclave catches a lying untrusted stack.

Every component outside the enclave — SGX library, guest OS, hypervisor,
operator tooling — is adversarial.  These tests replace pieces of the
restore path with hostile variants and check the in-enclave verification
(§III step-4, §IV-C) refuses to go live.
"""

import pytest

from repro.errors import CssaMismatch, IntegrityError, MigrationError, RestoreError
from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk import control
from repro.sdk.host import WorkerSpec
from repro.sgx import instructions as isa

from tests.conftest import build_counter_app, make_counter_program


@pytest.fixture
def orch(testbed):
    return MigrationOrchestrator(testbed)


def migrate_until_restore(testbed, orch, tag):
    """Run the protocol up to (not including) the restore step."""
    app = build_counter_app(
        testbed, tag=tag, workers=[WorkerSpec("slow_incr", args=500, repeat=1)]
    )
    for _ in range(40):
        testbed.source_os.engine.step_round()
    orch.checkpoint_enclave(app)
    target = orch.build_virgin_target(app)
    orch.establish_channel(app, target)
    delivered = orch.transfer_checkpoint(app)
    orch.handoff_key(app, target)
    return app, target, delivered


class TestLyingLibraryCssa:
    def test_skipped_replay_detected(self, testbed, orch):
        app, target, ckpt = migrate_until_restore(testbed, orch, "skip")
        plan = target.library.control_call(control.target_restore_memory, ckpt)
        assert plan  # there is something to replay
        # The library "forgets" to replay: step-4 must catch it.
        with pytest.raises(CssaMismatch):
            target.library.control_call(control.target_verify_and_finish, ckpt)

    def test_extra_replay_detected(self, testbed, orch):
        app, target, ckpt = migrate_until_restore(testbed, orch, "extra")
        plan = target.library.control_call(control.target_restore_memory, ckpt)
        inflated = {idx: cssa + 1 for idx, cssa in plan.items()}
        target.library.replay_cssa(inflated)
        with pytest.raises(CssaMismatch):
            target.library.control_call(control.target_verify_and_finish, ckpt)

    def test_replay_on_wrong_tcs_detected(self, testbed, orch):
        app, target, ckpt = migrate_until_restore(testbed, orch, "wrongtcs")
        plan = target.library.control_call(control.target_restore_memory, ckpt)
        assert plan == {0: 1}
        target.library.replay_cssa({1: 1})  # replays the idle worker instead
        with pytest.raises(CssaMismatch):
            target.library.control_call(control.target_verify_and_finish, ckpt)

    def test_honest_replay_passes(self, testbed, orch):
        app, target, ckpt = migrate_until_restore(testbed, orch, "honest")
        plan = target.library.control_call(control.target_restore_memory, ckpt)
        target.library.replay_cssa(plan)
        target.library.control_call(control.target_verify_and_finish, ckpt)  # no raise


class TestHostileRestoreInputs:
    def test_checkpoint_for_other_image_rejected(self, testbed, orch):
        app_a = build_counter_app(testbed, tag="img-a")
        app_b = build_counter_app(testbed, tag="img-b")
        orch.checkpoint_enclave(app_a)
        orch.checkpoint_enclave(app_b)
        target_b = orch.build_virgin_target(app_b)
        orch.establish_channel(app_b, target_b)
        orch.handoff_key(app_b, target_b)
        # Operator feeds B's enclave the checkpoint of A.
        ckpt_a = app_a.library.last_checkpoint.envelope.to_bytes()
        with pytest.raises((RestoreError, IntegrityError)):
            target_b.library.control_call(control.target_restore_memory, ckpt_a)

    def test_restore_without_key_rejected(self, testbed, orch):
        app = build_counter_app(testbed, tag="nokey")
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        ckpt = app.library.last_checkpoint.envelope.to_bytes()
        with pytest.raises(RestoreError):
            target.library.control_call(control.target_restore_memory, ckpt)

    def test_stale_checkpoint_sequence_rejected(self, testbed, orch):
        # Operator keeps checkpoint #1, cancels, then lets the enclave
        # checkpoint again (#2) and migrates — feeding the target the
        # stale #1 must fail even though both were sealed by the same
        # enclave: K_migrate is fresh per checkpoint.
        app = build_counter_app(testbed, tag="stale")
        orch.checkpoint_enclave(app)
        stale = app.library.last_checkpoint.envelope.to_bytes()
        orch.cancel(app)
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        orch.establish_channel(app, target)
        orch.handoff_key(app, target)
        with pytest.raises((RestoreError, IntegrityError)):
            target.library.control_call(control.target_restore_memory, stale)

    def test_tampered_immutable_page_rejected(self, testbed, orch):
        # A checkpoint claiming different *code* bytes must not restore:
        # immutable pages are verified against the measured virgin image.
        from repro.crypto.keys import SymmetricKey
        from repro.migration.checkpoint import open_checkpoint, seal_checkpoint

        app = build_counter_app(testbed, tag="immutable")
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        orch.establish_channel(app, target)
        orch.handoff_key(app, target)
        # Rebuild the envelope with a mutated read-only key page, sealed
        # under the *correct* key (a malicious enclave-author scenario is
        # out of scope; this models checkpoint forgery with a stolen key).
        session = isa.eenter(testbed.source.cpu, app.library.hw(), app.image.control_tcs.vaddr)
        rt = app.library._runtime(session)
        kmigrate = SymmetricKey(rt.load_obj("__channel__")["kmigrate"], "k")
        isa.eexit(session)
        ckpt = open_checkpoint(
            kmigrate, app.library.last_checkpoint.envelope
        )
        key_page = app.image.layout.key_page_vaddr
        ckpt.pages[key_page] = b"\xee" * 4096
        forged = seal_checkpoint(ckpt, kmigrate, b"m" * 16).to_bytes()
        with pytest.raises(RestoreError):
            target.library.control_call(control.target_restore_memory, forged)


class TestConfidentialityOnHost:
    def test_no_plaintext_key_in_untrusted_memory(self, testbed, orch):
        app = build_counter_app(testbed, tag="leak")
        result = orch.migrate_enclave(app)
        # Scrape everything the untrusted side ever saw.
        session = isa.eenter(
            testbed.target.cpu, result.target_app.library.hw(),
            result.target_app.image.control_tcs.vaddr,
        )
        rt = result.target_app.library._runtime(session)
        kmigrate = rt.load_obj("__channel__")["kmigrate"]
        isa.eexit(session)
        for record in testbed.network.log:
            assert kmigrate not in record.payload
        for value in app.process.shared_memory.values():
            blob = value.to_bytes() if hasattr(value, "to_bytes") else b""
            assert kmigrate not in blob
