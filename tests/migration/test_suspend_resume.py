"""Whole-VM suspend / resume (footnote 1, §V-C)."""

import pytest

from repro.errors import MigrationError
from repro.migration.suspend import VmSuspendManager

from tests.conftest import build_counter_app


class TestVmSuspendResume:
    def test_suspend_writes_image_and_pauses(self, testbed):
        app = build_counter_app(testbed, tag="susp")
        app.ecall_once(0, "incr", 5)
        manager = VmSuspendManager(testbed, [app])
        image = manager.suspend(reason="maintenance window")
        assert testbed.source_vm.paused
        assert image.size_bytes > image.ram_bytes  # snapshots included
        assert len(image.snapshots) == 1

    def test_resume_restores_every_enclave(self, testbed):
        apps = [build_counter_app(testbed, tag=f"susp{i}") for i in range(2)]
        for i, app in enumerate(apps):
            app.ecall_once(0, "incr", 10 * (i + 1))
        manager = VmSuspendManager(testbed, apps)
        image = manager.suspend(reason="overnight shutdown")
        resumed = manager.resume(image, reason="morning start")
        assert [a.ecall_once(0, "read") for a in resumed] == [10, 20]

    def test_double_suspend_rejected(self, testbed):
        app = build_counter_app(testbed, tag="susp2x")
        manager = VmSuspendManager(testbed, [app])
        manager.suspend(reason="first")
        with pytest.raises(MigrationError):
            manager.suspend(reason="second")

    def test_every_cycle_lands_in_the_audit_log(self, testbed):
        app = build_counter_app(testbed, tag="suspaudit")
        manager = VmSuspendManager(testbed, [app])
        image = manager.suspend(reason="audit me")
        manager.resume(image, reason="and me")
        operations = [e.operation for e in testbed.owner.audit_log]
        assert operations.count("snapshot") == 1
        assert operations.count("resume") == 1

    def test_image_resumable_twice_but_flagged(self, testbed):
        """Resuming one image twice is the rollback §V-C makes auditable."""
        app = build_counter_app(testbed, tag="susprb")
        manager = VmSuspendManager(testbed, [app])
        image = manager.suspend(reason="backup")
        manager.resume(image, reason="legit", on_target=True)
        manager.resume(image, reason="suspicious", on_target=False)
        assert len(testbed.owner.suspicious_rollbacks()) == 1

    def test_image_is_sealed(self, testbed):
        app = build_counter_app(testbed, tag="suspseal")
        app.ecall_once(0, "incr", 0xBEEF)
        manager = VmSuspendManager(testbed, [app])
        image = manager.suspend(reason="backup")
        for snapshot in image.snapshots:
            assert (0xBEEF).to_bytes(8, "little") not in snapshot.envelope.to_bytes()
