"""End-to-end enclave migration through the orchestrator."""

import pytest

from repro.errors import ChannelError, MigrationError, SelfDestroyed
from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk import control
from repro.sdk.host import WorkerSpec
from repro.sgx import instructions as isa

from tests.conftest import build_counter_app


@pytest.fixture
def orch(testbed):
    return MigrationOrchestrator(testbed)


def read_counter(app, index: int = 0):
    # Index 1 is used when worker 0's TCS may be busy with a long ecall.
    return app.ecall_once(index, "read")


class TestHappyPath:
    def test_state_moves_to_target(self, testbed, orch):
        app = build_counter_app(testbed, tag="happy")
        app.ecall_once(0, "incr", 41)
        result = orch.migrate_enclave(app)
        assert read_counter(result.target_app) == 41

    def test_target_keeps_working(self, testbed, orch):
        app = build_counter_app(testbed, tag="work")
        app.ecall_once(0, "incr", 1)
        target = orch.migrate_enclave(app).target_app
        assert target.ecall_once(0, "incr", 9) == 10

    def test_interrupted_worker_resumes_exactly(self, testbed, orch):
        app = build_counter_app(
            testbed, tag="midflight", workers=[WorkerSpec("slow_incr", args=400, repeat=1)]
        )
        for _ in range(40):
            testbed.source_os.engine.step_round()
        progress = read_counter(app, index=1)
        assert 0 < progress < 400  # genuinely mid-flight
        result = orch.migrate_enclave(app)
        assert result.replay_plan  # something was parked with CSSA > 0
        target = result.target_app
        testbed.target_os.run_until(
            lambda: not [t for t in target.process.live_threads() if "worker" in t.name]
        )
        assert read_counter(target, index=1) == 400  # no lost and no repeated work

    def test_same_measurement_both_sides(self, testbed, orch):
        app = build_counter_app(testbed, tag="mr")
        result = orch.migrate_enclave(app)
        source_mr = app.image.mrenclave
        assert result.target_app.library.hw().secs.mrenclave == source_mr

    def test_transfer_is_encrypted_on_the_wire(self, testbed, orch):
        app = build_counter_app(testbed, tag="wire")
        app.ecall_once(0, "incr", 0xDEAD)
        secret = (0xDEAD).to_bytes(8, "little")
        orch.migrate_enclave(app)
        for payload in testbed.network.captured("checkpoint"):
            assert secret not in payload

    def test_no_owner_involvement_during_migration(self, testbed, orch):
        app = build_counter_app(testbed, tag="noowner")
        audit_before = len(testbed.owner.audit_log)
        orch.migrate_enclave(app)
        assert len(testbed.owner.audit_log) == audit_before

    def test_checkpoint_bytes_reported(self, testbed, orch):
        app = build_counter_app(testbed, tag="bytes")
        result = orch.migrate_enclave(app)
        # The sealed blob must carry at least the raw bytes of the app's
        # ~22 readable pages (the compact v2 body ships pages raw, so the
        # envelope is only slightly larger than the page content itself).
        assert result.checkpoint_bytes > 22 * 4096
        assert result.transferred_bytes >= result.checkpoint_bytes


class TestSelfDestroy:
    def test_source_never_runs_again(self, testbed, orch):
        app = build_counter_app(testbed, tag="destroyed")
        orch.migrate_enclave(app)
        thread = testbed.source_os.spawn_thread(
            app.process, "zombie", app.library.ecall_body(0, "incr", 1)
        )
        for _ in range(300):
            testbed.source_os.engine.step_round()
        assert not thread.finished

    def test_second_checkpoint_refused(self, testbed, orch):
        app = build_counter_app(testbed, tag="twice")
        orch.migrate_enclave(app)
        with pytest.raises(SelfDestroyed):
            orch.checkpoint_enclave(app)

    def test_second_key_release_refused(self, testbed, orch):
        app = build_counter_app(testbed, tag="rekey")
        orch.migrate_enclave(app)
        with pytest.raises(SelfDestroyed):
            app.library.control_call(control.source_release_key)

    def test_global_flag_stays_set(self, testbed, orch):
        app = build_counter_app(testbed, tag="flag")
        orch.migrate_enclave(app)
        template = app.image.control_tcs
        session = isa.eenter(testbed.source.cpu, app.library.hw(), template.vaddr)
        rt = app.library._runtime(session)
        assert rt.global_flag() == 1
        isa.eexit(session)


class TestSingleChannel:
    def test_second_target_rejected(self, testbed, orch):
        app = build_counter_app(testbed, tag="single")
        orch.checkpoint_enclave(app)
        first = orch.build_virgin_target(app)
        second = orch.build_virgin_target(app)
        orch.establish_channel(app, first)
        with pytest.raises(ChannelError):
            orch.establish_channel(app, second)

    def test_key_requires_checkpoint(self, testbed, orch):
        app = build_counter_app(testbed, tag="nockpt")
        target = orch.build_virgin_target(app)
        orch.establish_channel(app, target)
        with pytest.raises(MigrationError):
            app.library.control_call(control.source_release_key)

    def test_key_requires_channel(self, testbed, orch):
        app = build_counter_app(testbed, tag="nochan")
        orch.checkpoint_enclave(app)
        with pytest.raises(ChannelError):
            app.library.control_call(control.source_release_key)

    def test_unprovisioned_source_cannot_open_channel(self, testbed, orch):
        app = build_counter_app(testbed, tag="unprov", provision=False)
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        with pytest.raises(ChannelError):
            orch.establish_channel(app, target)


class TestCancellation:
    def test_cancel_resumes_workers(self, testbed, orch):
        app = build_counter_app(
            testbed, tag="cancel", workers=[WorkerSpec("slow_incr", args=200, repeat=1)]
        )
        for _ in range(30):
            testbed.source_os.engine.step_round()
        orch.checkpoint_enclave(app)
        orch.cancel(app)
        testbed.source_os.run_until(
            lambda: not [t for t in app.process.live_threads() if "worker" in t.name],
            max_rounds=200_000,
        )
        assert read_counter(app, index=1) == 200  # the worker finished after cancel

    def test_cancel_deletes_kmigrate(self, testbed, orch):
        app = build_counter_app(testbed, tag="wipe")
        orch.checkpoint_enclave(app)
        envelope = app.library.last_checkpoint.envelope
        orch.cancel(app)
        template = app.image.control_tcs
        session = isa.eenter(testbed.source.cpu, app.library.hw(), template.vaddr)
        rt = app.library._runtime(session)
        channel = rt.load_obj("__channel__")
        assert "kmigrate" not in channel
        isa.eexit(session)

    def test_cancel_after_key_release_impossible(self, testbed, orch):
        app = build_counter_app(testbed, tag="toolate")
        orch.migrate_enclave(app)
        with pytest.raises(SelfDestroyed):
            orch.cancel(app)

    def test_migration_after_cancel_succeeds(self, testbed, orch):
        app = build_counter_app(testbed, tag="retry")
        app.ecall_once(0, "incr", 7)
        orch.checkpoint_enclave(app)
        orch.cancel(app)
        result = orch.migrate_enclave(app)
        assert read_counter(result.target_app) == 7
