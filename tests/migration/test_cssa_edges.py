"""CSSA replay edge cases (§IV-C).

A checkpoint can capture a worker at any interrupt-nesting depth: never
interrupted (CSSA 0), interrupted once and parked in the SDK exception
handler (CSSA 1), or with the handler itself interrupted (CSSA 2 — the
deepest state NSSA=3 can hold, since the last SSA frame must stay free
for the parked handler's own entry).  The target can only rebuild the
hardware counter by EENTER/AEX replay, and the control thread must
refuse to go live when the replayed depth disagrees with the checkpoint.
"""

from __future__ import annotations

import pytest

from repro.errors import CssaMismatch
from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk import control
from repro.sdk.runtime import FLAG_SPIN
from repro.sgx import instructions as isa

from tests.conftest import build_counter_app


def _park_worker_at_depth(app, worker_pos: int, depth: int) -> int:
    """Drive worker ``worker_pos`` to ``depth`` nested AEX frames, parked.

    Mirrors what the SDK library does when a timer interrupt lands during
    a migration: AEX the running ecall, re-enter on the handler path, and
    (for deeper nesting) AEX the handler too.  The final handler entry
    parks with FLAG_SPIN — the quiescent state the checkpoint records.
    Returns the worker's TCS index.
    """
    worker = app.image.worker_tcs(worker_pos)
    cpu, hw = app.machine.cpu, app.library.hw()

    session = isa.eenter(cpu, hw, worker.vaddr)
    rt = app.library._runtime(session)
    assert rt.entry_stub(worker.index) == "proceed"
    isa.aex(session, {"kind": "timer", "pc": 1})  # CSSA 0 -> 1

    for frame in range(1, depth):
        handler = isa.eenter(cpu, hw, worker.vaddr)
        hrt = app.library._runtime(handler)
        assert hrt.entry_stub(worker.index) == "handler"
        isa.aex(handler, {"kind": "timer", "pc": frame + 1})  # nest deeper

    # The last handler entry sees the migration and parks (§IV-B).
    handler = isa.eenter(cpu, hw, worker.vaddr)
    hrt = app.library._runtime(handler)
    assert hrt.entry_stub(worker.index) == "handler"
    assert hrt.cssa_eenter(worker.index) == depth
    hrt.set_local_flag(worker.index, FLAG_SPIN)
    isa.eexit(handler)
    return worker.index


class TestReplayDepths:
    def test_zero_aex_frames(self, testbed):
        """A never-interrupted enclave needs no replay at all."""
        app = build_counter_app(testbed, tag="cssa0")
        app.ecall_once(0, "incr", 2)
        result = MigrationOrchestrator(testbed).migrate_enclave(app)
        assert result.replay_plan == {}
        assert result.target_app.ecall_once(0, "read") == 2

    @pytest.mark.parametrize("depth", (1, 2))
    def test_nested_aex_frames_replayed_exactly(self, testbed, depth):
        """CSSA 1 (parked handler) and CSSA 2 (interrupted handler — the
        NSSA=3 maximum) survive migration: the checkpoint records the
        tracked depth and the target replays exactly that many frames."""
        app = build_counter_app(testbed, tag=f"cssa{depth}")
        app.ecall_once(1, "incr", 6)
        tcs_index = _park_worker_at_depth(app, worker_pos=0, depth=depth)

        result = MigrationOrchestrator(testbed).migrate_enclave(app)
        assert result.replay_plan == {tcs_index: depth}
        # The restored hardware counter matches the checkpointed depth.
        target_tcs = result.target_app.library.hw().tcs_at(
            result.target_app.image.worker_tcs(0).vaddr
        )
        assert target_tcs._cssa == depth
        # The untouched worker still serves (worker 0 is parked mid-ecall).
        assert result.target_app.ecall_once(1, "read") == 6

    def test_replay_depth_capped_by_nssa(self, testbed):
        """NSSA bounds the nesting: once every SSA frame holds an AEX
        context, the hardware refuses further entries — so no checkpoint
        can ever demand a replay deeper than NSSA."""
        app = build_counter_app(testbed, tag="cssa-max")
        worker = app.image.worker_tcs(0)
        cpu, hw = app.machine.cpu, app.library.hw()
        _park_worker_at_depth(app, worker_pos=0, depth=worker.nssa - 1)
        # Interrupt the last handler too: now all NSSA frames are used...
        last = isa.eenter(cpu, hw, worker.vaddr)
        isa.aex(last, {"kind": "timer"})
        from repro.errors import SgxInstructionFault

        # ...and the thread can never be entered again until ERESUME.
        with pytest.raises(SgxInstructionFault):
            isa.eenter(cpu, hw, worker.vaddr)


class TestReplayMismatch:
    def _restore_with_plan_mutation(self, testbed, mutate):
        """Run the protocol manually, mutating the replay plan before the
        library replays it; returns the final verify call."""
        app = build_counter_app(testbed, tag="cssa-bad")
        _park_worker_at_depth(app, worker_pos=0, depth=1)
        orch = MigrationOrchestrator(testbed)
        orch.checkpoint_enclave(app)
        target = orch.build_virgin_target(app)
        orch.establish_channel(app, target)
        blob = orch.transfer_checkpoint(app)
        orch.handoff_key(app, target)
        plan = target.library.control_call(control.target_restore_memory, blob)
        target.library.replay_cssa(mutate(dict(plan)))
        return lambda: target.library.control_call(
            control.target_verify_and_finish, blob
        )

    def test_under_replay_aborts_restore(self, testbed):
        """A lazy SGX library that skips the replay is caught in-enclave."""
        finish = self._restore_with_plan_mutation(testbed, lambda p: {})
        with pytest.raises(CssaMismatch):
            finish()

    def test_over_replay_aborts_restore(self, testbed):
        """One AEX too many and the tracked counter disagrees."""
        finish = self._restore_with_plan_mutation(
            testbed, lambda p: {k: v + 1 for k, v in p.items()}
        )
        with pytest.raises(CssaMismatch):
            finish()
