"""Migration on SGX v2: the W+X limitation disappears (§IV-B)."""

import pytest

from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk.host import HostApplication
from repro.sdk.program import AtomicEntry, EnclaveProgram
from repro.sgx.structures import PAGE_SIZE, Permissions


def build_wx_app(testbed, v2: bool):
    """An app whose enclave carries live state in a W+X page."""
    program = EnclaveProgram(f"tests/wx-{'v2' if v2 else 'v1'}-v1")

    def write_code(rt, args):
        # The enclave itself can write its W+X page (it has W) — think
        # JIT-generated code, the §IV-B scenario.
        wx = next(
            p.vaddr
            for p in rt.image.pages
            if Permissions.R not in p.sec_info.permissions
            and p.sec_info.page_type.value == "reg"
        )
        rt.write(wx, bytes(args))
        rt.store_global("wx_vaddr", wx)
        return wx

    program.add_entry("write_code", AtomicEntry(write_code))
    built = testbed.builder.build(
        f"wx-app-{'v2' if v2 else 'v1'}",
        program,
        n_workers=1,
        global_names=("wx_vaddr",),
        add_unreadable_page=True,
    )
    testbed.owner.register_image(built)
    app = HostApplication(
        testbed.source, testbed.source_os, built.image, [], owner=testbed.owner
    )
    app.launch()
    app.library.sgx_v2 = v2
    return app


class TestSgxV2Migration:
    def test_v1_skips_the_wx_page(self, testbed):
        app = build_wx_app(testbed, v2=False)
        app.ecall_once(0, "write_code", b"jitted-bytes-v1")
        MigrationOrchestrator(testbed).checkpoint_enclave(app)
        assert app.library.last_checkpoint.skipped_pages == 1

    def test_v2_migrates_the_wx_page(self, testbed):
        app = build_wx_app(testbed, v2=True)
        app.ecall_once(0, "write_code", b"jitted-bytes-v2")
        orch = MigrationOrchestrator(testbed)
        result = orch.migrate_enclave(app)
        assert app.library.last_checkpoint.skipped_pages == 0
        # The W+X content arrived on the target, permissions intact.
        target = result.target_app
        hw = target.library.hw()
        wx_vaddr = next(
            p.vaddr
            for p in app.image.pages
            if Permissions.R not in p.sec_info.permissions
            and p.sec_info.page_type.value == "reg"
        )
        assert hw.page_permissions(wx_vaddr) == Permissions.W | Permissions.X
        assert hw.hw_read(wx_vaddr, 15) == b"jitted-bytes-v2"

    def test_v2_restores_permissions_after_dump(self, testbed):
        app = build_wx_app(testbed, v2=True)
        app.ecall_once(0, "write_code", b"x")
        MigrationOrchestrator(testbed).checkpoint_enclave(app)
        wx_vaddr = next(
            p.vaddr
            for p in app.image.pages
            if Permissions.R not in p.sec_info.permissions
            and p.sec_info.page_type.value == "reg"
        )
        hw = app.library.hw()
        assert hw.page_permissions(wx_vaddr) == Permissions.W | Permissions.X
