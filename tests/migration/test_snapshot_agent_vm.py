"""Owner-keyed snapshots (§V-C), agent enclave (§VI-D), whole-VM migration."""

import pytest

from repro.errors import AttestationError, MigrationError, RestoreError
from repro.migration.agent import AgentService, build_agent_image
from repro.migration.snapshot import SnapshotManager
from repro.migration.testbed import build_testbed
from repro.migration.vm import VmMigrationManager, migrate_plain_vm
from repro.sdk import control
from repro.sdk.host import HostApplication, WorkerSpec
from repro.workloads.apps import build_app_image

from tests.conftest import build_counter_app


class TestSnapshot:
    def test_snapshot_resume_preserves_state(self, testbed):
        app = build_counter_app(testbed, tag="snap")
        app.ecall_once(0, "incr", 33)
        manager = SnapshotManager(testbed, testbed.owner)
        snapshot = manager.snapshot(app, reason="backup")
        resumed = manager.resume(snapshot, app, reason="restore")
        assert resumed.ecall_once(0, "read") == 33

    def test_source_keeps_running_after_snapshot(self, testbed):
        app = build_counter_app(testbed, tag="live")
        manager = SnapshotManager(testbed, testbed.owner)
        manager.snapshot(app, reason="backup")
        # Unlike migration, a snapshot is not a self-destroy event.
        assert app.ecall_once(0, "incr", 1) == 1

    def test_operations_audited(self, testbed):
        app = build_counter_app(testbed, tag="audit")
        manager = SnapshotManager(testbed, testbed.owner)
        snapshot = manager.snapshot(app, reason="why-1")
        manager.resume(snapshot, app, reason="why-2")
        operations = [e.operation for e in testbed.owner.audit_log]
        assert operations == ["snapshot", "resume"]
        assert testbed.owner.audit_log[0].sequence == snapshot.sequence

    def test_resume_without_prior_snapshot_rejected(self, testbed):
        app = build_counter_app(testbed, tag="norights")
        fresh = HostApplication(
            testbed.target, testbed.target_os, app.image, [], name="fresh"
        )
        fresh.library.launch(owner=None)
        quote, dh = fresh.library.control_call(
            control.owner_key_request, testbed.target.quoting_enclave, "resume"
        )
        with pytest.raises(AttestationError):
            testbed.owner.grant_resume_key(app.image.name, quote, dh, "sneaky")

    def test_double_resume_flagged(self, testbed):
        app = build_counter_app(testbed, tag="double")
        manager = SnapshotManager(testbed, testbed.owner)
        snapshot = manager.snapshot(app, reason="backup")
        manager.resume(snapshot, app, reason="one", on_target=True)
        manager.resume(snapshot, app, reason="two", on_target=False)
        assert len(testbed.owner.suspicious_rollbacks()) == 1

    def test_snapshot_sealed_with_owner_key(self, testbed):
        app = build_counter_app(testbed, tag="keyed")
        app.ecall_once(0, "incr", 0x5A5A)
        manager = SnapshotManager(testbed, testbed.owner)
        snapshot = manager.snapshot(app, reason="backup")
        assert (0x5A5A).to_bytes(8, "little") not in snapshot.envelope.to_bytes()


class TestAgentEnclave:
    def make(self, seed=300):
        tb = build_testbed(seed=seed)
        agent_built = build_agent_image(tb.builder)
        tb.owner.set_agent_image(agent_built)
        app = build_counter_app(tb, tag=f"agent{seed}")
        app.ecall_once(0, "incr", 12)
        agent = AgentService(tb, agent_built)
        return tb, app, agent

    def checkpoint(self, tb, app):
        from repro.migration.orchestrator import MigrationOrchestrator

        orch = MigrationOrchestrator(tb)
        orch.checkpoint_enclave(app)
        return orch

    def test_agent_path_end_to_end(self):
        tb, app, agent = self.make(301)
        orch = self.checkpoint(tb, app)
        agent.escrow_from(app)
        target = orch.build_virgin_target(app)
        agent.release_to(target)
        ckpt = app.library.last_checkpoint.envelope.to_bytes()
        plan = orch.restore(target, ckpt)
        target.respawn_after_restore(plan)
        assert target.ecall_once(0, "read") == 12

    def test_escrow_self_destroys_source(self):
        tb, app, agent = self.make(302)
        self.checkpoint(tb, app)
        agent.escrow_from(app)
        from repro.errors import SelfDestroyed

        with pytest.raises(SelfDestroyed):
            app.library.control_call(control.source_release_key)

    def test_single_release(self):
        tb, app, agent = self.make(303)
        orch = self.checkpoint(tb, app)
        agent.escrow_from(app)
        first = orch.build_virgin_target(app)
        second = orch.build_virgin_target(app)
        agent.release_to(first)
        with pytest.raises(MigrationError):
            agent.release_to(second)  # P-5: one instance only

    def test_release_requires_matching_measurement(self):
        tb, app, agent = self.make(304)
        self.checkpoint(tb, app)
        agent.escrow_from(app)
        other = build_counter_app(tb, tag="other-image")
        other_target = HostApplication(
            tb.target, tb.target_os, other.image, [], name="intruder"
        )
        other_target.library.launch(owner=None)
        with pytest.raises(MigrationError):
            agent.release_to(other_target)

    def test_escrow_requires_provisioned_agent_measurement(self):
        tb = build_testbed(seed=305)
        # Owner never declared an agent: source must refuse to escrow.
        agent_built = build_agent_image(tb.builder)
        tb.owner.register_image(agent_built)  # registered but NOT set_agent_image
        app = build_counter_app(tb, tag="agentless")
        from repro.migration.orchestrator import MigrationOrchestrator

        MigrationOrchestrator(tb).checkpoint_enclave(app)
        agent = AgentService(tb, agent_built)
        from repro.errors import ChannelError

        with pytest.raises(ChannelError):
            agent.escrow_from(app)


class TestVmMigration:
    def launch_apps(self, tb, n):
        apps = []
        for i in range(n):
            built = build_app_image(tb.builder, "cr4", flavor=f"vmtest{i}")
            tb.owner.register_image(built)
            apps.append(
                HostApplication(
                    tb.source, tb.source_os, built.image,
                    workers=[WorkerSpec("process", args=1, repeat=None)],
                    owner=tb.owner,
                ).launch()
            )
        for _ in range(30):
            tb.source_os.engine.step_round()
        return apps

    def test_plain_vm_baseline(self):
        tb = build_testbed(seed=310)
        report = migrate_plain_vm(tb)
        assert report.total_ns > 0
        assert report.prep_ns == 0

    def test_vm_with_enclaves_migrates_all(self):
        tb = build_testbed(seed=311)
        apps = self.launch_apps(tb, 3)
        result = VmMigrationManager(tb, apps).migrate()
        assert result.n_enclaves == 3
        assert len(result.enclave_results) == 3
        for enclave_result in result.enclave_results:
            assert enclave_result.target_app.ecall_once(1, "process", 2) > 0

    def test_enclaves_add_overhead_but_little(self):
        tb_base = build_testbed(seed=312)
        base = migrate_plain_vm(tb_base)
        tb = build_testbed(seed=312)
        apps = self.launch_apps(tb, 4)
        result = VmMigrationManager(tb, apps).migrate()
        assert result.report.total_ns >= base.total_ns
        overhead = (result.report.total_ns - base.total_ns) / base.total_ns
        assert overhead < 0.10  # "negligible" — paper reports 2-5%

    def test_downtime_includes_checkpointing(self):
        tb_base = build_testbed(seed=313)
        base = migrate_plain_vm(tb_base)
        tb = build_testbed(seed=313)
        apps = self.launch_apps(tb, 4)
        result = VmMigrationManager(tb, apps).migrate()
        assert result.report.downtime_ns > base.downtime_ns

    def test_agent_cuts_restore_time(self):
        tb = build_testbed(seed=314)
        apps = self.launch_apps(tb, 2)
        plain = VmMigrationManager(tb, apps).migrate()

        tb2 = build_testbed(seed=314)
        agent_built = build_agent_image(tb2.builder)
        tb2.owner.set_agent_image(agent_built)
        apps2 = self.launch_apps(tb2, 2)
        agent = AgentService(tb2, agent_built)
        fast = VmMigrationManager(tb2, apps2).migrate(agent=agent)
        assert fast.report.restore_ns < plain.report.restore_ns / 5
