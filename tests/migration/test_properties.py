"""Property-based tests of the migration invariants.

Hypothesis drives the enclave to random execution points and through
random protocol schedules; the invariants (state preservation, exactly-
once execution, single instance) must hold at every one of them.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.sdk.host import HostApplication, WorkerSpec

from tests.conftest import build_counter_app


@settings(max_examples=8, deadline=None)
@given(
    progress_rounds=st.integers(min_value=0, max_value=120),
    work_items=st.integers(min_value=1, max_value=300),
)
def test_migration_preserves_exactly_once_execution(progress_rounds, work_items):
    """However far the worker got before migration, the total work done
    across both machines is exactly ``work_items`` — nothing lost,
    nothing repeated (P-3 + P-4)."""
    tb = build_testbed(seed=f"prop-{progress_rounds}-{work_items}")
    app = build_counter_app(
        tb,
        tag=f"prop{progress_rounds}x{work_items}",
        workers=[WorkerSpec("slow_incr", args=work_items, repeat=1)],
    )
    for _ in range(progress_rounds):
        tb.source_os.engine.step_round()
    result = MigrationOrchestrator(tb).migrate_enclave(app)
    target = result.target_app
    tb.target_os.run_until(
        lambda: not [t for t in target.process.live_threads() if "worker" in t.name],
        max_rounds=1_000_000,
    )
    assert target.ecall_once(1, "read") == work_items


@settings(max_examples=6, deadline=None)
@given(increments=st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=8))
def test_migration_preserves_arbitrary_state(increments):
    """Any sequence of state mutations survives migration bit-exactly."""
    tb = build_testbed(seed=f"prop-state-{len(increments)}-{sum(increments)}")
    app = build_counter_app(tb, tag=f"state{len(increments)}x{sum(increments)}")
    for value in increments:
        app.ecall_once(0, "incr", value)
    result = MigrationOrchestrator(tb).migrate_enclave(app)
    assert result.target_app.ecall_once(0, "read") == sum(increments)


@settings(max_examples=5, deadline=None)
@given(n_chain=st.integers(min_value=2, max_value=3))
def test_state_survives_migration_chains(n_chain):
    """Migrate back and forth repeatedly; state is a fixed point.

    Each hop builds a fresh testbed pair but carries the enclave state
    through the full protocol, so the chain composes n migrations.
    """
    tb = build_testbed(seed=f"prop-chain-{n_chain}")
    app = build_counter_app(tb, tag=f"chain{n_chain}")
    app.ecall_once(0, "incr", 99)
    current = app
    orch = MigrationOrchestrator(tb)
    for hop in range(n_chain):
        result = orch.migrate_enclave(current)
        fresh = result.target_app
        assert fresh.ecall_once(0, "read") == 99
        # Next hop migrates "back": swap roles by rebuilding on source.
        if hop + 1 < n_chain:
            tb_next = build_testbed(seed=f"prop-chain-{n_chain}-{hop}")
            replay = build_counter_app(tb_next, tag=f"chain{n_chain}")
            replay.ecall_once(0, "incr", 99)
            orch = MigrationOrchestrator(tb_next)
            current = replay
