"""N-hop migration chains: role swaps, journal epochs, storage lineage.

The soak test is the PR's acceptance gate: ≥8 hops with crashes injected
at the storage-handoff boundaries, every hop healed in-protocol or by
journal recovery, and the workload's state — both enclave memory and the
sealed-storage namespace — intact at the far end.
"""

from __future__ import annotations

import os

import pytest

from repro.durability import wal
from repro.faults.plan import (
    FaultPlan,
    STEP_HANDOFF_KEY,
    STEP_HANDOFF_STORAGE,
)
from repro.migration.chain import hop_view, run_chain
from repro.sdk import control
from tests.conftest import build_counter_app

CHAIN_SEED = int(os.environ.get("FAULT_SEED", "23"))


class TestHopViews:
    def test_roles_swap_on_even_hops(self, testbed):
        odd, even = hop_view(testbed, 1), hop_view(testbed, 2)
        assert odd.source.name == "source" and odd.target.name == "target"
        assert even.source.name == "target" and even.target.name == "source"
        # Infrastructure is shared, not copied.
        assert odd.durable is testbed.durable
        assert even.network is testbed.network

    def test_hop_number_becomes_the_journal_epoch(self, testbed):
        view = hop_view(testbed, 3)
        assert view.wal_epoch == 3
        assert view.target.journal_epoch == 3
        assert wal.orchestrator_journal_name("img", 3) == "orchestrator/img@3"


class TestCleanChains:
    def test_two_hop_round_trip(self, testbed):
        app = build_counter_app(testbed, tag="round")
        app.ecall_once(0, "incr", 5)
        app.library.control_call(control.storage_put, "origin", "hop0")
        report = run_chain(testbed, app, hops=2)
        assert [h.outcome for h in report.hops] == ["migrated", "migrated"]
        final = report.final_app
        # Back on the original host with memory and storage intact.
        assert final.machine is testbed.source
        assert final.ecall_once(0, "read") == 5
        assert final.library.control_call(control.storage_get, "origin") == "hop0"

    def test_retired_host_serves_again(self, testbed):
        """Hop 2 re-imports onto the host retired at hop 1: the handoff
        counter passes the tombstone and the namespace is live again."""
        app = build_counter_app(testbed, tag="unretire")
        app.library.control_call(control.storage_put, "k", 1)
        run_chain(testbed, app, hops=2)
        ns = wal.storage_namespace("source", app.image.name)
        handoff = testbed.durable.counter(wal.storage_handoff_counter(ns))
        retired = testbed.durable.counter(wal.storage_retired_counter(ns))
        assert handoff > retired > 0


@pytest.mark.soak
class TestChainSoak:
    def test_eight_hops_with_crashes_at_handoff_boundaries(self, testbed):
        """≥8 hops; hops 2/4/6 crash a party at the storage- or key-
        handoff boundary.  Every crash must be healed (in-protocol retry,
        resumed-source re-drive, or journal recovery) and the workload's
        counter plus every sealed entry must survive end-to-end."""
        app = build_counter_app(testbed, tag="soak")
        app.ecall_once(0, "incr", 11)
        for n in range(3):
            app.library.control_call(control.storage_put, f"pre{n}", n)

        def plans(hop):
            if hop == 2:  # target dies mid storage handoff: retry heals
                return FaultPlan(seed=CHAIN_SEED).crash("target", STEP_HANDOFF_STORAGE)
            if hop == 4:  # source dies at the same boundary: recovery
                return FaultPlan(seed=CHAIN_SEED).crash("source", STEP_HANDOFF_STORAGE)
            if hop == 6:  # target dies while the key moves
                return FaultPlan(seed=CHAIN_SEED).crash("target", STEP_HANDOFF_KEY)
            return None

        report = run_chain(testbed, app, hops=8, plans=plans)
        assert len(report.hops) == 8
        assert report.crashes_healed >= 3, [h.outcome for h in report.hops]

        final = report.final_app
        assert final.machine is testbed.source  # even hop count: back home
        assert final.ecall_once(0, "read") == 11
        for n in range(3):
            assert final.library.control_call(control.storage_get, f"pre{n}") == n
        # The namespace still accepts writes after eight re-bindings.
        final.library.control_call(control.storage_put, "post", "alive")
        assert final.library.control_call(control.storage_get, "post") == "alive"
        testbed.monitor.assert_clean()

    def test_ten_hops_clean_keeps_versions_monotone(self, testbed):
        """A long clean chain: the committed version never regresses on
        either host even as the namespace is retired and revived."""
        app = build_counter_app(testbed, tag="long")
        app.library.control_call(control.storage_put, "w", 0)
        seen: list[int] = []

        def plans(hop):
            # No faults; ride along to sample the version after each hop.
            return None

        report = run_chain(testbed, app, hops=10, plans=plans)
        for hop_report in report.hops:
            machine = hop_report.app.machine.name
            ns = wal.storage_namespace(machine, app.image.name)
            seen.append(testbed.durable.counter(ns))
        assert seen == sorted(seen)
        assert report.recovered_hops == 0
