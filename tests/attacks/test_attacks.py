"""Security-property tests: every attack of §IV-A / §V-A / §VII-A.

These are the tests behind the DESIGN.md property table (P-1 … P-6).
"""

import pytest

from repro.attacks.consistency import run_consistency_scenario
from repro.attacks.fork import run_fork_scenario
from repro.attacks.replay import run_replay_scenario
from repro.attacks.rollback import run_rollback_scenario
from repro.attacks.tamper import run_tamper_scenario


class TestConsistencyAttack:
    """P-3: state consistency (§IV-A, Figure 3)."""

    def test_naive_checkpointer_is_broken_by_lying_scheduler(self):
        outcome = run_consistency_scenario("naive", malicious_scheduler=True)
        assert not outcome.consistent
        assert outcome.restored_sum != outcome.expected_sum

    def test_two_phase_survives_lying_scheduler(self):
        outcome = run_consistency_scenario("two-phase", malicious_scheduler=True)
        assert outcome.consistent

    def test_two_phase_survives_honest_scheduler_too(self):
        outcome = run_consistency_scenario("two-phase", malicious_scheduler=False)
        assert outcome.consistent

    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_attack_reproducible_across_seeds(self, seed):
        outcome = run_consistency_scenario("naive", malicious_scheduler=True, seed=seed)
        assert not outcome.consistent

    def test_unknown_checkpointer_rejected(self):
        with pytest.raises(ValueError):
            run_consistency_scenario("magic")


class TestForkAttack:
    """P-5: single instance (§V-A, Figure 6)."""

    def test_secure_protocol_blocks_every_avenue(self):
        outcome = run_fork_scenario("secure")
        assert not outcome.eve_got_mail
        assert "source-resume-spins-forever" in outcome.blocked_steps
        assert "second-checkpoint-refused" in outcome.blocked_steps
        assert "second-channel-refused" in outcome.blocked_steps

    def test_snapshot_fork_is_semantically_possible_but_audited(self):
        outcome = run_fork_scenario("forked")
        assert outcome.eve_got_mail  # the Figure 6 behaviour, verbatim
        assert outcome.audit_entries >= 2  # ...and fully on the record


class TestRollbackAttack:
    """P-4: state continuity (§V-A)."""

    def test_migration_cannot_reset_the_lock(self):
        outcome = run_rollback_scenario("migration")
        assert outcome.attempts_made == 3
        assert outcome.locked_after
        assert outcome.rollback_blocked

    def test_snapshot_rollback_is_audited_and_flagged(self):
        outcome = run_rollback_scenario("snapshot")
        assert outcome.extra_attempts_via_snapshots > 0
        assert outcome.resumes_logged == 2
        assert outcome.flagged_rollbacks >= 1


class TestReplayAttack:
    """§VII-A: 'Resending all the network packets ... cannot launch a
    replay attack successfully.'"""

    def test_all_replays_blocked(self):
        outcome = run_replay_scenario()
        assert outcome.all_blocked
        assert outcome.key_replay_error == "ChannelError"
        assert outcome.answer_replay_error == "SignatureError"
        assert outcome.checkpoint_replay_error


class TestTamperAttack:
    """P-2: state integrity."""

    def test_bit_flip_detected(self):
        assert run_tamper_scenario("flip").detected

    def test_truncation_detected(self):
        assert run_tamper_scenario("truncate").detected

    def test_control_case_untampered_succeeds(self):
        outcome = run_tamper_scenario("substitute")
        assert not outcome.detected  # delivery unchanged: must succeed
