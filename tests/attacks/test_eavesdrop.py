"""P-1 (confidentiality): a passive adversary learns nothing useful.

The cloud operator sees every byte on the wire, every byte in the
process's shared memory, and every evicted EPC page in normal RAM.
None of it may contain enclave plaintext — and what it does contain
(sizes, timings) is the §VII-A side-channel discussion, also pinned here.
"""

import pytest

from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.sdk.host import HostApplication, WorkerSpec
from repro.sgx import instructions as isa
from repro.workloads.mailserver import build_mailserver_image

SECRET_CONTENT = "EYES-ONLY-merger-plans-Q3"
SECRET_RECIPIENT = "ceo@example.com"


@pytest.fixture
def scenario():
    tb = build_testbed(seed=777)
    built = build_mailserver_image(tb.builder, flavor="eavesdrop")
    tb.owner.register_image(built)
    app = HostApplication(
        tb.source, tb.source_os, built.image,
        workers=[WorkerSpec("sent_log", repeat=0)], owner=tb.owner,
    ).launch()
    app.ecall_once(
        0, "create_mail", {"recipients": [SECRET_RECIPIENT], "content": SECRET_CONTENT}
    )
    return tb, app


def _all_wire_bytes(tb) -> bytes:
    return b"".join(record.payload for record in tb.network.log)


class TestEavesdropping:
    def test_secrets_never_on_the_wire(self, scenario):
        tb, app = scenario
        MigrationOrchestrator(tb).migrate_enclave(app)
        wire = _all_wire_bytes(tb)
        assert SECRET_CONTENT.encode() not in wire
        assert SECRET_RECIPIENT.encode() not in wire

    def test_secrets_not_in_host_shared_memory(self, scenario):
        tb, app = scenario
        MigrationOrchestrator(tb).migrate_enclave(app)
        for value in app.process.shared_memory.values():
            blob = value.to_bytes() if hasattr(value, "to_bytes") else str(value).encode()
            assert SECRET_CONTENT.encode() not in blob

    def test_secrets_not_in_evicted_pages(self, scenario):
        tb, app = scenario
        driver = tb.source_os.driver
        denc = driver._entry(app.library.enclave_id)
        # Evict every evictable page and inspect the sealed images.
        for vaddr in list(denc.hw.mapped_vaddrs()):
            if denc.hw.page_present(vaddr):
                try:
                    va_index, slot = driver._va_slot()
                    blob = isa.ewb(tb.source.cpu, denc.hw, vaddr, va_index, slot)
                except Exception:
                    continue
                assert SECRET_CONTENT.encode() not in blob.ciphertext
                isa.eldb(tb.source.cpu, denc.hw, blob, va_index, slot)
                driver._release_va_slot(va_index, slot)

    def test_checkpoint_size_is_the_acknowledged_leak(self, scenario):
        """§VII-A: "the attacker may get the size of stack and heap of an
        enclave" — the size is visible, the structure is not."""
        tb, app = scenario
        MigrationOrchestrator(tb).migrate_enclave(app)
        sizes = [len(p) for p in tb.network.captured("checkpoint")]
        assert sizes and all(s > 0 for s in sizes)  # size leaks...
        wire = b"".join(tb.network.captured("checkpoint"))
        assert b"recipients" not in wire  # ...structure does not

    def test_whole_memory_padding_mitigation(self):
        """§VII-A's mitigation: dump whole memory so size reflects the
        layout (fixed at build time), not the runtime heap usage."""
        tb = build_testbed(seed=778)
        built = build_mailserver_image(tb.builder, flavor="pad")
        tb.owner.register_image(built)
        sizes = []
        for fill in (1, 40):
            app = HostApplication(
                tb.source, tb.source_os, built.image, [], owner=tb.owner,
                name=f"pad-{fill}",
            ).launch()
            for i in range(fill):
                app.ecall_once(0, "create_mail", {"recipients": ["a"], "content": "m" * 10})
            MigrationOrchestrator(tb).checkpoint_enclave(app)
            sizes.append(app.library.last_checkpoint.envelope.size)
        # Our control thread already dumps the full readable layout, so
        # a 40x difference in live data gives byte-identical sizes.
        assert sizes[0] == sizes[1]
