"""The cross-migration attack matrix: every attack refused, typed.

Four adversaries aim at the sealed-storage handoff; the contract is
zero silent successes — each attack must end with a typed
:class:`~repro.errors.SealedStorageError` subclass naming the refusal,
and the legitimate instance's state must be intact afterwards.
"""

from __future__ import annotations

import pytest

from repro.attacks.crossmig import (
    CROSS_MIGRATION_ATTACKS,
    run_counter_fork_attack,
    run_cross_migration_matrix,
    run_handoff_replay_attack,
    run_stale_checkpoint_attack,
    run_storage_rollback_attack,
)

EXPECTED_REFUSALS = {
    "storage-rollback": "StorageRolledBack",
    "counter-fork": "StorageRetired",
    "stale-checkpoint": "StorageRolledBack",
    "handoff-replay": "HandoffReplayed",
}


class TestAttackMatrix:
    def test_every_attack_is_blocked_with_a_typed_refusal(self):
        outcomes = run_cross_migration_matrix(seed=40)
        assert {o.attack for o in outcomes} == set(CROSS_MIGRATION_ATTACKS)
        for outcome in outcomes:
            assert outcome.blocked, (
                f"{outcome.attack} succeeded silently: {outcome.detail}"
            )
            assert outcome.refusal == EXPECTED_REFUSALS[outcome.attack], outcome
            assert outcome.state_intact, (
                f"{outcome.attack} damaged legitimate state"
            )

    @pytest.mark.parametrize("seed", [40, 77])
    def test_matrix_holds_across_seeds(self, seed):
        outcomes = run_cross_migration_matrix(seed=seed)
        assert all(o.blocked for o in outcomes)


class TestIndividualAttacks:
    def test_storage_rollback_refused_after_round_trip(self):
        out = run_storage_rollback_attack(seed="unit/rollback")
        assert out.blocked and out.refusal == "StorageRolledBack"
        assert "stale" in out.detail or "rolled" in out.detail.lower()

    def test_counter_fork_via_resumed_source(self):
        """A fresh instance launched on the retired source host must be
        refused on both read *and* write, and the real lineage must
        survive a later hop back onto that host."""
        out = run_counter_fork_attack(seed="unit/fork")
        assert out.blocked and out.refusal == "StorageRetired"
        assert out.state_intact

    def test_stale_checkpoint_restore_refused(self):
        """An orchestrator that withholds the storage handoff delivers a
        checkpoint bound to a storage version the target never saw: the
        target refuses to go live."""
        out = run_stale_checkpoint_attack(seed="unit/stale")
        assert out.blocked and out.refusal == "StorageRolledBack"
        assert "storage version" in out.detail

    def test_handoff_replay_refused_inside_the_session(self):
        out = run_handoff_replay_attack(seed="unit/replay")
        assert out.blocked and out.refusal == "HandoffReplayed"
        assert out.state_intact
