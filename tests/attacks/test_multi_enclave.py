"""§VII-A: VM-wide consistency across interrelated enclaves."""

import pytest

from repro.attacks.multi_enclave import TOTAL, run_multi_enclave_scenario


class TestMultiEnclaveConsistency:
    def test_composed_checkpoint_is_consistent(self):
        outcome = run_multi_enclave_scenario()
        assert outcome.consistent
        assert outcome.total_after == TOTAL

    @pytest.mark.parametrize("n_transfers", [0, 1, 12])
    def test_consistency_independent_of_transfer_count(self, n_transfers):
        outcome = run_multi_enclave_scenario(seed=62 + n_transfers, n_transfers=n_transfers)
        assert outcome.consistent
