"""Record-driven enclave rebuild on the target guest OS (§VI-D)."""

import pytest

from tests.conftest import build_counter_app


class TestRebuildFromRecords:
    def test_live_enclaves_rebuilt_destroyed_skipped(self, testbed):
        apps = [build_counter_app(testbed, tag=f"rec{i}") for i in range(3)]
        source_driver = testbed.source_os.driver
        source_driver.destroy_enclave(apps[1].library.enclave_id)

        target_driver = testbed.target_os.driver
        mapping = target_driver.rebuild_from_records(source_driver.records)
        assert set(mapping) == {
            apps[0].library.enclave_id,
            apps[2].library.enclave_id,
        }
        assert len(target_driver.live_enclave_ids()) == 2

    def test_rebuilt_enclaves_measure_identically(self, testbed):
        app = build_counter_app(testbed, tag="recmr")
        source_driver = testbed.source_os.driver
        mapping = testbed.target_os.driver.rebuild_from_records(source_driver.records)
        new_id = mapping[app.library.enclave_id]
        rebuilt = testbed.target_os.driver.hw(new_id)
        assert rebuilt.secs.mrenclave == app.library.hw().secs.mrenclave

    def test_rebuilt_enclaves_are_virgin(self, testbed):
        app = build_counter_app(testbed, tag="recvirgin")
        app.ecall_once(0, "incr", 42)
        mapping = testbed.target_os.driver.rebuild_from_records(
            testbed.source_os.driver.records
        )
        new_id = mapping[app.library.enclave_id]
        rebuilt = testbed.target_os.driver.hw(new_id)
        # Runtime state did not travel with the image: the counter page
        # in the virgin rebuild is zero.
        slot = app.image.layout.global_slot("counter")
        assert rebuilt.hw_read(slot, 8) == b"\x00" * 8

    def test_rebuild_order_matches_creation_order(self, testbed):
        apps = [build_counter_app(testbed, tag=f"recorder{i}") for i in range(3)]
        mapping = testbed.target_os.driver.rebuild_from_records(
            testbed.source_os.driver.records
        )
        source_order = [a.library.enclave_id for a in apps]
        rebuilt_order = [mapping[i] for i in source_order]
        assert rebuilt_order == sorted(rebuilt_order)
