"""Guest OS: scheduler honesty, SGX driver LRU, kernel migration prep."""

import pytest

from repro.errors import GuestOsError, NoSuchEnclave
from repro.guestos.kernel import GuestOs
from repro.guestos.process import SIGUSR1
from repro.machine import Machine
from repro.sdk.host import HostApplication, WorkerSpec
from repro.sgx.structures import PAGE_SIZE
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace

from tests.conftest import build_counter_app, make_counter_program


class TestScheduler:
    def test_honest_scheduler_really_stops(self, testbed):
        os = testbed.source_os
        process = os.spawn_process("app")

        def spin():
            while True:
                yield 100
        victim = os.spawn_thread(process, "victim", spin())
        requester = os.spawn_thread(process, "requester", iter([]))
        assert os.scheduler.stop_other_threads(process, requester)
        before = victim.steps_run
        for _ in range(20):
            os.engine.step_round()
        assert victim.steps_run == before

    def test_malicious_scheduler_lies(self):
        from repro.migration.testbed import build_testbed

        tb = build_testbed(seed=7, malicious_scheduler=True)
        os = tb.source_os
        process = os.spawn_process("app")

        def spin():
            while True:
                yield 100
        victim = os.spawn_thread(process, "victim", spin())
        requester = os.spawn_thread(process, "requester", iter([]))
        assert os.scheduler.stop_other_threads(process, requester)  # "OK"
        for _ in range(20):
            os.engine.step_round()
        assert victim.steps_run > 0  # ...but the thread kept running

    def test_resume_threads(self, testbed):
        os = testbed.source_os
        process = os.spawn_process("app")
        thread = os.spawn_thread(process, "t", iter([100, 100]))
        requester = os.spawn_thread(process, "r", iter([]))
        os.scheduler.stop_other_threads(process, requester)
        os.scheduler.resume_threads(process)
        os.run_until(lambda: thread.finished)


class TestSgxDriver:
    def test_create_and_destroy(self, testbed):
        app = build_counter_app(testbed, tag="drv1")
        driver = testbed.source_os.driver
        assert app.library.enclave_id in driver.live_enclave_ids()
        driver.destroy_enclave(app.library.enclave_id)
        assert app.library.enclave_id not in driver.live_enclave_ids()
        with pytest.raises(NoSuchEnclave):
            driver.hw(app.library.enclave_id)

    def test_destroy_frees_quota(self, testbed):
        driver = testbed.source_os.driver
        used_before = testbed.source_vm.vepc.used_pages
        app = build_counter_app(testbed, tag="drv2")
        assert testbed.source_vm.vepc.used_pages > used_before
        driver.destroy_enclave(app.library.enclave_id)
        assert testbed.source_vm.vepc.used_pages == used_before

    def test_records_track_lifecycle(self, testbed):
        driver = testbed.source_os.driver
        app = build_counter_app(testbed, tag="drv3")
        record = next(r for r in driver.records if r.enclave_id == app.library.enclave_id)
        assert not record.destroyed
        driver.destroy_enclave(app.library.enclave_id)
        assert record.destroyed

    def test_refuses_enclaves_while_migrating(self, testbed):
        testbed.source_os.driver.refuse_new_enclaves = True
        with pytest.raises(GuestOsError):
            build_counter_app(testbed, tag="drv4")

    def test_lru_eviction_under_pressure(self):
        from repro.migration.testbed import build_testbed

        # Tiny vEPC: a single enclave (dozens of pages) cannot fit.
        tb = build_testbed(seed=8, vepc_pages=24)
        app = build_counter_app(tb, tag="small")
        driver = tb.source_os.driver
        assert tb.trace.counter("driver.evictions") > 0
        # The enclave still works: faults reload evicted pages.
        assert app.ecall_once(0, "incr", 5) == 5
        assert driver.page_fault_count > 0

    def test_fault_on_resident_page_rejected(self, testbed):
        app = build_counter_app(testbed, tag="drv5")
        with pytest.raises(GuestOsError):
            testbed.source_os.driver.handle_page_fault(
                app.library.enclave_id, app.image.layout.base
            )


class TestKernelMigrationPrep:
    def test_signal_delivery_requires_handler(self, testbed):
        os = testbed.source_os
        process = os.spawn_process("plain")
        with pytest.raises(GuestOsError):
            os.deliver_signal(process, SIGUSR1)

    def test_on_migration_notify_prepares_all_enclaves(self, testbed):
        apps = [build_counter_app(testbed, tag=f"prep{i}") for i in range(3)]
        testbed.source_os.on_migration_notify()
        assert testbed.source_os.enclaves_ready()
        for app in apps:
            assert app.library.last_checkpoint is not None
        assert testbed.source.hypervisor.migration_ready(testbed.source_vm)

    def test_notify_sets_migration_mode(self, testbed):
        build_counter_app(testbed, tag="mode")
        testbed.source_os.on_migration_notify()
        assert testbed.source_os.migrating
        assert testbed.source_os.driver.refuse_new_enclaves
        testbed.source_os.end_migration()
        assert not testbed.source_os.migrating

    def test_checkpoints_parked_in_vm_memory(self, testbed):
        build_counter_app(testbed, tag="park")
        extra_before = testbed.source_vm.memory.extra_bytes
        testbed.source_os.on_migration_notify()
        assert testbed.source_vm.memory.extra_bytes > extra_before

    def test_notify_with_no_enclaves_is_immediate(self, testbed):
        testbed.source_os.on_migration_notify()
        assert testbed.source.hypervisor.migration_ready(testbed.source_vm)
