"""Exception hierarchy contracts.

Callers catch at documented granularities; these tests freeze the
hierarchy so a refactor cannot silently break error handling.
"""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SgxError,
            errors.CryptoError,
            errors.MigrationError,
            errors.GuestOsError,
            errors.HypervisorError,
            errors.AttestationError,
        ],
    )
    def test_all_families_are_repro_errors(self, exc):
        assert issubclass(exc, errors.ReproError)

    @pytest.mark.parametrize(
        "exc",
        [
            errors.SgxAccessFault,
            errors.SgxInstructionFault,
            errors.SgxMacMismatch,
            errors.SgxVersionMismatch,
            errors.SgxEpcExhausted,
            errors.EnclavePageFault,
        ],
    )
    def test_hardware_faults_are_sgx_errors(self, exc):
        assert issubclass(exc, errors.SgxError)

    @pytest.mark.parametrize(
        "exc",
        [
            errors.MigrationAborted,
            errors.ChannelError,
            errors.SelfDestroyed,
            errors.ConsistencyViolation,
            errors.RestoreError,
            errors.CssaMismatch,
        ],
    )
    def test_protocol_failures_are_migration_errors(self, exc):
        assert issubclass(exc, errors.MigrationError)

    def test_cssa_mismatch_is_a_restore_error(self):
        # Step-4 failures are a species of restore failure.
        assert issubclass(errors.CssaMismatch, errors.RestoreError)

    def test_integrity_and_signature_are_crypto_errors(self):
        assert issubclass(errors.IntegrityError, errors.CryptoError)
        assert issubclass(errors.SignatureError, errors.CryptoError)

    def test_page_fault_carries_address(self):
        fault = errors.EnclavePageFault(0x1234000)
        assert fault.vaddr == 0x1234000
        assert "0x1234000" in str(fault)

    def test_sgx_errors_are_not_migration_errors(self):
        # Distinct families: a hardware fault must never be swallowed by
        # a protocol-level handler (and vice versa).
        assert not issubclass(errors.SgxAccessFault, errors.MigrationError)
        assert not issubclass(errors.ChannelError, errors.SgxError)
