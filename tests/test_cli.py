"""The command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "repro.migration" in out
        assert "§VII-B" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "migrated" in out
        assert "MRENCLAVE" in out

    def test_attack_consistency(self, capsys):
        assert main(["attack", "consistency"]) == 0
        out = capsys.readouterr().out
        assert "TORN" in out
        assert "CONSISTENT" in out

    def test_attack_tamper(self, capsys):
        assert main(["attack", "tamper"]) == 0
        out = capsys.readouterr().out
        assert "detected=True" in out

    def test_vm_baseline(self, capsys):
        assert main(["vm", "--enclaves", "0", "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "downtime" in out

    def test_vm_with_enclaves(self, capsys):
        assert main(["vm", "--enclaves", "2", "--seed", "cli-test-2"]) == 0
        out = capsys.readouterr().out
        assert "checkpointing" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            main(["attack", "voodoo"])
