"""The command-line interface."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_inventory(self, capsys):
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "repro.migration" in out
        assert "§VII-B" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "migrated" in out
        assert "MRENCLAVE" in out

    def test_attack_consistency(self, capsys):
        assert main(["attack", "consistency"]) == 0
        out = capsys.readouterr().out
        assert "TORN" in out
        assert "CONSISTENT" in out

    def test_attack_tamper(self, capsys):
        assert main(["attack", "tamper"]) == 0
        out = capsys.readouterr().out
        assert "detected=True" in out

    def test_vm_baseline(self, capsys):
        assert main(["vm", "--enclaves", "0", "--seed", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "downtime" in out

    def test_vm_with_enclaves(self, capsys):
        assert main(["vm", "--enclaves", "2", "--seed", "cli-test-2"]) == 0
        out = capsys.readouterr().out
        assert "checkpointing" in out

    def test_faults_no_plan(self, capsys):
        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "COMPLETED" in out
        assert "(none)" in out  # no faults fired

    def test_faults_survivable_plan(self, capsys):
        assert main(["faults", "--plan", "drop:kmigrate,corrupt:checkpoint-chunk:2"]) == 0
        out = capsys.readouterr().out
        assert "COMPLETED" in out
        assert "drop" in out and "corrupt" in out

    def test_faults_fatal_plan_exits_nonzero(self, capsys):
        assert main(["faults", "--plan", "crash:target:restore"]) == 1
        out = capsys.readouterr().out
        assert "ABORTED" in out
        assert "'aborts': 1" in out

    def test_faults_unchunked(self, capsys):
        assert main(["faults", "--chunk-bytes", "0"]) == 0
        assert "COMPLETED" in capsys.readouterr().out

    def test_faults_bad_plan_rejected(self):
        with pytest.raises(SystemExit):
            main(["faults", "--plan", "explode:everything"])

    def test_faults_reference_comparison(self, capsys):
        """A survivable plan must also *match* the fault-free reference."""
        assert main(["faults", "--plan", "delay:kmigrate"]) == 0
        out = capsys.readouterr().out
        assert "DIVERGED" not in out
        assert "COMPLETED" in out

    def test_recover_crash_point(self, capsys):
        assert main(["recover", "--plan", "crash-record:target:2"]) == 0
        out = capsys.readouterr().out
        assert "recovery: completed" in out
        assert "invariants: CLEAN" in out

    def test_recover_spent_source_stays_spent(self, capsys):
        assert main(["recover", "--plan", "crash-record:source:3"]) == 0
        out = capsys.readouterr().out
        assert "live instances: 0" in out
        assert "invariants: CLEAN" in out

    def test_recover_crash_pair_redrives(self, capsys):
        """A second crash inside recovery re-drives instead of refusing."""
        assert main(["recover", "--plan", "crash-record:source:2+source:3"]) == 0
        out = capsys.readouterr().out
        assert "crash during recovery (re-driving)" in out
        assert "invariants: CLEAN" in out

    def test_recover_crash_pair_json_counts_drives(self, capsys):
        assert main(
            ["recover", "--plan", "crash-record:source:2+source:3", "--json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["recoveries"] == 2
        assert report["crashes_in_recovery"]
        assert report["invariants_clean"] is True

    def test_recover_requires_crash_record_fault(self):
        with pytest.raises(SystemExit):
            main(["recover", "--plan", "drop:kmigrate"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_attack_rejected(self):
        with pytest.raises(SystemExit):
            main(["attack", "voodoo"])


class TestTelemetryCli:
    def test_trace_chrome_is_valid_and_matches_downtime(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        prom_path = tmp_path / "metrics.prom"
        assert main(["trace", "--format", "chrome", "--out", str(trace_path)]) == 0
        assert main(["metrics", "--out", str(prom_path)]) == 0
        doc = json.loads(trace_path.read_text())
        (stop_and_copy,) = [
            e
            for e in doc["traceEvents"]
            if e.get("ph") == "X" and e["name"] == "migration.stop_and_copy"
        ]
        downtime_line = next(
            line
            for line in prom_path.read_text().splitlines()
            if line.startswith("migration_downtime_ns ")
        )
        downtime_ns = int(downtime_line.split()[-1])
        assert stop_and_copy["dur"] * 1_000 == downtime_ns
        assert downtime_ns > 0

    def test_trace_report_format(self, capsys):
        assert main(["trace", "--format", "report"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["figures"]["downtime_ns"] > 0
        assert report["per_phase_ns"]["stop-and-copy"] > 0

    def test_trace_jsonl_format(self, capsys):
        assert main(["trace", "--format", "jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_metrics_json_format(self, capsys):
        assert main(["metrics", "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["migration.completed_total"] == 1

    def test_metrics_require_present(self, capsys):
        assert main(["metrics", "--require", "migration.downtime_ns"]) == 0

    def test_metrics_require_missing_fails(self, capsys):
        assert main(["metrics", "--require", "no.such.metric"]) == 1
        assert "absent or zero" in capsys.readouterr().out

    def test_faults_json_report(self, capsys):
        assert main(["faults", "--plan", "drop:kmigrate", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["outcome"] == "completed"
        assert report["counter"] == report["reference_counter"]
        assert report["timeline"]["figures"]["downtime_ns"] > 0

    def test_faults_json_abort_exit_code(self, capsys):
        assert main(["faults", "--plan", "crash:target:restore", "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["outcome"] == "aborted"
        assert report["stats"]["aborts"] == 1

    def test_recover_json_report(self, capsys):
        assert main(["recover", "--plan", "crash-record:target:2", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["outcome"] == "completed"
        assert report["invariants_clean"] is True
        assert report["live_instances"] == 1


class TestExplainCli:
    def test_explain_text_report(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "migration critical path" in out
        assert "100.0%" in out
        assert "migration.stop_and_copy" in out

    def test_explain_json_is_deterministic(self, capsys):
        assert main(["explain", "--format", "json"]) == 0
        first = capsys.readouterr().out
        assert main(["explain", "--format", "json"]) == 0
        second = capsys.readouterr().out
        assert first == second
        report = json.loads(first)
        for anchor in (report["total"], report["downtime"]):
            assert anchor["attributed_ns"] == anchor["total_ns"]

    def test_explain_chrome_overlay(self, capsys, tmp_path):
        out_path = tmp_path / "explain.json"
        assert main(["explain", "--format", "chrome", "--out", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert any(
            e.get("ph") == "X" and e.get("cat") == "critical-path"
            for e in doc["traceEvents"]
        )

    def test_explain_require_blame_present(self, capsys):
        assert main(["explain", "--require-blame", "stop_and_copy"]) == 0

    def test_explain_require_blame_missing_fails(self, capsys):
        assert main(["explain", "--require-blame", "no-such-unit"]) == 1
        assert "not on any blame path" in capsys.readouterr().out

    def test_explain_dot_export(self, capsys, tmp_path):
        out_path = tmp_path / "dag.dot"
        assert main(["explain", "--format", "dot", "--out", str(out_path)]) == 0
        dot = out_path.read_text()
        assert dot.startswith("digraph migration {")
        assert "cluster_" in dot  # party clusters
        assert "->" in dot
        assert dot.rstrip().endswith("}")

    def test_explain_text_shows_counterfactuals(self, capsys):
        assert main(["explain"]) == 0
        out = capsys.readouterr().out
        assert "counterfactuals" in out

    def test_explain_json_carries_counterfactuals(self, capsys):
        assert main(["explain", "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        entries = report["counterfactuals"]
        assert entries
        top = entries[0]
        # "if <unit> were free, downtime = downtime - saved"
        assert top["downtime_ns"] == report["downtime"]["total_ns"] - top["saved_ns"]


class TestObservabilityCli:
    def test_snapshot_and_diff_round_trip(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        assert main(["snapshot", "seed=1,label=base", "--out", str(base)]) == 0
        capsys.readouterr()
        assert main(["diff", str(base), "seed=1"]) == 0
        out = capsys.readouterr().out
        assert "downtime unchanged" in out

    def test_diff_attributes_journal_perturbation(self, capsys):
        assert (
            main(
                [
                    "diff", "seed=1", "seed=1,journal-cost-ns=524000",
                    "--attribute", "journal.commit",
                    "--min-attributed-share", "80",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "journal.commit" in out
        assert "downtime +" in out

    def test_diff_attribution_gate_fails_on_wrong_unit(self, capsys):
        assert (
            main(
                [
                    "diff", "seed=1", "seed=1,journal-cost-ns=524000",
                    "--attribute", "establish-channel",
                    "--min-attributed-share", "80",
                ]
            )
            == 1
        )
        assert "below the required" in capsys.readouterr().out

    def test_diff_markdown_format(self, capsys):
        assert (
            main(
                [
                    "diff", "seed=1", "seed=1,journal-cost-ns=524000",
                    "--format", "markdown",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert out.lstrip().startswith("### repro diff")
        assert "| downtime contributor |" in out

    def test_profile_folded_deterministic(self, capsys):
        assert main(["profile"]) == 0
        first = capsys.readouterr().out
        assert main(["profile"]) == 0
        assert capsys.readouterr().out == first
        assert "migration.run" in first
        # folded line shape: frames;joined;by;semicolons <weight>
        line = next(l for l in first.splitlines() if "journal.commit" in l)
        frames, weight = line.rsplit(" ", 1)
        assert int(weight) > 0

    def test_profile_json_format(self, capsys):
        assert main(["profile", "--format", "json", "--interval-ns", "50000"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["interval_ns"] == 50000
        assert payload["sample_count"] > 0
        assert payload["total_weight_ns"] > 0


class TestFleetCli:
    def test_fleet_runs_and_prints_snapshot(self, capsys):
        assert main(["fleet", "--n", "2", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2/2 done (0 failed, 0 faulted)" in out
        assert "downtime: p50 " in out
        assert "throughput: " in out

    def test_fleet_json_report_is_deterministic(self, capsys):
        argv = ["fleet", "--n", "3", "--seeds", "1,2", "--fault-every", "3", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["n"] == 3
        assert len(payload["records"]) == 3
        assert payload["records"][0]["faulted"] is True
        fired = payload["slo"]["violations"]
        assert any(v["objective"] == "downtime-budget" for v in fired)

    def test_fleet_watch_emits_frames(self, capsys):
        assert main(
            ["fleet", "--n", "4", "--seeds", "1", "--watch", "--frame-every", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "--- frame 1 ---" in out
        assert "--- frame 2 ---" in out

    def test_fleet_writes_artifacts(self, capsys, tmp_path):
        console_path = tmp_path / "console.txt"
        otlp_dir = tmp_path / "otlp"
        bench_dir = tmp_path / "bench"
        assert main(
            [
                "fleet", "--n", "2", "--seeds", "1",
                "--console-out", str(console_path),
                "--otlp-out", str(otlp_dir),
                "--bench-dir", str(bench_dir),
            ]
        ) == 0
        assert console_path.read_text().startswith("fleet: 2/2 done")
        with open(otlp_dir / "fleet-metrics.otlp.json", encoding="utf-8") as fh:
            metrics_doc = json.load(fh)
        assert metrics_doc["resourceMetrics"]
        with open(otlp_dir / "sample-trace.otlp.json", encoding="utf-8") as fh:
            trace_doc = json.load(fh)
        assert trace_doc["resourceSpans"]
        with open(bench_dir / "BENCH_fleet.json", encoding="utf-8") as fh:
            bench = json.load(fh)
        assert "n2_seeds1_inflight8" in bench

    def test_fleet_failed_migrations_exit_nonzero(self, capsys):
        assert main(
            [
                "fleet", "--n", "1", "--seeds", "9",
                "--fault-every", "1", "--fault-plan", "drop:checkpoint:1",
            ]
        ) == 1
        assert "(1 failed" in capsys.readouterr().out

    def test_fleet_bad_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--n", "0"])


class TestFleetContentionCli:
    def test_hosts_flag_surfaces_queueing_in_console(self, capsys):
        assert main(
            ["fleet", "--n", "6", "--seeds", "1", "--hosts", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "queued: total " in out
        assert "host-00 epc" in out  # the utilization heatmap rides along

    def test_heatmap_and_contention_bench_artifacts(self, tmp_path, capsys):
        heat_path = tmp_path / "heatmap.txt"
        bench_dir = tmp_path / "bench"
        assert main(
            [
                "fleet", "--n", "6", "--seeds", "1", "--hosts", "2",
                "--heatmap-out", str(heat_path),
                "--bench-dir", str(bench_dir),
            ]
        ) == 0
        capsys.readouterr()
        assert "host-00 epc" in heat_path.read_text()
        with open(bench_dir / "BENCH_fleet_contention.json", encoding="utf-8") as fh:
            bench = json.load(fh)
        series = bench["n6_seeds1_inflight8_hosts2_epc32_bw1048576"]
        assert series["queueing_p99_ns"] > 0
        assert 0 < series["epc_util_pct"] <= 100

    def test_blame_action_ranks_stragglers(self, capsys):
        assert main(
            ["fleet", "blame", "--n", "8", "--seeds", "1", "--hosts", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "straggler" in out
        assert "wait/" in out

    def test_blame_json_is_deterministic(self, capsys, tmp_path):
        blame_path = tmp_path / "blame.json"
        argv = [
            "fleet", "blame", "--n", "8", "--seeds", "1", "--hosts", "2",
            "--json", "--blame-out", str(blame_path),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        first = blame_path.read_text()
        assert main(argv) == 0
        capsys.readouterr()
        assert blame_path.read_text() == first
        payload = json.loads(first)
        assert payload["stragglers"]
        for straggler in payload["stragglers"]:
            assert straggler["attributed_pct"] >= 95.0

    def test_blame_without_hosts_defaults_to_four(self, capsys):
        assert main(["fleet", "blame", "--n", "4", "--seeds", "1"]) == 0
        # host-03 only exists when the implicit 4-host model kicked in.
        assert "host-03" in capsys.readouterr().out

    def test_no_hosts_keeps_legacy_output(self, capsys):
        assert main(["fleet", "--n", "2", "--seeds", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "hosts" not in payload
        assert "queued_ns" not in payload["records"][0]

    def test_trace_otlp_format(self, capsys):
        assert main(["trace", "--format", "otlp", "--seed", "7"]) == 0
        doc = json.loads(capsys.readouterr().out)
        spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert any(s["name"] == "migration.run" for s in spans)
        resource = doc["resourceSpans"][0]["resource"]["attributes"]
        keys = {kv["key"] for kv in resource}
        assert {"service.name", "migration.id", "seed"} <= keys

    def test_metrics_otlp_format(self, capsys):
        assert main(["metrics", "--format", "otlp", "--seed", "7"]) == 0
        doc = json.loads(capsys.readouterr().out)
        metrics = doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"]
        assert any(m["name"] == "migration.downtime_ns" for m in metrics)
