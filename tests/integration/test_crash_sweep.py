"""The crash-point sweep and the chaos soak (CI ``soak`` job).

``FAULT_SEED`` re-seeds both; ``SOAK_ITERS`` scales the soak.  Every
plan is fully determined by the seed, so a red run replays exactly with
``FAULT_SEED=<seed> pytest -m sweep`` (or ``-m soak``).
"""

from __future__ import annotations

import os

import pytest

from repro.durability.sweep import chaos_soak, run_agent_crash_point, sweep

SEED = int(os.environ.get("FAULT_SEED", "5"))
SOAK_ITERS = int(os.environ.get("SOAK_ITERS", "4"))
SWEEP_WORKERS = int(os.environ.get("SWEEP_WORKERS", "0"))


@pytest.mark.sweep
class TestCrashPointSweep:
    def test_every_party_every_record_boundary(self):
        """Crash each migration party after each record it commits: every
        point must end with exactly one live instance or a clean abort
        with zero — never a fork, never post-SPENT execution."""
        results = sweep(seed=SEED, workers=SWEEP_WORKERS or None)
        assert len(results) >= 15  # 9 orchestrator + 3 source + 3 target
        bad = [r for r in results if not r.safe]
        assert not bad, f"unsafe crash points: {bad}"
        # Both terminal shapes actually occur across the matrix.
        assert any(r.live_instances == 1 for r in results)
        assert any(r.live_instances == 0 for r in results)

    def test_agent_record_boundaries(self):
        for record in (1, 2):
            result = run_agent_crash_point(record, seed=SEED)
            assert result.safe, result


@pytest.mark.soak
class TestChaosSoak:
    def test_crashes_inside_a_hostile_network(self):
        """Record crashes landing amid drops / corruption / duplication /
        partitions: recovery must hold the invariants in every iteration."""
        results = chaos_soak(seed=SEED, iterations=SOAK_ITERS)
        assert len(results) == SOAK_ITERS
        bad = [r for r in results if not r.safe]
        assert not bad, f"unsafe soak iterations: {bad}"
