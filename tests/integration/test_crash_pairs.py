"""Crash pairs: a second crash lands inside the first recovery.

Single-point sweeps prove every crash window recovers; pairs prove the
*recovery path itself* is crash-safe.  The profiler rides along on a
sampled subset to bound what recovery costs in virtual time.
"""

import pytest

from repro.durability import wal
from repro.durability.sweep import (
    COUNTER_START,
    MAX_RECOVERIES,
    reference_record_counts,
    run_crash_pair,
    sweep_pairs,
)
from repro.faults.plan import parse_fault_spec

SEED = 3


class TestPairSpecParsing:
    def test_pair_spec_parses_both_points(self):
        plan = parse_fault_spec("crash-record:source:2+target:3")
        points = [(f.party, f.at_record) for f in plan.record_crash_faults]
        assert points == [("source", 2), ("target", 3)]

    def test_single_point_spec_still_works(self):
        plan = parse_fault_spec("crash-record:orchestrator:5")
        assert [(f.party, f.at_record) for f in plan.record_crash_faults] == [
            ("orchestrator", 5)
        ]

    def test_triple_chain_spec(self):
        plan = parse_fault_spec("crash-record:source:1+source:2+source:3")
        assert len(plan.record_crash_faults) == 3

    def test_bad_pair_specs_rejected(self):
        for spec in (
            "crash-record:source:2+",
            "crash-record:+target:3",
            "crash-record:source:2+target",
            "crash-record:",
        ):
            with pytest.raises(ValueError):
                parse_fault_spec(spec)

    def test_pair_composes_with_other_faults(self):
        plan = parse_fault_spec("drop:kmigrate,crash-record:source:2+target:3")
        assert len(plan.message_faults) == 1
        assert len(plan.record_crash_faults) == 2


class TestCrashPairs:
    def test_double_crash_same_party_recovers_safely(self):
        result = run_crash_pair(("source", 2), ("source", 3), seed=SEED)
        assert result.pair == "source:2+source:3"
        assert result.recoveries == 2  # the second crash forced a re-drive
        assert result.recoveries <= MAX_RECOVERIES
        assert result.outcome.startswith("recovered:")
        assert result.safe
        assert result.recovery_ns > 0

    def test_cross_party_pair_recovers_safely(self):
        result = run_crash_pair(("orchestrator", 1), ("source", 1), seed=SEED)
        assert result.safe
        assert result.recoveries >= 1

    def test_sampled_pair_sweep_all_safe(self):
        results = sweep_pairs(seed=SEED, stride=3, limit=10)
        assert results
        for result in results:
            assert result.safe, f"{result.pair}: {result.outcome} {result.violations}"
            assert result.recoveries <= MAX_RECOVERIES

    def test_pair_sweep_is_deterministic(self):
        a = sweep_pairs(seed=SEED, stride=4, limit=4)
        b = sweep_pairs(seed=SEED, stride=4, limit=4)
        assert [(r.pair, r.outcome, r.recovery_ns) for r in a] == [
            (r.pair, r.outcome, r.recovery_ns) for r in b
        ]

    def test_pair_axis_covers_every_party(self):
        reference = reference_record_counts(SEED)
        assert set(reference) == {
            wal.PARTY_ORCHESTRATOR,
            wal.PARTY_SOURCE,
            wal.PARTY_TARGET,
        }
        assert all(count >= 1 for count in reference.values())


class TestProfiledRecoveryBound:
    def test_recovery_cost_is_bounded_on_sampled_pairs(self):
        """Profiler-verified bound: recovery after a crash pair costs a
        bounded multiple of a clean migration's total virtual time."""
        from repro.telemetry.runs import run_seeded_migration

        clean_total_ns = run_seeded_migration(seed=1).telemetry.metrics.value(
            "migration.total_ns"
        )
        results = sweep_pairs(
            seed=SEED, stride=3, limit=6, profile_interval_ns=100_000
        )
        for result in results:
            assert result.profile is not None
            assert result.profile["sample_count"] > 0
            assert result.recovery_ns <= 3 * clean_total_ns, (
                f"{result.pair}: recovery took {result.recovery_ns} ns, "
                f"over 3x a clean migration ({clean_total_ns} ns)"
            )

    def test_pair_profile_shows_recovery_frames(self):
        result = run_crash_pair(
            ("source", 2), ("source", 3), seed=SEED, profile_interval_ns=50_000
        )
        from repro.telemetry.profiler import Profile

        profile = Profile.from_dict(result.profile)
        assert profile.total_weight_ns > 0
        # the profile covers the whole run, not just the first attempt
        assert profile.end_ns - profile.start_ns >= result.recovery_ns
