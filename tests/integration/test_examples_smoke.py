"""Smoke tests: the shipped examples run to completion.

Each example's ``main()`` contains its own assertions; importing and
running them here keeps the README's demos from rotting.  Only the quick
ones run in the default suite.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> None:
    spec = importlib.util.spec_from_file_location(f"examples.{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    module.main()


class TestExamplesSmoke:
    def test_quickstart(self, capsys):
        run_example("quickstart")
        out = capsys.readouterr().out
        assert "source ecall completed? False" in out

    def test_proposed_hardware(self, capsys):
        run_example("proposed_hardware")
        out = capsys.readouterr().out
        assert "value = 4242" in out

    def test_consistency_attack(self, capsys):
        run_example("consistency_attack_bank")
        out = capsys.readouterr().out
        assert "the attack of Figure 3 landed" in out
