"""Cross-module integration scenarios."""

import pytest

from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.snapshot import SnapshotManager
from repro.migration.testbed import build_testbed
from repro.sdk.host import HostApplication, WorkerSpec
from repro.workloads.bank import TOTAL, build_bank_image
from repro.workloads.mailserver import build_mailserver_image

from tests.conftest import build_counter_app


class TestMultiEnclaveVm:
    def test_interrelated_enclaves_stay_consistent(self):
        """§VII-A: consistency across a VM's multiple enclaves.

        Two bank enclaves in one VM; the VM-wide quiescent preparation
        checkpoints both, and after migration each still satisfies its
        own invariant (P-4 + P-5 compose to whole-VM consistency).
        """
        from repro.migration.vm import VmMigrationManager

        tb = build_testbed(seed=500)
        apps = []
        for i in range(2):
            built = build_bank_image(tb.builder) if i == 0 else None
            if built is None:
                from repro.workloads.bank import build_bank_image as bbi

                # Same program/image is fine: a second instance.
                built = bbi(tb.builder)
            tb.owner.register_image(built)
            app = HostApplication(
                tb.source, tb.source_os, built.image,
                workers=[WorkerSpec("transfer", args={"rounds": 300, "amount": 1}, repeat=1)],
                owner=tb.owner, name=f"bank-{i}",
            ).launch()
            app.ecall_once(1, "init")
            apps.append(app)
        for _ in range(40):
            tb.source_os.engine.step_round()
        result = VmMigrationManager(tb, apps).migrate()
        for enclave_result in result.enclave_results:
            target = enclave_result.target_app
            tb.target_os.run_until(
                lambda t=target: not [x for x in t.process.live_threads() if "worker" in x.name],
                max_rounds=500_000,
            )
            balances = target.ecall_once(1, "balances")
            assert balances["a"] + balances["b"] == TOTAL


class TestChainedMigrations:
    def test_migrate_snapshot_then_operate(self):
        """An enclave lives through: run -> snapshot -> more work ->
        migration -> verify both changes arrived."""
        tb = build_testbed(seed=501)
        app = build_counter_app(tb, tag="chain")
        app.ecall_once(0, "incr", 10)
        manager = SnapshotManager(tb, tb.owner)
        snapshot = manager.snapshot(app, reason="before risky update")
        app.ecall_once(0, "incr", 5)
        result = MigrationOrchestrator(tb).migrate_enclave(app)
        assert result.target_app.ecall_once(0, "read") == 15
        # And the old snapshot still resumes at its own point in time —
        # with the owner's blessing and audit record.
        resumed = manager.resume(snapshot, app, reason="investigate")
        assert resumed.ecall_once(0, "read") == 10

    def test_sequential_enclave_migrations_share_testbed(self):
        tb = build_testbed(seed=502)
        orch = MigrationOrchestrator(tb)
        for i in range(3):
            app = build_counter_app(tb, tag=f"seq{i}")
            app.ecall_once(0, "incr", i + 1)
            result = orch.migrate_enclave(app)
            assert result.target_app.ecall_once(0, "read") == i + 1


class TestStatefulServerMigration:
    def test_mailserver_session_spans_migration(self):
        tb = build_testbed(seed=503)
        built = build_mailserver_image(tb.builder, flavor="e2e")
        tb.owner.register_image(built)
        app = HostApplication(
            tb.source, tb.source_os, built.image,
            workers=[WorkerSpec("sent_log", repeat=0)], owner=tb.owner,
        ).launch()
        created = app.ecall_once(0, "create_mail", {"recipients": ["a", "eve"], "content": "x"})
        target = MigrationOrchestrator(tb).migrate_enclave(app).target_app
        target.ecall_once(0, "delete_recipient", {"mail_id": created["mail_id"], "recipient": "eve"})
        sent = target.ecall_once(0, "send_mail", {"mail_id": created["mail_id"]})
        assert sent["delivered_to"] == ["a"]


class TestVirtualTimeSanity:
    def test_clock_moves_monotonically_through_a_migration(self):
        tb = build_testbed(seed=504)
        app = build_counter_app(tb, tag="time")
        marks = [tb.clock.now_ns]
        orch = MigrationOrchestrator(tb)
        orch.checkpoint_enclave(app)
        marks.append(tb.clock.now_ns)
        orch.migrate_enclave(app)
        marks.append(tb.clock.now_ns)
        assert marks == sorted(marks)
        assert marks[1] > marks[0]  # checkpointing took virtual time

    def test_checkpoint_time_scale_matches_paper(self):
        """Figure 9(c): ~255us two-phase checkpointing at this scale."""
        tb = build_testbed(seed=505)
        app = build_counter_app(tb, tag="scale")
        start = tb.clock.now_ns
        MigrationOrchestrator(tb).checkpoint_enclave(app)
        elapsed_us = (tb.clock.now_ns - start) / 1_000
        # Order of magnitude: hundreds of microseconds, not ms or ns.
        assert 50 < elapsed_us < 5_000
