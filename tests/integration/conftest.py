"""Integration-suite fixtures: every scenario runs under both backends.

The fault matrix, crash sweep and end-to-end protocol tests exercise the
recovery paths that differential single-run tests cannot reach (retries,
partitions, journal replay after crashes).  Parametrizing the whole
directory over the crypto backends proves those paths are backend-clean
too — a resilience bug that only reproduces under the fast backend's
cached ciphers would surface here.

``REPRO_CRYPTO_BACKEND_PARAM=reference|fast`` pins a single leg (the CI
backend matrix uses it so each job runs its own backend exactly once).
"""

from __future__ import annotations

import os

import pytest

from repro.crypto.backend import BACKEND_NAMES, use_backend

_pinned = os.environ.get("REPRO_CRYPTO_BACKEND_PARAM")
_params = (_pinned,) if _pinned in BACKEND_NAMES else BACKEND_NAMES


@pytest.fixture(autouse=True, params=_params)
def crypto_backend(request):
    """Run each integration test once per crypto backend."""
    with use_backend(request.param) as backend:
        yield backend
