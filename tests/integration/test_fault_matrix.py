"""The adversarial fault matrix: every fault primitive at every step.

Each case runs one enclave migration under a single injected
infrastructure fault and asserts the protocol's obligation from the
paper's threat model: the run either completes (after retries) or aborts
cleanly with :class:`MigrationAborted` — never hangs, never forks, never
runs a self-destroyed source — and afterwards

* at most one enclave lineage is live (exactly one on completion);
* the source has self-destroyed if and only if K_migrate was released
  (a crashed source machine counts as gone, not as self-destroyed).

The matrix seed is taken from the ``FAULT_SEED`` environment variable so
the CI ``faults`` job can replay the whole matrix under several fixed
seeds without code changes.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import MigrationAborted, SelfDestroyed
from repro.faults import (
    MESSAGE_FAULT_KINDS,
    PROTOCOL_STEPS,
    STEP_RESTORE,
    FaultInjector,
    FaultPlan,
    MessageFault,
)
from repro.migration.orchestrator import (
    FAULT_TOLERANT_RETRY,
    MigrationOrchestrator,
)
from repro.migration.testbed import build_testbed
from repro.sdk import control

from tests.conftest import build_counter_app

FAULT_SEED = int(os.environ.get("FAULT_SEED", "1"))

#: Every label the protocol puts on the wire, in flow order.  The
#: chunked checkpoint stream is the only multi-message label.
WIRE_LABELS = (
    "channel-request",
    "ias-quote",
    "channel-answer",
    "checkpoint-chunk",
    "kmigrate",
)

COUNTER_BEFORE = 5


def _run(plan):
    """One migration under ``plan``; returns (tb, app, orch, result-or-exc)."""
    tb = build_testbed(seed=1000 + FAULT_SEED)
    app = build_counter_app(tb, tag="matrix")
    app.ecall_once(0, "incr", COUNTER_BEFORE)
    orch = MigrationOrchestrator(
        tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
    )
    try:
        return tb, app, orch, orch.migrate_enclave(app)
    except MigrationAborted as exc:
        return tb, app, orch, exc


def _key_released(tb) -> bool:
    return bool(tb.network.captured("kmigrate"))


def _source_gone(app) -> bool:
    """Self-destroyed (SPENT) or its machine crashed: it will never run."""
    if app.library.enclave_id is None:
        return True  # crashed / destroyed
    with pytest.raises(SelfDestroyed):
        app.library.control_call(control.source_release_key)
    return True


def _check_invariants(tb, app, orch, outcome) -> None:
    target_live = tb.target_os.driver.live_enclave_ids()
    if isinstance(outcome, MigrationAborted):
        # Clean abort: no half-built target survives, and the source is
        # resurrectable only if the key never left it.
        assert not target_live, "aborted migration left a target enclave live"
        assert orch.stats.aborts >= 1
        if _key_released(tb):
            assert _source_gone(app)  # zero live instances, by design
    else:
        # Completion: exactly one live lineage, serving the right state.
        assert len(target_live) == 1
        assert outcome.target_app.ecall_once(0, "read") == COUNTER_BEFORE
        assert _key_released(tb)
        assert _source_gone(app)
        assert outcome.attempts >= 1


class TestMessageFaultMatrix:
    @pytest.mark.faults
    @pytest.mark.parametrize("kind", MESSAGE_FAULT_KINDS)
    @pytest.mark.parametrize("label", WIRE_LABELS)
    def test_single_message_fault(self, kind, label):
        plan = FaultPlan(seed=FAULT_SEED)
        plan.message_faults.append(MessageFault(kind, label))
        tb, app, orch, outcome = _run(plan)
        _check_invariants(tb, app, orch, outcome)
        # A single transient message fault is always healable: the plan
        # never touches the enclaves, so the protocol must complete.
        assert not isinstance(outcome, MigrationAborted), (
            f"{kind}:{label} should be survivable, got abort: {outcome}"
        )


class TestCrashMatrix:
    @pytest.mark.faults
    @pytest.mark.parametrize("step", PROTOCOL_STEPS)
    def test_source_crash(self, step):
        tb, app, orch, outcome = _run(FaultPlan(seed=FAULT_SEED).crash("source", step))
        _check_invariants(tb, app, orch, outcome)
        if step == STEP_RESTORE:
            # By restore time the key and checkpoint live on the target:
            # the source machine dying costs nothing.
            assert not isinstance(outcome, MigrationAborted)
        else:
            # Before the handoff completes, losing the source machine
            # loses the only instance: abort, never a hang or a fork.
            assert isinstance(outcome, MigrationAborted)

    @pytest.mark.faults
    @pytest.mark.parametrize("step", PROTOCOL_STEPS)
    def test_target_crash(self, step):
        tb, app, orch, outcome = _run(FaultPlan(seed=FAULT_SEED).crash("target", step))
        _check_invariants(tb, app, orch, outcome)
        if step == STEP_RESTORE:
            # Key released, then the machine holding it died: the paper's
            # single-instance guarantee beats availability.
            assert isinstance(outcome, MigrationAborted)
            assert _source_gone(app)
        else:
            # Pre-release target crashes are survivable: cancel, rebuild
            # a fresh virgin target, renegotiate everything.
            assert not isinstance(outcome, MigrationAborted)
            assert orch.stats.retries >= 1


class TestPartitionMatrix:
    @pytest.mark.faults
    @pytest.mark.parametrize("label", (None,) + WIRE_LABELS)
    def test_partition_heals(self, label):
        plan = FaultPlan(seed=FAULT_SEED).partition(20_000_000, label=label)
        tb, app, orch, outcome = _run(plan)
        _check_invariants(tb, app, orch, outcome)
        # 20 ms of virtual downtime is inside the retry budget.
        assert not isinstance(outcome, MigrationAborted)


class TestNoFaultRegression:
    @staticmethod
    def _reset_global_counters():
        """Pin the process-global id counters so two testbeds built in the
        same pytest process draw identical rdrand fork labels."""
        import itertools

        from repro.guestos.process import GuestProcess
        from repro.sgx.cpu import SgxCpu

        GuestProcess._pids = itertools.count(100)
        SgxCpu._ids = itertools.count(1)

    def test_resilient_path_matches_seed_bytes_modulo_framing(self):
        """With zero faults, retries enabled, the resilient orchestrator
        puts the *same protocol bytes* on the wire as the seed happy
        path — the chunk stream framing is the only difference."""
        self._reset_global_counters()
        tb_seed = build_testbed(seed=4242)
        app_seed = build_counter_app(tb_seed, tag="regress")
        app_seed.ecall_once(0, "incr", 3)
        MigrationOrchestrator(tb_seed).migrate_enclave(app_seed)

        self._reset_global_counters()
        tb_res = build_testbed(seed=4242)
        app_res = build_counter_app(tb_res, tag="regress")
        app_res.ecall_once(0, "incr", 3)
        result = MigrationOrchestrator(
            tb_res, retry=FAULT_TOLERANT_RETRY
        ).migrate_enclave(app_res)
        assert result.attempts == 1 and result.stats.retries == 0

        # Lockstep messages are byte-identical.
        for label in ("channel-request", "ias-quote", "channel-answer", "kmigrate"):
            assert tb_seed.network.captured(label) == tb_res.network.captured(label)

        # The chunk stream carries exactly the seed checkpoint envelope.
        from repro.migration.checkpoint import ChunkReassembler

        frames = tb_res.network.captured("checkpoint-chunk")
        assert len(frames) > 1  # it actually chunked
        reassembler = ChunkReassembler()
        for frame in frames:
            reassembler.accept(frame)
        (seed_blob,) = tb_seed.network.captured("checkpoint")
        assert reassembler.assemble() == seed_blob

    def test_no_fault_run_reports_clean_stats(self):
        tb, app, orch, outcome = _run(FaultPlan(seed=FAULT_SEED))
        _check_invariants(tb, app, orch, outcome)
        assert outcome.stats.retries == 0
        assert outcome.stats.aborts == 0
        assert tb.trace.tally("fault") == {}
