"""Differential migration harness: both crypto backends, one protocol.

The fast backend is only admissible if it is *invisible*: a seeded
end-to-end enclave migration must put the same bytes on the wire, commit
the same journal records, and land the same enclave state regardless of
which backend did the cipher work.  This runs the full protocol once per
backend and compares everything an adversary, an auditor, or a crashed
party could ever observe.
"""

from __future__ import annotations

import itertools

from repro.crypto.backend import BACKEND_NAMES, use_backend
from repro.crypto.hashes import sha256
from repro.guestos.process import GuestProcess
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.sgx.cpu import SgxCpu

from tests.conftest import build_counter_app


def _reset_global_counters() -> None:
    """Pin process-global id counters so repeated testbeds draw identical
    rdrand fork labels (same trick as the fault-matrix regression test)."""
    GuestProcess._pids = itertools.count(100)
    SgxCpu._ids = itertools.count(1)


def _run_seeded_migration(backend_name: str) -> dict:
    """One full migration under ``backend_name``; everything observable."""
    with use_backend(backend_name):
        _reset_global_counters()
        tb = build_testbed(seed=9431)
        app = build_counter_app(tb, tag="differential")
        app.ecall_once(0, "incr", 41)
        result = MigrationOrchestrator(tb).migrate_enclave(app)
        counter = result.target_app.ecall_once(0, "read")

        # Final enclave state: every valid EPC page the migrated enclave
        # owns on the target CPU, in vaddr order.
        cpu = tb.target.cpu
        eid = result.target_app.library.enclave_id
        state = sha256(
            b"".join(
                cpu.epc.entry(i).vaddr.to_bytes(8, "big") + bytes(cpu.epc.page(i).data)
                for i in sorted(
                    cpu.epc.pages_of(eid), key=lambda i: cpu.epc.entry(i).vaddr
                )
                if cpu.epc.entry(i).page_type.value == "REG"
            )
        )
        return {
            "wire": [(r.label, r.payload) for r in tb.network.log],
            "journals": {
                name: bytes(tb.durable.log(name)) for name in tb.durable.names()
            },
            "counter": counter,
            "state_digest": state,
            "clock_ns": tb.clock.now_ns,
        }


def test_seeded_migration_is_backend_invariant():
    runs = {name: _run_seeded_migration(name) for name in BACKEND_NAMES}
    reference, fast = runs["reference"], runs["fast"]

    # Same wire traffic: labels in the same order, payloads byte-identical.
    assert [l for l, _ in reference["wire"]] == [l for l, _ in fast["wire"]]
    for (label, ref_bytes), (_, fast_bytes) in zip(reference["wire"], fast["wire"]):
        assert ref_bytes == fast_bytes, f"wire divergence on {label!r}"

    # Same journals: the same set of logs with byte-identical contents.
    assert reference["journals"].keys() == fast["journals"].keys()
    for name in reference["journals"]:
        assert reference["journals"][name] == fast["journals"][name], (
            f"journal divergence in {name!r}"
        )

    # Same outcome: application state and raw enclave memory agree, and
    # so does virtual time (the backend is a wall-clock concern only).
    assert reference["counter"] == fast["counter"] == 41
    assert reference["state_digest"] == fast["state_digest"]
    assert reference["clock_ns"] == fast["clock_ns"]


def test_sealed_checkpoint_travels_between_backends():
    """Seal under one backend on the source, open under the other on the
    target: a mixed fleet (old binary on one host) must interoperate."""
    from repro.crypto.keys import SymmetricKey
    from repro.migration.checkpoint import (
        EnclaveCheckpoint,
        open_checkpoint,
        seal_checkpoint,
    )

    ckpt = EnclaveCheckpoint(
        image_name="mixed-fleet",
        code_id="code",
        mrenclave=b"\x11" * 32,
        sequence=3,
        pages={0x1000: b"\xaa" * 4096, 0x3000: b"\xbb" * 100},
        skipped_pages=[0x2000],
    )
    key = SymmetricKey(b"m" * 32, "kmigrate")
    for sealer, opener in (("reference", "fast"), ("fast", "reference")):
        with use_backend(sealer):
            envelope = seal_checkpoint(ckpt, key, b"n" * 16, "aes-ni")
        with use_backend(opener):
            reopened = open_checkpoint(key, envelope)
        assert reopened.pages == ckpt.pages
        assert reopened.skipped_pages == ckpt.skipped_pages
        assert reopened.sequence == ckpt.sequence
