"""In-enclave runtime and the untrusted SGX library."""

import pytest

from repro.errors import MigrationError, SgxAccessFault
from repro.sdk import control
from repro.sdk.host import HostApplication, WorkerSpec
from repro.sdk.image import FLAG_BUSY, FLAG_FREE, FLAG_SPIN
from repro.sgx import instructions as isa

from tests.conftest import build_counter_app, make_counter_program


@pytest.fixture
def app(testbed):
    return build_counter_app(testbed, tag="rtlib")


def open_control(app):
    template = app.image.control_tcs
    session = isa.eenter(app.machine.cpu, app.library.hw(), template.vaddr)
    rt = app.library._runtime(session)
    return session, rt, template


class TestRuntimeMemory:
    def test_globals_roundtrip(self, app):
        session, rt, _ = open_control(app)
        rt.store_global("counter", 77)
        assert rt.load_global("counter") == 77
        isa.eexit(session)

    def test_unknown_global(self, app):
        session, rt, _ = open_control(app)
        with pytest.raises(KeyError):
            rt.load_global("nope")
        isa.eexit(session)

    def test_object_store_roundtrip(self, app):
        session, rt, _ = open_control(app)
        rt.store_obj("__boot__", {"dh_private": 12345, "blob": b"\x01\x02"})
        assert rt.load_obj("__boot__") == {"dh_private": 12345, "blob": b"\x01\x02"}
        rt.delete_obj("__boot__")
        assert rt.load_obj("__boot__", default="gone") == "gone"
        isa.eexit(session)

    def test_object_capacity_enforced(self, app):
        session, rt, _ = open_control(app)
        with pytest.raises(MigrationError):
            rt.store_obj("__boot__", {"big": b"\x00" * 5000})
        isa.eexit(session)

    def test_fault_handler_reloads_evicted_pages(self, testbed):
        app = build_counter_app(testbed, tag="fault")
        driver = testbed.source_os.driver
        # Evict the globals page by hand, then access it through rt.
        session, rt, _ = open_control(app)
        vaddr = app.image.layout.global_slot("counter") & ~4095
        driver._touch(app.library.enclave_id, vaddr)
        # Force eviction of this specific page:
        denc = driver._entry(app.library.enclave_id)
        va_index, slot = driver._va_slot()
        blob = isa.ewb(app.machine.cpu, denc.hw, vaddr, va_index, slot)
        denc.evicted[vaddr] = (blob, va_index, slot)
        testbed.source_vm.vepc.free_page(denc.gpa_map.pop(vaddr))
        faults_before = driver.page_fault_count
        rt.store_global("counter", 3)
        assert rt.load_global("counter") == 3
        assert driver.page_fault_count == faults_before + 1
        isa.eexit(session)


class TestStubs:
    def test_entry_stub_records_cssa_eenter(self, app):
        session, rt, template = open_control(app)
        worker = app.image.worker_tcs(0)
        # Simulate a worker entry: rax carried by this control session is
        # 0; the stub stores it in the worker record we inspect.
        rt.store_u64(app.image.layout.tcs_record_vaddr(worker.index, 8), 9)
        assert rt.cssa_eenter(worker.index) == 9
        isa.eexit(session)

    def test_entry_stub_spin_when_flag_set(self, app):
        session, rt, _ = open_control(app)
        worker_index = app.image.worker_tcs(0).index
        rt.set_global_flag(1)
        isa.eexit(session)
        worker_session = isa.eenter(
            app.machine.cpu, app.library.hw(), app.image.worker_tcs(0).vaddr
        )
        worker_rt = app.library._runtime(worker_session)
        assert worker_rt.entry_stub(worker_index) == "spin"
        assert worker_rt.local_flag(worker_index) == FLAG_SPIN
        isa.eexit(worker_session)

    def test_entry_exit_stub_flag_lifecycle(self, app):
        worker = app.image.worker_tcs(0)
        session = isa.eenter(app.machine.cpu, app.library.hw(), worker.vaddr)
        rt = app.library._runtime(session)
        assert rt.local_flag(worker.index) == FLAG_FREE
        assert rt.entry_stub(worker.index) == "proceed"
        assert rt.local_flag(worker.index) == FLAG_BUSY
        rt.exit_stub(worker.index)
        assert rt.local_flag(worker.index) == FLAG_FREE
        isa.eexit(session)

    def test_quiescent_check(self, app):
        session, rt, _ = open_control(app)
        workers = [t.index for t in app.image.tcs_templates if t.role == "worker"]
        assert rt.quiescent(workers)  # all free
        rt.set_local_flag(workers[0], FLAG_BUSY)
        assert not rt.quiescent(workers)
        rt.set_local_flag(workers[0], FLAG_SPIN)
        assert rt.quiescent(workers)
        isa.eexit(session)


class TestLibrary:
    def test_atomic_ecall_returns_result(self, app):
        assert app.ecall_once(0, "incr", 5) == 5
        assert app.ecall_once(0, "incr", 2) == 7

    def test_result_in_shared_memory(self, app):
        app.ecall_once(0, "incr", 1)
        assert app.process.shared_memory["result/incr/0"] == 1

    def test_resumable_ecall_with_interrupts(self, testbed):
        app = build_counter_app(testbed, tag="resumable")
        aex_before = testbed.source.cpu.aex_count
        result = app.ecall_once(0, "slow_incr", 100)
        assert result == 100
        # The long entry was periodically interrupted (AEX fired).
        assert testbed.source.cpu.aex_count > aex_before

    def test_two_workers_interleave(self, testbed):
        app = build_counter_app(
            testbed,
            tag="interleave",
            workers=[
                WorkerSpec("slow_incr", args=50, repeat=1),
                WorkerSpec("slow_incr", args=50, repeat=1),
            ],
        )
        testbed.source_os.run_until(
            lambda: not [t for t in app.process.live_threads() if "worker" in t.name]
        )
        final = app.ecall_once(0, "read")
        assert final == 100  # both workers' increments landed

    def test_migration_support_off_skips_stubs(self, testbed):
        app = build_counter_app(testbed, tag="nosupport")
        app.library.migration_support = False
        worker = app.image.worker_tcs(0)
        app.ecall_once(0, "incr", 1)
        session, rt, _ = open_control(app)
        # Without support the stub never recorded anything.
        assert rt.cssa_eenter(worker.index) == 0
        isa.eexit(session)

    def test_launch_provisions_with_owner(self, app):
        session, rt, _ = open_control(app)
        assert rt.attested()
        secrets = rt.load_obj("__image_privkey__")
        assert secrets["n"] > 0 and secrets["d"] > 0
        isa.eexit(session)

    def test_launch_without_owner_not_attested(self, testbed):
        app = build_counter_app(testbed, tag="noowner", provision=False)
        session, rt, _ = open_control(app)
        assert not rt.attested()
        isa.eexit(session)

    def test_destroy(self, testbed):
        app = build_counter_app(testbed, tag="destroy")
        app.destroy()
        assert app.library.enclave_id is None
