"""SDK builder and program registry."""

import pytest

from repro.sdk.builder import SdkBuilder
from repro.sdk.image import (
    CONTROL_ENTRY,
    DISPATCH_ENTRY,
    OBJ_BOOT,
    OBJ_CHANNEL,
    OBJ_IMAGE_PRIVKEY,
    FLAG_FREE,
)
from repro.sdk.program import (
    AtomicEntry,
    EnclaveProgram,
    ProgramError,
    ResumableEntry,
    lookup_program,
    register_program,
)
from repro.sgx.structures import PAGE_SIZE, PageType, Permissions

from tests.conftest import make_counter_program


class TestProgramRegistry:
    def test_register_and_lookup(self):
        program = EnclaveProgram("tests/reg-v1")
        register_program(program)
        assert lookup_program("tests/reg-v1") is program

    def test_unknown_code_id(self):
        with pytest.raises(ProgramError):
            lookup_program("tests/never-registered")

    def test_conflicting_registration_rejected(self):
        a = EnclaveProgram("tests/conflict-v1")
        a.add_entry("x", AtomicEntry(lambda rt, args: None))
        register_program(a)
        b = EnclaveProgram("tests/conflict-v1")
        b.add_entry("y", AtomicEntry(lambda rt, args: None))
        with pytest.raises(ProgramError):
            register_program(b)

    def test_duplicate_entry_rejected(self):
        program = EnclaveProgram("tests/dup-v1")
        program.add_entry("x", AtomicEntry(lambda rt, args: None))
        with pytest.raises(ProgramError):
            program.add_entry("x", AtomicEntry(lambda rt, args: None))

    def test_missing_entry(self):
        program = EnclaveProgram("tests/missing-v1")
        with pytest.raises(ProgramError):
            program.entry("nope")

    def test_atomic_cost_fn(self):
        entry = AtomicEntry(lambda rt, args: None, cost_ns=10, cost_fn=lambda args: args * 2)
        assert entry.cost_for(21) == 42
        assert AtomicEntry(lambda rt, args: None, cost_ns=10).cost_for(None) == 10


class TestBuilder:
    def build(self, testbed, tag="bld", **kwargs):
        return testbed.builder.build(
            f"image-{tag}", make_counter_program(tag), n_workers=2,
            global_names=("counter",), **kwargs
        )

    def test_global_flag_at_enclave_base(self, testbed):
        built = self.build(testbed, "flag")
        layout = built.image.layout
        # "Our SDK puts the global flag at the beginning of enclave" (§IV-B).
        assert layout.global_flag_vaddr() == layout.base

    def test_control_thread_tcs_injected(self, testbed):
        built = self.build(testbed, "ctrl")
        image = built.image
        assert image.layout.n_tcs == 3  # 2 workers + control
        assert image.control_tcs.oentry == CONTROL_ENTRY
        assert image.worker_tcs(0).oentry == DISPATCH_ENTRY

    def test_builtin_object_slots_reserved(self, testbed):
        built = self.build(testbed, "objs")
        for name in (OBJ_IMAGE_PRIVKEY, OBJ_BOOT, OBJ_CHANNEL):
            vaddr, capacity = built.image.layout.object_slot(name)
            assert capacity >= PAGE_SIZE

    def test_deterministic_build_measurement(self, testbed):
        a = self.build(testbed, "det")
        b = self.build(testbed, "det")
        assert a.image.mrenclave == b.image.mrenclave

    def test_different_program_different_measurement(self, testbed):
        a = self.build(testbed, "prog-a")
        b = self.build(testbed, "prog-b")
        assert a.image.mrenclave != b.image.mrenclave

    def test_image_keys_embedded(self, testbed):
        built = self.build(testbed, "keys")
        image = built.image
        assert image.image_public_n == built.image_private_key.public.n
        assert image.layout.key_page_len > 0
        # The measured key page contains the public key in plaintext and
        # only ciphertext for the private key.
        key_page = next(p for p in image.pages if p.vaddr == image.layout.key_page_vaddr)
        priv_bytes = built.image_private_key.private.d.to_bytes(128, "big")
        assert priv_bytes not in key_page.content

    def test_sigstruct_verifies_against_built_measurement(self, testbed):
        built = self.build(testbed, "sig")
        from repro.crypto.rsa import RsaPublicKey

        signer = RsaPublicKey(built.image.sigstruct.signer_modulus, 65537)
        signer.verify(built.image.sigstruct.signed_body(), built.image.sigstruct.signature)

    def test_unreadable_page_option(self, testbed):
        built = self.build(testbed, "wx", add_unreadable_page=True)
        image = built.image
        unreadable = [
            p for p in image.pages
            if p.sec_info.page_type is PageType.REG
            and Permissions.R not in p.sec_info.permissions
        ]
        assert len(unreadable) == 1
        assert unreadable[0].vaddr not in image.readable_reg_vaddrs()

    def test_heap_layout(self, testbed):
        built = self.build(testbed, "heap", heap_pages=7)
        assert built.image.layout.heap_bytes == 7 * PAGE_SIZE

    def test_ssa_regions_per_tcs(self, testbed):
        built = self.build(testbed, "ssa", nssa=2)
        image = built.image
        for template in image.tcs_templates:
            assert template.nssa == 2
            # SSA pages are real REG pages inside the enclave.
            for frame in range(2):
                assert template.ossa + frame * PAGE_SIZE in image.used_reg_vaddrs()

    def test_too_many_workers_for_image(self, testbed):
        from repro.errors import MigrationError
        from repro.sdk.host import HostApplication, WorkerSpec

        built = self.build(testbed, "many")
        with pytest.raises(MigrationError):
            HostApplication(
                testbed.source,
                testbed.source_os,
                built.image,
                workers=[WorkerSpec("incr")] * 5,
            )
