"""Image/layout invariants the protocol relies on."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sgx.structures import PAGE_SIZE, PageType, Permissions

from tests.conftest import make_counter_program


def build(testbed, tag="layout", **kwargs):
    return testbed.builder.build(
        f"layout-{tag}", make_counter_program(f"layout-{tag}"),
        global_names=("counter",), **kwargs
    ).image


class TestLayoutInvariants:
    def test_pages_are_disjoint_and_aligned(self, testbed):
        image = build(testbed, "disjoint")
        vaddrs = [p.vaddr for p in image.pages]
        assert len(vaddrs) == len(set(vaddrs))
        assert all(v % PAGE_SIZE == 0 for v in vaddrs)
        assert all(image.layout.base <= v < image.layout.base + image.layout.size for v in vaddrs)

    def test_pages_are_contiguous_from_base(self, testbed):
        image = build(testbed, "contig")
        vaddrs = sorted(p.vaddr for p in image.pages)
        expected = list(range(image.layout.base, image.layout.base + len(vaddrs) * PAGE_SIZE, PAGE_SIZE))
        assert vaddrs == expected

    def test_tcs_records_fit_in_control_block(self, testbed):
        image = build(testbed, "records", n_workers=8)
        last_record_end = image.layout.tcs_record_vaddr(image.layout.n_tcs - 1, 56) + 8
        assert last_record_end <= image.layout.base + PAGE_SIZE

    def test_object_slots_disjoint(self, testbed):
        image = build(testbed, "objslots", data_objects={"a": 100, "b": 9000})
        ranges = sorted(
            (vaddr, vaddr + cap) for vaddr, cap in image.layout.objects_table.values()
        )
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end <= start

    def test_object_capacity_rounded_to_pages(self, testbed):
        image = build(testbed, "objcap", data_objects={"tiny": 1, "big": 5000})
        assert image.layout.object_slot("tiny")[1] == PAGE_SIZE
        assert image.layout.object_slot("big")[1] == 2 * PAGE_SIZE

    def test_ssa_regions_do_not_overlap_stacks_or_tcs(self, testbed):
        image = build(testbed, "ssa")
        tcs_pages = {p.vaddr for p in image.pages if p.sec_info.page_type is PageType.TCS}
        for template in image.tcs_templates:
            for frame in range(template.nssa):
                ssa_page = template.ossa + frame * PAGE_SIZE
                assert ssa_page not in tcs_pages

    def test_readable_vs_used_reg_pages(self, testbed):
        image = build(testbed, "perm", add_unreadable_page=True)
        used = set(image.used_reg_vaddrs())
        readable = set(image.readable_reg_vaddrs())
        assert readable < used
        assert len(used - readable) == 1

    def test_worker_lookup(self, testbed):
        image = build(testbed, "lookup", n_workers=3)
        assert image.n_workers == 3
        assert image.worker_tcs(2).role == "worker"
        assert image.control_tcs.role == "control"
        with pytest.raises(IndexError):
            image.worker_tcs(3)

    @given(n_workers=st.integers(min_value=1, max_value=6), heap=st.integers(min_value=1, max_value=16))
    @settings(max_examples=8, deadline=None)
    def test_size_accounts_for_every_page(self, n_workers, heap):
        from repro.migration.testbed import build_testbed

        tb = build_testbed(seed=f"layout-{n_workers}-{heap}")
        image = tb.builder.build(
            f"prop-{n_workers}-{heap}",
            make_counter_program(f"prop-{n_workers}-{heap}"),
            n_workers=n_workers,
            heap_pages=heap,
            global_names=("counter",),
        ).image
        assert image.layout.size == len(image.pages) * PAGE_SIZE
