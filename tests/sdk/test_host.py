"""HostApplication and WorkerSpec behaviour."""

import pytest

from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk.host import WorkerSpec

from tests.conftest import build_counter_app


class TestWorkerSpec:
    def test_fixed_args(self):
        spec = WorkerSpec("e", args=7)
        assert spec.args_for(0) == 7
        assert spec.args_for(5) == 7

    def test_args_fn_overrides(self):
        spec = WorkerSpec("e", args=7, args_fn=lambda i: i * 10)
        assert spec.args_for(3) == 30


class TestHostApplication:
    def test_worker_loop_runs_repeat_times(self, testbed):
        app = build_counter_app(
            testbed, tag="host-loop", workers=[WorkerSpec("incr", args=1, repeat=4)]
        )
        testbed.source_os.run_until(
            lambda: not [t for t in app.process.live_threads() if "worker" in t.name]
        )
        assert app.results["incr"] == [1, 2, 3, 4]
        assert app.completed_iterations == [4]

    def test_args_fn_drives_each_iteration(self, testbed):
        app = build_counter_app(
            testbed,
            tag="host-argsfn",
            workers=[WorkerSpec("incr", args_fn=lambda i: i + 1, repeat=3)],
        )
        testbed.source_os.run_until(
            lambda: not [t for t in app.process.live_threads() if "worker" in t.name]
        )
        assert app.ecall_once(1, "read") == 1 + 2 + 3

    def test_sleepy_workers_do_not_burn_vcpus(self, testbed):
        app = build_counter_app(
            testbed,
            tag="host-sleep",
            workers=[WorkerSpec("incr", args=1, repeat=3, think_time_ns=500_000)],
        )
        testbed.source_os.run_until(
            lambda: not [t for t in app.process.live_threads() if "worker" in t.name]
        )
        # Virtual time covers the sleeps even though nothing else ran.
        assert testbed.clock.now_ns >= 2 * 500_000
        assert app.ecall_once(0, "read") == 3

    def test_finished_loop_not_respawned_after_migration(self, testbed):
        app = build_counter_app(
            testbed, tag="host-done", workers=[WorkerSpec("incr", args=1, repeat=2)]
        )
        testbed.source_os.run_until(
            lambda: not [t for t in app.process.live_threads() if "worker" in t.name]
        )
        result = MigrationOrchestrator(testbed).migrate_enclave(app)
        target = result.target_app
        for _ in range(3_000):
            testbed.target_os.engine.step_round()
        # The loop completed pre-migration; the target must not rerun it.
        assert target.ecall_once(0, "read") == 2

    def test_partial_loop_resumes_at_position(self, testbed):
        app = build_counter_app(
            testbed,
            tag="host-partial",
            workers=[WorkerSpec("slow_incr", args=40, repeat=3)],
        )
        # Let roughly one and a half iterations run.
        testbed.source_os.run_until(lambda: app.completed_iterations[0] >= 1)
        result = MigrationOrchestrator(testbed).migrate_enclave(app)
        target = result.target_app
        testbed.target_os.run_until(
            lambda: not [t for t in target.process.live_threads() if "worker" in t.name],
            max_rounds=500_000,
        )
        assert target.ecall_once(1, "read") == 3 * 40  # exactly three runs total

    def test_results_dict_tracks_entries(self, testbed):
        app = build_counter_app(
            testbed, tag="host-results", workers=[WorkerSpec("read", repeat=2)]
        )
        testbed.source_os.run_until(
            lambda: not [t for t in app.process.live_threads() if "worker" in t.name]
        )
        assert len(app.results["read"]) == 2
