"""The in-enclave allocator and the §VI-C ocall trampolines."""

import pytest

from repro.errors import MigrationError
from repro.migration.orchestrator import MigrationOrchestrator
from repro.sdk.program import AtomicEntry, EnclaveProgram
from repro.sdk.host import HostApplication
from repro.sgx import instructions as isa

from tests.conftest import build_counter_app


@pytest.fixture
def rt_session(testbed):
    app = build_counter_app(testbed, tag="heap")
    template = app.image.control_tcs
    session = isa.eenter(testbed.source.cpu, app.library.hw(), template.vaddr)
    rt = app.library._runtime(session)
    yield app, rt
    isa.eexit(session)


class TestEnclaveHeap:
    def test_malloc_returns_heap_addresses(self, rt_session):
        app, rt = rt_session
        addr = rt.malloc(64)
        heap = app.image.layout
        assert heap.heap_base <= addr < heap.heap_base + heap.heap_bytes

    def test_allocations_do_not_overlap(self, rt_session):
        _, rt = rt_session
        blocks = [rt.malloc(100) for _ in range(8)]
        for addr in blocks:
            rt.write(addr, b"\xab" * 100)
        ranges = sorted((a, a + 100) for a in blocks)
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end <= start

    def test_free_and_reuse(self, rt_session):
        _, rt = rt_session
        first = rt.malloc(256)
        rt.free(first)
        second = rt.malloc(256)
        assert second == first  # first-fit reuses the freed block

    def test_double_free_rejected(self, rt_session):
        _, rt = rt_session
        addr = rt.malloc(32)
        rt.free(addr)
        with pytest.raises(MigrationError):
            rt.free(addr)

    def test_free_of_garbage_rejected(self, rt_session):
        _, rt = rt_session
        with pytest.raises(MigrationError):
            rt.free(0x1234)

    def test_exhaustion(self, rt_session):
        app, rt = rt_session
        with pytest.raises(MigrationError):
            rt.malloc(app.image.layout.heap_bytes * 2)

    def test_coalescing_allows_big_realloc(self, rt_session):
        app, rt = rt_session
        quarter = app.image.layout.heap_bytes // 4
        blocks = [rt.malloc(quarter - 64) for _ in range(3)]
        for addr in blocks:
            rt.free(addr)
        # After coalescing, one allocation larger than any quarter fits.
        rt.malloc(2 * quarter)

    def test_bad_size_rejected(self, rt_session):
        _, rt = rt_session
        with pytest.raises(MigrationError):
            rt.malloc(0)

    def test_heap_contents_survive_migration(self, testbed):
        program = EnclaveProgram("tests/heap-migrate-v1")

        def store(rt, args):
            addr = rt.malloc(len(args))
            rt.write(addr, args)
            rt.store_global("ptr", addr)
            return addr

        def load(rt, args):
            addr = rt.load_global("ptr")
            return rt.read(addr, int(args))

        program.add_entry("store", AtomicEntry(store))
        program.add_entry("load", AtomicEntry(load))
        built = testbed.builder.build(
            "heap-migrate", program, n_workers=1, heap_pages=4, global_names=("ptr",)
        )
        testbed.owner.register_image(built)
        app = HostApplication(
            testbed.source, testbed.source_os, built.image, [], owner=testbed.owner
        ).launch()
        app.ecall_once(0, "store", b"malloc'd state")
        target = MigrationOrchestrator(testbed).migrate_enclave(app).target_app
        assert target.ecall_once(0, "load", 14) == b"malloc'd state"


class TestOcalls:
    def build_app(self, testbed):
        program = EnclaveProgram("tests/ocall-v1")

        def fetch(rt, args):
            # In-enclave code asks the untrusted host for data, then
            # seals a digest of it into enclave memory.
            payload = rt.ocall("read_file", {"path": args})
            rt.store_global("length", len(payload))
            return len(payload)

        program.add_entry("fetch", AtomicEntry(fetch))
        built = testbed.builder.build(
            "ocall-app", program, n_workers=1, global_names=("length",)
        )
        testbed.owner.register_image(built)
        return HostApplication(
            testbed.source, testbed.source_os, built.image, [], owner=testbed.owner
        )

    def test_ocall_round_trip(self, testbed):
        app = self.build_app(testbed)
        app.library.register_ocall("read_file", lambda args: b"x" * 37)
        app.launch()
        assert app.ecall_once(0, "fetch", "/etc/data") == 37

    def test_unregistered_ocall_rejected(self, testbed):
        app = self.build_app(testbed)
        app.launch()
        with pytest.raises(MigrationError):
            app.ecall_once(0, "fetch", "/etc/data")

    def test_arguments_are_marshalled_not_shared(self, testbed):
        app = self.build_app(testbed)
        seen = {}

        def handler(args):
            seen["args"] = dict(args)
            args["path"] = "mutated-by-host"  # must not reach enclave state
            return b""

        app.library.register_ocall("read_file", handler)
        app.launch()
        request = {"path": "original"}
        app.ecall_once(0, "fetch", "original")
        assert seen["args"] == {"path": "original"}
        assert request["path"] == "original"

    def test_live_objects_rejected_at_the_boundary(self, testbed):
        from repro.serde import SerdeError

        app = self.build_app(testbed)
        app.library.register_ocall("read_file", lambda args: object())
        app.launch()
        with pytest.raises(SerdeError):
            app.ecall_once(0, "fetch", "x")
