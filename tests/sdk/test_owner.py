"""The enclave owner: provisioning, key grants, audit."""

import pytest

from repro.errors import AttestationError
from repro.migration.agent import build_agent_image
from repro.sdk import control
from repro.sdk.host import HostApplication

from tests.conftest import build_counter_app, make_counter_program


class TestProvisioning:
    def test_unregistered_image_rejected(self, testbed):
        app = build_counter_app(testbed, tag="owner-unreg", provision=False)
        quote, dh = app.library.control_call(
            control.provision_request, testbed.source.quoting_enclave
        )
        with pytest.raises(AttestationError):
            testbed.owner.provision("never-registered", quote, dh)

    def test_wrong_image_rejected(self, testbed):
        app_a = build_counter_app(testbed, tag="owner-a", provision=False)
        build_counter_app(testbed, tag="owner-b", provision=False)
        quote, dh = app_a.library.control_call(
            control.provision_request, testbed.source.quoting_enclave
        )
        # A's quote presented as B: measurement check must fire.
        with pytest.raises(Exception):
            testbed.owner.provision("counter-owner-b", quote, dh)

    def test_provisioning_charges_wan_time(self, testbed):
        before = testbed.clock.now_ns
        build_counter_app(testbed, tag="owner-wan", provision=True)
        assert testbed.clock.now_ns - before >= 2 * testbed.costs.wan_round_trip_ns()

    def test_provision_payload_opaque_on_wire(self, testbed):
        """The sealed provisioning answer never exposes the private key."""
        app = build_counter_app(testbed, tag="owner-opaque", provision=False)
        quote, dh = app.library.control_call(
            control.provision_request, testbed.source.quoting_enclave
        )
        built_key_d = None
        # Find the registered image's private exponent via the owner.
        record = testbed.owner._images[app.image.name]
        built_key_d = record.built.image_private_key.private.d
        _pub, sealed = testbed.owner.provision(app.image.name, quote, dh)
        assert built_key_d.to_bytes(128, "big") not in sealed

    def test_agent_measurement_provisioned(self, testbed):
        agent_built = build_agent_image(testbed.builder)
        testbed.owner.set_agent_image(agent_built)
        app = build_counter_app(testbed, tag="owner-agent")
        from repro.sgx import instructions as isa

        session = isa.eenter(
            testbed.source.cpu, app.library.hw(), app.image.control_tcs.vaddr
        )
        rt = app.library._runtime(session)
        secrets = rt.load_obj("__image_privkey__")
        assert secrets["agent_mr"] == agent_built.image.mrenclave
        isa.eexit(session)


class TestKeyGrants:
    def test_snapshot_grant_creates_key_once(self, testbed):
        app = build_counter_app(testbed, tag="grant")
        record = testbed.owner._images[app.image.name]
        assert record.kencrypt is None
        quote, dh = app.library.control_call(
            control.owner_key_request, testbed.source.quoting_enclave, "snapshot"
        )
        testbed.owner.grant_snapshot_key(app.image.name, quote, dh, "r1")
        first_key = record.kencrypt
        assert first_key is not None
        quote2, dh2 = app.library.control_call(
            control.owner_key_request, testbed.source.quoting_enclave, "snapshot"
        )
        testbed.owner.grant_snapshot_key(app.image.name, quote2, dh2, "r2")
        assert record.kencrypt is first_key  # stable K_encrypt per image

    def test_purpose_binding_enforced(self, testbed):
        """A quote bound to 'snapshot' cannot be spent as 'resume'."""
        app = build_counter_app(testbed, tag="purpose")
        quote, dh = app.library.control_call(
            control.owner_key_request, testbed.source.quoting_enclave, "snapshot"
        )
        testbed.owner.grant_snapshot_key(app.image.name, quote, dh, "ok")
        with pytest.raises(AttestationError):
            testbed.owner.grant_resume_key(app.image.name, quote, dh, "sneaky")

    def test_record_snapshot_updates_audit(self, testbed):
        app = build_counter_app(testbed, tag="recsnap")
        quote, dh = app.library.control_call(
            control.owner_key_request, testbed.source.quoting_enclave, "snapshot"
        )
        testbed.owner.grant_snapshot_key(app.image.name, quote, dh, "r")
        testbed.owner.record_snapshot(app.image.name, 5)
        assert testbed.owner.audit_log[-1].sequence == 5
        assert testbed.owner._images[app.image.name].last_sequence == 5

    def test_empty_audit_has_no_rollbacks(self, testbed):
        assert testbed.owner.suspicious_rollbacks() == []
