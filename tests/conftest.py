"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest

from repro.invariants import active_monitors, reset_active
from repro.telemetry.flightrecorder import (
    active_recorders,
    reset_active as reset_recorders,
)
from repro.migration.testbed import Testbed, build_testbed
from repro.sdk.host import HostApplication, WorkerSpec
from repro.sdk.program import AtomicEntry, EnclaveProgram, ResumableEntry
from repro.sim.clock import VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace


@pytest.fixture(autouse=True)
def invariant_watchdog():
    """Suite-wide safety net: every testbed's invariant monitor must end clean.

    A violation normally raises at the moment it is observed, but a retry
    loop in the code under test may swallow the exception; the monitor
    also *records* every violation, and this fixture re-raises any that
    survived to teardown.  Tests that deliberately break an invariant
    call ``monitor.acknowledge()`` before returning.
    """
    reset_active()
    reset_recorders()
    try:
        yield
        for monitor in active_monitors():
            monitor.assert_clean()
    finally:
        reset_active()
        reset_recorders()


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    """On a failed test, dump every live flight recorder to disk.

    Only active when ``REPRO_FLIGHT_DIR`` is set (CI exports it and
    uploads the dumps as artifacts); local runs stay quiet.  Dumping is
    best-effort — a recorder error must never mask the real failure.
    """
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    if not os.environ.get("REPRO_FLIGHT_DIR"):
        return
    for recorder in active_recorders():
        try:
            recorder.dump(trigger=f"test-failure:{item.name}")
        except Exception:
            pass


@pytest.fixture
def clock() -> VirtualClock:
    return VirtualClock()


@pytest.fixture
def trace(clock) -> EventTrace:
    return EventTrace(clock)


@pytest.fixture
def rng() -> DeterministicRng:
    return DeterministicRng(1234)


@pytest.fixture
def costs():
    return DEFAULT_COSTS


@pytest.fixture
def testbed() -> Testbed:
    return build_testbed(seed=100)


def make_counter_program(tag: str = "shared") -> EnclaveProgram:
    """A small two-entry program used across many tests."""
    program = EnclaveProgram(f"tests/counter-{tag}-v1")

    def incr(rt, args):
        value = rt.load_global("counter") + int(1 if args is None else args)
        rt.store_global("counter", value)
        return value

    def read(rt, args):
        return rt.load_global("counter")

    program.add_entry("incr", AtomicEntry(incr))
    program.add_entry("read", AtomicEntry(read, cost_ns=1_000))

    def prepare(rt, args):
        return {"remaining": int(args)}

    def step(rt, regs):
        if regs["remaining"] > 0:
            rt.store_global("counter", rt.load_global("counter") + 1)
            regs["remaining"] -= 1
            regs["__pc"] -= 1
        else:
            regs["result"] = rt.load_global("counter")

    program.add_entry(
        "slow_incr", ResumableEntry(prepare=prepare, steps=(step, lambda rt, regs: None))
    )
    return program


def build_counter_app(
    tb: Testbed,
    tag: str = "shared",
    workers: list[WorkerSpec] | None = None,
    provision: bool = True,
) -> HostApplication:
    """Build, register and launch the counter app on the source machine."""
    built = tb.builder.build(
        f"counter-{tag}", make_counter_program(tag), n_workers=2, global_names=("counter",)
    )
    tb.owner.register_image(built)
    app = HostApplication(
        tb.source,
        tb.source_os,
        built.image,
        workers=workers if workers is not None else [],
        owner=tb.owner if provision else None,
    )
    app.launch()
    return app


@pytest.fixture
def counter_app(testbed) -> HostApplication:
    return build_counter_app(testbed)
