"""Crash recovery from the write-ahead journals.

The full crash-point matrix lives in the ``sweep``-marked integration
test; here each recovery *class* is pinned by one representative crash
point, plus the refusal paths (rollback) and the combined-fault cases
the issue calls out (partition + crash, agent exactly-once).
"""

from __future__ import annotations

import struct

import pytest

from repro.durability import wal
from repro.durability.recovery import MigrationRecovery
from repro.durability.sweep import (
    COUNTER_START,
    build_sweep_app,
    run_agent_crash_point,
    run_crash_point,
)
from repro.errors import JournalRolledBack, MigrationError, PartyCrash
from repro.faults import FaultInjector, FaultPlan
from repro.migration.testbed import build_testbed
from repro.migration.orchestrator import FAULT_TOLERANT_RETRY, MigrationOrchestrator


class TestRecoveryMatrix:
    """One representative crash point per recovery class."""

    @pytest.mark.parametrize(
        ("party", "record", "outcome", "live"),
        [
            # Source dies right after sealing its checkpoint: rebuild it
            # from its own journal record.
            ("source", 1, "recovered:source-restored", 1),
            # Source journaled `released` but the sealed key never reached
            # the orchestrator's log: K_migrate is gone, SPENT stays SPENT.
            ("source", 3, "recovered:aborted", 0),
            # Target dies after journaling the installed key: a rebuilt
            # same-measurement enclave unseals it and finishes.
            ("target", 2, "recovered:completed", 1),
            # Orchestrator dies mid-negotiation: roll back, resume source.
            ("orchestrator", 2, "recovered:resumed-source", 1),
            # Orchestrator dies after the key was delivered: recovery
            # re-sends the sealed blob — target_receive_key is idempotent.
            ("orchestrator", 7, "recovered:completed", 1),
        ],
    )
    def test_crash_point(self, party, record, outcome, live):
        result = run_crash_point(party, record, seed=71)
        assert result.outcome == outcome
        assert result.live_instances == live
        assert result.safe, result

    def test_recovered_target_keeps_running(self):
        """The finalized instance is a working enclave, not a husk."""
        tb = build_testbed(seed=72)
        app = build_sweep_app(tb)
        plan = FaultPlan(seed=72).crash_at_record(wal.PARTY_TARGET, 2)
        orch = MigrationOrchestrator(
            tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        with pytest.raises(PartyCrash):
            orch.migrate_enclave(app)
        report = MigrationRecovery(tb, app, orchestrator=orch).recover()
        assert report.outcome == "completed"
        target = report.target_app
        assert target.ecall_once(0, "incr", 3) == COUNTER_START + 3
        assert target.ecall_once(0, "read") == COUNTER_START + 3
        tb.monitor.assert_clean()

    def test_recovery_is_idempotent(self):
        """Running recovery twice converges on the same safe answer."""
        tb = build_testbed(seed=73)
        app = build_sweep_app(tb)
        plan = FaultPlan(seed=73).crash_at_record(wal.PARTY_ORCHESTRATOR, 6)
        orch = MigrationOrchestrator(
            tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        with pytest.raises(PartyCrash):
            orch.migrate_enclave(app)
        first = MigrationRecovery(tb, app, orchestrator=orch).recover()
        assert first.outcome == "completed"
        second = MigrationRecovery(
            tb, app, orchestrator=orch, target_app=first.target_app
        ).recover()
        assert second.outcome == "already-complete"
        assert second.live_instances == 1
        tb.monitor.assert_clean()


def _drop_last_frame(store, name: str) -> None:
    """Truncate the last full frame off a journal's byte log."""
    raw = store.log(name)
    offset, last = 0, 0
    while offset < len(raw):
        last = offset
        length, _crc = struct.unpack_from("<II", raw, offset)
        offset += 8 + length
    del raw[last:]


class TestRollbackRefusal:
    def test_truncated_party_journal_refused(self):
        tb = build_testbed(seed=74)
        app = build_sweep_app(tb)
        plan = FaultPlan(seed=74).crash_at_record(wal.PARTY_TARGET, 2)
        orch = MigrationOrchestrator(
            tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        with pytest.raises(PartyCrash):
            orch.migrate_enclave(app)
        # The adversary rolls the target's journal back past the
        # `key-installed` record to make recovery forget the key moved.
        _drop_last_frame(
            tb.durable, wal.enclave_journal_name("target", app.image.name)
        )
        with pytest.raises(JournalRolledBack):
            MigrationRecovery(tb, app, orchestrator=orch).recover()

    def test_truncated_wal_refused(self):
        tb = build_testbed(seed=75)
        app = build_sweep_app(tb)
        plan = FaultPlan(seed=75).crash_at_record(wal.PARTY_ORCHESTRATOR, 6)
        orch = MigrationOrchestrator(
            tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        with pytest.raises(PartyCrash):
            orch.migrate_enclave(app)
        # Dropping the `release` record would resurrect the SPENT source.
        _drop_last_frame(
            tb.durable, wal.orchestrator_journal_name(app.image.name)
        )
        with pytest.raises(JournalRolledBack):
            MigrationRecovery(tb, app, orchestrator=orch).recover()


class TestPartitionPlusCrash:
    def test_crash_inside_a_partition_window(self):
        """A party crash while the link is partitioned: the retry machinery
        heals the wire, the journal machinery heals the crash — together
        in one plan, the run must still end with ≤ 1 live instance."""
        tb = build_testbed(seed=76)
        app = build_sweep_app(tb)
        plan = (
            FaultPlan(seed=76)
            .partition(duration_ns=12_000_000, label="kmigrate")
            .crash_at_record(wal.PARTY_TARGET, 2)
        )
        orch = MigrationOrchestrator(
            tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        with pytest.raises(PartyCrash):
            orch.migrate_enclave(app)
        report = MigrationRecovery(tb, app, orchestrator=orch).recover()
        assert report.outcome == "completed"
        assert report.live_instances == 1
        assert report.target_app.ecall_once(0, "read") == COUNTER_START
        tb.monitor.assert_clean()

    def test_partition_then_source_crash(self):
        tb = build_testbed(seed=77)
        app = build_sweep_app(tb)
        plan = (
            FaultPlan(seed=77)
            .partition(duration_ns=8_000_000, label="channel-request")
            .crash_at_record(wal.PARTY_SOURCE, 2)
        )
        orch = MigrationOrchestrator(
            tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        with pytest.raises(PartyCrash):
            orch.migrate_enclave(app)
        report = MigrationRecovery(tb, app, orchestrator=orch).recover()
        assert report.outcome == "source-restored"
        assert report.live_instances == 1
        tb.monitor.assert_clean()


class TestAgentExactlyOnce:
    def test_escrow_crash_recovers_and_completes(self):
        result = run_agent_crash_point(1, seed=78)
        assert result.outcome == "completed"
        assert result.live_instances == 1
        assert result.safe

    def test_release_crash_recovers_as_released(self):
        """Crash right after the `escrow-release` commit: the recovered
        agent refuses a second release — exactly-once beats availability,
        so the run ends as a clean abort with zero live instances."""
        result = run_agent_crash_point(2, seed=79)
        assert result.outcome == "aborted"
        assert result.live_instances == 0
        assert result.safe

    def test_duplicate_release_refused_after_agent_rebuild(self):
        from repro.migration.agent import AgentService, build_agent_image

        tb = build_testbed(seed=80)
        agent_built = build_agent_image(tb.builder)
        tb.owner.set_agent_image(agent_built)
        app = build_sweep_app(tb)
        agent = AgentService(tb, agent_built)
        orch = MigrationOrchestrator(tb, retry=FAULT_TOLERANT_RETRY)
        orch.checkpoint_enclave(app)
        agent.escrow_from(app)
        target = orch.build_virgin_target(app)
        agent.release_to(target)
        # The agent process dies *after* a successful release; its journal
        # ends with `escrow-release`, so the rebuilt table must refuse a
        # second hand-out to a fresh same-measurement instance.
        agent.app.library.destroy()
        assert agent.recover() == 1
        second = orch.build_virgin_target(app)
        with pytest.raises(MigrationError):
            agent.release_to(second)
