"""The write-ahead journal: framing, commit semantics, tamper defense."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.durability import DurableStore, Journal
from repro.errors import JournalCorrupt, JournalRolledBack
from repro.migration.testbed import build_testbed
from tests.conftest import build_counter_app


@pytest.fixture
def store() -> DurableStore:
    return DurableStore()


@pytest.fixture
def journal(store) -> Journal:
    return Journal(store, "enclave/source/demo", "source")


class TestAppendReplay:
    def test_roundtrip(self, journal):
        journal.append("begin", {"image": "demo"})
        journal.append("checkpoint", {"sequence": 1, "blob": b"\x00\x01"})
        journal.append("released")
        records = journal.records()
        assert [r.kind for r in records] == ["begin", "checkpoint", "released"]
        assert [r.counter for r in records] == [1, 2, 3]
        assert records[1].payload == {"sequence": 1, "blob": b"\x00\x01"}
        assert records[2].payload is None

    def test_append_returns_counter_and_bumps_hardware(self, store, journal):
        assert journal.append("a") == 1
        assert journal.append("b") == 2
        assert store.counter(journal.name) == 2

    def test_queries(self, journal):
        journal.append("checkpoint", {"sequence": 1})
        journal.append("channel")
        journal.append("checkpoint", {"sequence": 2})
        assert journal.has("channel")
        assert not journal.has("released")
        assert journal.last("checkpoint").payload == {"sequence": 2}
        assert len(journal.find("checkpoint")) == 2
        assert journal.kinds() == ["checkpoint", "channel", "checkpoint"]
        assert len(journal) == 3

    def test_journals_are_independent(self, store):
        a = Journal(store, "enclave/source/a", "source")
        b = Journal(store, "enclave/target/a", "target")
        a.append("one")
        assert b.records() == []
        assert store.counter(b.name) == 0


class TestTamperDefense:
    def test_crc_flip_is_corrupt(self, store, journal):
        journal.append("checkpoint", {"sequence": 1})
        log = store.log(journal.name)
        log[len(log) // 2] ^= 0x40
        with pytest.raises(JournalCorrupt):
            journal.records()

    def test_torn_tail_header_is_dropped(self, store, journal):
        journal.append("a")
        # A crash mid-append leaves a partial frame header with no commit.
        store.log(journal.name).extend(b"\x99\x00")
        assert [r.kind for r in journal.records()] == ["a"]

    def test_uncommitted_full_frame_is_dropped(self, store, journal):
        journal.append("a")
        # Frame fully written but the counter bump never happened: the
        # record has counter == hw_counter + 1 and must not replay.
        from repro import serde

        body = serde.pack({"c": 2, "k": "b", "p": None})
        frame = struct.pack("<II", len(body), zlib.crc32(body)) + body
        store.log(journal.name).extend(frame)
        assert [r.kind for r in journal.records()] == ["a"]

    def test_truncated_journal_is_refused_as_rollback(self, store, journal):
        journal.append("a")
        before_released = len(store.log(journal.name))
        journal.append("released")
        # The adversary truncates the log back to before the release —
        # the classic rollback.  The monotonic counter refuses it.
        del store.log(journal.name)[before_released:]
        with pytest.raises(JournalRolledBack):
            journal.records()

    def test_substituted_earlier_copy_is_refused(self, store, journal):
        journal.append("a")
        snapshot = bytes(store.log(journal.name))
        journal.append("b")
        journal.append("c")
        log = store.log(journal.name)
        log.clear()
        log.extend(snapshot)
        with pytest.raises(JournalRolledBack):
            journal.records()

    def test_counter_gap_is_corrupt(self, store, journal):
        from repro import serde

        journal.append("a")
        body = serde.pack({"c": 3, "k": "skip", "p": None})
        frame = struct.pack("<II", len(body), zlib.crc32(body)) + body
        store.log(journal.name).extend(frame)
        store.counter_bump(journal.name)
        store.counter_bump(journal.name)
        with pytest.raises(JournalCorrupt):
            journal.records()


class TestSealedRecords:
    def test_seal_roundtrip_inside_enclave(self):
        tb = build_testbed(seed=61)
        app = build_counter_app(tb, tag="seal")
        secret = {"kmigrate": b"\xaa" * 16, "sequence": 3}

        def seal(rt):
            return rt.journal_seal(secret)

        blob = app.library.control_call(seal)
        assert b"\xaa" * 16 not in blob  # sealed, not encoded

        def unseal(rt, sealed):
            return rt.journal_unseal(sealed)

        assert app.library.control_call(unseal, blob) == secret

    def test_seal_survives_instance_rebuild(self):
        """Same measurement + same machine ⇒ a rebuilt enclave can unseal."""
        tb = build_testbed(seed=62)
        app = build_counter_app(tb, tag="reseal")
        blob = app.library.control_call(lambda rt: rt.journal_seal({"v": 9}))
        app.library.destroy()
        app.library.launch(owner=None)
        assert app.library.control_call(
            lambda rt, b: rt.journal_unseal(b), blob
        ) == {"v": 9}

    def test_other_measurement_cannot_unseal(self):
        from repro.errors import ReproError

        tb = build_testbed(seed=63)
        app = build_counter_app(tb, tag="sealer")
        other = build_counter_app(tb, tag="intruder")
        blob = app.library.control_call(lambda rt: rt.journal_seal({"v": 1}))
        with pytest.raises(ReproError):
            other.library.control_call(lambda rt, b: rt.journal_unseal(b), blob)


class TestMigrationJournaling:
    def test_every_party_journals_a_clean_migration(self):
        from repro.durability import wal
        from repro.migration.orchestrator import MigrationOrchestrator

        tb = build_testbed(seed=64)
        app = build_counter_app(tb, tag="journaled")
        app.ecall_once(0, "incr", 5)
        MigrationOrchestrator(tb).migrate_enclave(app)
        image = app.image.name
        orch_journal = Journal(
            tb.durable, wal.orchestrator_journal_name(image), wal.PARTY_ORCHESTRATOR
        )
        src_journal = Journal(
            tb.durable, wal.enclave_journal_name("source", image), wal.PARTY_SOURCE
        )
        tgt_journal = Journal(
            tb.durable, wal.enclave_journal_name("target", image), wal.PARTY_TARGET
        )
        assert orch_journal.kinds() == [
            wal.WAL_BEGIN,
            wal.WAL_CHECKPOINT,
            wal.WAL_TARGET_BUILT,
            wal.WAL_CHANNEL,
            wal.WAL_TRANSFERRED,
            wal.WAL_RELEASE,
            wal.WAL_DELIVERED,
            wal.WAL_RESTORED,
            wal.WAL_DONE,
        ]
        assert src_journal.kinds() == [
            wal.REC_CHECKPOINT,
            wal.REC_CHANNEL_OPEN,
            wal.REC_RELEASED,
        ]
        assert tgt_journal.kinds() == [
            wal.REC_CHANNEL,
            wal.REC_KEY_INSTALLED,
            wal.REC_LIVE,
        ]

    def test_journaled_secrets_are_sealed(self):
        """K_migrate never hits the untrusted store in the clear."""
        from repro.migration.orchestrator import MigrationOrchestrator
        from repro.sdk import control

        tb = build_testbed(seed=65)
        app = build_counter_app(tb, tag="sealed-secrets")
        orch = MigrationOrchestrator(tb)
        orch.checkpoint_enclave(app)
        kmigrate = app.library.control_call(
            lambda rt: (rt.load_obj(control.OBJ_CHANNEL) or {}).get("kmigrate")
        )
        assert kmigrate is not None
        for name in tb.durable.names():
            assert kmigrate not in bytes(tb.durable.log(name))
