"""Migratable sealed storage: freshness, handoff, and crash repair.

The namespace is one sealed table blob on untrusted disk guarded by
three monotonic counters; everything the counters contradict must be
refused with a typed :class:`~repro.errors.SealedStorageError` subclass.
The handoff tests drive the real migration protocol (the new
``handoff-storage`` step) and the repair tests crash a party between the
journaled import intent and the namespace commit.
"""

from __future__ import annotations

import pytest

from repro.durability import wal
from repro.durability.recovery import MigrationRecovery
from repro.errors import (
    PartyCrash,
    StorageRetired,
    StorageRolledBack,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.migration.orchestrator import (
    FAULT_TOLERANT_RETRY,
    MigrationOrchestrator,
)
from repro.sdk import control
from tests.conftest import build_counter_app


def _seed(app, upto=3):
    for n in range(1, upto + 1):
        app.library.control_call(control.storage_put, f"k{n}", f"v{n}")


class TestRuntimeFreshness:
    def test_put_get_roundtrip_advances_version(self, testbed):
        app = build_counter_app(testbed, tag="rt")
        assert app.library.control_call(control.storage_put, "a", 1) == 1
        assert app.library.control_call(control.storage_put, "b", 2) == 2
        assert app.library.control_call(control.storage_get, "a") == 1
        ns = wal.storage_namespace("source", app.image.name)
        assert testbed.durable.counter(ns) == 2

    def test_blob_on_disk_is_ciphertext(self, testbed):
        app = build_counter_app(testbed, tag="conf")
        app.library.control_call(control.storage_put, "pin", "0000-SECRET-PIN")
        ns = wal.storage_namespace("source", app.image.name)
        assert b"0000-SECRET-PIN" not in bytes(testbed.durable.log(ns))

    def test_stale_blob_restore_is_refused(self, testbed):
        app = build_counter_app(testbed, tag="stale")
        app.library.control_call(control.storage_put, "n", 1)
        ns = wal.storage_namespace("source", app.image.name)
        stale = bytes(testbed.durable.log(ns))
        app.library.control_call(control.storage_put, "n", 2)
        testbed.durable.set_log(ns, stale)
        with pytest.raises(StorageRolledBack, match="stale copy"):
            app.library.control_call(control.storage_get, "n")

    def test_deleted_blob_is_refused_not_served_empty(self, testbed):
        app = build_counter_app(testbed, tag="gone")
        app.library.control_call(control.storage_put, "n", 1)
        ns = wal.storage_namespace("source", app.image.name)
        testbed.durable.set_log(ns, b"")
        with pytest.raises(StorageRolledBack, match="sealed table is gone"):
            app.library.control_call(control.storage_get, "n")

    def test_torn_commit_self_heals(self, testbed):
        """Blob at version+1 with the counter one behind = the crash beat
        the counter advance; the MAC proves it is ours, so the next read
        finishes the commit instead of refusing."""
        app = build_counter_app(testbed, tag="torn")
        app.library.control_call(control.storage_put, "n", 1)

        def torn_put(rt):
            from repro.crypto.authenc import seal_envelope
            from repro.serde import pack

            entries, version = rt.storage_table()
            entries["n"] = 2
            envelope = seal_envelope(
                rt._storage_seal_key(),
                pack({"version": version + 1, "entries": entries}),
                rt.random_bytes(16),
                "aes",
                aad=b"sealed-storage",
            )
            # The blob hits disk; the "crash" lands before counter_advance.
            rt._journal.store.set_log(rt.storage_namespace(), envelope.to_bytes())

        app.library.control_call(torn_put)
        assert app.library.control_call(control.storage_get, "n") == 2
        ns = wal.storage_namespace("source", app.image.name)
        assert testbed.durable.counter(ns) == 2


class TestHandoffThroughMigration:
    def test_storage_follows_the_enclave(self, testbed):
        app = build_counter_app(testbed, tag="follow")
        _seed(app)
        result = MigrationOrchestrator(testbed).migrate_enclave(app)
        for n in range(1, 4):
            assert (
                result.target_app.library.control_call(control.storage_get, f"k{n}")
                == f"v{n}"
            )
        # The target's namespace took over at the source's version.
        target_ns = wal.storage_namespace("target", app.image.name)
        assert testbed.durable.counter(target_ns) == 3

    def test_source_namespace_is_tombstoned(self, testbed):
        app = build_counter_app(testbed, tag="tomb")
        _seed(app, upto=1)
        MigrationOrchestrator(testbed).migrate_enclave(app)
        source_ns = wal.storage_namespace("source", app.image.name)
        retired = testbed.durable.counter(wal.storage_retired_counter(source_ns))
        handoff = testbed.durable.counter(wal.storage_handoff_counter(source_ns))
        assert retired >= handoff and retired > 0

    def test_storageless_migration_moves_no_storage(self, testbed):
        """No namespace → the step negotiates away: no storage wire
        message, no storage WAL records, byte-identical protocol."""
        app = build_counter_app(testbed, tag="none")
        MigrationOrchestrator(testbed).migrate_enclave(app)
        assert testbed.network.captured("storage-handoff") == []
        assert wal.storage_digests(testbed.durable) == {}

    def test_storage_digests_summarize_both_hosts(self, testbed):
        """The operator surface (``repro faults --storage`` etc.) shows a
        ciphertext digest plus all three counters per namespace, on both
        sides after a handoff."""
        app = build_counter_app(testbed, tag="digest")
        _seed(app, upto=2)
        before = wal.storage_digests(testbed.durable)
        source_ns = wal.storage_namespace("source", app.image.name)
        assert set(before) == {source_ns}
        assert before[source_ns]["version"] == 2
        MigrationOrchestrator(testbed).migrate_enclave(app)
        after = wal.storage_digests(testbed.durable)
        target_ns = wal.storage_namespace("target", app.image.name)
        assert set(after) == {source_ns, target_ns}
        assert after[target_ns]["version"] == 2
        # Re-sealed under the target's EGETKEY identity: same plaintext,
        # different ciphertext.
        assert after[target_ns]["sha256"] != before[source_ns]["sha256"]
        assert after[source_ns]["retired"] >= after[source_ns]["handoff"]


class TestCrashRepair:
    def test_target_crash_between_intent_and_commit(self, testbed):
        """Crash the target right as its ``storage-import`` record commits
        (intent journaled, namespace not yet rewritten): recovery must
        re-commit the table from the journal and finish the migration
        with the data intact."""
        app = build_counter_app(testbed, tag="repair")
        _seed(app)
        # Target records: 1 channel answer, 2 storage-import, 3 key, 4 live.
        plan = FaultPlan(seed=7).crash_at_record(wal.PARTY_TARGET, 2)
        orch = MigrationOrchestrator(
            testbed, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        try:
            result = orch.migrate_enclave(app)
            survivor = result.target_app
        except PartyCrash:
            report = MigrationRecovery(testbed, app, orchestrator=orch).recover()
            assert report.live_instances == 1
            survivor = report.target_app if report.target_app is not None else app
        assert survivor.library.control_call(control.storage_get, "k2") == "v2"

    def test_source_crash_after_export_keeps_source_store(self, testbed):
        """A source that crashes after exporting (pre-release) is restored
        with its namespace intact — the export was not the point of no
        return."""
        app = build_counter_app(testbed, tag="export-crash")
        _seed(app, upto=2)
        # Source records: 1 checkpoint, 2 channel-open, 3 storage-export.
        plan = FaultPlan(seed=8).crash_at_record(wal.PARTY_SOURCE, 3)
        orch = MigrationOrchestrator(
            testbed, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        with pytest.raises(PartyCrash):
            orch.migrate_enclave(app)
        report = MigrationRecovery(testbed, app, orchestrator=orch).recover()
        assert report.live_instances == 1
        survivor = report.target_app if report.target_app is not None else app
        assert survivor.library.control_call(control.storage_get, "k1") == "v1"
        assert survivor.library.control_call(control.storage_put, "k3", "v3") >= 3
