"""MEE sealing and CPU-level mechanics (charge collection, key scoping)."""

import pytest

from repro.crypto.keys import SymmetricKey
from repro.errors import SgxMacMismatch
from repro.sgx.mee import MemoryEncryptionEngine
from repro.sgx.structures import PAGE_SIZE, PageType, Permissions


@pytest.fixture
def mee():
    return MemoryEncryptionEngine(SymmetricKey(b"\x11" * 32, "cpu-a"))


@pytest.fixture
def other_mee():
    return MemoryEncryptionEngine(SymmetricKey(b"\x22" * 32, "cpu-b"))


PAGE = bytes(range(256)) * 16


class TestMee:
    def test_seal_unseal_roundtrip(self, mee):
        sealed = mee.seal_page(PAGE, eid=3, vaddr=0x1000, page_type=PageType.REG,
                               permissions=Permissions.RW, version=7)
        assert mee.unseal_page(sealed, expected_version=7) == PAGE

    def test_ciphertext_differs_from_plaintext(self, mee):
        sealed = mee.seal_page(PAGE, 3, 0x1000, PageType.REG, Permissions.RW, 7)
        assert sealed.ciphertext != PAGE

    def test_cross_engine_rejected(self, mee, other_mee):
        sealed = mee.seal_page(PAGE, 3, 0x1000, PageType.REG, Permissions.RW, 7)
        with pytest.raises(SgxMacMismatch):
            other_mee.unseal_page(sealed, expected_version=7)

    def test_version_mismatch_rejected(self, mee):
        sealed = mee.seal_page(PAGE, 3, 0x1000, PageType.REG, Permissions.RW, 7)
        with pytest.raises(SgxMacMismatch):
            mee.unseal_page(sealed, expected_version=8)

    def test_metadata_is_authenticated(self, mee):
        from dataclasses import replace

        sealed = mee.seal_page(PAGE, 3, 0x1000, PageType.REG, Permissions.RW, 7)
        for mutation in (
            {"eid": 4},
            {"vaddr": 0x2000},
            {"page_type": PageType.TCS},
        ):
            forged = replace(sealed, **mutation)
            with pytest.raises(SgxMacMismatch):
                mee.unseal_page(forged, expected_version=7)

    def test_tampered_ciphertext_rejected(self, mee):
        from dataclasses import replace

        sealed = mee.seal_page(PAGE, 3, 0x1000, PageType.REG, Permissions.RW, 7)
        bad = replace(sealed, ciphertext=b"\x00" + sealed.ciphertext[1:])
        with pytest.raises(SgxMacMismatch):
            mee.unseal_page(bad, expected_version=7)

    def test_same_page_different_versions_differ(self, mee):
        a = mee.seal_page(PAGE, 3, 0x1000, PageType.REG, Permissions.RW, 1)
        b = mee.seal_page(PAGE, 3, 0x1000, PageType.REG, Permissions.RW, 2)
        assert a.ciphertext != b.ciphertext


class TestCpuChargeCollection:
    def test_charges_hit_clock_by_default(self, cpu):
        before = cpu.clock.now_ns
        cpu.charge(1234)
        assert cpu.clock.now_ns == before + 1234

    def test_collected_charges_deferred(self, cpu):
        before = cpu.clock.now_ns
        with cpu.collect_charges() as box:
            cpu.charge(1000)
            cpu.charge(500)
        assert box[0] == 1500
        assert cpu.clock.now_ns == before  # nothing hit the clock

    def test_collection_nests_and_restores(self, cpu):
        with cpu.collect_charges() as outer:
            cpu.charge(10)
            with cpu.collect_charges() as inner:
                cpu.charge(5)
            cpu.charge(1)
        assert inner[0] == 5
        assert outer[0] == 11
        before = cpu.clock.now_ns
        cpu.charge(7)  # back to direct mode
        assert cpu.clock.now_ns == before + 7

    def test_collection_restored_on_exception(self, cpu):
        with pytest.raises(RuntimeError):
            with cpu.collect_charges():
                raise RuntimeError("boom")
        before = cpu.clock.now_ns
        cpu.charge(3)
        assert cpu.clock.now_ns == before + 3


class TestCpuKeyScoping:
    def test_report_keys_differ_per_identity(self, cpu):
        assert cpu._report_key_for(b"\x01" * 32) != cpu._report_key_for(b"\x02" * 32)

    def test_seal_keys_differ_per_identity(self, cpu):
        assert cpu._seal_key_for(b"a") != cpu._seal_key_for(b"b")

    def test_keys_differ_per_cpu(self, cpu, second_cpu):
        identity = b"\x01" * 32
        assert cpu._report_key_for(identity) != second_cpu._report_key_for(identity)

    def test_eids_monotone(self, cpu):
        assert cpu.new_eid() < cpu.new_eid() < cpu.new_eid()

    def test_versions_monotone(self, cpu):
        assert cpu.next_version() < cpu.next_version()
