"""The §VII-B proposed hardware extensions for transparent migration."""

import pytest

from repro.errors import SgxInstructionFault, SgxMacMismatch
from repro.sgx import instructions as isa
from repro.sgx import proposed
from repro.sgx.cpu import SgxCpu
from repro.sim.clock import VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace

from tests.sgx.conftest import BASE, build_raw_enclave


def make_cpu(name):
    clock = VirtualClock()
    return SgxCpu(name, clock, DEFAULT_COSTS, EventTrace(clock), DeterministicRng(name), epc_pages=256)


@pytest.fixture
def machines():
    return make_cpu("hw-src"), make_cpu("hw-tgt")


def install_keys(src, tgt):
    ce_src, ce_tgt = proposed.ControlEnclave(src), proposed.ControlEnclave(tgt)
    keys = ce_src.negotiate_keys(ce_tgt)
    proposed.eputkey(src, ce_src, keys)
    proposed.eputkey(tgt, ce_tgt, keys)
    return keys


def hw_migrate(src, tgt, enclave):
    proposed.emigrate(src, enclave)
    blobs = [proposed.eswpout_secs(src, enclave)]
    for vaddr in list(enclave.mapped_vaddrs()):
        if enclave.page_present(vaddr):
            blobs.append(proposed.eswpout(src, enclave, vaddr))
    mac = proposed.finalize_stream(enclave)
    new_enclave = proposed.eswpin_secs(tgt, blobs[0])
    for blob in blobs[1:]:
        proposed.eswpin(tgt, new_enclave, blob)
    proposed.emigratedone(tgt, new_enclave, mac)
    return new_enclave


class TestKeyInstallation:
    def test_eputkey_requires_control_enclave_on_same_cpu(self, machines):
        src, tgt = machines
        ce_src = proposed.ControlEnclave(src)
        ce_tgt = proposed.ControlEnclave(tgt)
        keys = ce_src.negotiate_keys(ce_tgt)
        with pytest.raises(SgxInstructionFault):
            proposed.eputkey(src, ce_tgt, keys)  # wrong machine's CE

    def test_negotiation_requires_two_machines(self, machines):
        src, _ = machines
        ce = proposed.ControlEnclave(src)
        with pytest.raises(SgxInstructionFault):
            ce.negotiate_keys(proposed.ControlEnclave(src))

    def test_operations_require_keys(self, machines, vendor):
        src, _ = machines
        enclave, _ = build_raw_enclave(src, vendor)
        with pytest.raises(SgxInstructionFault):
            proposed.emigrate(src, enclave)


class TestTransparentMigration:
    def test_full_migration_preserves_everything(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, tcs_vaddr = build_raw_enclave(src, vendor, data=b"live state")
        # Leave a thread mid-flight: CSSA = 1 with a saved context.
        session = isa.eenter(src, enclave, tcs_vaddr)
        session.write(BASE + 100, b"mutated")
        isa.aex(session, {"pc": 42})

        new_enclave = hw_migrate(src, tgt, enclave)

        assert new_enclave.secs.mrenclave == enclave.secs.mrenclave
        assert not new_enclave.frozen
        # CSSA migrated transparently — the thing SGX v1 cannot do.
        resumed, ctx = isa.eresume(tgt, new_enclave, tcs_vaddr)
        assert ctx == {"pc": 42}
        assert resumed.read(BASE, 10) == b"live state"
        assert resumed.read(BASE + 100, 7) == b"mutated"
        isa.eexit(resumed)

    def test_frozen_source_cannot_run(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, tcs_vaddr = build_raw_enclave(src, vendor)
        proposed.emigrate(src, enclave)
        with pytest.raises(SgxInstructionFault):
            isa.eenter(src, enclave, tcs_vaddr)

    def test_emigrate_requires_quiescence(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, tcs_vaddr = build_raw_enclave(src, vendor)
        isa.eenter(src, enclave, tcs_vaddr)  # logical processor inside
        with pytest.raises(SgxInstructionFault):
            proposed.emigrate(src, enclave)

    def test_eswpout_requires_emigrate(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor)
        with pytest.raises(SgxInstructionFault):
            proposed.eswpout(src, enclave, BASE)

    def test_swapped_pages_are_ciphertext(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor, data=b"FIND-ME-PLAINTEXT")
        proposed.emigrate(src, enclave)
        blob = proposed.eswpout(src, enclave, BASE)
        assert b"FIND-ME-PLAINTEXT" not in blob.ciphertext

    def test_tampered_page_rejected(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor)
        proposed.emigrate(src, enclave)
        secs_blob = proposed.eswpout_secs(src, enclave)
        blob = proposed.eswpout(src, enclave, BASE)
        bad = proposed.MigratablePage(
            blob.kind, blob.vaddr, blob.seq, b"\x00" + blob.ciphertext[1:], blob.mac
        )
        new_enclave = proposed.eswpin_secs(tgt, secs_blob)
        with pytest.raises(SgxMacMismatch):
            proposed.eswpin(tgt, new_enclave, bad)

    def test_missing_page_caught_by_emigratedone(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor)
        proposed.emigrate(src, enclave)
        blobs = [proposed.eswpout_secs(src, enclave)]
        for vaddr in list(enclave.mapped_vaddrs()):
            if enclave.page_present(vaddr):
                blobs.append(proposed.eswpout(src, enclave, vaddr))
        mac = proposed.finalize_stream(enclave)
        new_enclave = proposed.eswpin_secs(tgt, blobs[0])
        for blob in blobs[1:-1]:  # drop the last page
            proposed.eswpin(tgt, new_enclave, blob)
        with pytest.raises(SgxMacMismatch):
            proposed.emigratedone(tgt, new_enclave, mac)

    def test_wrong_keys_on_target_rejected(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor)
        proposed.emigrate(src, enclave)
        secs_blob = proposed.eswpout_secs(src, enclave)
        # A third machine with different keys cannot import the stream.
        third = make_cpu("hw-third")
        install_keys(src, third)  # overwrites src keys too, but target
        # of the *original* stream is what matters: third's keys differ
        # from the stream's keys only if negotiation re-ran; force it:
        other = make_cpu("hw-other")
        install_keys(third, other)
        with pytest.raises(SgxMacMismatch):
            proposed.eswpin_secs(third, secs_blob)

    def test_ectr_roundtrips_the_counter_bank(self, machines, vendor):
        """ECTROUT/ECTRIN carry the monotonic-counter bank inside the
        MAC'd migration stream — the hardware analogue of the software
        storage handoff."""
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor)
        proposed.emigrate(src, enclave)
        page = proposed.ectrout(src, enclave, {"version": 5, "handoff": 2})
        assert page.kind == "ctr"
        bank = proposed.ectrin(tgt, page, {"version": 3, "handoff": 2})
        assert bank == {"version": 5, "handoff": 2}

    def test_ectrin_faults_on_any_rewind(self, machines, vendor):
        """A bank below the target's local view is a hardware-blessed
        rollback: the instruction faults instead of clamping."""
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor)
        proposed.emigrate(src, enclave)
        page = proposed.ectrout(src, enclave, {"version": 5})
        with pytest.raises(SgxInstructionFault, match="rewind"):
            proposed.ectrin(tgt, page, {"version": 6})
        # A counter the bank does not carry counts as 0 — still a rewind.
        with pytest.raises(SgxInstructionFault, match="rewind"):
            proposed.ectrin(tgt, page, {"other": 1})

    def test_ectrout_requires_migration_state(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor)
        with pytest.raises(SgxInstructionFault):
            proposed.ectrout(src, enclave, {"version": 1})
        proposed.emigrate(src, enclave)
        with pytest.raises(SgxInstructionFault, match="non-negative"):
            proposed.ectrout(src, enclave, {"version": -1})

    def test_ectrin_rejects_non_counter_pages(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor)
        proposed.emigrate(src, enclave)
        page_blob = proposed.eswpout(src, enclave, BASE)
        with pytest.raises(SgxInstructionFault, match="counter-bank"):
            proposed.ectrin(tgt, page_blob, {})

    def test_echangeout_rekeys_evicted_pages(self, machines, vendor):
        src, tgt = machines
        install_keys(src, tgt)
        enclave, _ = build_raw_enclave(src, vendor, n_data_pages=2, data=b"evicted page")
        # Evict one page the classic way first.
        va = isa.alloc_va_page(src)
        evicted = isa.ewb(src, enclave, BASE, va, 0)
        proposed.emigrate(src, enclave)
        blobs = [proposed.eswpout_secs(src, enclave)]
        blobs.append(proposed.echangeout(src, enclave, evicted, va, 0))
        for vaddr in list(enclave.mapped_vaddrs()):
            if enclave.page_present(vaddr):
                blobs.append(proposed.eswpout(src, enclave, vaddr))
        mac = proposed.finalize_stream(enclave)
        new_enclave = proposed.eswpin_secs(tgt, blobs[0])
        for blob in blobs[1:]:
            proposed.eswpin(tgt, new_enclave, blob)
        proposed.emigratedone(tgt, new_enclave, mac)
        tcs_vaddr = max(new_enclave.mapped_vaddrs())
        session = isa.eenter(tgt, new_enclave, tcs_vaddr)
        assert session.read(BASE, 12) == b"evicted page"
        isa.eexit(session)
