"""EPC allocation/EPCM bookkeeping and MRENCLAVE computation."""

import pytest

from repro.errors import SgxEpcExhausted, SgxInstructionFault
from repro.sgx.epc import Epc
from repro.sgx.measurement import MeasurementLog
from repro.sgx.structures import PAGE_SIZE, PageType, Permissions, SecInfo


class TestEpc:
    def test_alloc_marks_entry(self):
        epc = Epc(16)
        page = epc.alloc(5, 0x1000, PageType.REG, Permissions.RW)
        entry = epc.entry(page.index)
        assert entry.valid and entry.owner_eid == 5 and entry.vaddr == 0x1000
        assert entry.permissions == Permissions.RW

    def test_exhaustion(self):
        epc = Epc(8)
        for i in range(8):
            epc.alloc(1, i * PAGE_SIZE, PageType.REG, Permissions.RW)
        with pytest.raises(SgxEpcExhausted):
            epc.alloc(1, 0x9000, PageType.REG, Permissions.RW)

    def test_free_recycles(self):
        epc = Epc(8)
        pages = [epc.alloc(1, i * PAGE_SIZE, PageType.REG, Permissions.RW) for i in range(8)]
        epc.free(pages[3].index)
        assert epc.free_count == 1
        epc.alloc(2, 0x0, PageType.REG, Permissions.R)  # reuses the slot

    def test_free_scrubs_content(self):
        epc = Epc(8)
        page = epc.alloc(1, 0, PageType.REG, Permissions.RW)
        page.data[:5] = b"SECRET"[:5]
        index = page.index
        epc.free(index)
        assert bytes(epc.page(index).data[:5]) == b"\x00" * 5

    def test_double_free_rejected(self):
        epc = Epc(8)
        page = epc.alloc(1, 0, PageType.REG, Permissions.RW)
        epc.free(page.index)
        with pytest.raises(SgxInstructionFault):
            epc.free(page.index)

    def test_pages_of_filters_by_owner(self):
        epc = Epc(16)
        epc.alloc(1, 0x1000, PageType.REG, Permissions.RW)
        epc.alloc(2, 0x2000, PageType.REG, Permissions.RW)
        epc.alloc(1, 0x3000, PageType.REG, Permissions.RW)
        assert len(epc.pages_of(1)) == 2
        assert len(epc.pages_of(2)) == 1

    def test_counts(self):
        epc = Epc(16)
        assert epc.free_count == 16 and epc.used_count == 0
        epc.alloc(1, 0, PageType.REG, Permissions.RW)
        assert epc.free_count == 15 and epc.used_count == 1

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            Epc(4)


class TestMeasurement:
    def sec_info(self):
        return SecInfo(PageType.REG, Permissions.RW)

    def test_same_sequence_same_digest(self):
        logs = [MeasurementLog() for _ in range(2)]
        for log in logs:
            log.ecreate(0x1000, 0x4000)
            log.eadd(0x1000, self.sec_info())
            log.eextend(0x1000, b"A" * PAGE_SIZE)
        assert logs[0].finalize() == logs[1].finalize()

    def test_content_changes_digest(self):
        a, b = MeasurementLog(), MeasurementLog()
        for log, fill in ((a, b"A"), (b, b"B")):
            log.ecreate(0x1000, 0x4000)
            log.eadd(0x1000, self.sec_info())
            log.eextend(0x1000, fill * PAGE_SIZE)
        assert a.finalize() != b.finalize()

    def test_layout_changes_digest(self):
        a, b = MeasurementLog(), MeasurementLog()
        a.ecreate(0x1000, 0x4000)
        b.ecreate(0x1000, 0x8000)
        assert a.finalize() != b.finalize()

    def test_permissions_change_digest(self):
        a, b = MeasurementLog(), MeasurementLog()
        a.ecreate(0, 0x1000)
        b.ecreate(0, 0x1000)
        a.eadd(0, SecInfo(PageType.REG, Permissions.RW))
        b.eadd(0, SecInfo(PageType.REG, Permissions.RX))
        assert a.finalize() != b.finalize()

    def test_order_matters(self):
        a, b = MeasurementLog(), MeasurementLog()
        for log, order in ((a, (0x1000, 0x2000)), (b, (0x2000, 0x1000))):
            log.ecreate(0, 0x10000)
            for vaddr in order:
                log.eadd(vaddr, self.sec_info())
        assert a.finalize() != b.finalize()

    def test_no_updates_after_finalize(self):
        log = MeasurementLog()
        log.ecreate(0, 0x1000)
        log.finalize()
        with pytest.raises(SgxInstructionFault):
            log.eadd(0, self.sec_info())

    def test_eextend_requires_full_page(self):
        log = MeasurementLog()
        log.ecreate(0, 0x1000)
        with pytest.raises(SgxInstructionFault):
            log.eextend(0, b"short")

    def test_finalize_idempotent(self):
        log = MeasurementLog()
        log.ecreate(0, 0x1000)
        assert log.finalize() == log.finalize() == log.value
