"""Architectural structure serialization and determinism."""

import pytest

from repro.errors import SgxAccessFault
from repro.sgx.structures import (
    PAGE_SIZE,
    PageType,
    Permissions,
    Report,
    SecInfo,
    SsaFrame,
    Tcs,
)


class TestSecInfo:
    def test_serialization_fixed_width(self):
        blob = SecInfo(PageType.REG, Permissions.RW).to_bytes()
        assert len(blob) == 64

    def test_distinct_permissions_distinct_bytes(self):
        a = SecInfo(PageType.REG, Permissions.RW).to_bytes()
        b = SecInfo(PageType.REG, Permissions.RX).to_bytes()
        assert a != b


class TestTcs:
    def test_template_bytes_exclude_runtime_state(self):
        tcs = Tcs(0x1000, "main", ossa=0x2000, nssa=2)
        before = tcs.to_bytes()
        tcs._cssa = 2
        tcs._active = True
        assert tcs.to_bytes() == before  # measured template is stable

    def test_software_cannot_read_hardware_fields(self):
        tcs = Tcs(0x1000, "main", ossa=0x2000, nssa=2)
        with pytest.raises(SgxAccessFault):
            _ = tcs.cssa
        with pytest.raises(SgxAccessFault):
            _ = tcs.active


class TestSsaFrame:
    def test_roundtrip(self):
        frame = SsaFrame({"pc": 3, "regs": {"x": b"\x01\x02"}})
        assert SsaFrame.from_bytes(frame.to_bytes()).context == frame.context

    def test_empty_frame(self):
        assert SsaFrame.from_bytes(SsaFrame({}).to_bytes()).context == {}


class TestReport:
    def test_body_excludes_mac(self):
        kwargs = dict(
            mrenclave=b"\x01" * 32,
            mrsigner=b"\x02" * 32,
            attributes=0,
            cpu_id=b"\x03" * 16,
            report_data=b"\x04" * 64,
        )
        a = Report(**kwargs, mac=b"\xaa" * 32)
        b = Report(**kwargs, mac=b"\xbb" * 32)
        assert a.body() == b.body()

    def test_body_binds_every_identity_field(self):
        base = dict(
            mrenclave=b"\x01" * 32,
            mrsigner=b"\x02" * 32,
            attributes=0,
            cpu_id=b"\x03" * 16,
            report_data=b"\x04" * 64,
            mac=b"",
        )
        reference = Report(**base).body()
        for mutated_field, value in (
            ("mrenclave", b"\x09" * 32),
            ("mrsigner", b"\x09" * 32),
            ("attributes", 1),
            ("cpu_id", b"\x09" * 16),
            ("report_data", b"\x09" * 64),
        ):
            mutated = dict(base, **{mutated_field: value})
            assert Report(**mutated).body() != reference
