"""Local attestation, quoting enclave, IAS and AVR verification."""

import pytest

from repro.crypto.keys import KeyPair
from repro.crypto.rsa import generate_rsa_keypair
from repro.errors import AttestationError, QuoteRejected
from repro.sgx import instructions as isa
from repro.sgx.attestation import (
    AttestationService,
    QuotingEnclave,
    provision_platform,
    quote_for,
    verify_avr,
)
from repro.sgx.structures import Quote, TargetInfo
from repro.sim.clock import VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.rng import DeterministicRng

from tests.sgx.conftest import build_raw_enclave


@pytest.fixture
def ias():
    clock = VirtualClock()
    key = KeyPair(generate_rsa_keypair(DeterministicRng("ias-test")), "ias")
    return AttestationService(clock, DEFAULT_COSTS, key)


class TestLocalAttestation:
    def test_report_verifies_on_same_cpu(self, cpu, vendor):
        enclave_a, tcs_a = build_raw_enclave(cpu, vendor, data=b"A")
        enclave_b, tcs_b = build_raw_enclave(cpu, vendor, data=b"B")
        session_a = isa.eenter(cpu, enclave_a, tcs_a)
        report = isa.ereport(
            session_a, TargetInfo(enclave_b.secs.mrenclave), b"\x05" * 16
        )
        isa.eexit(session_a)
        session_b = isa.eenter(cpu, enclave_b, tcs_b)
        assert isa.verify_report(session_b, report)
        isa.eexit(session_b)

    def test_report_fails_on_other_cpu(self, cpu, second_cpu, vendor):
        enclave_a, tcs_a = build_raw_enclave(cpu, vendor, data=b"A")
        enclave_b, tcs_b = build_raw_enclave(second_cpu, vendor, data=b"B")
        session_a = isa.eenter(cpu, enclave_a, tcs_a)
        report = isa.ereport(
            session_a, TargetInfo(enclave_b.secs.mrenclave), b"\x05" * 16
        )
        isa.eexit(session_a)
        session_b = isa.eenter(second_cpu, enclave_b, tcs_b)
        assert not isa.verify_report(session_b, report)
        isa.eexit(session_b)

    def test_report_fails_for_wrong_target(self, cpu, vendor):
        enclave_a, tcs_a = build_raw_enclave(cpu, vendor, data=b"A")
        enclave_b, tcs_b = build_raw_enclave(cpu, vendor, data=b"B")
        enclave_c, tcs_c = build_raw_enclave(cpu, vendor, data=b"C")
        session_a = isa.eenter(cpu, enclave_a, tcs_a)
        report = isa.ereport(session_a, TargetInfo(enclave_b.secs.mrenclave), b"")
        isa.eexit(session_a)
        session_c = isa.eenter(cpu, enclave_c, tcs_c)
        assert not isa.verify_report(session_c, report)
        isa.eexit(session_c)

    def test_report_carries_identity(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        report = isa.ereport(session, TargetInfo(b"\x00" * 32), b"data")
        assert report.mrenclave == enclave.secs.mrenclave
        assert report.mrsigner == enclave.secs.mrsigner
        assert report.report_data.startswith(b"data")
        isa.eexit(session)

    def test_oversized_report_data_rejected(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        with pytest.raises(Exception):
            isa.ereport(session, TargetInfo(b"\x00" * 32), b"x" * 65)
        isa.eexit(session)


class TestRemoteAttestation:
    def test_full_quote_flow(self, cpu, vendor, ias):
        qe = provision_platform(cpu, ias)
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        quote = quote_for(session, qe, b"\x01" * 32)
        isa.eexit(session)
        avr = ias.verify_quote(quote)
        verify_avr(avr, ias.public_key, enclave.secs.mrenclave)

    def test_unknown_platform_rejected(self, cpu, second_cpu, vendor, ias):
        qe = provision_platform(cpu, ias)
        # Second platform never registered with this IAS.
        rogue_key = KeyPair(generate_rsa_keypair(DeterministicRng("rogue")), "rogue")
        rogue_qe = QuotingEnclave(second_cpu, rogue_key)
        enclave, tcs = build_raw_enclave(second_cpu, vendor)
        session = isa.eenter(second_cpu, enclave, tcs)
        quote = quote_for(session, rogue_qe, b"")
        isa.eexit(session)
        with pytest.raises(QuoteRejected):
            ias.verify_quote(quote)

    def test_forged_quote_signature_rejected(self, cpu, vendor, ias):
        qe = provision_platform(cpu, ias)
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        quote = quote_for(session, qe, b"")
        isa.eexit(session)
        forged = Quote(
            mrenclave=quote.mrenclave,
            mrsigner=quote.mrsigner,
            attributes=quote.attributes,
            platform_id=quote.platform_id,
            report_data=b"EVIL".ljust(64, b"\x00"),  # changed after signing
            signature=quote.signature,
        )
        with pytest.raises(QuoteRejected):
            ias.verify_quote(forged)

    def test_quote_from_wrong_cpu_rejected_by_qe(self, cpu, second_cpu, vendor, ias):
        qe = provision_platform(cpu, ias)
        enclave, tcs = build_raw_enclave(second_cpu, vendor)
        session = isa.eenter(second_cpu, enclave, tcs)
        with pytest.raises(AttestationError):
            quote_for(session, qe, b"")  # report MAC fails: different CPU
        isa.eexit(session)

    def test_avr_measurement_mismatch(self, cpu, vendor, ias):
        qe = provision_platform(cpu, ias)
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        quote = quote_for(session, qe, b"")
        isa.eexit(session)
        avr = ias.verify_quote(quote)
        with pytest.raises(QuoteRejected):
            verify_avr(avr, ias.public_key, expected_mrenclave=b"\xde" * 32)

    def test_avr_signed_by_someone_else_rejected(self, cpu, vendor, ias):
        qe = provision_platform(cpu, ias)
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        quote = quote_for(session, qe, b"")
        isa.eexit(session)
        avr = ias.verify_quote(quote)
        wrong_anchor = generate_rsa_keypair(DeterministicRng("not-ias")).public
        with pytest.raises(Exception):
            verify_avr(avr, wrong_anchor, enclave.secs.mrenclave)

    def test_ias_charges_processing_time(self, cpu, vendor, ias):
        qe = provision_platform(cpu, ias)
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        quote = quote_for(session, qe, b"")
        isa.eexit(session)
        before = ias._clock.now_ns
        ias.verify_quote(quote)
        assert ias._clock.now_ns > before
