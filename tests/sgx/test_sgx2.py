"""SGX v2 dynamic memory management and the §IV-B migration gap."""

import pytest

from repro.errors import SgxAccessFault, SgxInstructionFault
from repro.sgx import instructions as isa
from repro.sgx import sgx2
from repro.sgx.structures import PAGE_SIZE, Permissions

from tests.sgx.conftest import BASE, build_raw_enclave


def build_with_wx_page(cpu, vendor):
    """An enclave with one W+X (non-readable) page, built the v1 way."""
    from repro.crypto.keys import KeyPair
    from repro.sgx.structures import PageType, SecInfo, SigStruct, Tcs

    enclave = isa.ecreate(cpu, BASE, 16 * PAGE_SIZE)
    isa.eadd(cpu, enclave, BASE, b"data page", SecInfo(PageType.REG, Permissions.RW))
    wx_vaddr = BASE + PAGE_SIZE
    isa.eadd(
        cpu, enclave, wx_vaddr, b"jit code bytes",
        SecInfo(PageType.REG, Permissions.W | Permissions.X),
    )
    ossa = BASE + 2 * PAGE_SIZE
    for i in range(2):
        isa.eadd(cpu, enclave, ossa + i * PAGE_SIZE, b"", SecInfo(PageType.REG, Permissions.RW))
    tcs_vaddr = BASE + 4 * PAGE_SIZE
    tcs = Tcs(tcs_vaddr, "main", ossa=ossa, nssa=2)
    isa.eadd(cpu, enclave, tcs_vaddr, tcs, SecInfo(PageType.TCS, Permissions.NONE))
    for page in enclave.mapped_vaddrs():
        isa.eextend(cpu, enclave, page)
    mrenclave = enclave.measurement.value
    unsigned = SigStruct(mrenclave, "v", vendor.public.n, b"")
    isa.einit(
        cpu, enclave,
        SigStruct(mrenclave, "v", vendor.public.n, vendor.private.sign(unsigned.signed_body())),
    )
    return enclave, tcs_vaddr, wx_vaddr


class TestEaug:
    def test_eaug_then_eaccept_grows_the_enclave(self, cpu, vendor):
        enclave, tcs_vaddr = build_raw_enclave(cpu, vendor)
        new_vaddr = max(enclave.mapped_vaddrs()) + PAGE_SIZE
        sgx2.eaug(cpu, enclave, new_vaddr)
        session = isa.eenter(cpu, enclave, tcs_vaddr)
        # Before EACCEPT the page is unusable.
        with pytest.raises(SgxAccessFault):
            session.read(new_vaddr, 8)
        sgx2.eaccept(session, new_vaddr)
        session.write(new_vaddr, b"grown")
        assert session.read(new_vaddr, 5) == b"grown"
        isa.eexit(session)

    def test_eaug_before_einit_rejected(self, cpu):
        enclave = isa.ecreate(cpu, BASE, 4 * PAGE_SIZE)
        with pytest.raises(SgxInstructionFault):
            sgx2.eaug(cpu, enclave, BASE)

    def test_eaccept_without_pending_rejected(self, cpu, vendor):
        enclave, tcs_vaddr = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs_vaddr)
        with pytest.raises(SgxInstructionFault):
            sgx2.eaccept(session, BASE)
        isa.eexit(session)


class TestPermissionChanges:
    def test_emodpe_extends_immediately(self, cpu, vendor):
        enclave, tcs_vaddr, wx_vaddr = build_with_wx_page(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs_vaddr)
        with pytest.raises(SgxAccessFault):
            session.read(wx_vaddr, 4)
        sgx2.emodpe(session, wx_vaddr, Permissions.R)
        assert session.read(wx_vaddr, 14) == b"jit code bytes"
        isa.eexit(session)

    def test_emodpr_requires_eaccept(self, cpu, vendor):
        enclave, tcs_vaddr = build_raw_enclave(cpu, vendor)
        sgx2.emodpr(cpu, enclave, BASE, Permissions.R)  # drop W
        session = isa.eenter(cpu, enclave, tcs_vaddr)
        session.write(BASE, b"still writable")  # not yet effective
        sgx2.eaccept(session, BASE)
        with pytest.raises(SgxAccessFault):
            session.write(BASE, b"now it is not")
        isa.eexit(session)

    def test_emodpr_cannot_extend(self, cpu, vendor):
        enclave, tcs_vaddr, wx_vaddr = build_with_wx_page(cpu, vendor)
        with pytest.raises(SgxInstructionFault):
            sgx2.emodpr(cpu, enclave, wx_vaddr, Permissions.RWX)


class TestV2ClosesTheMigrationGap:
    def test_wx_page_dumpable_with_v2(self, cpu, vendor):
        """§IV-B: the v1-unmigratable W+X page dumps fine under EDMM."""
        enclave, tcs_vaddr, wx_vaddr = build_with_wx_page(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs_vaddr)
        data = sgx2.dump_unreadable_page_v2(session, wx_vaddr)
        assert data.startswith(b"jit code bytes")
        # Original permissions are restored after the dump.
        assert enclave.page_permissions(wx_vaddr) == Permissions.W | Permissions.X
        with pytest.raises(SgxAccessFault):
            session.read(wx_vaddr, 4)
        isa.eexit(session)

    def test_readable_pages_take_the_plain_path(self, cpu, vendor):
        enclave, tcs_vaddr = build_raw_enclave(cpu, vendor, data=b"ordinary")
        session = isa.eenter(cpu, enclave, tcs_vaddr)
        data = sgx2.dump_unreadable_page_v2(session, BASE)
        assert data.startswith(b"ordinary")
        isa.eexit(session)
