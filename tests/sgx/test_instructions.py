"""The SGX instruction set: build, entry/exit, AEX/ERESUME, paging.

These are the hardware semantics the paper's protocol leans on; each test
names the behaviour it pins down.
"""

import pytest

from repro.errors import (
    EnclavePageFault,
    SgxAccessFault,
    SgxInstructionFault,
    SgxMacMismatch,
)
from repro.crypto.keys import KeyPair
from repro.crypto.rsa import generate_rsa_keypair
from repro.sgx import instructions as isa
from repro.sgx.structures import PAGE_SIZE, PageType, Permissions, SecInfo, SigStruct
from repro.sim.rng import DeterministicRng

from tests.sgx.conftest import BASE, build_raw_enclave


class TestBuild:
    def test_same_image_same_measurement_across_cpus(self, cpu, second_cpu, vendor):
        enclave_a, _ = build_raw_enclave(cpu, vendor)
        enclave_b, _ = build_raw_enclave(second_cpu, vendor)
        assert enclave_a.secs.mrenclave == enclave_b.secs.mrenclave

    def test_different_content_different_measurement(self, cpu, vendor):
        enclave_a, _ = build_raw_enclave(cpu, vendor, data=b"AAAA")
        enclave_b, _ = build_raw_enclave(cpu, vendor, data=b"BBBB")
        assert enclave_a.secs.mrenclave != enclave_b.secs.mrenclave

    def test_einit_rejects_wrong_measurement(self, cpu, vendor):
        enclave = isa.ecreate(cpu, BASE, 4 * PAGE_SIZE)
        isa.eadd(cpu, enclave, BASE, b"x", SecInfo(PageType.REG, Permissions.RW))
        bad = SigStruct(b"\x00" * 32, "vendor", vendor.public.n, b"")
        bad = SigStruct(
            b"\x00" * 32, "vendor", vendor.public.n, vendor.private.sign(bad.signed_body())
        )
        with pytest.raises(SgxInstructionFault):
            isa.einit(cpu, enclave, bad)

    def test_einit_rejects_bad_signature(self, cpu, vendor):
        enclave = isa.ecreate(cpu, BASE, 4 * PAGE_SIZE)
        isa.eadd(cpu, enclave, BASE, b"x", SecInfo(PageType.REG, Permissions.RW))
        mrenclave = enclave.measurement.value
        forged = SigStruct(mrenclave, "vendor", vendor.public.n, b"\x01" * 128)
        with pytest.raises(Exception):
            isa.einit(cpu, enclave, forged)

    def test_eadd_after_einit_rejected(self, cpu, vendor):
        enclave, _ = build_raw_enclave(cpu, vendor)
        free_vaddr = max(enclave.mapped_vaddrs()) + PAGE_SIZE
        with pytest.raises(SgxInstructionFault):
            isa.eadd(cpu, enclave, free_vaddr, b"", SecInfo(PageType.REG, Permissions.RW))

    def test_eadd_outside_range_rejected(self, cpu):
        enclave = isa.ecreate(cpu, BASE, 2 * PAGE_SIZE)
        with pytest.raises(SgxInstructionFault):
            isa.eadd(cpu, enclave, BASE + 0x100000, b"", SecInfo(PageType.REG, Permissions.RW))

    def test_double_einit_rejected(self, cpu, vendor):
        enclave, _ = build_raw_enclave(cpu, vendor)
        with pytest.raises(SgxInstructionFault):
            isa.einit(cpu, enclave, None)

    def test_costs_charged(self, cpu, vendor):
        before = cpu.clock.now_ns
        build_raw_enclave(cpu, vendor)
        assert cpu.clock.now_ns > before


class TestEnterExit:
    def test_eenter_returns_cssa_in_rax(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        assert session.rax == 0
        isa.eexit(session)

    def test_eenter_before_einit_rejected(self, cpu):
        enclave = isa.ecreate(cpu, BASE, 2 * PAGE_SIZE)
        with pytest.raises(SgxInstructionFault):
            isa.eenter(cpu, enclave, BASE)

    def test_tcs_busy_while_inside(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        with pytest.raises(SgxInstructionFault):
            isa.eenter(cpu, enclave, tcs)
        isa.eexit(session)
        isa.eenter(cpu, enclave, tcs)  # free again

    def test_session_reads_enclave_memory(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor, data=b"hello enclave")
        session = isa.eenter(cpu, enclave, tcs)
        assert session.read(BASE, 13) == b"hello enclave"
        isa.eexit(session)

    def test_closed_session_faults(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        isa.eexit(session)
        with pytest.raises(SgxAccessFault):
            session.read(BASE, 4)
        with pytest.raises(SgxAccessFault):
            session.write(BASE, b"x")

    def test_out_of_range_access_faults(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        with pytest.raises(SgxAccessFault):
            session.read(0x100, 4)
        isa.eexit(session)

    def test_permissions_enforced(self, cpu, vendor):
        enclave = isa.ecreate(cpu, BASE, 8 * PAGE_SIZE)
        isa.eadd(cpu, enclave, BASE, b"ro", SecInfo(PageType.REG, Permissions.R))
        from repro.sgx.structures import Tcs

        tcs = Tcs(BASE + PAGE_SIZE, "main", ossa=BASE + 2 * PAGE_SIZE, nssa=2)
        isa.eadd(cpu, enclave, BASE + PAGE_SIZE, tcs, SecInfo(PageType.TCS, Permissions.NONE))
        for i in range(2):
            isa.eadd(
                cpu, enclave, BASE + (2 + i) * PAGE_SIZE, b"", SecInfo(PageType.REG, Permissions.RW)
            )
        mrenclave = enclave.measurement.value
        vendor = KeyPair(generate_rsa_keypair(DeterministicRng("v2")), "v")
        unsigned = SigStruct(mrenclave, "v", vendor.public.n, b"")
        isa.einit(
            cpu,
            enclave,
            SigStruct(mrenclave, "v", vendor.public.n, vendor.private.sign(unsigned.signed_body())),
        )
        session = isa.eenter(cpu, enclave, BASE + PAGE_SIZE)
        assert session.read(BASE, 2) == b"ro"
        with pytest.raises(SgxAccessFault):
            session.write(BASE, b"xx")

    def test_cssa_not_software_readable(self, cpu, vendor):
        enclave, tcs_vaddr = build_raw_enclave(cpu, vendor)
        tcs = enclave.tcs_at(tcs_vaddr)
        with pytest.raises(SgxAccessFault):
            _ = tcs.cssa
        with pytest.raises(SgxAccessFault):
            _ = tcs.active


class TestAexEresume:
    def test_aex_saves_and_eresume_restores(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        isa.aex(session, {"pc": 7, "entry": "main"})
        resumed, ctx = isa.eresume(cpu, enclave, tcs)
        assert ctx == {"pc": 7, "entry": "main"}
        assert resumed.rax == 0
        isa.eexit(resumed)

    def test_eenter_after_aex_sees_incremented_cssa(self, cpu, vendor):
        # Figure 5: AEX increments CSSA; EENTER (handler) returns it in rax.
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        isa.aex(session, {"level": 0})
        handler = isa.eenter(cpu, enclave, tcs)
        assert handler.rax == 1
        isa.eexit(handler)
        resumed, _ = isa.eresume(cpu, enclave, tcs)
        assert resumed.rax == 0
        isa.eexit(resumed)

    def test_nested_aex_stacks_frames(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor, nssa=3)
        session = isa.eenter(cpu, enclave, tcs)
        isa.aex(session, {"level": 0})
        handler = isa.eenter(cpu, enclave, tcs)
        isa.aex(handler, {"level": 1})
        handler2 = isa.eenter(cpu, enclave, tcs)
        assert handler2.rax == 2
        isa.eexit(handler2)
        # Two ERESUMEs walk back down the SSA stack (Figure 5's story).
        resumed1, ctx1 = isa.eresume(cpu, enclave, tcs)
        assert ctx1 == {"level": 1}
        isa.eexit(resumed1)
        resumed0, ctx0 = isa.eresume(cpu, enclave, tcs)
        assert ctx0 == {"level": 0}
        isa.eexit(resumed0)

    def test_nssa_exhaustion_blocks_eenter(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor, nssa=1)
        session = isa.eenter(cpu, enclave, tcs)
        isa.aex(session, {})
        with pytest.raises(SgxInstructionFault):
            isa.eenter(cpu, enclave, tcs)  # CSSA == NSSA

    def test_eresume_with_no_frame_rejected(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        with pytest.raises(SgxInstructionFault):
            isa.eresume(cpu, enclave, tcs)

    def test_eexit_preserves_cssa(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        isa.aex(session, {"x": 1})
        handler = isa.eenter(cpu, enclave, tcs)
        isa.eexit(handler)  # EENTER/EEXIT pair: CSSA unchanged
        again = isa.eenter(cpu, enclave, tcs)
        assert again.rax == 1
        isa.eexit(again)

    def test_aex_counted(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        before = cpu.aex_count
        isa.aex(session, {})
        assert cpu.aex_count == before + 1


class TestPaging:
    def test_ewb_eldb_roundtrip(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor, data=b"page data")
        va = isa.alloc_va_page(cpu)
        blob = isa.ewb(cpu, enclave, BASE, va, 0)
        assert not enclave.page_present(BASE)
        isa.eldb(cpu, enclave, blob, va, 0)
        session = isa.eenter(cpu, enclave, tcs)
        assert session.read(BASE, 9) == b"page data"
        isa.eexit(session)

    def test_evicted_page_is_ciphertext(self, cpu, vendor):
        enclave, _ = build_raw_enclave(cpu, vendor, data=b"SECRET-CONTENT")
        va = isa.alloc_va_page(cpu)
        blob = isa.ewb(cpu, enclave, BASE, va, 0)
        assert b"SECRET-CONTENT" not in blob.ciphertext

    def test_cross_cpu_eldb_fails(self, cpu, second_cpu, vendor):
        # Difference-1 (§II-B): the page encryption key never leaves the
        # CPU, so another machine cannot load the evicted image.
        enclave, _ = build_raw_enclave(cpu, vendor)
        enclave_b, _ = build_raw_enclave(second_cpu, vendor)
        va = isa.alloc_va_page(cpu)
        blob = isa.ewb(cpu, enclave, BASE, va, 0)
        va_b = isa.alloc_va_page(second_cpu)
        isa._va_slots(second_cpu, va_b)[1] = blob.version
        with pytest.raises(SgxMacMismatch):
            isa.eldb(second_cpu, enclave_b, blob, va_b, 1)

    def test_version_replay_rejected(self, cpu, vendor):
        # Anti-replay: a slot is cleared on load; replaying the old blob
        # (or a stale version) must fail.
        enclave, _ = build_raw_enclave(cpu, vendor)
        va = isa.alloc_va_page(cpu)
        blob1 = isa.ewb(cpu, enclave, BASE, va, 0)
        isa.eldb(cpu, enclave, blob1, va, 0)
        blob2 = isa.ewb(cpu, enclave, BASE, va, 1)
        with pytest.raises((SgxMacMismatch, SgxInstructionFault)):
            isa.eldb(cpu, enclave, blob1, va, 1)  # stale blob, new slot

    def test_slot_reuse_rejected(self, cpu, vendor):
        enclave, _ = build_raw_enclave(cpu, vendor, n_data_pages=3)
        va = isa.alloc_va_page(cpu)
        isa.ewb(cpu, enclave, BASE, va, 0)
        with pytest.raises(SgxInstructionFault):
            isa.ewb(cpu, enclave, BASE + PAGE_SIZE, va, 0)

    def test_access_to_evicted_page_faults(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        va = isa.alloc_va_page(cpu)
        isa.ewb(cpu, enclave, BASE, va, 0)
        session = isa.eenter(cpu, enclave, tcs)
        with pytest.raises(EnclavePageFault):
            session.read(BASE, 4)
        isa.eexit(session)

    def test_ewb_active_tcs_rejected(self, cpu, vendor):
        enclave, tcs_vaddr = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs_vaddr)
        va = isa.alloc_va_page(cpu)
        with pytest.raises(SgxInstructionFault):
            isa.ewb(cpu, enclave, tcs_vaddr, va, 0)
        isa.eexit(session)

    def test_ewb_inactive_tcs_preserves_cssa(self, cpu, vendor):
        enclave, tcs_vaddr = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs_vaddr)
        isa.aex(session, {"x": 1})  # CSSA -> 1, TCS inactive
        va = isa.alloc_va_page(cpu)
        blob = isa.ewb(cpu, enclave, tcs_vaddr, va, 0)
        isa.eldb(cpu, enclave, blob, va, 0)
        # ERESUME still works: the sealed TCS carried CSSA = 1.
        resumed, ctx = isa.eresume(cpu, enclave, tcs_vaddr)
        assert ctx == {"x": 1}
        isa.eexit(resumed)


class TestTeardown:
    def test_destroy_frees_epc(self, cpu, vendor):
        free_before = cpu.epc.free_count
        enclave, _ = build_raw_enclave(cpu, vendor)
        isa.destroy_enclave(cpu, enclave)
        assert cpu.epc.free_count == free_before

    def test_destroyed_enclave_unusable(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        isa.destroy_enclave(cpu, enclave)
        with pytest.raises(SgxInstructionFault):
            isa.eenter(cpu, enclave, tcs)

    def test_eremove_active_tcs_rejected(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        with pytest.raises(SgxInstructionFault):
            isa.eremove(cpu, enclave, tcs)
        isa.eexit(session)
