"""Fixtures for exercising the SGX hardware model directly."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyPair
from repro.crypto.rsa import generate_rsa_keypair
from repro.sgx import instructions as isa
from repro.sgx.cpu import SgxCpu
from repro.sgx.structures import PAGE_SIZE, PageType, Permissions, SecInfo, SigStruct, Tcs
from repro.sim.clock import VirtualClock
from repro.sim.rng import DeterministicRng
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.trace import EventTrace

BASE = 0x2000_0000


@pytest.fixture
def cpu():
    clock = VirtualClock()
    return SgxCpu(
        "test-cpu", clock, DEFAULT_COSTS, EventTrace(clock), DeterministicRng("cpu"), epc_pages=256
    )


@pytest.fixture
def second_cpu():
    clock = VirtualClock()
    return SgxCpu(
        "other-cpu", clock, DEFAULT_COSTS, EventTrace(clock), DeterministicRng("cpu2"), epc_pages=256
    )


@pytest.fixture
def vendor():
    return KeyPair(generate_rsa_keypair(DeterministicRng("vendor-test")), "vendor")


def build_raw_enclave(cpu, vendor, n_data_pages=2, nssa=3, data=b"hello enclave"):
    """Hand-build a minimal enclave: data pages, one TCS, SSA frames."""
    n_pages = n_data_pages + 1 + nssa
    enclave = isa.ecreate(cpu, BASE, (n_pages + 2) * PAGE_SIZE)
    vaddr = BASE
    for i in range(n_data_pages):
        content = data if i == 0 else b""
        isa.eadd(cpu, enclave, vaddr, content, SecInfo(PageType.REG, Permissions.RW))
        vaddr += PAGE_SIZE
    ossa = vaddr
    for _ in range(nssa):
        isa.eadd(cpu, enclave, vaddr, b"", SecInfo(PageType.REG, Permissions.RW))
        vaddr += PAGE_SIZE
    tcs_vaddr = vaddr
    tcs = Tcs(tcs_vaddr, "main", ossa=ossa, nssa=nssa)
    isa.eadd(cpu, enclave, tcs_vaddr, tcs, SecInfo(PageType.TCS, Permissions.NONE))
    for page in enclave.mapped_vaddrs():
        isa.eextend(cpu, enclave, page)
    mrenclave = enclave.measurement.value
    unsigned = SigStruct(mrenclave, "vendor", vendor.public.n, b"")
    sigstruct = SigStruct(
        mrenclave, "vendor", vendor.public.n, vendor.private.sign(unsigned.signed_body())
    )
    isa.einit(cpu, enclave, sigstruct)
    return enclave, tcs_vaddr
