"""EnclaveHw memory mechanics: cross-page access, faults, isolation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import EnclavePageFault, SgxAccessFault
from repro.sgx import instructions as isa
from repro.sgx.structures import PAGE_SIZE

from tests.sgx.conftest import BASE, build_raw_enclave


class TestCrossPageAccess:
    def test_read_spanning_pages(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor, n_data_pages=3)
        session = isa.eenter(cpu, enclave, tcs)
        session.write(BASE + PAGE_SIZE - 4, b"ABCDEFGH")  # spans a boundary
        assert session.read(BASE + PAGE_SIZE - 4, 8) == b"ABCDEFGH"
        # And the two halves landed on different pages.
        assert session.read(BASE + PAGE_SIZE - 4, 4) == b"ABCD"
        assert session.read(BASE + PAGE_SIZE, 4) == b"EFGH"
        isa.eexit(session)

    def test_spanning_read_faults_if_any_page_evicted(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor, n_data_pages=3)
        va = isa.alloc_va_page(cpu)
        isa.ewb(cpu, enclave, BASE + PAGE_SIZE, va, 0)
        session = isa.eenter(cpu, enclave, tcs)
        with pytest.raises(EnclavePageFault) as excinfo:
            session.read(BASE + PAGE_SIZE - 4, 8)
        assert excinfo.value.vaddr == BASE + PAGE_SIZE
        isa.eexit(session)

    @given(
        offset=st.integers(min_value=0, max_value=2 * PAGE_SIZE - 64),
        length=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=25, deadline=None)
    def test_write_read_roundtrip_property(self, offset, length):
        from repro.crypto.keys import KeyPair
        from repro.crypto.rsa import generate_rsa_keypair
        from repro.sgx.cpu import SgxCpu
        from repro.sim.clock import VirtualClock
        from repro.sim.costs import DEFAULT_COSTS
        from repro.sim.rng import DeterministicRng
        from repro.sim.trace import EventTrace

        clock = VirtualClock()
        cpu = SgxCpu("prop", clock, DEFAULT_COSTS, EventTrace(clock), DeterministicRng("p"), epc_pages=64)
        vendor = KeyPair(generate_rsa_keypair(DeterministicRng("pv")), "v")
        enclave, tcs = build_raw_enclave(cpu, vendor, n_data_pages=3)
        session = isa.eenter(cpu, enclave, tcs)
        payload = bytes((offset + i) % 256 for i in range(length))
        session.write(BASE + offset, payload)
        assert session.read(BASE + offset, length) == payload
        isa.eexit(session)


class TestIsolation:
    def test_two_enclaves_cannot_alias_pages(self, cpu, vendor):
        enclave_a, tcs_a = build_raw_enclave(cpu, vendor, data=b"AAAA")
        # Second enclave at a different base cannot read A's range.
        from repro.sgx.structures import PageType, Permissions, SecInfo, SigStruct, Tcs

        base_b = BASE + 0x100000
        enclave_b = isa.ecreate(cpu, base_b, 8 * PAGE_SIZE)
        isa.eadd(cpu, enclave_b, base_b, b"BBBB", SecInfo(PageType.REG, Permissions.RW))
        for i in range(2):
            isa.eadd(cpu, enclave_b, base_b + (1 + i) * PAGE_SIZE, b"", SecInfo(PageType.REG, Permissions.RW))
        tcs_vaddr_b = base_b + 3 * PAGE_SIZE
        isa.eadd(
            cpu, enclave_b, tcs_vaddr_b,
            Tcs(tcs_vaddr_b, "main", ossa=base_b + PAGE_SIZE, nssa=2),
            SecInfo(PageType.TCS, Permissions.NONE),
        )
        for page in enclave_b.mapped_vaddrs():
            isa.eextend(cpu, enclave_b, page)
        mr = enclave_b.measurement.value
        unsigned = SigStruct(mr, "v", vendor.public.n, b"")
        isa.einit(cpu, enclave_b, SigStruct(mr, "v", vendor.public.n, vendor.private.sign(unsigned.signed_body())))

        session_b = isa.eenter(cpu, enclave_b, tcs_vaddr_b)
        with pytest.raises(SgxAccessFault):
            session_b.read(BASE, 4)  # A's address: outside B's range
        assert session_b.read(base_b, 4) == b"BBBB"
        isa.eexit(session_b)

    def test_session_bound_to_its_enclave_pages_only(self, cpu, vendor):
        enclave, tcs = build_raw_enclave(cpu, vendor)
        session = isa.eenter(cpu, enclave, tcs)
        unmapped = BASE + enclave.secs.size - PAGE_SIZE  # in range, never EADDed
        with pytest.raises(SgxAccessFault):
            session.read(unmapped, 4)
        isa.eexit(session)

    def test_hw_write_rejects_dead_enclave(self, cpu, vendor):
        enclave, _ = build_raw_enclave(cpu, vendor)
        isa.destroy_enclave(cpu, enclave)
        from repro.errors import SgxInstructionFault

        with pytest.raises(SgxInstructionFault):
            enclave.hw_read(BASE, 4)
