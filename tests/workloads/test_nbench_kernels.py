"""Per-kernel correctness tests for the nbench reimplementations.

The benchmark numbers are only meaningful if the kernels really compute
what they claim; each gets its own functional checks here.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.rng import DeterministicRng
from repro.workloads.nbench import (
    _idea_mul,
    assignment_core,
    bitfield_core,
    fp_emulation_core,
    huffman_core,
    idea_core,
    lu_decomposition_core,
    neural_net_core,
    numeric_sort_core,
    string_sort_core,
)


class TestNumericSort:
    def test_heapsort_actually_sorts(self):
        # The core asserts sortedness internally; run a few seeds.
        for seed in range(5):
            numeric_sort_core(seed)

    def test_returns_median_of_sorted(self):
        value = numeric_sort_core(1, n=11)
        assert isinstance(value, int)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_deterministic_property(self, seed):
        assert numeric_sort_core(seed, n=64) == numeric_sort_core(seed, n=64)


class TestStringSort:
    def test_result_reflects_sorted_prefix(self):
        # The checksum sums lengths of the smallest quarter; bounded by
        # max string length times count.
        value = string_sort_core(3, n=64)
        assert 0 < value <= 24 * 16


class TestBitfield:
    def test_popcount_in_range(self):
        bits = 1 << 12
        value = bitfield_core(5, bits=bits)
        assert 0 <= value <= bits

    def test_operations_change_field(self):
        assert bitfield_core(1) != bitfield_core(2)


class TestFpEmulation:
    def test_result_is_16bit(self):
        assert 0 <= fp_emulation_core(9) < (1 << 16)

    def test_accumulation_depends_on_inputs(self):
        assert fp_emulation_core(1) != fp_emulation_core(2)


class TestAssignment:
    def test_total_cost_bounded(self):
        n = 16
        total = assignment_core(7, n=n)
        assert n * 1 <= total <= n * 1000

    def test_greedy_no_worse_than_row_maxima(self):
        # The greedy picks a minimum in each row among free columns, so
        # the total is at most the sum of row maxima.
        rng = DeterministicRng(7)
        n = 24
        cost = [[rng.randint(1, 1000) for _ in range(n)] for _ in range(n)]
        assert assignment_core(7, n=n) <= sum(max(row) for row in cost)


class TestIdea:
    def test_mul_identity(self):
        assert _idea_mul(1, 5) == 5
        assert _idea_mul(5, 1) == 5

    def test_mul_zero_means_2_16(self):
        # 0 represents 2^16 in IDEA's multiplicative group mod 2^16+1.
        assert _idea_mul(0, 1) == (1 << 16) % ((1 << 16) + 1) & 0xFFFF

    @given(st.integers(min_value=0, max_value=0xFFFF), st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=50)
    def test_mul_closed_and_commutative(self, a, b):
        assert _idea_mul(a, b) == _idea_mul(b, a)
        assert 0 <= _idea_mul(a, b) <= 0xFFFF

    def test_mul_is_invertible_group(self):
        # Every nonzero-representative element has an inverse mod 2^16+1.
        modulus = (1 << 16) + 1
        for a in (1, 2, 1234, 0xFFFF):
            inverse = pow(a if a else 1 << 16, -1, modulus)
            assert _idea_mul(a, inverse & 0xFFFF if inverse != 1 << 16 else 0) == 1

    def test_checksum_is_16bit(self):
        assert 0 <= idea_core(3) < (1 << 16)


class TestHuffman:
    def test_roundtrip_many_seeds(self):
        for seed in range(4):
            huffman_core(seed, n=256)  # asserts decode(encode(x)) == x

    def test_compression_beats_fixed_width(self):
        # 16 distinct symbols need 4 bits fixed; Huffman on a skewed
        # distribution must not exceed 8 bits/symbol and usually beats 4.
        n = 1024
        bits = huffman_core(1, n=n)
        assert bits <= 8 * n


class TestNeuralNet:
    def test_training_changes_weights(self):
        assert neural_net_core(1, epochs=2) != neural_net_core(1, epochs=20)

    def test_deterministic(self):
        assert neural_net_core(4) == neural_net_core(4)


class TestLu:
    def test_sign_tracking(self):
        value = lu_decomposition_core(2)
        assert isinstance(value, int)

    def test_different_matrices_differ(self):
        assert lu_decomposition_core(1) != lu_decomposition_core(9)
