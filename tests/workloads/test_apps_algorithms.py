"""Algorithmic checks for the Figure 9(b) application kernels."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.apps import _DCT_COS, _dct_8x8, lz77_compress, lz77_decompress


class TestDct:
    def test_dc_coefficient_of_flat_block(self):
        # A constant block concentrates all energy in the DC coefficient.
        block = [100] * 64
        coefficients = _dct_8x8(block)
        assert abs(coefficients[0]) > 0
        ac_energy = sum(abs(c) for c in coefficients[1:])
        assert ac_energy < abs(coefficients[0]) * 0.1

    def test_zero_block_is_zero(self):
        assert _dct_8x8([0] * 64) == [0] * 64

    def test_linearity(self):
        base = list(range(64))
        doubled = [2 * x for x in base]
        a = _dct_8x8(base)
        b = _dct_8x8(doubled)
        # Fixed-point rounding allows small deviations from exact 2x.
        for x, y in zip(a, b):
            assert abs(y - 2 * x) <= 64

    def test_cos_table_symmetry(self):
        # Row u=0 of the DCT basis is constant.
        assert len(set(_DCT_COS[0])) == 1


class TestLz77:
    @given(st.binary(max_size=400))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, data):
        assert lz77_decompress(lz77_compress(data)) == data

    def test_long_runs_compress_well(self):
        data = b"A" * 1000
        compressed = lz77_compress(data)
        assert len(compressed) < len(data) // 10

    def test_repeated_phrases_found_across_window(self):
        phrase = b"the enclave migrates "
        data = phrase * 20
        compressed = lz77_compress(data)
        assert len(compressed) < len(data) // 2

    def test_empty_input(self):
        assert lz77_compress(b"") == b""
        assert lz77_decompress(b"") == b""

    def test_overlapping_match_semantics(self):
        # (offset < length) copies must self-reference correctly.
        data = b"ab" + b"ab" * 40
        assert lz77_decompress(lz77_compress(data)) == data
