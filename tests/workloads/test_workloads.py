"""Workload correctness: nbench kernels, apps, servers, memcached."""

import pytest

from repro.migration.testbed import build_testbed
from repro.sdk.host import HostApplication, WorkerSpec
from repro.workloads.apps import (
    APP_NAMES,
    build_app_image,
    lz77_compress,
    lz77_decompress,
)
from repro.workloads.authserver import MAX_ATTEMPTS, build_authserver_image
from repro.workloads.bank import TOTAL, build_bank_image
from repro.workloads.mailserver import build_mailserver_image
from repro.workloads.memcached import build_memcached_image
from repro.workloads.nbench import (
    NBENCH_KERNELS,
    build_nbench_image,
    huffman_core,
    idea_core,
    lu_decomposition_core,
    native_run,
    numeric_sort_core,
    string_sort_core,
)


def launch(tb, built, workers=None):
    tb.owner.register_image(built)
    return HostApplication(
        tb.source, tb.source_os, built.image, workers or [], owner=tb.owner
    ).launch()


class TestNbenchCores:
    def test_deterministic(self):
        for kernel in NBENCH_KERNELS.values():
            assert kernel.core(7) == kernel.core(7)

    def test_seed_sensitivity(self):
        changed = sum(
            1 for kernel in NBENCH_KERNELS.values() if kernel.core(1) != kernel.core(2)
        )
        assert changed >= 7  # nearly all kernels react to their input

    def test_numeric_sort_returns_median(self):
        assert isinstance(numeric_sort_core(3), int)

    def test_string_sort_stable(self):
        assert string_sort_core(5) == string_sort_core(5)

    def test_idea_is_a_permutation_style_checksum(self):
        assert 0 <= idea_core(9) < (1 << 16)

    def test_huffman_roundtrip_asserts_internally(self):
        huffman_core(11)  # raises if decode(encode(x)) != x

    def test_lu_runs(self):
        assert isinstance(lu_decomposition_core(13), int)

    def test_all_nine_kernels_present(self):
        assert len(NBENCH_KERNELS) == 9  # the nine bars of Figure 9(a)


class TestNbenchInEnclave:
    def test_kernel_runs_inside_enclave(self):
        tb = build_testbed(seed=400)
        built = build_nbench_image(tb.builder, "numeric_sort")
        app = launch(tb, built)
        result = app.ecall_once(0, "run", 7)
        assert result == numeric_sort_core(7)

    def test_enclave_slower_than_native(self):
        tb = build_testbed(seed=401, vepc_pages=64)
        built = build_nbench_image(tb.builder, "numeric_sort", sdk_flavor="slow")
        app = launch(tb, built)
        start = tb.clock.now_ns
        app.ecall_once(0, "run", 7)
        enclave_ns = tb.clock.now_ns - start
        start = tb.clock.now_ns
        native_run("numeric_sort", tb.clock, 7)
        native_ns = tb.clock.now_ns - start
        assert enclave_ns > native_ns

    def test_memory_hungry_kernel_pays_paging_cost(self):
        # Figure 9(a): String Sort's working set exceeds the vEPC and the
        # slowdown explodes relative to a small-footprint kernel.
        def slowdown(kernel):
            tb = build_testbed(seed=402, vepc_pages=72)
            built = build_nbench_image(tb.builder, kernel, sdk_flavor="paging")
            app = launch(tb, built)
            app.ecall_once(0, "run", 1)  # warm
            start = tb.clock.now_ns
            app.ecall_once(0, "run", 2)
            enclave_ns = tb.clock.now_ns - start
            start = tb.clock.now_ns
            native_run(kernel, tb.clock, 2)
            return enclave_ns / (tb.clock.now_ns - start)

        assert slowdown("string_sort") > 2 * slowdown("numeric_sort")


class TestApps:
    @pytest.mark.parametrize("app_name", APP_NAMES)
    def test_each_app_processes(self, app_name):
        tb = build_testbed(seed=410)
        built = build_app_image(tb.builder, app_name, flavor="unit")
        app = launch(tb, built)
        assert app.ecall_once(0, "process", 3) > 0

    def test_lz77_roundtrip(self):
        data = b"abcabcabcabc the same phrase again and again and again" * 4
        compressed = lz77_compress(data)
        assert lz77_decompress(compressed) == data
        assert len(compressed) < len(data)

    def test_lz77_incompressible(self):
        from repro.sim.rng import DeterministicRng

        data = DeterministicRng(1).bytes(300)
        assert lz77_decompress(lz77_compress(data)) == data


class TestBank:
    def test_invariant_under_normal_operation(self):
        tb = build_testbed(seed=420)
        built = build_bank_image(tb.builder)
        app = launch(tb, built)
        app.ecall_once(0, "init")
        app.ecall_once(0, "transfer", {"rounds": 5, "amount": 10})
        balances = app.ecall_once(0, "balances")
        assert balances["a"] + balances["b"] == TOTAL
        assert balances["b"] == 50


class TestMailserver:
    def test_workflow(self):
        tb = build_testbed(seed=430)
        built = build_mailserver_image(tb.builder, flavor="unit")
        app = launch(tb, built)
        created = app.ecall_once(0, "create_mail", {"recipients": ["a", "b"], "content": "x"})
        app.ecall_once(0, "delete_recipient", {"mail_id": created["mail_id"], "recipient": "b"})
        sent = app.ecall_once(0, "send_mail", {"mail_id": created["mail_id"]})
        assert sent["delivered_to"] == ["a"]
        assert len(app.ecall_once(0, "sent_log")) == 1


class TestAuthserver:
    def test_lockout_policy(self):
        tb = build_testbed(seed=440)
        built = build_authserver_image(tb.builder)
        app = launch(tb, built)
        app.ecall_once(0, "setup", {"password": "secret"})
        for i in range(MAX_ATTEMPTS):
            reply = app.ecall_once(0, "try_password", {"password": f"wrong{i}"})
        assert reply["locked"]
        blocked = app.ecall_once(0, "try_password", {"password": "secret"})
        assert blocked.get("alarm")

    def test_correct_password_resets_counter(self):
        tb = build_testbed(seed=441)
        built = build_authserver_image(tb.builder)
        app = launch(tb, built)
        app.ecall_once(0, "setup", {"password": "secret"})
        app.ecall_once(0, "try_password", {"password": "wrong"})
        ok = app.ecall_once(0, "try_password", {"password": "secret"})
        assert ok["authenticated"]
        assert app.ecall_once(0, "status")["failed_attempts"] == 0


class TestMemcached:
    def test_set_get(self):
        tb = build_testbed(seed=450)
        built = build_memcached_image(tb.builder, state_mb=1)
        app = launch(tb, built)
        app.ecall_once(0, "set", {"key": "alpha", "value": "one"})
        assert app.ecall_once(0, "get", {"key": "alpha"})["value"] == b"one"
        assert not app.ecall_once(0, "get", {"key": "missing"})["ok"]

    def test_value_size_limit(self):
        tb = build_testbed(seed=451)
        built = build_memcached_image(tb.builder, state_mb=1)
        app = launch(tb, built)
        reply = app.ecall_once(0, "set", {"key": "big", "value": "v" * 200})
        assert not reply["ok"]

    def test_state_survives_migration(self):
        from repro.migration.orchestrator import MigrationOrchestrator

        tb = build_testbed(seed=452)
        built = build_memcached_image(tb.builder, state_mb=1)
        app = launch(tb, built)
        app.ecall_once(0, "set", {"key": "k", "value": "persists"})
        result = MigrationOrchestrator(tb).migrate_enclave(app)
        got = result.target_app.ecall_once(0, "get", {"key": "k"})
        assert got["value"] == b"persists"
