"""Diffie-Hellman, RSA signatures, typed keys, and the AE envelope."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.authenc import CIPHER_NAMES, Envelope, open_envelope, seal_envelope
from repro.crypto.dh import DhKeyExchange, MODP_2048_P
from repro.crypto.keys import KeyPair, SymmetricKey
from repro.crypto.rsa import RsaPublicKey, generate_rsa_keypair
from repro.errors import CryptoError, IntegrityError, SignatureError
from repro.sim.rng import DeterministicRng


class TestDh:
    def test_shared_secret_agrees(self, rng):
        alice, bob = DhKeyExchange(rng.fork("a")), DhKeyExchange(rng.fork("b"))
        assert alice.shared_secret(bob.public) == bob.shared_secret(alice.public)

    def test_third_party_differs(self, rng):
        alice = DhKeyExchange(rng.fork("a"))
        bob = DhKeyExchange(rng.fork("b"))
        eve = DhKeyExchange(rng.fork("e"))
        assert eve.shared_secret(alice.public) != alice.shared_secret(bob.public)

    @pytest.mark.parametrize("degenerate", [0, 1, MODP_2048_P - 1, MODP_2048_P])
    def test_degenerate_peer_rejected(self, rng, degenerate):
        party = DhKeyExchange(rng.fork("a"))
        with pytest.raises(CryptoError):
            party.shared_secret(degenerate)

    def test_secret_is_32_bytes(self, rng):
        alice, bob = DhKeyExchange(rng.fork("a")), DhKeyExchange(rng.fork("b"))
        assert len(alice.shared_secret(bob.public)) == 32


class TestRsa:
    def test_sign_verify(self, rng):
        key = generate_rsa_keypair(rng.fork("k"))
        sig = key.sign(b"message")
        key.public.verify(b"message", sig)  # no raise

    def test_wrong_message_rejected(self, rng):
        key = generate_rsa_keypair(rng.fork("k"))
        sig = key.sign(b"message")
        with pytest.raises(SignatureError):
            key.public.verify(b"other", sig)

    def test_tampered_signature_rejected(self, rng):
        key = generate_rsa_keypair(rng.fork("k"))
        sig = bytearray(key.sign(b"message"))
        sig[10] ^= 1
        with pytest.raises(SignatureError):
            key.public.verify(b"message", bytes(sig))

    def test_wrong_key_rejected(self, rng):
        key_a = generate_rsa_keypair(rng.fork("a"))
        key_b = generate_rsa_keypair(rng.fork("b"))
        sig = key_a.sign(b"message")
        assert not key_b.public.is_valid(b"message", sig)

    def test_signature_length_checked(self, rng):
        key = generate_rsa_keypair(rng.fork("k"))
        with pytest.raises(SignatureError):
            key.public.verify(b"message", b"short")

    def test_keygen_deterministic_and_cached(self):
        a = generate_rsa_keypair(DeterministicRng("same-seed"))
        b = generate_rsa_keypair(DeterministicRng("same-seed"))
        assert a.n == b.n

    def test_fingerprint_stable(self, rng):
        key = generate_rsa_keypair(rng.fork("k")).public
        assert key.fingerprint() == key.fingerprint()
        assert len(key.fingerprint()) == 32


class TestSymmetricKey:
    def test_min_length_enforced(self):
        with pytest.raises(ValueError):
            SymmetricKey(b"short")

    def test_derive_is_labelled(self):
        key = SymmetricKey(b"k" * 32, "root")
        assert key.derive("enc").material != key.derive("mac").material
        assert key.derive("enc").material == key.derive("enc").material

    def test_repr_hides_material(self):
        key = SymmetricKey(b"supersecretsupersecret!!", "root")
        assert b"supersecret" not in repr(key).encode()

    def test_random(self, rng):
        a = SymmetricKey.random(rng.fork("a"))
        b = SymmetricKey.random(rng.fork("b"))
        assert a.material != b.material


class TestEnvelope:
    @pytest.fixture
    def key(self):
        return SymmetricKey(b"\x07" * 32, "test")

    @pytest.mark.parametrize("algorithm", CIPHER_NAMES)
    def test_roundtrip_all_ciphers(self, key, algorithm):
        env = seal_envelope(key, b"payload " * 50, b"n" * 16, algorithm)
        assert open_envelope(key, env) == b"payload " * 50

    @pytest.mark.parametrize("algorithm", CIPHER_NAMES)
    def test_serialization_roundtrip(self, key, algorithm):
        env = seal_envelope(key, b"data", b"n" * 16, algorithm)
        assert open_envelope(key, Envelope.from_bytes(env.to_bytes())) == b"data"

    def test_ciphertext_hides_plaintext(self, key):
        secret = b"VERY-IDENTIFIABLE-SECRET-BYTES"
        env = seal_envelope(key, secret * 4, b"n" * 16, "aes")
        assert secret not in env.ciphertext
        assert secret not in env.to_bytes()

    def test_wrong_key_rejected(self, key):
        env = seal_envelope(key, b"data", b"n" * 16)
        other = SymmetricKey(b"\x08" * 32, "other")
        with pytest.raises(IntegrityError):
            open_envelope(other, env)

    def test_tampered_ciphertext_rejected(self, key):
        env = seal_envelope(key, b"data" * 20, b"n" * 16)
        bad = Envelope(env.algorithm, env.nonce, b"X" + env.ciphertext[1:], env.mac)
        with pytest.raises(IntegrityError):
            open_envelope(key, bad)

    def test_tampered_mac_rejected(self, key):
        env = seal_envelope(key, b"data", b"n" * 16)
        bad = Envelope(env.algorithm, env.nonce, env.ciphertext, b"\x00" * 32)
        with pytest.raises(IntegrityError):
            open_envelope(key, bad)

    def test_aad_binding(self, key):
        env = seal_envelope(key, b"data", b"n" * 16, aad=b"context-a")
        with pytest.raises(IntegrityError):
            open_envelope(key, env, aad=b"context-b")
        assert open_envelope(key, env, aad=b"context-a") == b"data"

    def test_algorithm_swap_rejected(self, key):
        env = seal_envelope(key, b"data", b"n" * 16, "rc4")
        swapped = Envelope("aes", env.nonce, env.ciphertext, env.mac)
        with pytest.raises(IntegrityError):
            open_envelope(key, swapped)

    def test_unknown_algorithm_rejected(self, key):
        with pytest.raises(CryptoError):
            seal_envelope(key, b"data", b"n" * 16, "rot13")

    def test_short_nonce_rejected(self, key):
        with pytest.raises(CryptoError):
            seal_envelope(key, b"data", b"abc")

    def test_truncated_bytes_rejected(self, key):
        env = seal_envelope(key, b"data" * 100, b"n" * 16)
        with pytest.raises(CryptoError):
            Envelope.from_bytes(env.to_bytes()[: len(env.to_bytes()) // 2])

    @given(st.binary(max_size=300), st.sampled_from(CIPHER_NAMES))
    @settings(max_examples=30)
    def test_roundtrip_property(self, data, algorithm):
        key = SymmetricKey(b"\x09" * 32, "prop")
        env = seal_envelope(key, data, b"n" * 16, algorithm)
        assert open_envelope(key, env) == data
