"""Property-based round-trips for the two byte formats the wire trusts.

Randomised (but seeded — reproducible, no external dependency) structural
generators drive :mod:`repro.serde` and the authenticated envelope
through round-trip, truncation and bit-flip properties.  These are the
two layers every protocol byte passes through: serde frames must decode
to exactly what was encoded, and a sealed envelope must either open to
the original plaintext or raise — never return wrong bytes silently.
"""

from __future__ import annotations

import random

import pytest

from repro.crypto.authenc import CIPHER_NAMES, Envelope, open_envelope, seal_envelope
from repro.crypto.keys import SymmetricKey
from repro.errors import CryptoError, IntegrityError
from repro.serde import SerdeError, pack, unpack

N_CASES = 40


def _random_value(rng: random.Random, depth: int = 0):
    """A random serde-encodable value (ints, str, bytes, bool, None,
    lists, tuples, and string-keyed dicts, arbitrarily nested)."""
    kinds = ["int", "str", "bytes", "bool", "none"]
    if depth < 3:
        kinds += ["list", "dict", "tuple"]
    kind = rng.choice(kinds)
    if kind == "int":
        return rng.randint(-(2**70), 2**70)
    if kind == "str":
        return "".join(
            rng.choice("abcdefghijé中 xyz_:/{}[]\"'\\") for _ in range(rng.randint(0, 12))
        )
    if kind == "bytes":
        return rng.randbytes(rng.randint(0, 64))
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "none":
        return None
    if kind == "list":
        return [_random_value(rng, depth + 1) for _ in range(rng.randint(0, 4))]
    if kind == "tuple":
        return tuple(_random_value(rng, depth + 1) for _ in range(rng.randint(0, 4)))
    return {
        f"k{idx}_{rng.randint(0, 99)}": _random_value(rng, depth + 1)
        for idx in range(rng.randint(0, 4))
    }


class TestSerdeProperties:
    @pytest.mark.parametrize("case", range(N_CASES))
    def test_pack_unpack_roundtrip(self, case):
        rng = random.Random(9000 + case)
        value = _random_value(rng)
        assert unpack(pack(value)) == value

    @pytest.mark.parametrize("case", range(N_CASES))
    def test_pack_is_deterministic(self, case):
        rng = random.Random(9100 + case)
        value = _random_value(rng)
        assert pack(value) == pack(value)

    @pytest.mark.parametrize("case", range(10))
    def test_truncation_never_decodes_silently(self, case):
        """Any strict prefix either raises SerdeError or is detectably
        not the original (a prefix of canonical JSON can't round-trip)."""
        rng = random.Random(9200 + case)
        value = {"payload": _random_value(rng), "tail": rng.randbytes(8)}
        blob = pack(value)
        cut = rng.randint(1, len(blob) - 1)
        with pytest.raises(SerdeError):
            unpack(blob[:cut])

    @pytest.mark.parametrize("case", range(10))
    def test_bitflip_never_yields_original(self, case):
        rng = random.Random(9300 + case)
        value = {"payload": _random_value(rng)}
        blob = bytearray(pack(value))
        blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        try:
            assert unpack(bytes(blob)) != value
        except SerdeError:
            pass  # refusing to decode is equally acceptable

    def test_floats_are_rejected(self):
        with pytest.raises(SerdeError):
            pack({"t": 0.5})


class TestEnvelopeProperties:
    @staticmethod
    def _seal(rng: random.Random):
        key = SymmetricKey(rng.randbytes(32), "prop")
        plaintext = rng.randbytes(rng.randint(0, 4096))
        nonce = rng.randbytes(16)
        algorithm = rng.choice(sorted(CIPHER_NAMES))
        aad = rng.randbytes(rng.randint(0, 16))
        return key, aad, plaintext, seal_envelope(key, plaintext, nonce, algorithm, aad=aad)

    @pytest.mark.parametrize("case", range(N_CASES))
    def test_seal_open_roundtrip(self, case):
        rng = random.Random(7000 + case)
        key, aad, plaintext, envelope = self._seal(rng)
        assert open_envelope(key, Envelope.from_bytes(envelope.to_bytes()), aad=aad) == plaintext

    @pytest.mark.parametrize("case", range(N_CASES))
    def test_any_bitflip_is_detected(self, case):
        """Flipping any single bit anywhere in the serialized envelope
        must raise — nonce, ciphertext, MAC, even the algorithm tag."""
        rng = random.Random(7100 + case)
        key, aad, _, envelope = self._seal(rng)
        blob = bytearray(envelope.to_bytes())
        blob[rng.randrange(len(blob))] ^= 1 << rng.randrange(8)
        with pytest.raises((IntegrityError, CryptoError, SerdeError)):
            open_envelope(key, Envelope.from_bytes(bytes(blob)), aad=aad)

    @pytest.mark.parametrize("case", range(N_CASES))
    def test_any_truncation_is_detected(self, case):
        rng = random.Random(7200 + case)
        key, aad, _, envelope = self._seal(rng)
        blob = envelope.to_bytes()
        cut = rng.randint(1, len(blob) - 1)
        with pytest.raises((IntegrityError, CryptoError, SerdeError)):
            open_envelope(key, Envelope.from_bytes(blob[:cut]), aad=aad)

    @pytest.mark.parametrize("case", range(10))
    def test_wrong_key_and_wrong_aad_refused(self, case):
        rng = random.Random(7300 + case)
        key, aad, _, envelope = self._seal(rng)
        with pytest.raises(IntegrityError):
            open_envelope(SymmetricKey(rng.randbytes(32), "other"), envelope, aad=aad)
        with pytest.raises(IntegrityError):
            open_envelope(key, envelope, aad=aad + b"x")
