"""RC4, DES and AES against published vectors plus property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import Aes128, INV_SBOX, SBOX
from repro.crypto.des import Des
from repro.crypto.rc4 import Rc4, rc4_decrypt, rc4_encrypt


class TestRc4:
    # Vectors from the original posting / RFC 6229 style checks.
    @pytest.mark.parametrize(
        "key,plaintext,expected",
        [
            (b"Key", b"Plaintext", "bbf316e8d940af0ad3"),
            (b"Wiki", b"pedia", "1021bf0420"),
            (b"Secret", b"Attack at dawn", "45a01f645fc35b383552544b9bf5"),
        ],
    )
    def test_known_vectors(self, key, plaintext, expected):
        assert rc4_encrypt(key, plaintext).hex() == expected

    def test_decrypt_is_encrypt(self):
        ct = rc4_encrypt(b"k", b"hello")
        assert rc4_decrypt(b"k", ct) == b"hello"

    def test_keystream_is_stateful(self):
        cipher = Rc4(b"key")
        first = cipher.keystream(10)
        second = cipher.keystream(10)
        assert first != second
        fresh = Rc4(b"key")
        assert fresh.keystream(20) == first + second

    @pytest.mark.parametrize("bad_key", [b"", b"x" * 257])
    def test_bad_key_length(self, bad_key):
        with pytest.raises(ValueError):
            Rc4(bad_key)

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=256))
    @settings(max_examples=40)
    def test_roundtrip_property(self, key, data):
        assert rc4_decrypt(key, rc4_encrypt(key, data)) == data


class TestDes:
    def test_fips_vector(self):
        cipher = Des(bytes.fromhex("133457799BBCDFF1"))
        ct = cipher.encrypt_block(bytes.fromhex("0123456789ABCDEF"))
        assert ct.hex() == "85e813540f0ab405"

    def test_weak_key_all_zero_is_self_inverse_ish(self):
        # With an all-zero key every subkey is identical; double
        # encryption must still decrypt correctly through the API.
        cipher = Des(bytes(8))
        block = b"ABCDEFGH"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_wrong_block_size(self):
        cipher = Des(b"8bytekey")
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"way too long!")

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            Des(b"short")

    def test_avalanche(self):
        cipher = Des(b"8bytekey")
        a = cipher.encrypt_block(b"\x00" * 8)
        b = cipher.encrypt_block(b"\x00" * 7 + b"\x01")
        diff = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert diff > 16  # a single input bit flips many output bits

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=8, max_size=8))
    @settings(max_examples=40)
    def test_roundtrip_property(self, key, block):
        cipher = Des(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


class TestAes:
    def test_fips197_appendix_c(self):
        cipher = Aes128(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        ct = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert ct.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_fips197_appendix_b(self):
        cipher = Aes128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = cipher.encrypt_block(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        assert ct.hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_sbox_derivation_matches_published_values(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16
        assert INV_SBOX[0x63] == 0x00

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))

    def test_wrong_key_size(self):
        with pytest.raises(ValueError):
            Aes128(b"too short")

    def test_wrong_block_size(self):
        cipher = Aes128(b"k" * 16)
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"x")

    def test_batched_matches_scalar(self):
        cipher = Aes128(b"0123456789abcdef")
        blocks = np.frombuffer(bytes(range(256))[: 16 * 16], dtype=np.uint8).reshape(16, 16).copy()
        batched = cipher.encrypt_blocks(blocks)
        for i in range(16):
            assert batched[i].tobytes() == cipher.encrypt_block(blocks[i].tobytes())

    def test_batched_rejects_bad_shape(self):
        cipher = Aes128(b"k" * 16)
        with pytest.raises(ValueError):
            cipher.encrypt_blocks(np.zeros((4, 8), dtype=np.uint8))
        with pytest.raises(ValueError):
            cipher.encrypt_blocks(np.zeros((4, 16), dtype=np.int32))

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    @settings(max_examples=40)
    def test_roundtrip_property(self, key, block):
        cipher = Aes128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block
