"""Statistical sanity of the cipher outputs.

Not a cryptanalysis suite — cheap distributional checks that would catch
gross implementation mistakes (stuck bytes, identity transforms, short
cycles) in the from-scratch ciphers.
"""

import math

import pytest

from repro.crypto.aes import Aes128
from repro.crypto.des import Des
from repro.crypto.modes import ctr_keystream
from repro.crypto.rc4 import Rc4


def byte_histogram(data: bytes) -> list[int]:
    counts = [0] * 256
    for b in data:
        counts[b] += 1
    return counts


def chi_square_uniform(data: bytes) -> float:
    expected = len(data) / 256
    return sum((c - expected) ** 2 / expected for c in byte_histogram(data))


# For 255 degrees of freedom, a chi-square above ~360 is < 0.0001 likely
# for genuinely uniform data; a broken keystream lands in the thousands.
CHI_SQUARE_BOUND = 360


class TestKeystreamUniformity:
    def test_rc4_keystream_roughly_uniform(self):
        stream = Rc4(b"statistical-test-key").keystream(64 * 1024)
        assert chi_square_uniform(stream) < CHI_SQUARE_BOUND

    def test_aes_ctr_keystream_roughly_uniform(self):
        stream = ctr_keystream(Aes128(b"k" * 16), b"n" * 8, 64 * 1024)
        assert chi_square_uniform(stream) < CHI_SQUARE_BOUND

    def test_des_ctr_keystream_roughly_uniform(self):
        stream = ctr_keystream(Des(b"8bytekey"), b"nn", 16 * 1024)
        assert chi_square_uniform(stream) < CHI_SQUARE_BOUND


class TestNoDegenerateBehaviour:
    def test_rc4_no_short_cycle(self):
        stream = Rc4(b"key").keystream(4096)
        # No 16-byte block repeats immediately (a cycle would).
        blocks = [stream[i : i + 16] for i in range(0, 4096, 16)]
        assert len(set(blocks)) == len(blocks)

    def test_aes_not_identity_or_involution(self):
        cipher = Aes128(b"k" * 16)
        block = bytes(16)
        once = cipher.encrypt_block(block)
        twice = cipher.encrypt_block(once)
        assert once != block
        assert twice != block

    def test_des_output_depends_on_every_key_byte(self):
        base = Des(b"AAAAAAAA").encrypt_block(b"plaintxt")
        for i in range(8):
            key = bytearray(b"AAAAAAAA")
            key[i] ^= 0x02  # flip a non-parity bit
            assert Des(bytes(key)).encrypt_block(b"plaintxt") != base

    def test_aes_output_depends_on_every_key_byte(self):
        base = Aes128(b"B" * 16).encrypt_block(b"p" * 16)
        for i in range(16):
            key = bytearray(b"B" * 16)
            key[i] ^= 1
            assert Aes128(bytes(key)).encrypt_block(b"p" * 16) != base

    def test_ciphertext_entropy_high(self):
        # Shannon entropy of AES-CTR over zeros must be near 8 bits/byte.
        stream = ctr_keystream(Aes128(b"e" * 16), b"n" * 8, 32 * 1024)
        counts = byte_histogram(stream)
        total = len(stream)
        entropy = -sum(
            (c / total) * math.log2(c / total) for c in counts if c
        )
        assert entropy > 7.9
