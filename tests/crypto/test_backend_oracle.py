"""Differential oracle: the fast crypto backend ≡ the pure-Python reference.

The fast backend (cached cipher objects, optional OpenSSL delegation via
``cryptography``) must be a *drop-in* for the reference implementation:
byte-identical ciphertext for every algorithm, key, nonce, payload size
(empty and non-block-aligned included) and CTR counter offset.  Property
tests drive both backends over randomized inputs and demand equality;
envelope tests additionally prove the two interoperate (seal on one,
open on the other) and agree on tamper rejection.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.authenc import CIPHER_NAMES, open_envelope, seal_envelope
from repro.crypto.backend import (
    BACKEND_NAMES,
    FastBackend,
    ReferenceBackend,
    get_backend,
    make_backend,
    set_backend,
    use_backend,
)
from repro.crypto.keys import SymmetricKey
from repro.errors import CryptoError, IntegrityError

REF = ReferenceBackend()
FAST = FastBackend()

payloads = st.binary(min_size=0, max_size=3000)
keys = st.binary(min_size=16, max_size=48)
counters = st.integers(min_value=0, max_value=2**62)


class TestPrimitiveParity:
    @settings(max_examples=40, deadline=None)
    @given(key=st.binary(min_size=1, max_size=64), data=payloads)
    def test_rc4(self, key, data):
        assert FAST.rc4(key, data) == REF.rc4(key, data)

    @settings(max_examples=40, deadline=None)
    @given(key=keys, nonce=st.binary(min_size=8, max_size=8), data=payloads, offset=counters)
    def test_aes_ctr_with_offsets(self, key, nonce, data, offset):
        key16 = key[:16]
        assert FAST.aes_ctr(key16, nonce, data, offset) == REF.aes_ctr(key16, nonce, data, offset)

    @settings(max_examples=15, deadline=None)
    @given(key=keys, nonce=st.binary(min_size=4, max_size=4), data=st.binary(max_size=400),
           offset=st.integers(min_value=0, max_value=2**30))
    def test_des_ctr_with_offsets(self, key, nonce, data, offset):
        key8 = key[:8]
        assert FAST.des_ctr(key8, nonce, data, offset) == REF.des_ctr(key8, nonce, data, offset)

    @settings(max_examples=40, deadline=None)
    @given(key=keys, iv=st.binary(min_size=16, max_size=16), data=payloads)
    def test_aes_cbc_roundtrip(self, key, iv, data):
        key16 = key[:16]
        ct_fast = FAST.aes_cbc_encrypt(key16, iv, data)
        assert ct_fast == REF.aes_cbc_encrypt(key16, iv, data)
        # Decrypt across backends: each opens the other's ciphertext.
        assert FAST.aes_cbc_decrypt(key16, iv, ct_fast) == data
        assert REF.aes_cbc_decrypt(key16, iv, ct_fast) == data

    def test_ctr_keystream_offset_equals_midstream_slice(self):
        """Encrypting from block offset k must equal the tail of a longer
        stream — the property chunked/resumed encryption relies on."""
        key16, nonce = b"k" * 16, b"n" * 8
        whole = REF.aes_ctr(key16, nonce, b"\x00" * 160)
        for k in (1, 3, 9):
            tail = FAST.aes_ctr(key16, nonce, b"\x00" * (160 - 16 * k), first_counter=k)
            assert tail == whole[16 * k :]

    def test_empty_payloads(self):
        assert FAST.rc4(b"k", b"") == b""
        assert FAST.aes_ctr(b"k" * 16, b"n" * 8, b"") == b""
        assert FAST.des_ctr(b"k" * 8, b"n" * 4, b"") == b""

    def test_non_block_aligned_payloads(self):
        for n in (1, 15, 17, 31, 4095, 4097):
            data = bytes(range(256)) * (n // 256 + 1)
            data = data[:n]
            assert FAST.aes_ctr(b"k" * 16, b"n" * 8, data) == REF.aes_ctr(b"k" * 16, b"n" * 8, data)


class TestEnvelopeParity:
    @settings(max_examples=10, deadline=None)
    @given(
        algorithm=st.sampled_from(CIPHER_NAMES),
        key=st.binary(min_size=16, max_size=32),
        nonce=st.binary(min_size=8, max_size=16),
        plaintext=payloads,
        aad=st.binary(max_size=32),
    )
    def test_identical_envelopes_and_cross_open(self, algorithm, key, nonce, plaintext, aad):
        k = SymmetricKey(key.ljust(16, b"\x00"), "oracle")
        with use_backend(REF):
            env_ref = seal_envelope(k, plaintext, nonce, algorithm, aad=aad)
        with use_backend(FAST):
            env_fast = seal_envelope(k, plaintext, nonce, algorithm, aad=aad)
        assert env_ref.to_bytes() == env_fast.to_bytes()
        # Sealed under one backend, opened under the other.
        with use_backend(FAST):
            assert open_envelope(k, env_ref, aad=aad) == plaintext
        with use_backend(REF):
            assert open_envelope(k, env_fast, aad=aad) == plaintext

    @pytest.mark.parametrize("backend_name", BACKEND_NAMES)
    @pytest.mark.parametrize("algorithm", CIPHER_NAMES)
    def test_tamper_rejection(self, backend_name, algorithm):
        k = SymmetricKey(b"t" * 32, "tamper")
        with use_backend(backend_name):
            env = seal_envelope(k, b"payload" * 40, b"n" * 12, algorithm, aad=b"a")
            mangled = bytearray(env.to_bytes())
            mangled[-40] ^= 0x01  # flip a ciphertext byte
            from repro.crypto.authenc import Envelope

            with pytest.raises(IntegrityError):
                open_envelope(k, Envelope.from_bytes(bytes(mangled)), aad=b"a")
            with pytest.raises(IntegrityError):
                open_envelope(k, env, aad=b"wrong-aad")


class TestRegistry:
    def test_unknown_backend_rejected(self):
        with pytest.raises(CryptoError):
            make_backend("turbo")

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_CRYPTO_BACKEND", "reference")
        previous = set_backend(None)
        try:
            assert get_backend().name == "reference"
        finally:
            set_backend(previous)

    def test_use_backend_restores(self):
        before = get_backend()
        with use_backend("reference") as b:
            assert b.name == "reference"
        assert get_backend() is before
