"""Block-cipher modes, padding, hashes and HKDF."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import Aes128
from repro.crypto.des import Des
from repro.crypto.hashes import constant_time_equal, hkdf, hmac_sha256, sha256
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream,
    ctr_process,
    pkcs7_pad,
    pkcs7_unpad,
)
from repro.errors import CryptoError


class TestPkcs7:
    def test_pad_round_trip(self):
        for n in range(0, 40):
            data = bytes(range(n % 256))[:n]
            assert pkcs7_unpad(pkcs7_pad(data, 16), 16) == data

    def test_full_block_added_when_aligned(self):
        padded = pkcs7_pad(b"x" * 16, 16)
        assert len(padded) == 32
        assert padded[-1] == 16

    def test_bad_padding_rejected(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"\x00" * 16, 16)
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"a" * 15 + b"\x05", 16)

    def test_unaligned_rejected(self):
        with pytest.raises(CryptoError):
            pkcs7_unpad(b"abc", 16)


class TestCbc:
    def test_roundtrip_aes(self):
        cipher = Aes128(b"k" * 16)
        ct = cbc_encrypt(cipher, b"i" * 16, b"attack at dawn")
        assert cbc_decrypt(cipher, b"i" * 16, ct) == b"attack at dawn"

    def test_roundtrip_des(self):
        cipher = Des(b"8bytekey")
        ct = cbc_encrypt(cipher, b"ivivivi!", b"some longer plaintext here")
        assert cbc_decrypt(cipher, b"ivivivi!", ct) == b"some longer plaintext here"

    def test_iv_must_match_block(self):
        with pytest.raises(ValueError):
            cbc_encrypt(Aes128(b"k" * 16), b"short", b"data")

    def test_identical_blocks_differ_in_ciphertext(self):
        cipher = Aes128(b"k" * 16)
        ct = cbc_encrypt(cipher, b"\x00" * 16, b"A" * 32)
        assert ct[:16] != ct[16:32]

    def test_wrong_iv_garbles(self):
        cipher = Aes128(b"k" * 16)
        ct = cbc_encrypt(cipher, b"\x01" * 16, b"hello world!!!")
        with pytest.raises(CryptoError):
            # Wrong IV corrupts the first block; padding check catches it
            # (or the plaintext differs — both count as failure here).
            result = cbc_decrypt(cipher, b"\x02" * 16, ct)
            if result == b"hello world!!!":
                raise AssertionError("wrong IV decrypted correctly?!")
            raise CryptoError("garbled")

    @given(st.binary(max_size=200))
    @settings(max_examples=30)
    def test_roundtrip_property(self, data):
        cipher = Aes128(b"p" * 16)
        assert cbc_decrypt(cipher, b"q" * 16, cbc_encrypt(cipher, b"q" * 16, data)) == data


class TestCtr:
    def test_process_is_involution(self):
        cipher = Aes128(b"k" * 16)
        data = b"counter mode data" * 3
        ct = ctr_process(cipher, b"nonce123", data)
        assert ctr_process(cipher, b"nonce123", ct) == data

    def test_keystream_deterministic(self):
        cipher = Aes128(b"k" * 16)
        assert ctr_keystream(cipher, b"n" * 8, 100) == ctr_keystream(cipher, b"n" * 8, 100)

    def test_different_nonce_different_stream(self):
        cipher = Aes128(b"k" * 16)
        assert ctr_keystream(cipher, b"n1n1n1n1", 64) != ctr_keystream(cipher, b"n2n2n2n2", 64)

    def test_counter_offset(self):
        cipher = Aes128(b"k" * 16)
        full = ctr_keystream(cipher, b"n" * 8, 64)
        tail = ctr_keystream(cipher, b"n" * 8, 32, first_counter=2)
        assert full[32:] == tail

    def test_works_with_scalar_only_cipher(self):
        cipher = Des(b"8bytekey")
        data = b"des in counter mode"
        assert ctr_process(cipher, b"nn", ctr_process(cipher, b"nn", data)) == data

    def test_nonce_too_long_rejected(self):
        cipher = Aes128(b"k" * 16)
        with pytest.raises(ValueError):
            ctr_keystream(cipher, b"x" * 15, 16)


class TestHashes:
    def test_sha256_known_vector(self):
        assert sha256(b"abc").hex() == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_hmac_rfc4231_case1(self):
        mac = hmac_sha256(b"\x0b" * 20, b"Hi There")
        assert mac.hex() == (
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        )

    def test_constant_time_equal(self):
        assert constant_time_equal(b"same", b"same")
        assert not constant_time_equal(b"same", b"diff")

    def test_hkdf_deterministic_and_labelled(self):
        a = hkdf(b"ikm", b"label-a", 32)
        b = hkdf(b"ikm", b"label-a", 32)
        c = hkdf(b"ikm", b"label-b", 32)
        assert a == b
        assert a != c

    def test_hkdf_lengths(self):
        assert len(hkdf(b"x", b"y", 16)) == 16
        assert len(hkdf(b"x", b"y", 100)) == 100

    def test_hkdf_prefix_property(self):
        assert hkdf(b"x", b"y", 64)[:32] == hkdf(b"x", b"y", 32)

    def test_hkdf_too_long(self):
        with pytest.raises(ValueError):
            hkdf(b"x", b"y", 256 * 32 + 1)
