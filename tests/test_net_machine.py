"""Network model and machine composition."""

import pytest

from repro.machine import Machine
from repro.net.network import Network
from repro.sim.clock import VirtualClock
from repro.sim.costs import DEFAULT_COSTS
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace


@pytest.fixture
def network(clock, trace):
    return Network(clock, DEFAULT_COSTS, trace)


class TestNetwork:
    def test_transfer_charges_time(self, network, clock):
        network.transfer("data", b"x" * 1_000_000)
        assert clock.now_ns > DEFAULT_COSTS.net_latency_ns

    def test_wan_slower_than_lan(self, clock, trace):
        lan = Network(clock, DEFAULT_COSTS, trace)
        before = clock.now_ns
        lan.transfer("a", b"x" * 1000)
        lan_cost = clock.now_ns - before
        before = clock.now_ns
        lan.transfer("b", b"x" * 1000, wan=True)
        wan_cost = clock.now_ns - before
        assert wan_cost > lan_cost

    def test_bytes_counted(self, network):
        network.transfer("a", b"x" * 100)
        network.transfer("b", b"y" * 50)
        assert network.bytes_transferred == 150

    def test_captured_by_label(self, network):
        network.transfer("secret", b"one")
        network.transfer("other", b"two")
        network.transfer("secret", b"three")
        assert network.captured("secret") == [b"one", b"three"]

    def test_tap_observes(self, network):
        seen = []
        network.add_tap(lambda label, payload: seen.append((label, payload)) or None)
        network.transfer("x", b"data")
        assert seen == [("x", b"data")]

    def test_tap_can_replace_payload(self, network):
        network.add_tap(lambda label, payload: b"EVIL" if label == "x" else None)
        assert network.transfer("x", b"data") == b"EVIL"
        assert network.transfer("y", b"data") == b"data"

    def test_taps_chain(self, network):
        network.add_tap(lambda label, payload: payload + b"1")
        network.add_tap(lambda label, payload: payload + b"2")
        assert network.transfer("x", b"p") == b"p12"

    def test_clear_taps(self, network):
        network.add_tap(lambda label, payload: b"EVIL")
        network.clear_taps()
        assert network.transfer("x", b"data") == b"data"

    def test_log_keeps_original_payload(self, network):
        # The log records what was *sent*; taps change what *arrives*.
        network.add_tap(lambda label, payload: b"EVIL")
        network.transfer("x", b"original")
        assert network.captured("x") == [b"original"]


class TestMachine:
    def test_machines_have_distinct_key_material(self, clock, trace):
        rng = DeterministicRng(1)
        a = Machine("a", clock, trace, rng)
        b = Machine("b", clock, trace, rng)
        assert a.cpu.platform_id != b.cpu.platform_id
        assert a.cpu._root_key.material != b.cpu._root_key.material

    def test_same_seed_same_machine(self, trace):
        a = Machine("host", VirtualClock(), trace, DeterministicRng(5))
        b = Machine("host", VirtualClock(), trace, DeterministicRng(5))
        assert a.cpu.platform_id == b.cpu.platform_id

    def test_provision_installs_quoting_enclave(self, clock, trace):
        from repro.crypto.keys import KeyPair
        from repro.crypto.rsa import generate_rsa_keypair
        from repro.sgx.attestation import AttestationService

        machine = Machine("host", clock, trace, DeterministicRng(2))
        ias = AttestationService(
            clock, DEFAULT_COSTS, KeyPair(generate_rsa_keypair(DeterministicRng("i")), "ias")
        )
        assert machine.quoting_enclave is None
        machine.provision(ias)
        assert machine.quoting_enclave is not None
        assert machine.quoting_enclave.cpu is machine.cpu
