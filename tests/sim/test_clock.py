"""Virtual clock semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import NS_PER_MS, NS_PER_US, Stopwatch, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now_ns == 0

    def test_custom_start(self):
        assert VirtualClock(500).now_ns == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1)

    def test_advance_accumulates(self, clock):
        clock.advance(100)
        clock.advance(250)
        assert clock.now_ns == 350

    def test_advance_returns_new_time(self, clock):
        assert clock.advance(42) == 42

    def test_negative_advance_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_zero_advance_allowed(self, clock):
        clock.advance(0)
        assert clock.now_ns == 0

    def test_advance_to_moves_forward_only(self, clock):
        clock.advance_to(1000)
        assert clock.now_ns == 1000
        clock.advance_to(500)  # earlier time: no-op
        assert clock.now_ns == 1000

    def test_unit_conversions(self, clock):
        clock.advance(2_500_000)
        assert clock.now_us == 2_500_000 / NS_PER_US
        assert clock.now_ms == 2_500_000 / NS_PER_MS

    @given(st.lists(st.integers(min_value=0, max_value=10**12), max_size=50))
    def test_advance_sums_exactly(self, deltas):
        clock = VirtualClock()
        for delta in deltas:
            clock.advance(delta)
        assert clock.now_ns == sum(deltas)


class TestStopwatch:
    def test_measures_interval(self, clock):
        watch = clock.stopwatch()
        clock.advance(750)
        assert watch.elapsed_ns == 750

    def test_stop_freezes(self, clock):
        watch = clock.stopwatch()
        clock.advance(100)
        assert watch.stop() == 100
        clock.advance(900)
        assert watch.elapsed_ns == 100

    def test_restart(self, clock):
        watch = clock.stopwatch()
        clock.advance(100)
        watch.restart()
        clock.advance(50)
        assert watch.elapsed_ns == 50

    def test_unit_properties(self, clock):
        watch = clock.stopwatch()
        clock.advance(3_000_000)
        assert watch.elapsed_us == pytest.approx(3000.0)
        assert watch.elapsed_ms == pytest.approx(3.0)

    def test_stopwatch_starts_at_current_time(self, clock):
        clock.advance(500)
        watch = Stopwatch(clock)
        assert watch.elapsed_ns == 0
