"""Property-based tests of the scheduling engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.clock import VirtualClock
from repro.sim.engine import Engine, SimThread


@given(
    n_vcpus=st.integers(min_value=1, max_value=8),
    thread_steps=st.lists(
        st.lists(st.integers(min_value=0, max_value=10_000), max_size=20),
        min_size=1,
        max_size=12,
    ),
)
@settings(max_examples=40, deadline=None)
def test_all_work_completes_and_clock_bounds_hold(n_vcpus, thread_steps):
    """For any workload: everything finishes, and the elapsed virtual
    time lies between the critical path (longest single thread) and the
    serial sum plus switching overhead."""
    clock = VirtualClock()
    engine = Engine(clock, n_vcpus=n_vcpus, context_switch_ns=100)

    def body(costs):
        for cost in costs:
            yield cost

    threads = [engine.spawn(f"t{i}", body(c)) for i, c in enumerate(thread_steps)]
    engine.run_all()
    assert all(t.finished for t in threads)
    critical_path = max((sum(c) for c in thread_steps), default=0)
    serial = sum(sum(c) for c in thread_steps)
    switches = engine.rounds_run * 100
    assert clock.now_ns >= critical_path
    assert clock.now_ns <= serial + switches + 1


@given(
    costs=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=30)
)
@settings(max_examples=30, deadline=None)
def test_cpu_time_equals_declared_costs(costs):
    clock = VirtualClock()
    engine = Engine(clock, n_vcpus=2)

    def body():
        for cost in costs:
            yield cost

    thread = engine.spawn("t", body())
    engine.run_all()
    assert thread.cpu_time_ns == sum(costs)


@given(n_threads=st.integers(min_value=2, max_value=10))
@settings(max_examples=15, deadline=None)
def test_single_vcpu_serializes_exactly(n_threads):
    """On one VCPU, elapsed time is the serial sum plus context switches."""
    clock = VirtualClock()
    engine = Engine(clock, n_vcpus=1, context_switch_ns=7)
    for i in range(n_threads):
        engine.spawn(f"t{i}", iter([100, 100]))
    engine.run_all()
    work = n_threads * 200
    # Context switches charged only while more than one thread is ready.
    assert clock.now_ns >= work
    assert clock.now_ns <= work + engine.rounds_run * 7
