"""Idle-tick semantics: time passes when every thread sleeps."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.engine import Block, Engine, EngineStall


class TestIdleTick:
    def test_clock_advances_through_sleep(self):
        clock = VirtualClock()
        engine = Engine(clock, n_vcpus=2)
        wake_at = 100_000

        def sleeper():
            yield Block(lambda: clock.now_ns >= wake_at)
            yield 10
        thread = engine.spawn("sleeper", sleeper())
        engine.run_all()
        assert thread.finished
        assert clock.now_ns >= wake_at

    def test_mixed_sleepers_and_workers(self):
        clock = VirtualClock()
        engine = Engine(clock, n_vcpus=2)
        order = []

        def sleeper():
            yield Block(lambda: clock.now_ns >= 50_000)
            order.append("woke")

        def worker():
            for _ in range(100):
                yield 1_000
            order.append("worked")
        engine.spawn("s", sleeper())
        engine.spawn("w", worker())
        engine.run_all()
        assert order == ["woke", "worked"] or order == ["worked", "woke"]

    def test_never_true_condition_still_stalls(self):
        clock = VirtualClock()
        engine = Engine(clock, n_vcpus=1)
        engine.max_idle_rounds = 50  # keep the test fast
        engine.spawn("stuck", iter([Block(lambda: False)]))
        with pytest.raises(EngineStall):
            engine.run_all()

    def test_idle_rounds_counted_and_reset(self):
        clock = VirtualClock()
        engine = Engine(clock, n_vcpus=1)
        woken = {"n": 0}

        def napper(deadline):
            def body():
                yield Block(lambda: clock.now_ns >= deadline)
                woken["n"] += 1
            return body()
        engine.spawn("a", napper(20_000))
        engine.spawn("b", napper(60_000))
        engine.run_all()
        assert woken["n"] == 2
        assert clock.now_ns >= 60_000
