"""Cost model, event trace and deterministic RNG."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel, DEFAULT_COSTS
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace


class TestCostModel:
    def test_cipher_costs_are_per_byte(self, costs):
        assert costs.cipher_ns("rc4", 2000) == 2 * costs.cipher_ns("rc4", 1000)

    def test_paper_calibration_rc4(self, costs):
        # "we use RC4 ... the output size is 20KB.  The encryption process
        # takes about 200us" (§VIII-B).
        assert costs.cipher_ns("rc4", 20 * 1024) == pytest.approx(200_000, rel=0.05)

    def test_paper_calibration_des(self, costs):
        # "If DES is chosen ... about 300us."
        assert costs.cipher_ns("des", 20 * 1024) == pytest.approx(300_000, rel=0.05)

    def test_des_slower_than_rc4(self, costs):
        assert costs.cipher_ns("des", 4096) > costs.cipher_ns("rc4", 4096)

    def test_aes_ni_fastest(self, costs):
        for other in ("rc4", "des", "aes"):
            assert costs.cipher_ns("aes-ni", 4096) < costs.cipher_ns(other, 4096)

    def test_unknown_cipher_rejected(self, costs):
        with pytest.raises(ValueError):
            costs.cipher_ns("rot13", 100)

    def test_net_transfer_includes_latency(self, costs):
        assert costs.net_transfer_ns(0) == costs.net_latency_ns

    def test_net_transfer_scales_with_size(self, costs):
        small = costs.net_transfer_ns(1_000_000)
        large = costs.net_transfer_ns(10_000_000)
        assert large > small

    def test_enclave_build_scales_with_pages(self, costs):
        assert costs.enclave_build_ns(100) > costs.enclave_build_ns(10)

    def test_frozen(self, costs):
        with pytest.raises(AttributeError):
            costs.rc4_ns_per_byte = 1.0

    def test_custom_model(self):
        fast_net = CostModel(net_bandwidth_bytes_per_s=10 * DEFAULT_COSTS.net_bandwidth_bytes_per_s)
        assert fast_net.net_transfer_ns(10**8) < DEFAULT_COSTS.net_transfer_ns(10**8)


class TestEventTrace:
    def test_emit_records_time(self, clock, trace):
        clock.advance(123)
        event = trace.emit("cat", "thing", value=7)
        assert event.t_ns == 123
        assert event.payload == {"value": 7}

    def test_select_filters(self, trace):
        trace.emit("a", "x")
        trace.emit("a", "y")
        trace.emit("b", "x")
        assert trace.count_of(category="a") == 2
        assert trace.count_of(name="x") == 2
        assert trace.count_of(category="b", name="x") == 1

    def test_first_and_last(self, clock, trace):
        trace.emit("c", "e", i=1)
        clock.advance(10)
        trace.emit("c", "e", i=2)
        assert trace.first("c", "e").payload["i"] == 1
        assert trace.last("c", "e").payload["i"] == 2

    def test_missing_returns_none(self, trace):
        assert trace.first("nope") is None
        assert trace.last("nope") is None

    def test_counters(self, trace):
        trace.count("aex")
        trace.count("aex", 4)
        assert trace.counter("aex") == 5
        assert trace.counter("never") == 0

    def test_payload_may_shadow_parameter_names(self, trace):
        event = trace.emit("kvm", "create", name="vm-1", category="x")
        assert event.payload["name"] == "vm-1"

    def test_clear(self, trace):
        trace.emit("a", "b")
        trace.count("c")
        trace.clear()
        assert trace.events == []
        assert trace.counter("c") == 0


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRng(7), DeterministicRng(7)
        assert a.bytes(32) == b.bytes(32)
        assert a.u64() == b.u64()

    def test_different_seeds_differ(self):
        assert DeterministicRng(1).bytes(32) != DeterministicRng(2).bytes(32)

    def test_fork_is_independent_of_draw_order(self):
        a = DeterministicRng(7)
        a.bytes(100)  # consume some
        b = DeterministicRng(7)
        assert a.fork("x").bytes(16) == b.fork("x").bytes(16)

    def test_fork_labels_distinct(self):
        root = DeterministicRng(7)
        assert root.fork("x").bytes(16) != root.fork("y").bytes(16)

    @given(st.integers(min_value=0, max_value=2**32))
    def test_randint_in_range(self, seed):
        rng = DeterministicRng(seed)
        value = rng.randint(10, 20)
        assert 10 <= value <= 20

    def test_shuffle_is_permutation(self):
        rng = DeterministicRng(3)
        items = list(range(50))
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items
