"""Scheduler engine: round-robin, contention, blocking, suspension."""

import pytest

from repro.errors import ReproError
from repro.sim.clock import VirtualClock
from repro.sim.engine import Block, Engine, EngineStall, SimThread, ThreadState


def make_engine(n_vcpus=4, ctx=0):
    return Engine(VirtualClock(), n_vcpus=n_vcpus, context_switch_ns=ctx)


def ticker(n, cost=100):
    def body():
        for _ in range(n):
            yield cost
    return body()


class TestSimThread:
    def test_runs_to_completion(self):
        thread = SimThread("t", ticker(3))
        assert thread.run_step() == 100
        assert thread.run_step() == 100
        assert thread.run_step() == 100
        assert thread.run_step() == 0
        assert thread.finished

    def test_result_captured(self):
        def body():
            yield 10
            return "done"
        thread = SimThread("t", body())
        thread.run_step()
        thread.run_step()
        assert thread.result == "done"

    def test_negative_cost_rejected(self):
        def body():
            yield -5
        thread = SimThread("t", body())
        with pytest.raises(ReproError):
            thread.run_step()

    def test_cpu_time_accumulates(self):
        thread = SimThread("t", ticker(4, cost=25))
        for _ in range(4):
            thread.run_step()
        assert thread.cpu_time_ns == 100

    def test_block_transitions_state(self):
        flag = {"ready": False}

        def body():
            yield Block(lambda: flag["ready"])
            yield 1
        thread = SimThread("t", body())
        thread.run_step()
        assert thread.state is ThreadState.BLOCKED
        thread.maybe_wake()
        assert thread.state is ThreadState.BLOCKED
        flag["ready"] = True
        thread.maybe_wake()
        assert thread.state is ThreadState.READY


class TestEngine:
    def test_all_threads_finish(self):
        engine = make_engine()
        threads = [engine.spawn(f"t{i}", ticker(5)) for i in range(3)]
        engine.run_all()
        assert all(t.finished for t in threads)

    def test_round_advances_clock_by_max_step(self):
        engine = make_engine(n_vcpus=4)

        def body(cost):
            yield cost
        engine.spawn("fast", body(10))
        engine.spawn("slow", body(500))
        engine.step_round()
        # Both scheduled in one round: the round costs the slowest step.
        assert engine.clock.now_ns == 500

    def test_contention_adds_context_switch(self):
        engine = Engine(VirtualClock(), n_vcpus=1, context_switch_ns=50)
        engine.spawn("a", ticker(1, cost=100))
        engine.spawn("b", ticker(1, cost=100))
        engine.step_round()
        assert engine.clock.now_ns == 150  # 100 + context switch

    def test_no_context_switch_when_fits(self):
        engine = Engine(VirtualClock(), n_vcpus=2, context_switch_ns=50)
        engine.spawn("a", ticker(1, cost=100))
        engine.spawn("b", ticker(1, cost=100))
        engine.step_round()
        assert engine.clock.now_ns == 100

    def test_contention_slows_completion(self):
        wide = make_engine(n_vcpus=8)
        narrow = make_engine(n_vcpus=2)
        for engine in (wide, narrow):
            for i in range(8):
                engine.spawn(f"t{i}", ticker(10, cost=100))
            engine.run_all()
        assert narrow.clock.now_ns > wide.clock.now_ns

    def test_run_until_condition(self):
        engine = make_engine()
        counter = {"n": 0}

        def body():
            while True:
                counter["n"] += 1
                yield 10
        engine.spawn("loop", body())
        engine.run(until=lambda: counter["n"] >= 5)
        assert counter["n"] >= 5

    def test_run_until_already_true(self):
        engine = make_engine()
        engine.spawn("t", ticker(5))
        assert engine.run(until=lambda: True) == 0

    def test_stall_detected(self):
        engine = make_engine()
        engine.spawn("stuck", iter([Block(lambda: False)]))
        with pytest.raises(EngineStall):
            engine.run_all()

    def test_runaway_detected(self):
        engine = make_engine()

        def forever():
            while True:
                yield 1
        engine.spawn("loop", forever())
        with pytest.raises(ReproError):
            engine.run_all(max_rounds=100)

    def test_blocked_thread_wakes_on_condition(self):
        engine = make_engine()
        flag = {"go": False}
        order = []

        def waiter():
            yield Block(lambda: flag["go"])
            order.append("waiter")
            yield 1

        def setter():
            yield 10
            flag["go"] = True
            order.append("setter")
            yield 1
        engine.spawn("w", waiter())
        engine.spawn("s", setter())
        engine.run_all()
        assert order == ["setter", "waiter"]

    def test_suspended_thread_not_scheduled(self):
        engine = make_engine()
        thread = engine.spawn("t", ticker(3))
        thread.suspended = True
        other = engine.spawn("o", ticker(1))
        engine.run(until=lambda: other.finished)
        assert thread.steps_run == 0
        thread.suspended = False
        engine.run_all()
        assert thread.finished

    def test_threads_added_mid_run_are_scheduled(self):
        engine = make_engine()
        spawned = []

        def spawner():
            yield 10
            spawned.append(engine.spawn("late", ticker(2)))
            yield 10
        engine.spawn("spawner", spawner())
        engine.run_all()
        assert spawned[0].finished

    def test_fairness_round_robin(self):
        engine = Engine(VirtualClock(), n_vcpus=1, context_switch_ns=0)
        threads = [engine.spawn(f"t{i}", ticker(10)) for i in range(4)]
        for _ in range(8):
            engine.step_round()
        steps = [t.steps_run for t in threads]
        assert max(steps) - min(steps) <= 1  # nobody starves

    def test_remove_finished(self):
        engine = make_engine()
        engine.spawn("t", ticker(1))
        engine.run_all()
        engine.remove_finished()
        assert engine.threads == []
