"""Unit tests for the benchmark regression ratchet comparator."""

from __future__ import annotations

import json
import sys
import os

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "scripts"))

from bench_ratchet import (  # noqa: E402
    attribute_regression,
    compare_series,
    main,
    run_ratchet,
)


BASELINE = {
    "fig9c": {
        "unit": "us",
        "series": "avg checkpoint",
        "avg_checkpoint_us": {"1": 500.0, "8": 1200.0},
    }
}


def _fresh(one: float, eight: float) -> dict:
    return {
        "fig9c": {
            "unit": "us",
            "series": "avg checkpoint",
            "avg_checkpoint_us": {"1": one, "8": eight},
        }
    }


class TestComparator:
    def test_within_tolerance_is_ok(self):
        findings = compare_series(BASELINE, _fresh(550.0, 1300.0), 0.15)
        assert all(f["status"] == "ok" for f in findings)

    def test_regression_flagged_beyond_tolerance(self):
        findings = compare_series(BASELINE, _fresh(500.0, 1500.0), 0.15)
        by_metric = {f["metric"]: f for f in findings}
        assert by_metric["fig9c/avg_checkpoint_us/8"]["status"] == "regressed"
        assert by_metric["fig9c/avg_checkpoint_us/8"]["delta_pct"] == 25.0
        assert by_metric["fig9c/avg_checkpoint_us/1"]["status"] == "ok"

    def test_improvement_reported_not_failed(self):
        findings = compare_series(BASELINE, _fresh(250.0, 600.0), 0.15)
        assert all(f["status"] == "improved" for f in findings)

    def test_missing_metric_fails(self):
        fresh = {"fig9c": {"avg_checkpoint_us": {"1": 500.0}}}
        findings = compare_series(BASELINE, fresh, 0.15)
        statuses = {f["metric"]: f["status"] for f in findings}
        assert statuses["fig9c/avg_checkpoint_us/8"] == "missing"

    def test_frozen_series_not_regenerated_is_not_a_failure(self):
        """Frozen records (e.g. fig9c_before_hot_path_fix) live only in
        the committed baseline; a fresh bench run never rewrites them.
        An entire series absent from the fresh tree is informational,
        while a data point vanishing *inside* a regenerated series still
        fails (covered by test_missing_metric_fails)."""
        baseline = BASELINE | {
            "fig9c_before_hot_path_fix": {"avg_checkpoint_us": {"8": 3003.0}}
        }
        findings = compare_series(baseline, _fresh(500.0, 1200.0), 0.15)
        statuses = {f["metric"]: f["status"] for f in findings}
        assert (
            statuses["fig9c_before_hot_path_fix/avg_checkpoint_us/8"]
            == "not-regenerated"
        )
        bad = [f for f in findings if f["status"] in ("regressed", "missing")]
        assert not bad

    def test_new_metric_is_informational(self):
        findings = compare_series(BASELINE, _fresh(500.0, 1200.0) | {"extra": 1.0}, 0.15)
        statuses = {f["metric"]: f["status"] for f in findings}
        assert statuses["extra"] == "new"

    def test_unit_and_series_annotations_ignored(self):
        findings = compare_series(BASELINE, _fresh(500.0, 1200.0), 0.15)
        assert not any("unit" in f["metric"] or "series" in f["metric"] for f in findings)


class TestRunRatchet:
    def _write(self, directory, payload):
        path = directory / "BENCH_fig9.json"
        path.write_text(json.dumps(payload))
        return str(directory)

    def test_end_to_end_ok(self, tmp_path):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir(), fresh_dir.mkdir()
        self._write(base_dir, BASELINE)
        self._write(fresh_dir, _fresh(510.0, 1190.0))
        report = run_ratchet(("fig9",), str(base_dir), str(fresh_dir), 0.15)
        assert not report["failed"]
        assert report["figures"]["fig9"]["status"] == "ok"

    def test_end_to_end_regression_fails_cli(self, tmp_path):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir(), fresh_dir.mkdir()
        self._write(base_dir, BASELINE)
        self._write(fresh_dir, _fresh(900.0, 1200.0))
        report_path = tmp_path / "report.json"
        code = main(
            [
                "--figure", "fig9",
                "--baseline-dir", str(base_dir),
                "--fresh-dir", str(fresh_dir),
                "--report", str(report_path),
                # keep this unit test hermetic: no attribution re-run
                "--attribution-baseline", str(tmp_path / "absent.json"),
            ]
        )
        assert code == 1
        report = json.loads(report_path.read_text())
        assert report["failed"]

    def test_missing_fresh_run_fails(self, tmp_path):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir(), fresh_dir.mkdir()
        self._write(base_dir, BASELINE)
        report = run_ratchet(("fig9",), str(base_dir), str(fresh_dir), 0.15)
        assert report["failed"]
        assert report["figures"]["fig9"]["status"] == "no-fresh-run"

    def test_no_baseline_is_not_a_failure(self, tmp_path):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir(), fresh_dir.mkdir()
        self._write(fresh_dir, _fresh(1.0, 2.0))
        report = run_ratchet(("fig9",), str(base_dir), str(fresh_dir), 0.15)
        assert not report["failed"]
        assert report["figures"]["fig9"]["status"] == "no-baseline"


class TestAttribution:
    REPO_ROOT = os.path.join(os.path.dirname(__file__), "..")

    def test_absent_baseline_snapshot_yields_none(self, tmp_path):
        assert attribute_regression(str(tmp_path / "missing.json")) is None

    def test_failure_prints_attribution(self, tmp_path, capsys):
        """A forced ratchet failure must print the repro-diff blame
        report against the committed baseline run snapshot."""
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir(), fresh_dir.mkdir()
        (base_dir / "BENCH_fig9.json").write_text(json.dumps(BASELINE))
        (fresh_dir / "BENCH_fig9.json").write_text(json.dumps(_fresh(900.0, 1200.0)))
        report_md = tmp_path / "attribution.md"
        code = main(
            [
                "--figure", "fig9",
                "--baseline-dir", str(base_dir),
                "--fresh-dir", str(fresh_dir),
                "--attribution-baseline",
                os.path.join(self.REPO_ROOT, "BENCH_baseline_run.json"),
                # perturbed spec: the attribution must blame the journal
                "--attribution-spec", "seed=1,journal-cost-ns=524000",
                "--attribution-report", str(report_md),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "regression attribution" in out
        assert "journal.commit" in out
        assert "of delta" in out
        md = report_md.read_text()
        assert "journal.commit" in md and md.startswith("###")

    def test_committed_baseline_snapshot_diffs_clean_against_itself(self):
        snapshot = os.path.join(self.REPO_ROOT, "BENCH_baseline_run.json")
        assert os.path.exists(snapshot)
        text = attribute_regression(snapshot, spec=snapshot)
        assert "downtime unchanged" in text


def test_committed_baselines_pass_against_themselves():
    """The repo's own BENCH files must ratchet cleanly against
    themselves — a self-comparison that fails means the comparator or
    the committed files are broken."""
    repo_root = os.path.join(os.path.dirname(__file__), "..")
    report = run_ratchet(baseline_dir=repo_root, fresh_dir=repo_root)
    assert not report["failed"], report
