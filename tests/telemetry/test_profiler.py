"""The deterministic sampling profiler: zero perturbation, exact weights."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.trace import EventTrace
from repro.telemetry import Telemetry
from repro.telemetry.profiler import (
    DEFAULT_INTERVAL_NS,
    IDLE_FRAME,
    Profile,
    SamplingProfiler,
)
from repro.telemetry.runs import run_seeded_migration


def _telemetry():
    clock = VirtualClock()
    trace = EventTrace(clock)
    return Telemetry(clock, trace)


class TestSampling:
    def test_samples_credit_the_open_span_stack(self):
        tel = _telemetry()
        profiler = SamplingProfiler(tel, interval_ns=1_000).enable()
        with tel.tracer.span("outer", party="source"):
            tel.clock.advance(2_500)
            with tel.tracer.span("inner", party="source"):
                tel.clock.advance(3_000)
        profile = profiler.profile()
        assert profile.stacks[("source", "outer")] == 2_000
        assert profile.stacks[("source", "outer", "inner")] == 3_000
        # 5500 ns elapsed, 1000 ns interval: boundaries at 1k..5k.
        assert profile.sample_count == 5
        assert profile.total_weight_ns == 5_000

    def test_idle_frame_when_no_span_open(self):
        tel = _telemetry()
        profiler = SamplingProfiler(tel, interval_ns=1_000).enable()
        tel.clock.advance(3_200)
        assert profiler.profile().stacks == {(IDLE_FRAME,): 3_000}

    def test_one_advance_crossing_many_boundaries(self):
        tel = _telemetry()
        profiler = SamplingProfiler(tel, interval_ns=100).enable()
        with tel.tracer.span("burst", party="target"):
            tel.clock.advance(10_000)
        profile = profiler.profile()
        assert profile.sample_count == 100
        assert profile.stacks[("target", "burst")] == 10_000

    def test_disable_restores_prior_hook(self):
        tel = _telemetry()
        calls = []
        tel.clock.on_advance = lambda a, b: calls.append((a, b))
        profiler = SamplingProfiler(tel, interval_ns=1_000).enable()
        tel.clock.advance(1_500)
        profiler.disable()
        assert tel.clock.on_advance is not None
        tel.clock.advance(10)
        # The prior hook saw every advance, during and after profiling.
        assert len(calls) == 2

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(_telemetry(), interval_ns=0)


class TestDeterminism:
    def test_profiling_never_perturbs_virtual_time(self):
        plain = run_seeded_migration(seed=1)
        profiled = run_seeded_migration(seed=1, profile_interval_ns=10_000)
        assert profiled.clock.now_ns == plain.clock.now_ns
        assert (
            profiled.telemetry.metrics.snapshot() == plain.telemetry.metrics.snapshot()
        )

    def test_same_seed_same_folded_output(self):
        runs = [
            run_seeded_migration(seed=9, profile_interval_ns=10_000)
            for _ in range(2)
        ]
        folded = [tb.telemetry.profiler.profile().folded() for tb in runs]
        assert folded[0] == folded[1]
        assert folded[0]  # non-empty

    def test_migration_profile_shape(self):
        tb = run_seeded_migration(seed=1, profile_interval_ns=DEFAULT_INTERVAL_NS)
        profile = tb.telemetry.profiler.profile()
        # Weights cover (almost) the whole run: only the sub-interval
        # remainder at the end is unattributed.
        assert profile.total_weight_ns >= profile.end_ns - profile.start_ns - profile.interval_ns
        assert profile.weight_of("stop_and_copy") > 0
        assert profile.weight_of("journal.commit") > 0
        # Every non-idle stack leads with a party frame.
        parties = {"source", "target", "orchestrator", "agent", "ias"}
        for frames in profile.stacks:
            assert frames[0] in parties or frames == (IDLE_FRAME,)


class TestRoundTrip:
    def test_profile_round_trips_through_json_dict(self):
        tb = run_seeded_migration(seed=1, profile_interval_ns=10_000)
        profile = tb.telemetry.profiler.profile()
        clone = Profile.from_dict(profile.as_dict())
        assert clone.folded() == profile.folded()
        assert clone.sample_count == profile.sample_count
        assert clone.total_weight_ns == profile.total_weight_ns

    def test_folded_lines_are_sorted_and_weighted(self):
        profile = Profile(
            interval_ns=10,
            start_ns=0,
            end_ns=100,
            sample_count=10,
            stacks={("b", "x"): 60, ("a", "y"): 40},
        )
        assert profile.folded() == "a;y 40\nb;x 60\n"
