"""The span tracer: nesting, parenting, trace mirroring."""

import pytest

from repro.sim.clock import VirtualClock
from repro.sim.trace import EventTrace
from repro.telemetry.spans import SpanError, Tracer, maybe_span


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock)


class TestNesting:
    def test_parent_is_innermost_on_same_track(self, clock, tracer):
        outer = tracer.start("outer")
        inner = tracer.start("inner")
        assert inner.parent_id == outer.span_id
        tracer.end(inner)
        tracer.end(outer)
        assert outer.parent_id is None

    def test_tracks_are_independent_stacks(self, clock, tracer):
        a = tracer.start("ckpt", party="source", track="1")
        b = tracer.start("ckpt", party="source", track="2")
        # Closing a before b is fine: different tracks, no LIFO coupling.
        tracer.end(a)
        tracer.end(b)
        assert a.parent_id is None and b.parent_id is None

    def test_out_of_order_close_raises(self, tracer):
        outer = tracer.start("outer")
        tracer.start("inner")
        with pytest.raises(SpanError, match="out of order"):
            tracer.end(outer)

    def test_double_close_raises(self, tracer):
        span = tracer.start("s")
        tracer.end(span)
        with pytest.raises(SpanError, match="twice"):
            tracer.end(span)

    def test_duration_counts_virtual_time(self, clock, tracer):
        span = tracer.start("s")
        clock.advance(1234)
        tracer.end(span)
        assert span.duration_ns == 1234

    def test_open_span_has_no_duration(self, tracer):
        span = tracer.start("s")
        assert not span.finished
        with pytest.raises(ValueError):
            _ = span.duration_ns


class TestContextManager:
    def test_exception_marks_error_status(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("s"):
                raise RuntimeError("boom")
        (span,) = tracer.finished()
        assert span.status == "error"
        assert span.attrs["error"] == "RuntimeError"

    def test_clean_exit_is_ok(self, tracer):
        with tracer.span("s", party="agent", foo=1) as span:
            pass
        assert span.status == "ok"
        assert span.attrs == {"foo": 1}


class TestTraceMirroring:
    def test_start_end_events_emitted(self, clock):
        trace = EventTrace(clock)
        tracer = Tracer(clock, trace)
        with tracer.span("migration.run"):
            pass
        names = [(e.category, e.name) for e in trace.events]
        assert ("span", "start") in names and ("span", "end") in names
        end = trace.last("span", "end")
        assert end.payload["span_name"] == "migration.run"
        assert end.payload["status"] == "ok"


class TestMaybeSpan:
    def test_noop_without_tracer(self, clock):
        trace = EventTrace(clock)
        with maybe_span(trace, "x") as span:
            assert span is None
        assert trace.events == []

    def test_delegates_with_tracer(self, clock):
        trace = EventTrace(clock)
        trace.tracer = Tracer(clock, trace)
        with maybe_span(trace, "x", party="source", track="3") as span:
            assert span is not None
        assert span.finished and span.track == "3"


class TestQueries:
    def test_find_first_last(self, clock, tracer):
        for i in range(3):
            with tracer.span("round", n=i):
                clock.advance(10)
        assert len(tracer.find("round")) == 3
        assert tracer.first("round").attrs["n"] == 0
        assert tracer.last("round").attrs["n"] == 2
        assert tracer.first("missing") is None

    def test_children_of_and_roots(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.children_of(outer)] == ["inner"]
        assert [s.name for s in tracer.roots()] == ["outer"]

    def test_clear_preserves_open_spans(self, tracer):
        open_span = tracer.start("open")
        with tracer.span("closed"):
            pass
        tracer.clear()
        assert tracer.spans == [open_span]
        tracer.end(open_span)  # still closable: the stack survived
