"""Flight recorder: bounded rings, auto-dump on failure, redaction."""

import json

import pytest

from repro.errors import MachineCrash, MigrationAborted, PartyCrash
from repro.faults import FaultInjector, FaultPlan
from repro.migration.orchestrator import FAULT_TOLERANT_RETRY, MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.telemetry.flightrecorder import FlightRecorder, active_recorders, redact
from repro.telemetry.runs import run_seeded_migration

from tests.conftest import build_counter_app


def _crashed_run(plan, **testbed_kwargs):
    tb = build_testbed(seed=4000 + plan.seed, **testbed_kwargs)
    app = build_counter_app(tb, tag="flight")
    app.ecall_once(0, "incr", 5)
    orch = MigrationOrchestrator(
        tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
    )
    try:
        orch.migrate_enclave(app)
    except (MachineCrash, MigrationAborted, PartyCrash):
        pass
    return tb


class TestRings:
    def test_rings_are_bounded(self):
        tb = build_testbed(seed=11)
        recorder = FlightRecorder(tb.telemetry, capacity=16)
        for i in range(200):
            tb.trace.emit("test", "tick", party="source", i=i)
        ring = recorder.rings["source"]
        assert len(ring) == 16
        assert ring[-1]["payload"]["i"] == 199  # newest survive

    def test_events_partition_by_party(self):
        tb = run_seeded_migration(seed=1)
        recorder = tb.telemetry.flightrecorder
        assert "source" in recorder.rings and "target" in recorder.rings
        assert "wire" in recorder.rings  # net events have no party field

    def test_recorder_registry_tracks_instances(self):
        tb = build_testbed(seed=12)
        assert tb.telemetry.flightrecorder in active_recorders()


class TestAutoDump:
    def test_injected_crash_triggers_a_dump(self):
        tb = _crashed_run(FaultPlan(seed=1).crash("target", "restore"))
        recorder = tb.telemetry.flightrecorder
        assert recorder.dumps, "a MachineCrash must auto-dump"
        dump = recorder.dumps[-1]
        assert dump["trigger"] == "fault.crash"
        assert dump["event"]["payload"]["step"] == "restore"
        assert dump["trace_id"] == tb.telemetry.tracer.trace_id

    def test_dump_carries_correlated_state(self):
        tb = _crashed_run(FaultPlan(seed=2).crash("source", "checkpoint"))
        dump = tb.telemetry.flightrecorder.dumps[-1]
        assert dump["rings"]  # at least one party observed something
        assert any(s["name"] == "migration.run" for s in dump["open_spans"])
        assert "migration.attempts_total" in dump["metrics"]

    def test_dump_count_is_bounded(self):
        tb = build_testbed(seed=13)
        recorder = tb.telemetry.flightrecorder
        recorder.max_dumps = 3
        for i in range(10):
            recorder.dump(trigger=f"manual-{i}")
        assert len(recorder.dumps) == 3
        assert recorder.dumps[-1]["trigger"] == "manual-9"


class TestRedaction:
    def test_redact_strips_bytes_recursively(self):
        value = {"sealed": b"\x00" * 64, "nested": [b"abc", {"k": b"xy"}], "n": 3}
        cleaned = redact(value)
        assert cleaned["sealed"] == "<redacted: 64 bytes>"
        assert cleaned["nested"][0] == "<redacted: 3 bytes>"
        assert cleaned["nested"][1]["k"] == "<redacted: 2 bytes>"
        assert cleaned["n"] == 3

    def test_no_payload_bytes_survive_into_a_dump(self):
        tb = _crashed_run(FaultPlan(seed=3).crash("target", "restore"))
        # An event that *does* carry raw bytes must enter the ring redacted.
        tb.trace.emit("test", "leaky", party="source", sealed=b"\x13" * 32)
        dump = tb.telemetry.flightrecorder.dump(trigger="manual")
        text = json.dumps(dump, sort_keys=True, default=repr)
        # Sealed checkpoint/key material crossed the wire during this
        # run; none of those bytes may appear in the dump, only sizes.
        assert "b'\\x" not in text  # no repr()d raw byte strings
        assert "<redacted: 32 bytes>" in text
        for record in tb.network.log:
            if len(record.payload) >= 16:
                assert record.payload.hex() not in text
                assert repr(record.payload)[2:-1] not in text

    def test_dump_file_written_when_dir_configured(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        tb = _crashed_run(FaultPlan(seed=4).crash("target", "restore"))
        files = sorted(tmp_path.glob("flight-*.json"))
        assert files, "REPRO_FLIGHT_DIR must receive a JSON dump per trigger"
        with open(files[-1], "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["trigger"] == "fault.crash"
        recorder = tb.telemetry.flightrecorder
        assert recorder.dump_dir == str(tmp_path)


class TestNamespacing:
    def test_simultaneous_violations_dump_to_distinct_namespaces(
        self, tmp_path, monkeypatch
    ):
        """Two migrations breach an SLO at the same instant: each flight
        recorder writes its own ``flight-<mig-id>-*`` file, so a fleet
        run never interleaves dumps from different migrations."""
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        testbeds = {}
        for mig_id, seed in (("migA", 21), ("migB", 22)):
            tb = build_testbed(seed=seed)
            tb.telemetry.flightrecorder.namespace = mig_id
            tb.telemetry.flightrecorder.dump_dir = str(tmp_path)
            testbeds[mig_id] = tb
        # Both violations land at the same (virtual) moment.
        for mig_id, tb in testbeds.items():
            tb.trace.emit(
                "slo", "violation", party="source",
                message=f"{mig_id}: downtime budget burned",
            )
        for prefix in ("flight-migA-", "flight-migB-"):
            files = sorted(tmp_path.glob(prefix + "*-slo-violation.json"))
            assert files, f"expected a namespaced dump {prefix}*"
        a = sorted(tmp_path.glob("flight-migA-*.json"))
        b = sorted(tmp_path.glob("flight-migB-*.json"))
        assert not set(a) & set(b)
        with open(a[0], "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["event"]["payload"]["message"].startswith("migA")

    def test_namespace_defaults_to_trace_id(self, tmp_path):
        tb = run_seeded_migration(seed=23)
        recorder = tb.telemetry.flightrecorder
        recorder.dump_dir = str(tmp_path)
        recorder.dump(trigger="manual")
        trace_id = tb.telemetry.tracer.trace_id
        assert trace_id
        assert sorted(tmp_path.glob(f"flight-{trace_id}-*-manual.json"))

    def test_namespace_is_slugified(self, tmp_path):
        tb = build_testbed(seed=24)
        recorder = tb.telemetry.flightrecorder
        recorder.namespace = "mig 00/one:two"
        recorder.dump_dir = str(tmp_path)
        recorder.dump(trigger="manual")
        files = sorted(p.name for p in tmp_path.glob("flight-*.json"))
        assert files
        assert all("/" not in name[len("flight-"):] for name in files)
        assert files[0].startswith("flight-mig-00-one-two-")


class TestRetentionCap:
    """Per-run dump-file cap: keep first + last, count the dropped."""

    def test_cap_keeps_first_files_and_rotating_last(self, tmp_path, monkeypatch):
        from repro.telemetry.flightrecorder import dumps_dropped

        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_FLIGHT_MAX_DUMPS", "4")
        tb = build_testbed(seed=901)
        recorder = FlightRecorder(tb.telemetry, namespace="capped")
        for i in range(10):
            recorder.dump(trigger=f"storm{i}")
        files = sorted(tmp_path.glob("flight-capped-*.json"))
        assert len(files) == 4  # first cap-1 chronologically + the newest
        triggers = [json.load(open(p))["trigger"] for p in files]
        assert triggers[:3] == ["storm0", "storm1", "storm2"]
        assert triggers[-1] == "storm9"
        # Six dumps (storm3..storm8) were rotated out of the last slot.
        assert dumps_dropped() == 6
        assert json.load(open(files[-1]))["dumps_dropped"] == 6

    def test_under_cap_writes_every_dump(self, tmp_path, monkeypatch):
        from repro.telemetry.flightrecorder import dumps_dropped

        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_FLIGHT_MAX_DUMPS", "8")
        tb = build_testbed(seed=902)
        recorder = FlightRecorder(tb.telemetry, namespace="calm")
        for i in range(3):
            recorder.dump(trigger=f"calm{i}")
        files = sorted(tmp_path.glob("flight-calm-*.json"))
        assert len(files) == 3
        assert dumps_dropped() == 0
        assert all("dumps_dropped" not in json.load(open(p)) for p in files)

    def test_cap_is_shared_across_recorders(self, tmp_path, monkeypatch):
        # A fleet SLO storm spans many namespaced recorders; the cap is
        # per run (process), not per recorder.
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_FLIGHT_MAX_DUMPS", "3")
        tb = build_testbed(seed=903)
        recorders = [
            FlightRecorder(tb.telemetry, namespace=f"mig{i:02d}") for i in range(5)
        ]
        for recorder in recorders:
            recorder.dump(trigger="slo-violation")
        assert len(list(tmp_path.glob("flight-*.json"))) == 3

    def test_default_and_bad_values(self, monkeypatch):
        from repro.telemetry.flightrecorder import (
            DEFAULT_MAX_DUMP_FILES,
            max_dump_files,
        )

        monkeypatch.delenv("REPRO_FLIGHT_MAX_DUMPS", raising=False)
        assert max_dump_files() == DEFAULT_MAX_DUMP_FILES == 32
        monkeypatch.setenv("REPRO_FLIGHT_MAX_DUMPS", "not-a-number")
        assert max_dump_files() == 32
        monkeypatch.setenv("REPRO_FLIGHT_MAX_DUMPS", "0")
        assert max_dump_files() == 2  # first + last is the floor
