"""Run comparison: snapshots, alignment, and regression attribution.

The load-bearing test is the acceptance gate: perturb the journal
commit cost, diff against the unperturbed run, and at least 80% of the
downtime delta must land on ``journal.commit`` contributors.
"""

import dataclasses
import json

import pytest

from repro.sim.costs import DEFAULT_COSTS
from repro.telemetry.diff import (
    RunSnapshot,
    diff_runs,
    resolve_run,
)
from repro.telemetry.runs import run_seeded_migration


@pytest.fixture(scope="module")
def base_snapshot():
    return RunSnapshot.capture(run_seeded_migration(seed=1), label="base")


@pytest.fixture(scope="module")
def perturbed_snapshot():
    costs = dataclasses.replace(
        DEFAULT_COSTS, journal_commit_ns=DEFAULT_COSTS.journal_commit_ns * 4
    )
    return RunSnapshot.capture(
        run_seeded_migration(seed=1, costs=costs), label="journal-x4"
    )


class TestSnapshot:
    def test_capture_shape(self, base_snapshot):
        assert base_snapshot.figures["downtime_ns"] > 0
        assert base_snapshot.figures["total_ns"] >= base_snapshot.figures["downtime_ns"]
        assert any("journal.commit" in key for key in base_snapshot.spans)
        assert base_snapshot.critical["downtime"]
        assert base_snapshot.critical["total"]

    def test_round_trip_via_file(self, base_snapshot, tmp_path):
        path = tmp_path / "run.json"
        base_snapshot.save(str(path))
        loaded = RunSnapshot.load(str(path))
        assert loaded.figures == base_snapshot.figures
        assert loaded.spans == base_snapshot.spans
        # saved JSON is valid and stable
        assert json.loads(path.read_text())["label"] == "base"

    def test_resolve_run_accepts_path_and_spec(self, base_snapshot, tmp_path):
        path = tmp_path / "run.json"
        base_snapshot.save(str(path))
        assert resolve_run(str(path)).figures == base_snapshot.figures
        spec = resolve_run("seed=1,label=spec")
        assert spec.figures == base_snapshot.figures

    def test_resolve_run_rejects_bad_spec(self):
        with pytest.raises(ValueError):
            resolve_run("seed=1,frobnicate=3")
        with pytest.raises(ValueError):
            resolve_run("just-nonsense")


class TestDiff:
    def test_identical_runs_diff_to_nothing(self, base_snapshot):
        other = RunSnapshot.capture(run_seeded_migration(seed=1), label="again")
        diff = diff_runs(base_snapshot, other)
        assert diff.downtime_delta_ns == 0
        assert diff.downtime_attribution == []
        assert diff.span_deltas == []
        assert diff.headline() == "downtime unchanged"

    def test_attribution_meets_80_percent_gate(
        self, base_snapshot, perturbed_snapshot
    ):
        """The acceptance criterion: a +journal-cost perturbation must be
        blamed on journal.commit for >= 80% of the downtime delta."""
        diff = diff_runs(base_snapshot, perturbed_snapshot)
        assert diff.downtime_delta_ns > 0
        assert diff.attributed_share("journal.commit") >= 80.0
        # and the top mover in the ranked list is a journal.commit unit
        assert "journal.commit" in diff.downtime_attribution[0].key

    def test_headline_names_the_culprit(self, base_snapshot, perturbed_snapshot):
        headline = diff_runs(base_snapshot, perturbed_snapshot).headline()
        assert "downtime +" in headline
        assert "journal.commit" in headline

    def test_renders(self, base_snapshot, perturbed_snapshot):
        diff = diff_runs(base_snapshot, perturbed_snapshot)
        text = diff.render_text()
        assert "journal.commit" in text and "% of delta" in text
        md = diff.render_markdown()
        assert md.count("|") > 10 and "journal.commit" in md
        payload = diff.as_dict()
        assert payload["headline"] == diff.headline()
        assert payload["downtime_attribution"][0]["share_of_delta_pct"] > 0

    def test_share_is_signed(self, base_snapshot, perturbed_snapshot):
        # Diffing the other way round: downtime *improved*, and the same
        # contributors explain the (negative) delta with positive share.
        diff = diff_runs(perturbed_snapshot, base_snapshot)
        assert diff.downtime_delta_ns < 0
        assert diff.attributed_share("journal.commit") >= 80.0
