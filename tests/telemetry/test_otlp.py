"""OTLP-JSON exporter: golden-file round-trip, nesting, sketch buckets."""

import json
import os

from repro.sim.clock import VirtualClock
from repro.sim.trace import EventTrace
from repro.telemetry import Telemetry
from repro.telemetry.otlp import (
    default_resource,
    metrics_from_otlp,
    otlp_span_id,
    otlp_trace_id,
    sketch_to_otlp_histogram,
    spans_from_otlp,
    to_otlp_metrics,
    to_otlp_traces,
)
from repro.telemetry.runs import run_seeded_migration
from repro.telemetry.sketch import QuantileSketch

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "otlp_golden.json")

#: Pinned resource: the golden document must not depend on the
#: environment's crypto-backend setting.
GOLDEN_RESOURCE = {
    "service.name": "repro-migration",
    "migration.id": "mig-golden",
    "crypto.backend": "reference",
    "seed": "1",
}


def build_golden_telemetry() -> Telemetry:
    """A small, fully deterministic telemetry surface.

    Hand-built (no migration) so the golden fixture only changes when
    the *encoder* changes, never when the protocol's span layout does.
    """
    clock = VirtualClock()
    telemetry = Telemetry(clock, EventTrace(clock))
    telemetry.tracer.trace_id = "mig-golden"
    # Nesting lives on per-(party, track) stacks, so the children share
    # the root's party to register as its children.
    with telemetry.span("migration.run", party="orchestrator", seed=1):
        clock.advance(1_000)
        with telemetry.span("checkpoint", party="orchestrator"):
            clock.advance(2_000)
            telemetry.counter("wire.bytes").inc(4096)
        with telemetry.span("restore", party="orchestrator"):
            clock.advance(3_000)
        failed = telemetry.tracer.start("verify", party="orchestrator")
        clock.advance(500)
        telemetry.tracer.end(failed, status="error: digest mismatch")
    with telemetry.span("enclave.resume", party="target", track="enclave"):
        clock.advance(250)
    telemetry.counter("migration.completed_total").inc()
    telemetry.counter("faults.injected", kind="delay").inc(2)
    telemetry.gauge("migration.downtime_ns").set(5_500)
    histogram = telemetry.histogram("journal.commit_latency_ns", buckets=(1_000, 10_000))
    for value in (500, 1_500, 50_000):
        histogram.observe(value)
    return telemetry


def build_golden_sketch() -> QuantileSketch:
    sketch = QuantileSketch()
    for value in (0, 1_000, 2_000, 2_000, 30_000):
        sketch.observe(value)
    return sketch


def golden_document() -> dict:
    telemetry = build_golden_telemetry()
    return {
        "traces": to_otlp_traces(telemetry, resource=GOLDEN_RESOURCE),
        "metrics": to_otlp_metrics(
            telemetry,
            resource=GOLDEN_RESOURCE,
            sketches={"fleet.downtime_ns": build_golden_sketch()},
        ),
    }


class TestGoldenFile:
    def test_export_matches_checked_in_fixture(self):
        with open(FIXTURE, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        assert golden_document() == golden

    def test_fixture_round_trips_through_the_readers(self):
        with open(FIXTURE, "r", encoding="utf-8") as fh:
            golden = json.load(fh)
        telemetry = build_golden_telemetry()

        spans = spans_from_otlp(golden["traces"])
        assert [s["name"] for s in spans] == [
            s.name for s in telemetry.tracer.spans
        ]
        by_id = {s["span_id"]: s for s in spans}
        # Span nesting survives: checkpoint/restore/verify hang off run.
        run = next(s for s in spans if s["name"] == "migration.run")
        for child in ("checkpoint", "restore", "verify"):
            span = next(s for s in spans if s["name"] == child)
            assert by_id[span["parent_id"]] is run
        assert run["parent_id"] is None
        resume = next(s for s in spans if s["name"] == "enclave.resume")
        assert resume["parent_id"] is None  # own party: a separate root
        assert resume["attributes"]["repro.track"] == "enclave"
        # Resource attributes round-trip on every span.
        assert all(s["resource"] == GOLDEN_RESOURCE for s in spans)
        # Error status propagates.
        verify = next(s for s in spans if s["name"] == "verify")
        assert verify["status"]["code"] == 2
        assert "digest mismatch" in verify["status"]["message"]

        metrics = metrics_from_otlp(golden["metrics"])
        assert metrics["migration.completed_total"] == 1
        assert metrics["faults.injected{kind=delay}"] == 2
        assert metrics["migration.downtime_ns"] == 5_500
        histogram = metrics["journal.commit_latency_ns"]
        assert histogram["count"] == 3
        assert histogram["bucket_counts"] == [1, 1, 1]
        assert histogram["bounds"] == [1_000, 10_000]

    def test_sketch_histogram_preserves_counts_exactly(self):
        sketch = build_golden_sketch()
        metric = sketch_to_otlp_histogram("fleet.downtime_ns", sketch)
        point = metric["histogram"]["dataPoints"][0]
        counts = [int(c) for c in point["bucketCounts"]]
        assert sum(counts) == sketch.count
        assert counts[-1] == 0  # the overflow bucket is empty by construction
        assert len(point["explicitBounds"]) == len(counts) - 1
        # Bounds are the sketch's own gamma^i boundaries, strictly rising.
        bounds = point["explicitBounds"]
        assert bounds == sorted(bounds)
        assert point["min"] == 0 and point["max"] == 30_000

    def test_empty_sketch_exports_a_single_empty_bucket(self):
        metric = sketch_to_otlp_histogram("empty", QuantileSketch())
        point = metric["histogram"]["dataPoints"][0]
        assert point["count"] == "0"
        assert [int(c) for c in point["bucketCounts"]] == [0, 0]


class TestIds:
    def test_trace_id_is_deterministic_128_bit_hex(self):
        assert otlp_trace_id("mig-1") == otlp_trace_id("mig-1")
        assert otlp_trace_id("mig-1") != otlp_trace_id("mig-2")
        assert len(otlp_trace_id("mig-1")) == 32
        int(otlp_trace_id("mig-1"), 16)

    def test_span_id_is_16_hex(self):
        assert otlp_span_id(7) == "0000000000000007"


class TestRealRun:
    def test_seeded_migration_round_trips(self):
        tb = run_seeded_migration(seed=1)
        telemetry = tb.telemetry
        resource = default_resource(telemetry, seed="1")
        assert resource["migration.id"] == telemetry.tracer.trace_id

        spans = spans_from_otlp(to_otlp_traces(telemetry, resource=resource))
        assert len(spans) == len(telemetry.tracer.spans)
        assert {s["span_id"] for s in spans} == {
            s.span_id for s in telemetry.tracer.spans
        }

        metrics = metrics_from_otlp(to_otlp_metrics(telemetry, resource=resource))
        snapshot = telemetry.metrics.snapshot()
        assert set(metrics) == set(snapshot)
        for key, value in snapshot.items():
            if isinstance(value, dict):
                assert metrics[key]["count"] == value["count"]
            else:
                assert metrics[key] == value
