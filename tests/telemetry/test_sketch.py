"""Quantile sketches, run scopes, and cross-run metric aggregation."""

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runs import run_seeded_migration
from repro.telemetry.sketch import (
    QuantileSketch,
    RunScope,
    aggregate_run_metrics,
    scalar_series,
    snapshot_delta,
)


class TestQuantileSketch:
    def test_quantiles_within_relative_error(self):
        sketch = QuantileSketch(relative_error=0.01)
        values = list(range(1, 10_001))
        for v in values:
            sketch.observe(v)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = values[int(q * (len(values) - 1))]
            assert abs(sketch.quantile(q) - exact) <= 0.025 * exact

    def test_merge_equals_union(self):
        a, b, union = (QuantileSketch() for _ in range(3))
        for v in range(1, 501):
            a.observe(v)
            union.observe(v)
        for v in range(500, 2_001):
            b.observe(v)
            union.observe(v)
        a.merge(b)
        assert a.count == union.count
        for q in (0.5, 0.95, 0.99):
            assert a.quantile(q) == union.quantile(q)

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(relative_error=0.01).merge(
                QuantileSketch(relative_error=0.05)
            )

    def test_zero_and_negative_handling(self):
        sketch = QuantileSketch()
        sketch.observe(0)
        sketch.observe(0)
        sketch.observe(10)
        assert sketch.count == 3
        assert sketch.quantile(0.25) == 0
        with pytest.raises(ValueError):
            sketch.observe(-1)

    def test_round_trip(self):
        sketch = QuantileSketch()
        for v in (0, 1, 5, 123, 99_999):
            sketch.observe(v)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.count == sketch.count
        for q in (0.01, 0.5, 0.95, 0.99):
            assert clone.quantile(q) == sketch.quantile(q)

    def test_deterministic(self):
        def build():
            s = QuantileSketch()
            for v in range(1, 1_000):
                s.observe(v * 7)
            return s.to_dict()

        assert build() == build()


class TestRunScopes:
    def test_scope_captures_only_its_own_deltas(self):
        registry = MetricsRegistry()
        registry.counter("x.total").inc(5)
        scope = RunScope(registry, "r1")
        registry.counter("x.total").inc(3)
        registry.gauge("y").set(42)
        delta = scope.close()
        assert delta["x.total"] == 3
        assert delta["y"] == 42

    def test_scope_spanning_reset_is_discarded(self):
        registry = MetricsRegistry()
        registry.counter("x.total").inc(1)
        scope = RunScope(registry, "r1")
        registry.reset()
        registry.counter("x.total").inc(9)
        assert scope.close() is None

    def test_snapshot_delta_histograms(self):
        registry = MetricsRegistry()
        h = registry.histogram("lat_ns")
        h.observe(5_000)
        before = registry.snapshot()
        h.observe(50_000)
        h.observe(70_000)
        delta = snapshot_delta(before, registry.snapshot(), {"lat_ns": "histogram"})
        assert delta["lat_ns"]["count"] == 2
        assert delta["lat_ns"]["sum"] == 120_000
        assert delta["lat_ns"]["mean"] == 60_000
        # histogram deltas are not scalar series
        assert scalar_series(delta) == {}

    def test_migration_run_is_scoped(self):
        tb = run_seeded_migration(seed=11)
        telemetry = tb.telemetry
        assert telemetry.last_run_id is not None
        delta = telemetry.run_metrics[telemetry.last_run_id]
        assert delta["migration.downtime_ns"] > 0
        assert delta["migration.completed_total"] == 1
        assert telemetry.run_isolation_violations() == []

    def test_chain_hops_have_isolated_scopes(self):
        from repro.durability.sweep import build_sweep_app
        from repro.migration.chain import run_chain
        from repro.migration.testbed import build_testbed

        tb = build_testbed(seed=21)
        report = run_chain(tb, build_sweep_app(tb), hops=3)
        run_ids = report.all_run_ids()
        assert len(run_ids) == 3
        assert len(set(run_ids)) == 3
        downtimes = [
            hop.run_metrics[rid]["migration.downtime_ns"]
            for hop in report.hops
            for rid in hop.run_ids
        ]
        assert all(d > 0 for d in downtimes)
        # Per-run deltas must add up within the global registry values.
        assert tb.telemetry.run_isolation_violations() == []
        tb.monitor.check_now()
        assert not tb.monitor.violations
        sketch = report.downtime_sketch()
        assert sketch.count == 3
        assert sketch.p50 == pytest.approx(downtimes[0], rel=0.03)


class TestAggregation:
    def test_aggregate_run_metrics(self):
        runs = {
            "r1": {"migration.downtime_ns": 1_000_000, "wire.bytes": 500},
            "r2": {"migration.downtime_ns": 2_000_000, "wire.bytes": 700},
            "r3": {"migration.downtime_ns": 4_000_000, "wire.bytes": 600},
        }
        sketches = aggregate_run_metrics(runs)
        downtime = sketches["migration.downtime_ns"]
        assert downtime.count == 3
        assert downtime.p50 == pytest.approx(2_000_000, rel=0.03)
        assert downtime.p99 == pytest.approx(4_000_000, rel=0.03)

    def test_aggregate_is_mergeable_across_fleets(self):
        runs_a = {"a": {"m": 100}, "b": {"m": 200}}
        runs_b = {"c": {"m": 400}}
        merged = aggregate_run_metrics(runs_a)["m"]
        merged.merge(aggregate_run_metrics(runs_b)["m"])
        combined = aggregate_run_metrics({**runs_a, **runs_b})["m"]
        assert merged.count == combined.count
        assert merged.quantile(0.5) == combined.quantile(0.5)
