"""Causal DAG: wire-context propagation and fault-visible edges."""

import pytest

from repro.errors import MigrationAborted
from repro.faults import FaultInjector, FaultPlan, MessageFault
from repro.migration.orchestrator import FAULT_TOLERANT_RETRY, MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.telemetry.causal import LABEL_ROUTES, build_dag, route_for
from repro.telemetry.runs import run_seeded_migration

from tests.conftest import build_counter_app


def _faulted_run(plan):
    """One migration under ``plan`` (fault-tolerant retry, chunked)."""
    tb = build_testbed(seed=2000 + plan.seed)
    app = build_counter_app(tb, tag="causal")
    app.ecall_once(0, "incr", 5)
    orch = MigrationOrchestrator(
        tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
    )
    try:
        orch.migrate_enclave(app)
    except MigrationAborted:
        pass
    return tb


class TestContextPropagation:
    """Every transfer in a run carries the run's trace id."""

    @pytest.fixture(scope="class")
    def tb(self):
        return run_seeded_migration(seed=1)

    def test_trace_id_is_derived_from_the_run_span(self, tb):
        run_span = tb.telemetry.tracer.last("migration.run")
        assert tb.telemetry.tracer.trace_id == f"mig-{run_span.span_id}"
        assert run_span.attrs["trace_id"] == tb.telemetry.tracer.trace_id

    def test_every_transfer_is_stamped(self, tb):
        for record in tb.network.log:
            assert record.ctx is not None
            assert record.ctx.seq == record.seq
            assert record.ctx.trace_id == tb.telemetry.tracer.trace_id

    def test_sequence_numbers_are_unique_and_monotone(self, tb):
        seqs = [r.seq for r in tb.network.log]
        assert seqs == sorted(seqs)
        assert len(seqs) == len(set(seqs))

    def test_send_edges_point_at_real_spans(self, tb):
        dag = build_dag(tb.telemetry, tb.network)
        sends = [e for e in dag.edges if e.kind == "send"]
        assert len(sends) == len(tb.network.log)
        for edge in sends:
            assert edge.src is not None, f"unparented transfer: {edge.label}"
            span_id = int(edge.src.split(":")[1])
            assert dag.span_by_id(span_id) is not None

    def test_recv_edges_adopt_into_real_spans(self, tb):
        dag = build_dag(tb.telemetry, tb.network)
        recvs = [e for e in dag.edges if e.kind == "recv"]
        assert len(recvs) == len(tb.network.log)
        for edge in recvs:
            assert edge.dst is not None, f"unadopted delivery: {edge.label}"

    def test_fault_free_dag_is_healthy(self, tb):
        dag = build_dag(tb.telemetry, tb.network)
        assert dag.broken_edges() == []
        assert dag.duplicate_edges() == []
        assert dag.reordered_transfers() == []
        assert dag.trace_ids() == [tb.telemetry.tracer.trace_id]

    def test_routes_cover_the_protocol_labels(self, tb):
        for record in tb.network.log:
            sender, receiver = route_for(record.label)
            assert record.label in LABEL_ROUTES
            assert sender != receiver


class TestFaultEdges:
    """Injected wire faults become visible DAG structure, not gaps."""

    def test_dropped_transfer_is_a_broken_edge(self):
        plan = FaultPlan(seed=1)
        plan.message_faults.append(MessageFault("drop", "kmigrate"))
        tb = _faulted_run(plan)
        dag = build_dag(tb.telemetry, tb.network)
        broken = dag.broken_edges()
        assert any(e.label == "kmigrate" for e in broken)
        lost = [t for t in tb.network.log if t.status == "lost"]
        assert len(broken) == len(lost)
        for record in lost:
            assert record.t_done_ns is not None
            assert record.recv_span_id is None

    def test_duplicated_transfer_links_back_to_its_original(self):
        plan = FaultPlan(seed=2)
        plan.message_faults.append(MessageFault("duplicate", "channel-request"))
        tb = _faulted_run(plan)
        dag = build_dag(tb.telemetry, tb.network)
        dupes = dag.duplicate_edges()
        assert len(dupes) == 1
        edge = dupes[0]
        assert edge.label == "channel-request"
        extra = dag.transfer_by_seq(int(edge.dst.split(":")[1]))
        original = dag.transfer_by_seq(int(edge.src.split(":")[1]))
        assert extra.duplicate and not original.duplicate
        assert extra.ctx == original.ctx  # same stamped context, two deliveries

    def test_reordered_chunks_are_flagged(self):
        plan = FaultPlan(seed=3)
        plan.message_faults.append(MessageFault("reorder", "checkpoint-chunk", nth=2))
        tb = _faulted_run(plan)
        dag = build_dag(tb.telemetry, tb.network)
        flagged = dag.reordered_transfers()
        assert len(flagged) == 2  # the swapped pair, nothing else
        assert all(t.label == "checkpoint-chunk" for t in flagged)

    def test_health_summary_round_trips(self):
        plan = FaultPlan(seed=4)
        plan.message_faults.append(MessageFault("drop", "checkpoint-chunk"))
        tb = _faulted_run(plan)
        dag = build_dag(tb.telemetry, tb.network)
        health = dag.health()
        assert health["spans"] == len(dag.spans)
        assert health["transfers"] == len(dag.transfers)
        assert len(health["broken_edges"]) == len(dag.broken_edges())
        assert dag.as_dict()["health"] == health
