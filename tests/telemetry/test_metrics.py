"""The typed metrics registry."""

import pytest

from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    metric_key,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("wire.bytes", {}) == "wire.bytes"

    def test_labels_sorted(self):
        key = metric_key("wire.bytes", {"channel": "kmigrate", "a": 1})
        assert key == "wire.bytes{a=1,channel=kmigrate}"

    def test_distinct_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("wire.bytes", channel="a").inc(1)
        reg.counter("wire.bytes", channel="b").inc(2)
        assert reg.value("wire.bytes", channel="a") == 1
        assert reg.value("wire.bytes", channel="b") == 2
        assert reg.sum_across_labels("wire.bytes") == 3


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("migration.retries_total")
        c.inc()
        c.inc(4)
        assert reg.value("migration.retries_total") == 5

    def test_counter_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("migration.downtime_ns")
        g.set(100)
        g.inc(10)
        g.dec(5)
        assert reg.value("migration.downtime_ns") == 105


class TestHistogram:
    def test_observe_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 555
        assert h.mean == 185
        snap = h.snapshot_value()
        assert snap["buckets"] == {10: 1, 100: 2}  # cumulative, +Inf implied

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("lat", buckets=())

    def test_value_returns_count(self):
        reg = MetricsRegistry()
        reg.histogram("lat").observe(7)
        assert reg.value("lat") == 1


class TestTyping:
    def test_rebinding_kind_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")
        with pytest.raises(TypeError):
            reg.histogram("x")

    def test_kinds(self):
        reg = MetricsRegistry()
        assert isinstance(reg.counter("a"), CounterMetric)
        assert isinstance(reg.gauge("b"), GaugeMetric)
        assert isinstance(reg.histogram("c"), HistogramMetric)


class TestRegistry:
    def test_value_default_for_untouched(self):
        assert MetricsRegistry().value("nope", default=42) == 42

    def test_snapshot_is_sorted_and_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("b.total").inc()
        reg.gauge("a.now").set(3)
        reg.histogram("c.ns").observe(12)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["a.now"] == 3
        assert snap["b.total"] == 1
        assert snap["c.ns"]["count"] == 1

    def test_reset_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(9)
        reg.histogram("h").observe(5)
        reg.reset()
        assert reg.value("x") == 0
        assert reg.get("h").count == 0
        assert reg.counter("x") is c  # identity survives the reset

    def test_contains_uses_series_keys(self):
        reg = MetricsRegistry()
        reg.counter("wire.bytes", channel="kmigrate")
        assert "wire.bytes{channel=kmigrate}" in reg
        assert "wire.bytes" not in reg
