"""SLO engine: burn-rate math, edge cases, hysteresis, fault capture."""

import math

import pytest

from repro.faults import FaultInjector, parse_fault_spec
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.telemetry.slo import (
    BurnRate,
    SloEngine,
    SloObjective,
    default_objectives,
)

from tests.conftest import build_counter_app

MS = 1_000_000
S = 1_000_000_000

#: One alert rate with no confirmation subtlety: fires the moment the
#: long window burns at >= 1x.
SIMPLE_RATE = (BurnRate("only", factor=1.0, window_ns=10 * S, confirm_window_ns=10 * S),)


def _objective(**overrides):
    defaults = dict(
        name="downtime",
        signal="migration.downtime_ns",
        budget=30 * MS,
        target=0.5,
        burn_rates=SIMPLE_RATE,
    )
    defaults.update(overrides)
    return SloObjective(**defaults)


def _engine(**overrides):
    return SloEngine((_objective(**overrides),))


class TestValidation:
    def test_burn_rate_rejects_nonpositive_factor(self):
        with pytest.raises(ValueError):
            BurnRate("bad", factor=0, window_ns=S, confirm_window_ns=S)

    def test_confirm_window_cannot_exceed_evaluation_window(self):
        with pytest.raises(ValueError):
            BurnRate("bad", factor=1.0, window_ns=S, confirm_window_ns=2 * S)

    def test_objective_target_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            _objective(target=1.5)

    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ValueError):
            SloEngine((_objective(), _objective()))


class TestBurnRateEdgeCases:
    def test_zero_budget_marks_every_positive_sample_bad(self):
        # The refusal-rate shape: budget 0, any abort is a bad sample.
        engine = _engine(name="refusals", signal="aborts", budget=0)
        fired = engine.ingest_run(S, {"aborts": 1})
        assert [v.kind for v in fired] == ["fired"]
        assert fired[0].bad == 1

    def test_zero_budget_zero_value_is_good(self):
        engine = _engine(name="refusals", signal="aborts", budget=0)
        assert engine.ingest_run(S, {"aborts": 0}) == []

    def test_negative_budget_behaves_like_zero(self):
        engine = _engine(budget=-5)
        fired = engine.ingest_run(S, {"migration.downtime_ns": 1})
        assert [v.kind for v in fired] == ["fired"]

    def test_empty_window_never_fires(self):
        engine = _engine()
        assert engine.evaluate(100 * S) == []
        # Samples aging out leave the window empty: burn drops to zero,
        # which *clears* a firing alert and can never fire a fresh one.
        engine.ingest_run(S, {"migration.downtime_ns": 99 * MS})
        assert engine.active_alerts()
        late = engine.evaluate(1000 * S)
        assert [v.kind for v in late] == ["cleared"]
        assert engine.evaluate(2000 * S) == []

    def test_window_shorter_than_one_sample_still_counts_the_newest(self):
        # A 1 ns window covers (now-1, now]: exactly the sample at now.
        rate = (BurnRate("tiny", factor=1.0, window_ns=1, confirm_window_ns=1),)
        engine = _engine(burn_rates=rate)
        fired = engine.ingest_run(S, {"migration.downtime_ns": 99 * MS})
        assert [v.kind for v in fired] == ["fired"]
        assert fired[0].samples == 1

    def test_target_one_gives_infinite_burn(self):
        engine = _engine(target=1.0)
        fired = engine.ingest_run(S, {"migration.downtime_ns": 99 * MS})
        assert len(fired) == 1
        assert math.isinf(fired[0].burn)
        # The serialized form is JSON-safe (inf becomes null).
        assert fired[0].as_dict()["burn"] is None

    def test_good_samples_never_fire(self):
        engine = _engine()
        for i in range(1, 20):
            assert engine.ingest_run(i * S, {"migration.downtime_ns": 10 * MS}) == []


class TestHysteresis:
    def test_alert_fires_once_and_clears_once(self):
        engine = _engine()
        # Two bad samples: the first fires the alert, the second does
        # not re-fire it.
        assert [v.kind for v in engine.ingest_run(S, {"migration.downtime_ns": 99 * MS})] == ["fired"]
        assert engine.ingest_run(2 * S, {"migration.downtime_ns": 99 * MS}) == []
        assert engine.active_alerts() == [("downtime", "only")]
        # Good samples dilute the window under 1x: exactly one clear.
        cleared = []
        for i in range(3, 10):
            cleared += engine.ingest_run(i * S, {"migration.downtime_ns": 1 * MS})
        assert [v.kind for v in cleared] == ["cleared"]
        assert engine.active_alerts() == []
        state = engine._state("downtime", "only")
        assert (state.fired_total, state.cleared_total) == (1, 1)

    def test_confirmation_window_gates_firing(self):
        # Long window burns, but the confirmation window has only good
        # samples: no fire until the short window agrees.
        rates = (BurnRate("paged", factor=1.0, window_ns=10 * S, confirm_window_ns=1 * S),)
        engine = _engine(burn_rates=rates)
        fired = engine.ingest_run(S, {"migration.downtime_ns": 99 * MS})
        assert [v.kind for v in fired] == ["fired"]  # bad sample is fresh
        engine2 = _engine(burn_rates=rates)
        engine2.ingest_run(S, {"migration.downtime_ns": 99 * MS})
        engine2.violations.clear()
        engine2._states.clear()
        # Re-evaluate 5s later: long window still burns, confirm is clean.
        assert engine2.evaluate(6 * S) == []


class TestQuantileObjective:
    def _engine(self):
        objective = SloObjective(
            name="p99",
            signal="migration.downtime_ns",
            kind="quantile",
            q=0.99,
            budget=40 * MS,
            window_ns=100 * S,
        )
        return SloEngine((objective,))

    def test_fires_when_windowed_quantile_exceeds_ceiling(self):
        engine = self._engine()
        fired = []
        for i in range(1, 5):
            fired += engine.ingest_run(i * S, {"migration.downtime_ns": 60 * MS})
        assert [v.kind for v in fired] == ["fired"]
        assert fired[0].burn_label == "quantile"
        assert fired[0].burn > 40 * MS

    def test_clears_when_window_slides_past_the_spike(self):
        engine = self._engine()
        engine.ingest_run(S, {"migration.downtime_ns": 60 * MS})
        assert engine.active_alerts()
        cleared = engine.evaluate(1000 * S)  # spike left the window
        assert [v.kind for v in cleared] == ["cleared"]
        assert engine.active_alerts() == []


class TestDefaultObjectives:
    def test_clean_migration_stays_green(self):
        engine = SloEngine(default_objectives())
        tb = build_testbed(seed=41)
        app = build_counter_app(tb, tag="slo-clean")
        MigrationOrchestrator(tb).migrate_enclave(app)
        delta = tb.telemetry.run_metrics[tb.telemetry.last_run_id]
        assert engine.ingest_run(tb.clock.now_ns, delta, source="mig-clean") == []

    def test_injected_fault_fires_burn_rate_alert_with_flight_capture(
        self, tmp_path, monkeypatch
    ):
        """Acceptance: a delayed checkpoint burns the downtime budget,
        the alert lands in the flight recorder (namespaced dump) and the
        monitor's soft SLO ledger — without failing the invariant sweep."""
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        engine = SloEngine(default_objectives())
        tb = build_testbed(seed=42)
        tb.telemetry.flightrecorder.namespace = "mig-faulted"
        tb.telemetry.flightrecorder.dump_dir = str(tmp_path)
        app = build_counter_app(tb, tag="slo-faulted")
        plan = parse_fault_spec("delay:checkpoint:1")
        plan.seed = 42
        MigrationOrchestrator(tb, faults=FaultInjector(plan)).migrate_enclave(app)
        delta = tb.telemetry.run_metrics[tb.telemetry.last_run_id]
        assert delta["migration.downtime_ns"] > 30 * MS
        fired = engine.ingest_run(
            tb.clock.now_ns, delta, source="mig-faulted", emit_to=tb.telemetry
        )
        assert any(v.kind == "fired" for v in fired)
        # The ("slo", "violation") event is a flight-recorder trigger:
        dumps = tb.telemetry.flightrecorder.dumps
        assert any(d["trigger"] == "slo.violation" for d in dumps)
        files = sorted(tmp_path.glob("flight-mig-faulted-*-slo-violation.json"))
        assert files, "the dump file must carry the migration-id namespace"
        # The monitor records it softly: visible, but not a hard violation.
        monitor = tb.source.monitor
        assert monitor.slo_violations
        assert "downtime" in monitor.slo_violations[0]
        monitor.assert_clean()  # an SLO breach is not a safety failure

    def test_bus_subscription_feeds_metric_records(self):
        engine = SloEngine(default_objectives())
        tb = build_testbed(seed=43)
        bus = tb.telemetry.ensure_bus()
        engine.attach(bus, capacity=1)
        app = build_counter_app(tb, tag="slo-bus")
        MigrationOrchestrator(tb).migrate_enclave(app)
        bus.finalize()
        # The run delta arrived through the bus as a metric record.
        assert engine._windows["downtime-budget"]
        assert engine.active_alerts() == []


class TestGenerationBoundary:
    def test_stale_generation_delta_cannot_refire_cleared_alert(self):
        """A run scope that straddles a registry reset is tainted: its
        delta never reaches the bus, so a cleared alert stays cleared
        even when the stale scope saw a budget-burning gauge."""
        engine = _engine()
        tb = build_testbed(seed=44)
        telemetry = tb.telemetry
        bus = telemetry.ensure_bus()
        engine.attach(bus, capacity=4)
        # Fire once, clear once — the hysteresis baseline.
        engine.ingest_run(S, {"migration.downtime_ns": 99 * MS})
        for i in range(2, 9):
            engine.ingest_run(i * S, {"migration.downtime_ns": 1 * MS})
        state = engine._state("downtime", "only")
        assert (state.fired_total, state.cleared_total) == (1, 1)
        assert engine.active_alerts() == []
        windows_before = len(engine._windows["downtime"])
        # A scope opened before a reset closes across a generation
        # change: the violating gauge inside it must be discarded.
        telemetry.begin_run("stale-run")
        telemetry.metrics.gauge("migration.downtime_ns").set(99 * MS)
        telemetry.metrics.reset()  # generation bump mid-scope
        assert telemetry.end_run("stale-run") is None
        bus.finalize()
        # No metric record was published, the window is untouched, and
        # the alert did not re-fire.
        assert "stale-run" not in telemetry.run_metrics
        assert len(engine._windows["downtime"]) == windows_before
        assert engine.active_alerts() == []
        assert (state.fired_total, state.cleared_total) == (1, 1)
