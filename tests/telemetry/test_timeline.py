"""Timeline reconstruction: golden phase ordering and span well-nesting."""

import pytest

from repro.errors import MigrationAborted, PartyCrash
from repro.faults import FaultInjector, FaultPlan, MessageFault
from repro.migration.orchestrator import FAULT_TOLERANT_RETRY, MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.telemetry.runs import run_seeded_migration
from repro.telemetry.timeline import EXPECTED_ENCLAVE_PHASES, well_nested

from tests.conftest import build_counter_app


class TestGoldenTimeline:
    """One fault-free seeded migration has exactly one canonical shape."""

    @pytest.fixture(scope="class")
    def tb(self):
        return run_seeded_migration(seed=1)

    def test_phase_ordering_is_golden(self, tb):
        report = tb.telemetry.timeline()
        assert report.phase_names == EXPECTED_ENCLAVE_PHASES

    def test_downtime_equals_stop_and_copy_span(self, tb):
        report = tb.telemetry.timeline()
        stop_and_copy = tb.telemetry.tracer.last("migration.stop_and_copy")
        assert report.downtime_ns == stop_and_copy.duration_ns
        assert report.downtime_ns > 0

    def test_phases_partition_the_stop_and_copy_window(self, tb):
        report = tb.telemetry.timeline()
        steps = [p for p in report.phases if p.name != "stop-and-copy"]
        window = next(p for p in report.phases if p.name == "stop-and-copy")
        for phase in steps:
            assert window.start_ns <= phase.start_ns <= phase.end_ns <= window.end_ns

    def test_figures_are_consistent(self, tb):
        report = tb.telemetry.timeline()
        assert report.total_ns >= report.downtime_ns
        assert report.transferred_bytes > 0
        assert report.attempts == 1
        assert not report.aborted
        assert report.faults_injected == {}

    def test_report_round_trips_to_dict(self, tb):
        d = tb.telemetry.timeline().as_dict()
        assert d["figures"]["downtime_ns"] == tb.telemetry.timeline().downtime_ns
        assert d["per_phase_ns"]["stop-and-copy"] == d["figures"]["downtime_ns"]
        assert len(d["phases"]) == len(EXPECTED_ENCLAVE_PHASES)

    def test_same_seed_same_timeline(self):
        a = run_seeded_migration(seed=99).telemetry.timeline().as_dict()
        b = run_seeded_migration(seed=99).telemetry.timeline().as_dict()
        assert a == b


class TestVmTimeline:
    def test_vm_phases(self):
        tb = run_seeded_migration(seed=2, vm=True)
        names = tb.telemetry.timeline().phase_names
        assert names[0] == "prepare"
        assert any(n.startswith("pre-copy round") for n in names)
        assert "stop-and-copy" in names and names[-1] == "restore"


#: Seeded fault matrix for the nesting property: message faults on every
#: wire label, plus crashes on both sides of the point of no return.
_FAULT_CASES = [
    MessageFault("drop", "kmigrate"),
    MessageFault("drop", "checkpoint-chunk"),
    MessageFault("corrupt", "checkpoint-chunk", nth=2),
    MessageFault("duplicate", "channel-request"),
    MessageFault("delay", "channel-answer"),
]


class TestSpanNestingProperty:
    """Spans stay well-nested per (party, track) whatever faults fire."""

    def _run(self, plan):
        tb = build_testbed(seed=1000 + plan.seed)
        app = build_counter_app(tb, tag="nesting")
        app.ecall_once(0, "incr", 5)
        orch = MigrationOrchestrator(
            tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
        )
        try:
            orch.migrate_enclave(app)
        except (MigrationAborted, PartyCrash):
            pass
        return tb

    @pytest.mark.parametrize("fault", _FAULT_CASES, ids=lambda f: f"{f.kind}:{f.label}")
    @pytest.mark.parametrize("seed", (1, 7))
    def test_message_faults_keep_spans_well_nested(self, fault, seed):
        plan = FaultPlan(seed=seed)
        plan.message_faults.append(fault)
        tb = self._run(plan)
        assert well_nested(tb.telemetry.tracer.spans)

    @pytest.mark.parametrize("side", ("source", "target"))
    @pytest.mark.parametrize("step", ("checkpoint", "transfer-checkpoint", "restore"))
    def test_crashes_keep_spans_well_nested(self, side, step):
        tb = self._run(FaultPlan(seed=3).crash(side, step))
        spans = tb.telemetry.tracer.spans
        assert well_nested(spans)
        # A crash may strand open spans, but every *finished* one closed
        # in LIFO order on its own track — the tracer guarantees it.
        assert all(s.end_ns >= s.start_ns for s in spans if s.finished)

    def test_fault_counters_fold_into_metrics(self):
        plan = FaultPlan(seed=1)
        plan.message_faults.append(MessageFault("drop", "kmigrate"))
        tb = self._run(plan)
        faults = tb.telemetry.timeline().faults_injected
        assert sum(faults.values()) >= 1
        assert sum(faults.values()) == tb.trace.metrics.sum_across_labels(
            "faults.injected"
        )
