"""Wait-state attribution: conservation, segments, the fleet fold."""

import pytest

from repro.errors import InvariantViolation
from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.telemetry.criticalpath import ANCHOR_TOTAL, critical_path
from repro.telemetry.waitstate import (
    WAIT_ADMISSION,
    WAIT_BANDWIDTH,
    WAIT_EPC,
    WaitProfile,
    fleet_critical_path,
    verify_conservation,
    wait_blame_name,
    wait_segments,
)

from tests.conftest import build_counter_app


def _profile(arrival=0, start=300, end=1000, waits=None, **kw):
    return WaitProfile(
        mig_id="mig0000-s1",
        arrival_ns=arrival,
        start_ns=start,
        end_ns=end,
        waits=waits
        if waits is not None
        else (
            (WAIT_ADMISSION, 100, None),
            (WAIT_EPC, 150, 3),
            (WAIT_BANDWIDTH, 50, 3),
        ),
        **kw,
    )


class TestConservation:
    def test_wall_is_running_plus_queued(self):
        p = _profile()
        assert p.wall_ns == 1000
        assert p.running_ns == 700
        assert p.queued_ns == 300
        verify_conservation(p)  # exact: no gap, no overlap

    def test_gap_between_waits_and_start_raises(self):
        p = _profile(start=400)  # waits only cover 300ns
        with pytest.raises(InvariantViolation, match="admission gap"):
            verify_conservation(p)

    def test_queued_by_kind_sums_duplicates(self):
        p = _profile(
            start=250,
            waits=((WAIT_EPC, 100, 1), (WAIT_EPC, 150, 2)),
        )
        assert p.queued_by_kind()[WAIT_EPC] == 250


class TestSegments:
    def test_segments_tile_the_queued_interval_in_order(self):
        segs = wait_segments(_profile())
        assert [(s.start_ns, s.end_ns) for s in segs] == [
            (0, 100), (100, 250), (250, 300)
        ]
        assert [s.blame for s in segs] == [
            "wait/fleet/admission", "wait/host-03/epc", "wait/host-03/bandwidth"
        ]
        assert all(s.kind == "wait" for s in segs)

    def test_zero_waits_are_skipped(self):
        segs = wait_segments(
            _profile(start=100, waits=((WAIT_ADMISSION, 100, None),
                                       (WAIT_EPC, 0, 2),
                                       (WAIT_BANDWIDTH, 0, 2)))
        )
        assert len(segs) == 1

    def test_blame_names_mirror_span_units(self):
        assert wait_blame_name(WAIT_EPC, 3) == "wait/host-03/epc"
        assert wait_blame_name(WAIT_ADMISSION, None) == "wait/fleet/admission"


class TestFleetFold:
    def test_fold_without_inner_is_gapless(self):
        report = fleet_critical_path(_profile())
        assert report.total_ns == 1000
        assert report.attributed_ns == 1000  # 100% by construction
        assert report.blames("wait/host-03/epc")
        assert report.blames("migration.run")
        # Segments partition [arrival, end) with no holes.
        cursor = 0
        for seg in report.segments:
            assert seg.start_ns == cursor
            cursor = seg.end_ns
        assert cursor == 1000

    def test_fold_with_real_critical_path(self):
        # Run a real migration, fold its explain-grade critical path
        # behind synthetic queueing: wait blame and span blame rank in
        # the same contribution table.
        tb = build_testbed(seed=77)
        app = build_counter_app(tb, tag="waitfold")
        MigrationOrchestrator(tb).migrate_enclave(app)
        inner = critical_path(tb.telemetry, tb.network, ANCHOR_TOTAL)
        duration = tb.clock.now_ns
        profile = WaitProfile(
            mig_id="mig0000-s77",
            arrival_ns=0,
            start_ns=500_000,
            end_ns=500_000 + duration,
            waits=((WAIT_ADMISSION, 0, None), (WAIT_EPC, 500_000, 1),
                   (WAIT_BANDWIDTH, 0, 1)),
            target_host=1,
        )
        report = fleet_critical_path(profile, inner)
        assert report.attributed_ns == report.total_ns == profile.wall_ns
        assert report.blames("wait/host-01/epc")
        # The migration's own spans survive the fold, shifted intact.
        assert report.blames("journal.commit") or report.blames("migration.step")
        names = {c.name for c in report.contributions}
        assert "wait/host-01/epc" in names
        # Setup before migration.run is tiled, never silently dropped.
        assert any(n.endswith("/setup") for n in names)

    def test_queue_only_profile_attributes_everything_to_waits(self):
        p = _profile(start=1000, end=1000,
                     waits=((WAIT_ADMISSION, 400, None), (WAIT_EPC, 600, 0),
                            (WAIT_BANDWIDTH, 0, 0)))
        report = fleet_critical_path(p)
        assert report.attributed_ns == 1000
        assert {s.kind for s in report.segments} == {"wait"}

    def test_fold_rejects_nonconserving_profile(self):
        with pytest.raises(InvariantViolation):
            fleet_critical_path(_profile(start=999))
