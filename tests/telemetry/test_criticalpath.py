"""Critical-path attribution: 100% of every anchor, deterministically."""

import pytest

from repro.errors import MigrationAborted
from repro.faults import FaultInjector, FaultPlan, MessageFault
from repro.migration.orchestrator import FAULT_TOLERANT_RETRY, MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.telemetry.criticalpath import (
    ANCHOR_DOWNTIME,
    ANCHOR_TOTAL,
    critical_path,
    explain_migration,
)
from repro.telemetry.runs import run_seeded_migration

from tests.conftest import build_counter_app

#: Message-fault matrix for the attribution property: whatever the wire
#: does, the segments must still partition the anchor exactly.
_FAULT_CASES = [
    None,
    MessageFault("drop", "kmigrate"),
    MessageFault("drop", "checkpoint-chunk"),
    MessageFault("corrupt", "checkpoint-chunk", nth=2),
    MessageFault("duplicate", "channel-request"),
    MessageFault("delay", "channel-answer"),
    MessageFault("reorder", "checkpoint-chunk", nth=2),
]


def _faulted_run(fault, seed):
    plan = FaultPlan(seed=seed)
    if fault is not None:
        plan.message_faults.append(fault)
    tb = build_testbed(seed=3000 + seed)
    app = build_counter_app(tb, tag="critpath")
    app.ecall_once(0, "incr", 5)
    orch = MigrationOrchestrator(
        tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
    )
    try:
        orch.migrate_enclave(app)
    except MigrationAborted:
        pass
    return tb


class TestAttribution:
    @pytest.fixture(scope="class")
    def tb(self):
        return run_seeded_migration(seed=1)

    def test_total_report_sums_to_the_run_span(self, tb):
        report = critical_path(tb.telemetry, tb.network, ANCHOR_TOTAL)
        run_span = tb.telemetry.tracer.last(ANCHOR_TOTAL)
        assert report.total_ns == run_span.duration_ns
        assert report.attributed_ns == report.total_ns

    def test_downtime_report_matches_the_gauge(self, tb):
        report = critical_path(tb.telemetry, tb.network, ANCHOR_DOWNTIME)
        downtime_ns = tb.trace.metrics.value("migration.downtime_ns")
        assert report.total_ns == downtime_ns
        assert report.attributed_ns == downtime_ns  # 100% attributed

    def test_segments_partition_the_interval(self, tb):
        report = critical_path(tb.telemetry, tb.network, ANCHOR_TOTAL)
        assert report.segments[0].start_ns == report.start_ns
        assert report.segments[-1].end_ns == report.end_ns
        for a, b in zip(report.segments, report.segments[1:]):
            assert a.end_ns == b.start_ns  # gapless, no overlap

    def test_contributions_are_ranked_and_complete(self, tb):
        report = critical_path(tb.telemetry, tb.network, ANCHOR_TOTAL)
        durations = [c.duration_ns for c in report.contributions]
        assert durations == sorted(durations, reverse=True)
        assert sum(durations) == report.total_ns
        assert abs(sum(c.share_pct for c in report.contributions) - 100.0) < 1e-6

    def test_downtime_blames_the_stop_and_copy_path(self, tb):
        report = explain_migration(tb.telemetry, tb.network)
        assert report.blames("stop_and_copy")
        assert report.blames("migration.run")
        assert not report.blames("no-such-span")

    def test_wire_transfers_appear_as_blame_units(self, tb):
        report = critical_path(tb.telemetry, tb.network, ANCHOR_DOWNTIME)
        kinds = {c.kind for c in report.contributions}
        assert "transfer" in kinds and "span" in kinds
        names = [c.name for c in report.contributions]
        assert any(name.startswith("wire/") for name in names)


class TestAttributionProperty:
    """Attribution is exact whatever the fault plan did to the run."""

    @pytest.mark.parametrize(
        "fault", _FAULT_CASES, ids=lambda f: "fault-free" if f is None else f"{f.kind}:{f.label}"
    )
    def test_segments_always_sum_to_the_anchor(self, fault):
        tb = _faulted_run(fault, seed=5)
        anchor = tb.telemetry.tracer.last(ANCHOR_TOTAL)
        if anchor is None:
            pytest.skip("migration aborted before the run span closed")
        report = critical_path(tb.telemetry, tb.network, ANCHOR_TOTAL)
        assert report.attributed_ns == anchor.duration_ns
        down = critical_path(tb.telemetry, tb.network, ANCHOR_DOWNTIME)
        assert down.attributed_ns == down.total_ns

    def test_same_seed_same_report(self):
        a = run_seeded_migration(seed=42)
        b = run_seeded_migration(seed=42)
        ra = explain_migration(a.telemetry, a.network).as_dict()
        rb = explain_migration(b.telemetry, b.network).as_dict()
        assert ra == rb

    def test_render_text_is_deterministic_and_complete(self):
        tb = run_seeded_migration(seed=1)
        report = explain_migration(tb.telemetry, tb.network)
        text = report.render_text()
        assert "migration critical path" in text
        assert "100.0%" in text
        assert report.render_text() == text
