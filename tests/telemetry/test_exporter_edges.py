"""Exporter edge cases: escaping, nesting across parties, round-trips."""

import json

from repro.telemetry.exporters import (
    profile_record,
    record_from_dict,
    records_from_jsonl,
    records_to_jsonl,
    sketch_record,
    to_chrome_trace,
    to_prometheus,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiler import Profile
from repro.telemetry.runs import run_seeded_migration
from repro.telemetry.sketch import QuantileSketch


class TestPrometheusEscaping:
    def test_label_values_with_quotes_backslashes_newlines(self):
        registry = MetricsRegistry()
        registry.counter("edge.total", path='C:\\tmp\\"x"', note="a\nb").inc(3)
        text = to_prometheus(registry)
        line = next(l for l in text.splitlines() if l.startswith("edge_total"))
        assert '\\\\' in line  # backslash escaped
        assert '\\"' in line  # quote escaped
        assert "\n" not in line  # newline folded into the \n escape
        assert "\\n" in line
        assert line.endswith(" 3")

    def test_escaping_is_idempotent_on_clean_values(self):
        registry = MetricsRegistry()
        registry.gauge("g", party="source").set(1)
        assert 'party="source"' in to_prometheus(registry)

    def test_histogram_le_labels_still_render(self):
        registry = MetricsRegistry()
        registry.histogram("h", party='s"rc').observe(5)
        text = to_prometheus(registry)
        assert 'party="s\\"rc"' in text
        assert "h_bucket" in text and 'le="+Inf"' in text


class TestChromeTraceNesting:
    def test_spans_nest_within_their_party_process(self):
        tb = run_seeded_migration(seed=1)
        trace = to_chrome_trace(tb.telemetry, network=tb.network)
        events = trace["traceEvents"]
        by_name = {}
        pid_names = {}
        for event in events:
            if event.get("ph") == "M" and event["name"] == "process_name":
                pid_names[event["pid"]] = event["args"]["name"]
        for event in events:
            if event.get("ph") == "X" and event.get("cat") == "span":
                by_name.setdefault(event["name"], []).append(event)
        # journal.commit slices exist on more than one party's process.
        commits = by_name["journal.commit"]
        commit_parties = {pid_names[e["pid"]] for e in commits}
        assert {"source", "target", "orchestrator"} <= commit_parties
        # Every source-party journal.commit nests inside a span on the
        # same pid+tid that fully contains it (well-formed nesting).
        spans = [e for events_ in by_name.values() for e in events_]
        for commit in commits:
            enclosing = [
                s
                for s in spans
                if s is not commit
                and s["pid"] == commit["pid"]
                and s["tid"] == commit["tid"]
                and s["ts"] <= commit["ts"]
                and s["ts"] + s["dur"] >= commit["ts"] + commit["dur"]
            ]
            if pid_names[commit["pid"]] == "orchestrator":
                assert enclosing, "orchestrator commits must nest in protocol spans"

    def test_wire_flow_arrows_bind_sender_and_receiver(self):
        tb = run_seeded_migration(seed=1)
        events = to_chrome_trace(tb.telemetry, network=tb.network)["traceEvents"]
        starts = {e["id"] for e in events if e.get("ph") == "s"}
        finishes = {e["id"] for e in events if e.get("ph") == "f"}
        assert starts and starts == finishes


class TestRecordRoundTrip:
    def test_sketch_record_round_trip(self):
        sketch = QuantileSketch()
        for v in (0, 10, 200, 3_000):
            sketch.observe(v)
        text = records_to_jsonl([sketch_record("migration.downtime_ns", sketch)])
        (loaded,) = records_from_jsonl(text)
        name, clone = loaded
        assert name == "migration.downtime_ns"
        assert clone.count == sketch.count
        assert clone.quantile(0.5) == sketch.quantile(0.5)

    def test_profile_record_round_trip(self):
        tb = run_seeded_migration(seed=1, profile_interval_ns=10_000)
        profile = tb.telemetry.profiler.profile()
        text = records_to_jsonl([profile_record(profile)])
        (clone,) = records_from_jsonl(text)
        assert isinstance(clone, Profile)
        assert clone.folded() == profile.folded()

    def test_mixed_stream_preserves_order_and_types(self):
        sketch = QuantileSketch()
        sketch.observe(7)
        profile = Profile(
            interval_ns=10, start_ns=0, end_ns=50, sample_count=5,
            stacks={("p", "a"): 50},
        )
        text = records_to_jsonl(
            [sketch_record("s", sketch), profile_record(profile), {"type": "other"}]
        )
        assert len(text.splitlines()) == 3
        loaded = records_from_jsonl(text)
        assert loaded[0][0] == "s"
        assert isinstance(loaded[1], Profile)
        assert loaded[2] == {"type": "other"}

    def test_jsonl_is_deterministic(self):
        sketch = QuantileSketch()
        sketch.observe(3)
        a = records_to_jsonl([sketch_record("x", sketch)])
        b = records_to_jsonl([sketch_record("x", sketch)])
        assert a == b
        json.loads(a)  # single valid JSON line
