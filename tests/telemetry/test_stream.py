"""Streaming bus: bounded subscribers, replay, merge, snapshot parity."""

import pytest

from repro.migration.orchestrator import MigrationOrchestrator
from repro.migration.testbed import build_testbed
from repro.telemetry.exporters import to_jsonl
from repro.telemetry.stream import (
    POLICY_DROP_NEWEST,
    StreamRecord,
    TelemetryBus,
    jsonl_from_records,
    merge_records,
)

from tests.conftest import build_counter_app


def _migrate(seed, tag):
    tb = build_testbed(seed=seed)
    app = build_counter_app(tb, tag=tag)
    app.ecall_once(0, "incr", 3)
    MigrationOrchestrator(tb).migrate_enclave(app)
    return tb


class TestSubscribers:
    def test_capacity_must_be_positive(self):
        bus = TelemetryBus()
        with pytest.raises(ValueError):
            bus.subscribe("bad", capacity=0)

    def test_unknown_policy_rejected(self):
        bus = TelemetryBus()
        with pytest.raises(ValueError):
            bus.subscribe("bad", policy="drop_everything")

    def test_duplicate_names_rejected(self):
        bus = TelemetryBus()
        bus.subscribe("one")
        with pytest.raises(ValueError):
            bus.subscribe("one")

    def test_push_subscriber_batches_until_capacity(self):
        bus = TelemetryBus()
        batches = []
        sub = bus.subscribe("push", capacity=3, callback=batches.append)
        for i in range(7):
            bus.publish(i, "event", {"i": i})
        # Two full batches delivered synchronously; one record buffered.
        assert [len(b) for b in batches] == [3, 3]
        assert sub.backpressure_flushes == 2
        assert len(sub) == 1
        bus.flush()
        assert [len(b) for b in batches] == [3, 3, 1]
        assert sub.delivered == 7

    def test_poll_subscriber_drop_oldest(self):
        bus = TelemetryBus()
        sub = bus.subscribe("poll", capacity=3)
        for i in range(5):
            bus.publish(i, "event", {"i": i})
        assert sub.dropped == 2
        kept = [r.payload["i"] for r in sub.poll()]
        assert kept == [2, 3, 4]  # newest survive

    def test_poll_subscriber_drop_newest(self):
        bus = TelemetryBus()
        sub = bus.subscribe("poll", capacity=3, policy=POLICY_DROP_NEWEST)
        for i in range(5):
            bus.publish(i, "event", {"i": i})
        assert sub.dropped == 2
        kept = [r.payload["i"] for r in sub.poll()]
        assert kept == [0, 1, 2]  # oldest survive

    def test_drops_are_accounted_in_stats(self):
        bus = TelemetryBus()
        bus.subscribe("poll", capacity=1)
        for i in range(4):
            bus.publish(i, "event", {"i": i})
        stats = bus.stats()
        assert stats["published"] == 4
        assert stats["subscribers"]["poll"]["dropped"] == 3
        assert stats["subscribers"]["poll"]["queued"] == 1


class TestLiveTail:
    def test_live_records_arrive_in_virtual_clock_order(self):
        tb = _migrate(31, "stream-order")
        records = []
        bus = TelemetryBus()
        bus.subscribe("cap", capacity=1 << 16, callback=records.extend)
        bus.attach(tb.telemetry, replay=True)
        bus.finalize()
        times = [r.t_ns for r in records if r.kind == "event"]
        assert times == sorted(times)

    def test_run_scope_close_publishes_metric_record(self):
        tb = build_testbed(seed=32)
        bus = tb.telemetry.ensure_bus()
        metric_records = []
        bus.subscribe(
            "metrics",
            capacity=4,
            callback=lambda batch: metric_records.extend(
                r for r in batch if r.kind == "metric"
            ),
        )
        app = build_counter_app(tb, tag="stream-metric")
        MigrationOrchestrator(tb).migrate_enclave(app)
        bus.finalize()
        assert len(metric_records) == 1
        delta = metric_records[0].payload["delta"]
        assert "migration.downtime_ns" in delta
        assert metric_records[0].payload["run_id"].startswith("mig-")

    def test_ensure_bus_is_idempotent(self):
        tb = build_testbed(seed=33)
        assert tb.telemetry.ensure_bus() is tb.telemetry.ensure_bus()


class TestSnapshotParity:
    """Acceptance: the live stream loses nothing vs the snapshot export."""

    def test_live_stream_matches_end_of_run_jsonl(self):
        tb = build_testbed(seed=34)
        records = []
        # Subscribe before attaching: replay-on-attach then delivers the
        # pre-attach history (testbed construction events) too.
        bus = TelemetryBus()
        bus.subscribe("cap", capacity=1 << 16, callback=records.extend)
        bus.attach(tb.telemetry, replay=True)
        app = build_counter_app(tb, tag="stream-parity")
        app.ecall_once(0, "incr", 3)
        MigrationOrchestrator(tb).migrate_enclave(app)
        tb.trace.emit("test", "tail-marker", party="source")
        bus.finalize()
        assert jsonl_from_records(records) == to_jsonl(tb.telemetry)

    def test_replay_attach_matches_live_attach(self):
        # A bus attached *after* the run replays history into the same
        # stream a from-the-start tail would have produced.
        tb = _migrate(35, "stream-replay")
        late_records = []
        late_bus = TelemetryBus()
        late_bus.subscribe("cap", capacity=1 << 16, callback=late_records.extend)
        late_bus.attach(tb.telemetry, replay=True)
        late_bus.finalize()
        assert jsonl_from_records(late_records) == to_jsonl(tb.telemetry)


class TestMerge:
    def test_merge_orders_across_streams_with_offsets(self):
        a = [
            StreamRecord(seq=1, t_ns=10, kind="event", payload={}, source="migA"),
            StreamRecord(seq=2, t_ns=50, kind="event", payload={}, source="migA"),
        ]
        b = [
            StreamRecord(seq=1, t_ns=5, kind="event", payload={}, source="migB"),
            StreamRecord(seq=2, t_ns=45, kind="event", payload={}, source="migB"),
        ]
        # migB admitted 20ns into the fleet: its records shift by +20.
        merged = list(merge_records([a, b], offsets_ns=[0, 20]))
        assert [(r.source, r.t_ns) for r in merged] == [
            ("migA", 10),
            ("migB", 25),
            ("migA", 50),
            ("migB", 65),
        ]

    def test_merge_requires_one_offset_per_stream(self):
        with pytest.raises(ValueError):
            list(merge_records([[], []], offsets_ns=[0]))

    def test_merge_tie_break_is_deterministic(self):
        a = [StreamRecord(seq=1, t_ns=10, kind="event", payload={}, source="migB")]
        b = [StreamRecord(seq=1, t_ns=10, kind="event", payload={}, source="migA")]
        merged = list(merge_records([a, b]))
        assert [r.source for r in merged] == ["migA", "migB"]

    def test_merge_tie_break_is_stable_by_id_then_seq(self):
        # Same timestamp everywhere: order must fall back to migration
        # id (source), then seq — never input-stream position.
        a = [
            StreamRecord(seq=2, t_ns=10, kind="event", payload={}, source="migB"),
            StreamRecord(seq=7, t_ns=10, kind="event", payload={}, source="migB"),
        ]
        b = [
            StreamRecord(seq=1, t_ns=10, kind="event", payload={}, source="migA"),
            StreamRecord(seq=5, t_ns=10, kind="event", payload={}, source="migA"),
        ]
        forward = list(merge_records([a, b]))
        reversed_inputs = list(merge_records([b, a]))
        key = [(r.source, r.seq) for r in forward]
        assert key == [("migA", 1), ("migA", 5), ("migB", 2), ("migB", 7)]
        assert key == [(r.source, r.seq) for r in reversed_inputs]

    def test_merge_with_an_empty_stream(self):
        a = [
            StreamRecord(seq=1, t_ns=10, kind="event", payload={}, source="migA"),
            StreamRecord(seq=2, t_ns=30, kind="event", payload={}, source="migA"),
        ]
        merged = list(merge_records([a, [], []], offsets_ns=[0, 5, 9]))
        assert [(r.source, r.t_ns) for r in merged] == [("migA", 10), ("migA", 30)]

    def test_merge_of_all_empty_streams_is_empty(self):
        assert list(merge_records([[], [], []])) == []
        assert list(merge_records([])) == []
