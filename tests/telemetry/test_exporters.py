"""Exporters: JSONL, Chrome trace_event, Prometheus text."""

import json

import pytest

from repro.telemetry.exporters import to_chrome_trace, to_jsonl, to_prometheus
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.runs import run_seeded_migration


@pytest.fixture(scope="module")
def tb():
    return run_seeded_migration(seed=5)


class TestJsonl:
    def test_every_line_parses(self, tb):
        lines = to_jsonl(tb.telemetry).splitlines()
        assert lines
        rows = [json.loads(line) for line in lines]
        assert {r["type"] for r in rows} == {"event", "span"}

    def test_bytes_payloads_become_hex(self, tb):
        # Nothing in the dump may be un-JSON-able; bytes land as hex str.
        for row in map(json.loads, to_jsonl(tb.telemetry).splitlines()):
            json.dumps(row)  # would raise on any non-JSON value


class TestChromeTrace:
    def test_shape_and_metadata(self, tb):
        doc = to_chrome_trace(tb.telemetry)
        json.dumps(doc)  # must be valid JSON end to end
        events = doc["traceEvents"]
        assert {e["ph"] for e in events} <= {"X", "i", "M"}
        procs = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
        assert {p["args"]["name"] for p in procs} >= {"orchestrator", "source", "target"}

    def test_stop_and_copy_duration_matches_downtime_metric(self, tb):
        doc = to_chrome_trace(tb.telemetry)
        (sc,) = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "migration.stop_and_copy"
        ]
        downtime_ns = tb.trace.metrics.value("migration.downtime_ns")
        assert sc["dur"] * 1_000 == downtime_ns  # ts/dur are microseconds

    def test_x_events_cover_every_finished_span(self, tb):
        doc = to_chrome_trace(tb.telemetry)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(tb.telemetry.tracer.finished())


class TestPrometheus:
    def test_seeded_run_exposition(self, tb):
        text = to_prometheus(tb.trace.metrics)
        assert "# TYPE migration_downtime_ns gauge" in text
        assert "# TYPE sgx_instructions_total counter" in text
        downtime = tb.trace.metrics.value("migration.downtime_ns")
        assert f"migration_downtime_ns {downtime}" in text

    def test_histogram_rendering(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat.ns", buckets=(10, 100), party="source")
        for v in (5, 50, 500):
            h.observe(v)
        text = to_prometheus(reg)
        assert '# TYPE lat_ns histogram' in text
        assert 'lat_ns_bucket{le="10",party="source"} 1' in text
        assert 'lat_ns_bucket{le="100",party="source"} 2' in text
        assert 'lat_ns_bucket{le="+Inf",party="source"} 3' in text
        assert 'lat_ns_sum{party="source"} 555' in text
        assert 'lat_ns_count{party="source"} 3' in text

    def test_one_type_line_per_family(self):
        reg = MetricsRegistry()
        reg.counter("wire.bytes", channel="a").inc()
        reg.counter("wire.bytes", channel="b").inc()
        text = to_prometheus(reg)
        assert text.count("# TYPE wire_bytes counter") == 1

    def test_exposition_order_is_deterministic_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.counter("a.first", shard="b").inc()
        reg.counter("a.first", shard="a").inc()
        reg.gauge("m.middle").set(7)
        sample_lines = [
            line for line in to_prometheus(reg).splitlines()
            if line and not line.startswith("#")
        ]
        assert sample_lines == sorted(sample_lines)

    def test_mixed_type_label_values_sort_without_error(self):
        # Labels mixing int and str values used to TypeError under the
        # old tuple sort; the metric_key sort is type-agnostic.
        reg = MetricsRegistry()
        reg.counter("x.total", shard=1).inc()
        reg.counter("x.total", shard="a").inc(2)
        text = to_prometheus(reg)
        assert 'x_total{shard="1"} 1' in text
        assert 'x_total{shard="a"} 2' in text
        assert text.index('shard="1"') < text.index('shard="a"')


class TestDeterminism:
    @staticmethod
    def _reset_global_counters():
        """Pin process-global id counters so two runs in one pytest
        process draw identical rdrand fork labels (same trick as the
        fault-matrix regression test)."""
        import itertools

        from repro.guestos.process import GuestProcess
        from repro.sgx.cpu import SgxCpu

        GuestProcess._pids = itertools.count(100)
        SgxCpu._ids = itertools.count(1)

    def test_same_seed_byte_identical_artifacts(self):
        self._reset_global_counters()
        a = run_seeded_migration(seed=11)
        self._reset_global_counters()
        b = run_seeded_migration(seed=11)
        assert to_jsonl(a.telemetry) == to_jsonl(b.telemetry)
        assert json.dumps(to_chrome_trace(a.telemetry), sort_keys=True) == json.dumps(
            to_chrome_trace(b.telemetry), sort_keys=True
        )
        assert to_prometheus(a.trace.metrics) == to_prometheus(b.trace.metrics)


class TestPromtoolParse:
    """A promtool-style lint of the exposition format: every sample has
    a preceding ``# HELP``/``# TYPE`` for its family, families are
    contiguous, and ``_ns`` series carry derived unit-suffixed
    ``_seconds`` twins."""

    @staticmethod
    def _lint(text):
        helped, typed, families_seen = set(), set(), []
        current = None
        for line in text.splitlines():
            if not line:
                continue
            if line.startswith("# HELP "):
                helped.add(line.split()[2])
                continue
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split()
                assert kind in ("counter", "gauge", "histogram"), line
                typed.add(name)
                continue
            assert not line.startswith("#"), f"unknown comment: {line}"
            name = line.split("{")[0].split(" ")[0]
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if family.endswith(suffix) and family[: -len(suffix)] in typed:
                    family = family[: -len(suffix)]
                    break
            assert family in typed, f"sample before # TYPE: {line}"
            assert family in helped, f"sample before # HELP: {line}"
            if family != current:
                assert family not in families_seen, f"family split: {family}"
                families_seen.append(family)
                current = family
            float(line.rsplit(" ", 1)[1])  # value must parse
        return families_seen

    def test_seeded_exposition_passes_lint(self, tb):
        self._lint(to_prometheus(tb.trace.metrics))

    def test_ns_series_get_unit_suffixed_seconds_twins(self):
        reg = MetricsRegistry()
        reg.gauge("migration.downtime_ns").set(2_500_000_000)
        reg.counter("wire.total_bytes", channel="tls").inc(4096)
        h = reg.histogram("queue.wait_ns", buckets=(1_000_000_000,))
        h.observe(500_000_000)
        text = to_prometheus(reg)
        families = self._lint(text)
        assert "migration_downtime_seconds" in families
        assert "queue_wait_seconds" in families
        assert "migration_downtime_seconds 2.5" in text
        # Bucket bounds convert with the values.
        assert 'queue_wait_seconds_bucket{le="1.0"} 1' in text
        assert "queue_wait_seconds_sum 0.5" in text
        # _bytes names are already unit-suffixed: no twin, no rename.
        assert "wire_total_bytes" in families
        assert "wire_total_bytes_seconds" not in text

    def test_derived_families_do_not_shadow_base_series(self, tb):
        text = to_prometheus(tb.trace.metrics)
        downtime = tb.trace.metrics.value("migration.downtime_ns")
        assert f"migration_downtime_ns {downtime}" in text
        assert f"migration_downtime_seconds {downtime / 1e9}" in text
