"""Fleet runner: determinism, admission model, SLO wiring, ratchet file."""

import json

import pytest

from repro.fleet import FleetConfig, FleetRunner, write_fleet_bench

MS = 1_000_000


def _report(**overrides):
    config = dict(n=4, seeds=(1, 2), max_inflight=2)
    config.update(overrides)
    return FleetRunner(FleetConfig(**config)).run()


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FleetConfig(n=0)
        with pytest.raises(ValueError):
            FleetConfig(seeds=())
        with pytest.raises(ValueError):
            FleetConfig(max_inflight=0)
        with pytest.raises(ValueError):
            FleetConfig(hops=0)

    def test_seeds_cycle_and_derive_per_migration(self):
        config = FleetConfig(n=4, seeds=(1, 2))
        assert config.seed_for(0) == "1/mig0000"
        assert config.seed_for(1) == "2/mig0001"
        assert config.seed_for(2) == "1/mig0002"
        assert config.mig_id(3) == "mig0003-s2"

    def test_fault_cadence(self):
        config = FleetConfig(n=6, fault_every=3)
        assert [config.faulted(i) for i in range(6)] == [
            True, False, False, True, False, False,
        ]

    def test_series_key_encodes_the_configuration(self):
        assert FleetConfig(n=64, seeds=(1, 2)).series_key() == "n64_seeds1-2_inflight8"
        assert "fault4" in FleetConfig(n=8, fault_every=4).series_key()
        assert "hops3" in FleetConfig(n=8, hops=3).series_key()


class TestAdmission:
    def test_slots_bound_concurrency_on_the_fleet_timeline(self):
        report = _report(n=4, max_inflight=2)
        starts = [r.start_ns for r in report.records]
        # First two migrations admitted immediately; the rest wait for a slot.
        assert starts[0] == 0 and starts[1] == 0
        assert starts[2] == min(report.records[0].end_ns, report.records[1].end_ns)
        # At no instant do more than two intervals overlap.
        for t in sorted({r.start_ns for r in report.records}):
            inflight = sum(
                1 for r in report.records if r.start_ns <= t < r.end_ns
            )
            assert inflight <= 2
        assert report.makespan_ns == max(r.end_ns for r in report.records)
        assert report.migrations_per_sec > 0

    def test_every_migration_carries_its_own_virtual_duration(self):
        report = _report(n=2, max_inflight=1)
        for record in report.records:
            assert record.end_ns - record.start_ns == record.duration_ns
            assert record.duration_ns > 50 * MS


class TestDeterminism:
    def test_same_config_gives_byte_identical_reports(self):
        a = _report(n=3, fault_every=3)
        b = _report(n=3, fault_every=3)
        assert json.dumps(a.as_dict(), sort_keys=True) == json.dumps(
            b.as_dict(), sort_keys=True
        )

    def test_same_config_gives_byte_identical_bench_files(self, tmp_path):
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        path_a = write_fleet_bench(_report(n=3), bench_dir=str(dir_a))
        path_b = write_fleet_bench(_report(n=3), bench_dir=str(dir_b))
        assert path_a and path_b
        assert open(path_a, "rb").read() == open(path_b, "rb").read()

    def test_bench_write_merges_series(self, tmp_path):
        write_fleet_bench(_report(n=2), bench_dir=str(tmp_path))
        write_fleet_bench(_report(n=3, seeds=(5,)), bench_dir=str(tmp_path))
        with open(tmp_path / "BENCH_fleet.json", "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert set(payload) == {"n2_seeds1-2_inflight2", "n3_seeds5_inflight2"}
        for series in payload.values():
            assert set(series) == {
                "makespan_ns",
                "ns_per_migration",
                "downtime_p50_ns",
                "downtime_p99_ns",
            }

    def test_bench_write_without_a_directory_is_a_no_op(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_DIR", raising=False)
        assert write_fleet_bench(_report(n=2)) is None


class TestSloPlane:
    def test_clean_fleet_stays_green(self):
        report = _report(n=3, fault_every=0)
        assert report.slo.active_alerts() == []
        assert report.failed == 0
        assert all(r.downtime_ns is not None and r.downtime_ns < 30 * MS
                   for r in report.records)

    def test_faulted_fleet_fires_downtime_burn_alert(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        report = _report(n=3, fault_every=3)
        fired = [v for v in report.slo.fired() if v.objective == "downtime-budget"]
        assert fired, "the delayed checkpoint must burn the downtime budget"
        assert fired[0].source == "mig0000-s1"
        # The faulted migration's record carries the alert transition...
        assert any(
            a.startswith("downtime-budget/") for a in report.records[0].alerts
        )
        # ...and its flight recorder dumped it under the mig-id namespace.
        assert sorted(tmp_path.glob("flight-mig0000-s1-*-slo-violation.json"))

    def test_downtime_sketch_covers_every_migration(self):
        report = _report(n=4)
        assert report.downtime_sketch.count == 4
        assert 25 * MS < report.downtime_sketch.p50 < 32 * MS

    def test_failed_migrations_feed_the_refusal_objective(self):
        report = _report(n=2, seeds=(9,), fault_every=1,
                         fault_spec="drop:checkpoint:1")
        assert report.failed == 2
        assert all(r.status == "failed" for r in report.records)
        fired = [v for v in report.slo.fired() if v.objective == "refusal-rate"]
        assert fired

    def test_otlp_artifacts_are_present(self):
        report = _report(n=2)
        assert report.otlp_traces_sample is not None
        assert report.otlp_traces_sample["resourceSpans"]
        metrics_doc = report.otlp_metrics()
        point = metrics_doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"][0]
        assert point["name"] == "fleet.downtime_ns"
        assert int(point["histogram"]["dataPoints"][0]["count"]) == 2


class TestChainIntegration:
    def test_hops_drive_a_chain_per_migration(self):
        report = _report(n=2, max_inflight=1, hops=3)
        assert report.failed == 0
        # Every hop contributes one downtime sample to the fleet sketch.
        assert report.downtime_sketch.count == 6
        for record in report.records:
            assert record.outcome == "migrated"


class TestContention:
    """The per-host resource model folded into the fleet timeline."""

    def _contended(self, **overrides):
        config = dict(n=8, seeds=(1, 2), max_inflight=8, hosts=2)
        config.update(overrides)
        return FleetRunner(FleetConfig(**config)).run()

    def test_hosts_config_validates(self):
        with pytest.raises(ValueError):
            FleetConfig(hosts=-1)
        with pytest.raises(ValueError):
            FleetConfig(hosts=2, epc_per_host=0)
        with pytest.raises(ValueError):
            FleetConfig(hosts=2, bw_per_host=0)

    def test_series_key_carries_the_host_shape(self):
        config = FleetConfig(n=4, hosts=2, epc_per_host=16, bw_per_host=1000)
        assert config.series_key().endswith("_hosts2_epc16_bw1000")

    def test_oversubscription_produces_typed_nonzero_queueing(self):
        report = self._contended()
        assert report.total_queued_ns > 0
        kinds_seen = {
            kind
            for record in report.records
            for kind, ns, _ in record.waits
            if ns > 0
        }
        assert kinds_seen, "an oversubscribed fleet must queue"
        for record in report.records:
            # Conservation: wall ≡ running + Σ typed waits, per record.
            assert record.wall_ns == record.duration_ns + record.queued_ns

    def test_without_hosts_nothing_changes(self):
        report = _report(n=3)
        assert report.host_model is None
        assert report.total_queued_ns == 0
        assert all(not r.waits for r in report.records)
        assert report.contention_payload() == {}

    def test_capacity_is_never_exceeded(self):
        report = self._contended(n=10)
        for util in report.host_utilization:
            assert util.peak <= util.capacity

    def test_waits_surface_as_run_scope_metrics(self):
        report = self._contended()
        queued = [r for r in report.records if r.queued_ns > 0]
        assert queued
        # The injected run-delta keys flow into the SLO engine's window
        # history via ingest_run; check the record side here.
        for record in queued:
            assert record.wall_ns > record.duration_ns

    def test_top_spans_captured_for_blame(self):
        report = self._contended(n=4)
        ok = [r for r in report.records if r.status == "ok"]
        assert ok
        for record in ok:
            assert record.top_spans
            assert all({"name", "duration_ns"} <= set(s) for s in record.top_spans)
        assert set(report.inner_paths) == {r.mig_id for r in ok}

    def test_contended_runs_are_byte_identical(self):
        a = self._contended(n=6)
        b = self._contended(n=6)
        assert json.dumps(a.as_dict(), sort_keys=True) == json.dumps(
            b.as_dict(), sort_keys=True
        )

    def test_contention_bench_is_byte_identical(self, tmp_path):
        from repro.fleet import write_contention_bench

        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        path_a = write_contention_bench(self._contended(n=6), bench_dir=str(dir_a))
        path_b = write_contention_bench(self._contended(n=6), bench_dir=str(dir_b))
        assert path_a and path_a.endswith("BENCH_fleet_contention.json")
        assert open(path_a, "rb").read() == open(path_b, "rb").read()
        with open(path_a, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        series = payload["n6_seeds1-2_inflight8_hosts2_epc32_bw1048576"]
        assert series["queueing_p99_ns"] > 0
        assert 0 < series["epc_util_pct"] <= 100
        assert 0 < series["bw_util_pct"] <= 100

    def test_contention_bench_without_hosts_is_a_no_op(self, tmp_path):
        from repro.fleet import write_contention_bench

        assert write_contention_bench(_report(n=2), bench_dir=str(tmp_path)) is None

    def test_otlp_carries_queueing_and_utilization(self):
        report = self._contended(n=6)
        metrics = report.otlp_metrics()["resourceMetrics"][0]["scopeMetrics"][0][
            "metrics"
        ]
        names = [m["name"] for m in metrics]
        assert "fleet.queued_ns" in names
        assert "fleet.host.epc_used" in names
        assert "fleet.host.bandwidth_used" in names
        gauge = next(m for m in metrics if m["name"] == "fleet.host.epc_used")
        assert gauge["gauge"]["dataPoints"], "utilization timeline exports points"
