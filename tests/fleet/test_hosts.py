"""Per-host resource model: typed queues, conservation, capacity."""

import pytest

from repro.errors import InvariantViolation
from repro.fleet.hosts import Admission, HostModel, HostSpec
from repro.telemetry.waitstate import (
    WAIT_ADMISSION,
    WAIT_BANDWIDTH,
    WAIT_EPC,
    verify_conservation,
)

MB = 1024 * 1024


def _admit(model, index, duration=100, bytes_moved=8192, slot_free=0, arrival=0):
    return model.admit(
        index,
        arrival_ns=arrival,
        slot_free_ns=slot_free,
        duration_ns=duration,
        bytes_moved=bytes_moved,
    )


class TestSpec:
    def test_spec_validates(self):
        with pytest.raises(ValueError):
            HostSpec(0)
        with pytest.raises(ValueError):
            HostSpec(2, epc_pages=0)
        with pytest.raises(ValueError):
            HostSpec(2, bw_bytes_per_sec=0)

    def test_placement_is_round_robin(self):
        model = HostModel(HostSpec(3))
        assert model.place(0) == (0, 1)
        assert model.place(2) == (2, 0)
        assert model.place(3) == (0, 1)


class TestAdmission:
    def test_uncontended_migration_starts_immediately(self):
        model = HostModel(HostSpec(2, epc_pages=64, bw_bytes_per_sec=100 * MB))
        adm = _admit(model, 0)
        assert adm.start_ns == 0
        assert adm.queued_ns == 0
        assert all(ns == 0 for _, ns, _ in adm.waits)

    def test_epc_oversubscription_queues_typed(self):
        # 2 pages per host; each migration needs 2 → strict serialization
        # on the shared target host.
        model = HostModel(HostSpec(1, epc_pages=2, bw_bytes_per_sec=100 * MB))
        a = _admit(model, 0, duration=100, bytes_moved=2 * 4096)
        b = _admit(model, 1, duration=100, bytes_moved=2 * 4096)
        assert a.start_ns == 0
        assert b.start_ns == 100  # waits for a's pages to free
        waits = dict((k, ns) for k, ns, _ in b.waits)
        assert waits[WAIT_EPC] == 100
        assert waits[WAIT_ADMISSION] == 0
        assert waits[WAIT_BANDWIDTH] == 0

    def test_bandwidth_oversubscription_queues_typed(self):
        # Plenty of EPC, but the NIC carries one stream at a time:
        # 8192 bytes over 100ns → rate far above 1 MB/s cap → clamped to
        # capacity, so two streams cannot overlap.
        model = HostModel(HostSpec(1, epc_pages=64, bw_bytes_per_sec=1 * MB))
        a = _admit(model, 0)
        b = _admit(model, 1)
        assert b.start_ns == 100
        waits = dict((k, ns) for k, ns, _ in b.waits)
        assert waits[WAIT_BANDWIDTH] == 100
        assert waits[WAIT_EPC] == 0

    def test_slot_wait_is_admission_typed(self):
        model = HostModel(HostSpec(2, epc_pages=64, bw_bytes_per_sec=100 * MB))
        adm = _admit(model, 0, slot_free=40)
        assert adm.start_ns == 40
        waits = dict((k, ns) for k, ns, _ in adm.waits)
        assert waits[WAIT_ADMISSION] == 40

    def test_start_is_arrival_plus_typed_waits(self):
        # Conservation by construction, across a mixed contention pile.
        model = HostModel(HostSpec(2, epc_pages=4, bw_bytes_per_sec=1 * MB))
        for i in range(8):
            adm = _admit(model, i, duration=50 + i, bytes_moved=3 * 4096,
                         slot_free=5 * i)
            assert adm.start_ns == 0 + adm.queued_ns
            profile = model.profile(f"mig{i}", adm, arrival_ns=0)
            verify_conservation(profile)  # raises on any gap

    def test_demand_is_clamped_to_capacity(self):
        # A migration needing more pages than any host owns still runs —
        # alone — instead of deadlocking.
        model = HostModel(HostSpec(1, epc_pages=4, bw_bytes_per_sec=1 * MB))
        adm = _admit(model, 0, bytes_moved=100 * 4096)
        assert adm.epc_pages == 4
        assert adm.start_ns == 0

    def test_admissions_are_recorded(self):
        model = HostModel(HostSpec(2))
        _admit(model, 0)
        _admit(model, 1)
        assert [a.index for a in model.admissions] == [0, 1]
        assert all(isinstance(a, Admission) for a in model.admissions)


class TestUtilization:
    def test_peak_and_mean_usage(self):
        second = 1_000_000_000
        model = HostModel(HostSpec(1, epc_pages=8, bw_bytes_per_sec=100 * MB))
        # 2 pages each over 1s → ~8 KB/s streams: far under the NIC, so
        # the two migrations overlap and only EPC stacks up.
        _admit(model, 0, duration=second, bytes_moved=2 * 4096)
        _admit(model, 1, duration=second, bytes_moved=2 * 4096)
        utils = {u.resource: u for u in model.utilization(2 * second)}
        epc = utils["epc"]
        assert epc.peak == 4
        # 4 pages busy for 1s of a 2s window → mean 2 pages.
        assert epc.mean == pytest.approx(2.0)
        assert epc.peak_pct == pytest.approx(50.0)

    def test_capacity_invariant_holds_after_runs(self):
        model = HostModel(HostSpec(2, epc_pages=4, bw_bytes_per_sec=1 * MB))
        for i in range(6):
            _admit(model, i, duration=100, bytes_moved=3 * 4096)
        end = max(a.end_ns for a in model.admissions)
        model.check_capacity(end)  # must not raise

    def test_capacity_breach_raises(self):
        model = HostModel(HostSpec(1, epc_pages=4))
        # Forge an impossible reservation behind the scheduler's back.
        model._epc[0].reserve(0, 100, 10)
        with pytest.raises(InvariantViolation, match="exceeds capacity"):
            model.check_capacity(100)


class TestHeatmap:
    def test_heatmap_is_deterministic_text(self):
        def build():
            model = HostModel(HostSpec(2, epc_pages=4, bw_bytes_per_sec=1 * MB))
            for i in range(5):
                _admit(model, i, duration=100, bytes_moved=2 * 4096)
            return model.heatmap(max(a.end_ns for a in model.admissions))

        first, second = build(), build()
        assert first == second
        lines = first.splitlines()
        assert len(lines) == 1 + 2 * 2  # header + hosts x resources
        assert "host-00 epc" in first and "host-01 bandwidth" in first

    def test_idle_fleet_renders_blank_cells(self):
        model = HostModel(HostSpec(1))
        text = model.heatmap(1000)
        row = text.splitlines()[1]
        cells = row.split("|")[1]
        assert set(cells) == {" "}
