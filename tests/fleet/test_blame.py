"""Straggler detection and contention blame on oversubscribed fleets."""

from repro.fleet import FleetConfig, FleetRunner, blame_report


def _contended_report(**overrides):
    config = dict(n=10, seeds=(1, 2), max_inflight=8, hosts=2)
    config.update(overrides)
    return FleetRunner(FleetConfig(**config)).run()


class TestDetection:
    def test_oversubscribed_fleet_produces_stragglers(self):
        report = _contended_report()
        blame = blame_report(report)
        assert blame.stragglers, "a queued fleet must have tail outliers"
        # Ranked by excess, worst first.
        excesses = [s.excess_ns for s in blame.stragglers]
        assert excesses == sorted(excesses, reverse=True)

    def test_uncontended_fleet_has_no_stragglers(self):
        report = _contended_report(
            n=4, hosts=4, epc_per_host=1024, bw_per_host=1024 * 1024 * 1024
        )
        blame = blame_report(report)
        assert not blame.stragglers
        assert "evenly paced" in blame.render_text()

    def test_attribution_covers_at_least_95_pct_of_excess(self):
        # The acceptance bar: every straggler's excess wall time lands
        # on typed wait states or its own critical-path spans.
        report = _contended_report()
        blame = blame_report(report)
        assert blame.min_attributed_pct >= 95.0
        for straggler in blame.stragglers:
            assert straggler.attributed_pct >= 95.0
            assert straggler.causes, "every straggler gets ranked causes"


class TestCauses:
    def test_causes_are_typed_waits_or_spans(self):
        report = _contended_report()
        blame = blame_report(report)
        for straggler in blame.stragglers:
            for cause in straggler.causes:
                assert cause.kind in ("wait", "span")
                if cause.kind == "wait":
                    assert cause.name.startswith("wait/")

    def test_cause_shares_sum_to_100_pct(self):
        report = _contended_report()
        blame = blame_report(report)
        for straggler in blame.stragglers:
            total = sum(c.share_pct for c in straggler.causes)
            assert 99.0 <= total <= 100.5  # integer-division slack only

    def test_folded_critical_path_blames_waits_like_spans(self):
        report = _contended_report()
        blame = blame_report(report)
        worst = blame.stragglers[0]
        path = worst.critical_path
        assert path is not None
        assert path.attributed_ns == path.total_ns == worst.wall_ns
        assert any(path.blames(c.name) for c in worst.causes if c.kind == "wait")
        # The migration's own protocol spans are in the same report.
        assert path.blames("migration.run") or path.blames("migration.step")

    def test_queue_totals_rank_the_busiest_queues(self):
        report = _contended_report()
        blame = blame_report(report)
        totals = blame.queue_totals
        assert totals
        values = [ns for _, ns in totals]
        assert values == sorted(values, reverse=True)
        assert sum(values) == report.total_queued_ns


class TestDeterminism:
    def test_blame_report_is_byte_identical_across_runs(self):
        texts = []
        jsons = []
        for _ in range(2):
            report = _contended_report(n=6)
            blame = blame_report(report)
            texts.append(blame.render_text())
            jsons.append(blame.as_dict())
        assert texts[0] == texts[1]
        assert jsons[0] == jsons[1]
