"""Fleet console: status grid, live frames, deterministic snapshots."""

import io

from repro.fleet import FleetConfig, FleetConsole, FleetRunner


def _run(console=None, **overrides):
    config = dict(n=4, seeds=(1, 2), max_inflight=2)
    config.update(overrides)
    runner = FleetRunner(
        FleetConfig(**config),
        on_record=console.on_record if console else None,
    )
    return runner.run()


class TestGrid:
    def test_cells_track_migration_outcomes(self):
        console = FleetConsole(n=4)
        _run(console, n=4, fault_every=3)
        # Index 0 is faulted (delayed checkpoint): it completes but fires
        # the downtime SLO, so it renders as an alert cell.  Index 3 is
        # also faulted, but the alert is already firing (hysteresis), so
        # it renders as a plain faulted-ok cell.
        grid_line = console.render(final=True).splitlines()[1]
        assert grid_line == "  !##+"

    def test_failed_migrations_render_as_x(self):
        console = FleetConsole(n=2)
        _run(console, n=2, seeds=(9,), fault_every=1,
             fault_spec="drop:checkpoint:1")
        grid_line = console.render(final=True).splitlines()[1]
        assert grid_line == "  XX"

    def test_pending_cells_before_any_record(self):
        console = FleetConsole(n=3)
        assert console.render().splitlines()[1] == "  ..."


class TestFrames:
    def test_live_frames_are_emitted_on_cadence(self):
        stream = io.StringIO()
        console = FleetConsole(n=4, stream=stream, frame_every=2)
        _run(console, n=4)
        assert console.frames_emitted == 2
        out = stream.getvalue()
        assert "--- frame 1 ---" in out
        assert "--- frame 2 ---" in out
        assert "fleet: 2/4 done" in out
        assert "fleet: 4/4 done" in out
        # Live frames carry the tail line; the admission model keeps the
        # inflight count visible mid-run.
        assert "last: mig000" in out
        assert "| inflight" in out

    def test_no_stream_means_no_frames(self):
        console = FleetConsole(n=2, frame_every=1)
        _run(console, n=2)
        assert console.frames_emitted == 0


class TestSnapshot:
    def test_final_snapshot_is_deterministic(self):
        snaps = []
        for _ in range(2):
            console = FleetConsole(n=3)
            report = _run(console, n=3, fault_every=3)
            snaps.append(console.snapshot(report))
        assert snaps[0] == snaps[1]

    def test_final_snapshot_summarises_the_fleet(self):
        console = FleetConsole(n=3)
        _run(console, n=3)
        snap = console.snapshot()
        assert snap.startswith("fleet: 3/3 done (0 failed, 0 faulted)")
        assert "downtime: p50 " in snap
        assert "alerts: none" in snap
        assert "throughput: " in snap
        assert snap.endswith("migrations/sec over 3 runs\n")
        # Final frames omit the live-only lines.
        assert "last:" not in snap
        assert "inflight" not in snap

    def test_firing_alerts_survive_into_the_snapshot(self):
        console = FleetConsole(n=3)
        _run(console, n=3, fault_every=1)
        snap = console.snapshot()
        assert "downtime-budget/" in snap
        assert "FIRING" in snap

    def test_grid_wraps_at_width(self):
        console = FleetConsole(n=130)
        lines = console.render().splitlines()
        assert lines[1] == "  " + "." * 64
        assert lines[2] == "  " + "." * 64
        assert lines[3] == "  " + "." * 2
