"""Virtualization stack: KVM-like hypervisor and QEMU-like monitor.

Models the pieces of §VI-A the migration path runs through: EPC
virtualization with on-demand mapping and overcommit, VMExit handling
with the Enclave Interruption bit, the upcall that tells a guest to
prepare its enclaves, the hypercall with which the guest reports
readiness, and the pre-copy live-migration loop whose total time,
downtime and transferred bytes are what Figures 10(b)-(d) measure.
"""

from repro.hypervisor.ept import Ept
from repro.hypervisor.kvm import Hypervisor
from repro.hypervisor.qemu import MigrationReport, QemuMonitor
from repro.hypervisor.vepc import VirtualEpc
from repro.hypervisor.vm import GuestMemoryModel, Vm
from repro.hypervisor.vmcs import ExitReason, Vmcs

__all__ = [
    "Ept",
    "ExitReason",
    "GuestMemoryModel",
    "Hypervisor",
    "MigrationReport",
    "QemuMonitor",
    "VirtualEpc",
    "Vm",
    "Vmcs",
]
