"""Extended Page Tables for the guest's virtual-EPC region.

"the hypervisor only maps part of this region to real EPC and leaves the
remaining part unmapped ... If the fault address is located in the virtual
EPC of guest VM, the hypervisor will allocate a physical EPC page and fill
the corresponding EPT entry" (§VI-A).  Ordinary guest RAM is modelled
statistically elsewhere; the EPT here tracks only the vEPC mappings, which
is the part SGX virtualization actually adds.
"""

from __future__ import annotations

from repro.errors import EptViolation
from repro.sgx.structures import PAGE_SIZE


class Ept:
    """Guest-physical to host-EPC mapping for one VM's vEPC region."""

    def __init__(self, vepc_base_gpa: int, vepc_pages: int) -> None:
        self.vepc_base_gpa = vepc_base_gpa
        self.vepc_pages = vepc_pages
        self._map: dict[int, int] = {}  # gpa page number -> physical EPC index
        self.violations = 0

    def _page_number(self, gpa: int) -> int:
        if gpa % PAGE_SIZE:
            raise EptViolation(f"unaligned guest-physical address 0x{gpa:x}")
        number = (gpa - self.vepc_base_gpa) // PAGE_SIZE
        if not 0 <= number < self.vepc_pages:
            raise EptViolation(f"0x{gpa:x} is outside the vEPC region")
        return number

    def in_vepc(self, gpa: int) -> bool:
        return (
            gpa % PAGE_SIZE == 0
            and self.vepc_base_gpa <= gpa < self.vepc_base_gpa + self.vepc_pages * PAGE_SIZE
        )

    def translate(self, gpa: int) -> int:
        """Translate a vEPC guest-physical page; raise on unmapped (fault)."""
        number = self._page_number(gpa)
        if number not in self._map:
            self.violations += 1
            raise EptViolation(f"vEPC page 0x{gpa:x} is not mapped")
        return self._map[number]

    def is_mapped(self, gpa: int) -> bool:
        return self._page_number(gpa) in self._map

    def map(self, gpa: int, epc_index: int) -> None:
        self._map[self._page_number(gpa)] = epc_index

    def unmap(self, gpa: int) -> int:
        """Clear one mapping (hypervisor-side EPC revocation path)."""
        number = self._page_number(gpa)
        if number not in self._map:
            raise EptViolation(f"vEPC page 0x{gpa:x} is not mapped")
        return self._map.pop(number)

    @property
    def mapped_count(self) -> int:
        return len(self._map)
