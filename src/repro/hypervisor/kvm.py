"""The KVM-model hypervisor.

Owns the physical EPC on behalf of its VMs, implements the §VI-A pieces —
EPC discovery hypercalls, on-demand vEPC mapping, VMExit-inside-enclave
dispatch — and the migration plumbing of §VI-D: the upcall that tells the
guest OS to prepare its enclaves (step ②) and the hypercall with which
the guest reports that every enclave is ready (step ⑥).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import HypervisorError
from repro.hypervisor.vepc import VirtualEpc
from repro.hypervisor.vm import GuestMemoryModel, Vm
from repro.hypervisor.vmcs import ExitReason
from repro.sgx.cpu import SgxCpu
from repro.sgx.structures import PAGE_SIZE
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.trace import EventTrace

#: Where each VM sees its vEPC region in guest-physical space.
VEPC_BASE_GPA = 0x8000_0000


class Hypervisor:
    """One host's hypervisor instance."""

    def __init__(
        self,
        clock: VirtualClock,
        costs: CostModel,
        trace: EventTrace,
        cpu: SgxCpu,
    ) -> None:
        self.clock = clock
        self.costs = costs
        self.trace = trace
        self.cpu = cpu
        self.vms: dict[str, Vm] = {}
        self._migration_ready: dict[str, bool] = {}

    # ------------------------------------------------------------- lifecycle
    def create_vm(
        self,
        name: str,
        n_vcpus: int = 4,
        memory_mb: int = 2048,
        vepc_pages: int = 1024,
        working_set_pages: int | None = None,
        dirty_rate_pps: int = 2_000,
        premapped_fraction: float = 0.5,
    ) -> Vm:
        """Create a VM with a reserved (partially mapped) vEPC region."""
        if name in self.vms:
            raise HypervisorError(f"VM {name!r} already exists")
        total_pages = memory_mb * 1024 * 1024 // PAGE_SIZE
        memory = GuestMemoryModel(
            total_pages=total_pages,
            working_set_pages=working_set_pages if working_set_pages is not None else total_pages // 8,
            dirty_rate_pps=dirty_rate_pps,
        )
        vm = Vm(name=name, n_vcpus=n_vcpus, memory=memory)
        vm.vepc = VirtualEpc(
            base_gpa=VEPC_BASE_GPA,
            n_pages=vepc_pages,
            premapped_pages=int(vepc_pages * premapped_fraction),
            on_demand_map=lambda gpa, vm_name=name: self.handle_ept_violation(vm_name, gpa),
        )
        self.vms[name] = vm
        self._migration_ready[name] = False
        self.trace.emit("kvm", "create_vm", name=name, vcpus=n_vcpus, memory_mb=memory_mb)
        return vm

    def destroy_vm(self, name: str) -> None:
        if name not in self.vms:
            raise HypervisorError(f"no VM {name!r}")
        del self.vms[name]
        del self._migration_ready[name]

    # ------------------------------------------------------------- hypercalls
    def hc_get_epc_info(self, vm: Vm) -> tuple[int, int]:
        """Guest hypercall: learn the location and size of its vEPC."""
        self.clock.advance(self.costs.hypercall_ns)
        return vm.vepc.base_gpa, vm.vepc.n_pages

    def hc_migration_ready(self, vm: Vm) -> None:
        """Guest hypercall: every enclave has checkpointed (step ⑥)."""
        self.clock.advance(self.costs.hypercall_ns)
        self._migration_ready[vm.name] = True
        self.trace.emit("kvm", "migration_ready", vm=vm.name)

    def migration_ready(self, vm: Vm) -> bool:
        return self._migration_ready[vm.name]

    def reset_migration_state(self, vm: Vm) -> None:
        self._migration_ready[vm.name] = False

    # ------------------------------------------------------------- upcalls
    def upcall_migration_notify(self, vm: Vm) -> None:
        """Inject the special interrupt telling the guest to prepare (step ②)."""
        self.clock.advance(self.costs.upcall_ns)
        if vm.guest_os is None:
            raise HypervisorError(f"VM {vm.name!r} has no guest OS attached")
        self.trace.emit("kvm", "migration_notify", vm=vm.name)
        vm.guest_os.on_migration_notify()

    # ------------------------------------------------------------- exits
    def handle_ept_violation(self, vm_name: str, gpa: int) -> None:
        """On-demand vEPC mapping: allocate a physical page and map it."""
        vm = self.vms[vm_name]
        vmcs = vm.vmcs[0]
        vmcs.record_exit(ExitReason.EPT_VIOLATION, in_enclave=True, gpa=gpa)
        # Allocation from the physical EPC is modelled by the guest's own
        # SGX instructions; here we charge the exit round-trip and record
        # the mapping (we use the gpa page number as the physical handle).
        self.clock.advance(self.costs.hypercall_ns)
        vm.vepc.ept.map(gpa, (gpa - vm.vepc.base_gpa) // PAGE_SIZE)
        vmcs.clear_enclave_interruption()

    def reclaim_physical(self, requester: str) -> None:
        """Overcommit path: revoke one physical EPC page from a victim VM.

        "If the hypervisor has already used up all the physical EPC and
        receives a new request for EPC allocation, it will revoke some
        EPC resource from a chosen VM by evicting EPC pages and clearing
        the mappings in EPT" (§VI-A).  The victim's own driver performs
        the EWB (in reality hardware EWB driven by the hypervisor); the
        result is one free physical page for the requester.
        """
        if getattr(self, "_reclaiming", False):
            # Re-entered while a reclaim is already evicting (the victim's
            # EWB needed EPC itself): break the cycle, let the caller
            # fall back to self-eviction.
            raise HypervisorError("reclaim already in progress")
        victims = [
            vm for name, vm in self.vms.items()
            if name != requester and vm.guest_os is not None
        ]
        victims.sort(key=lambda vm: vm.vepc.used_pages, reverse=True)
        self._reclaiming = True
        try:
            for victim in victims:
                driver = victim.guest_os.driver
                try:
                    driver._evict_one()
                except Exception:
                    continue
                self.clock.advance(self.costs.hypercall_ns)
                self.trace.emit(
                    "kvm", "epc_reclaim", victim=victim.name, requester=requester
                )
                return
        finally:
            self._reclaiming = False
        raise HypervisorError("physical EPC exhausted and no victim VM can yield a page")

    def handle_vmexit(
        self,
        vm: Vm,
        reason: ExitReason,
        in_enclave: bool,
        handler: Callable[[], None] | None = None,
        **qualification,
    ) -> None:
        """Generic VMExit path with Enclave Interruption bookkeeping.

        "For other events such as illegal instruction and timer interrupt,
        currently we clear the bit in EXIT_REASON field and then reuse the
        original handlers" (§VI-A).
        """
        vmcs = vm.vmcs[0]
        vmcs.record_exit(reason, in_enclave, **qualification)
        self.clock.advance(self.costs.hypercall_ns)
        if vmcs.enclave_interruption and reason is not ExitReason.EPT_VIOLATION:
            vmcs.clear_enclave_interruption()
        if handler is not None:
            handler()
