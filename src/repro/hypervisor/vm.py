"""The virtual machine object and its statistical memory model.

Enclave memory is modelled byte-for-byte (it is what the paper protects);
ordinary guest RAM is modelled *statistically* — page counts, a working
set and a dirtying rate — which is all pre-copy migration needs to
reproduce the total-time / downtime / transferred-bytes behaviour of
Figures 10(b)-(d).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hypervisor.vmcs import Vmcs
from repro.sgx.structures import PAGE_SIZE


@dataclass
class GuestMemoryModel:
    """Dirty-page dynamics of one VM's RAM.

    ``working_set_pages`` bounds how many distinct pages can be dirty at
    once; ``dirty_rate_pps`` is how fast the workload re-dirties pages.
    Both are deterministic so migration runs are reproducible.
    """

    total_pages: int
    working_set_pages: int
    dirty_rate_pps: int
    #: Pages with real content.  QEMU's zero-page detection skips the
    #: rest, which is why the paper transfers ~1 GB of a 2 GB VM.
    used_pages: int | None = None
    dirty_pages: int = 0
    #: Extra bytes parked in RAM by the migration path itself (enclave
    #: checkpoints, guest-OS enclave records) — transferred exactly once.
    extra_bytes: int = 0

    def __post_init__(self) -> None:
        if self.used_pages is None:
            self.used_pages = self.total_pages // 2
        if self.working_set_pages > self.total_pages:
            raise ValueError("working set cannot exceed total memory")
        if self.used_pages > self.total_pages:
            raise ValueError("used pages cannot exceed total memory")
        self.working_set_pages = min(self.working_set_pages, self.used_pages)
        # Before the first pre-copy pass every used page must be sent.
        self.dirty_pages = self.used_pages

    @property
    def total_bytes(self) -> int:
        return self.total_pages * PAGE_SIZE

    def advance(self, dt_ns: int) -> None:
        """Account for ``dt_ns`` of guest execution dirtying pages."""
        newly = int(self.dirty_rate_pps * dt_ns / 1_000_000_000)
        self.dirty_pages = min(self.working_set_pages, self.dirty_pages + newly)

    def take_dirty(self) -> int:
        """Atomically claim the current dirty set for transfer."""
        claimed = self.dirty_pages
        self.dirty_pages = 0
        return claimed

    def park_extra_bytes(self, n: int) -> None:
        self.extra_bytes += n


@dataclass
class Vm:
    """One guest VM: VCPUs, RAM model, virtual EPC, and (later) a guest OS."""

    name: str
    n_vcpus: int
    memory: GuestMemoryModel
    vmcs: list[Vmcs] = field(default_factory=list)
    vepc: object = None          # VirtualEpc, attached by the hypervisor
    guest_os: object = None      # GuestOs, attached by the guest boot path
    paused: bool = False

    def __post_init__(self) -> None:
        self.vmcs = [Vmcs(vcpu_id=i) for i in range(self.n_vcpus)]

    def pause(self) -> None:
        self.paused = True

    def resume(self) -> None:
        self.paused = False
