"""QEMU-model monitor: pre-copy live migration.

Implements the classic iterative pre-copy loop (Clark et al., NSDI'05 —
the paper's baseline mechanism) over the statistical RAM model, with the
enclave hooks of §VI-D spliced in where the paper puts them:

* ``prepare_hook`` runs first (steps ①-⑥: notify guest, control threads
  generate checkpoints into normal RAM, guest hypercalls ready);
* pre-copy rounds then transfer RAM (including parked checkpoints);
* stop-and-copy pauses the VM and sends the residual dirty set;
* ``restore_hook`` rebuilds and restores enclaves on the target.

The report's total time / downtime / transferred bytes are exactly the
quantities of Figures 10(b)-(d); per the paper, two-phase checkpointing
time is *counted into the downtime* even though non-enclave applications
keep running while checkpoints are generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import HypervisorError
from repro.hypervisor.kvm import Hypervisor
from repro.hypervisor.vm import Vm
from repro.sgx.structures import PAGE_SIZE
from repro.sim.clock import NS_PER_MS
from repro.telemetry.spans import maybe_span

#: CPU/device state shipped during stop-and-copy.
_VCPU_STATE_BYTES = 64 * 1024


@dataclass(frozen=True)
class MigrationReport:
    """What one live migration cost."""

    total_ns: int
    downtime_ns: int
    transferred_bytes: int
    precopy_rounds: int
    prep_ns: int
    restore_ns: int

    @property
    def total_ms(self) -> float:
        return self.total_ns / NS_PER_MS

    @property
    def downtime_ms(self) -> float:
        return self.downtime_ns / NS_PER_MS

    @property
    def transferred_mb(self) -> float:
        return self.transferred_bytes / (1024 * 1024)


class QemuMonitor:
    """The per-host QEMU process pair's monitor interface."""

    def __init__(self, hypervisor: Hypervisor) -> None:
        self.hypervisor = hypervisor
        self.clock = hypervisor.clock
        self.costs = hypervisor.costs
        self.trace = hypervisor.trace

    def _transfer(self, n_bytes: int) -> int:
        """Ship bytes to the target host; returns the elapsed ns."""
        dt = self.costs.net_transfer_ns(n_bytes)
        self.clock.advance(dt)
        return dt

    def _delta_wire_bytes(self, n_pages: int) -> int:
        """Wire cost of ``n_pages`` re-dirtied pages sent as deltas.

        Every page reaching rounds >= 2 (and the stop-and-copy residual)
        was already shipped in full during round 1, so the target holds a
        base copy to patch: the sender transmits an XOR+RLE delta plus a
        small per-page header instead of the whole 4 KB.
        """
        per_page = int(PAGE_SIZE * self.costs.precopy_delta_ratio)
        return n_pages * (per_page + self.costs.delta_page_header_bytes)

    def migrate(
        self,
        vm: Vm,
        prepare_hook: Callable[[], int | None] | None = None,
        restore_hook: Callable[[], None] | None = None,
        downtime_target_bytes: int = 256 * 1024,
        max_rounds: int = 16,
        delta_encoding: bool = True,
    ) -> MigrationReport:
        """Live-migrate ``vm`` to the target host (shared storage model).

        ``delta_encoding`` sends re-dirtied pages (rounds >= 2 and the
        stop-and-copy residual) as deltas against the target's base copy
        instead of full pages; disable it to reproduce the classic
        full-page pre-copy loop.
        """
        if vm.paused:
            raise HypervisorError("cannot migrate a paused VM")
        start_ns = self.clock.now_ns
        transferred = 0

        # Steps ①-⑥: guest prepares enclaves; checkpoints land in RAM.
        # A hook may return the number of ns that should count toward the
        # downtime (e.g. only the checkpointing window, not background
        # work like agent escrow which §VI-D allows "even before a
        # migration"); by default the whole preparation counts.
        prep_start = self.clock.now_ns
        downtime_prep_ns: int | None = None
        with maybe_span(self.trace, "vm.prepare", party="source", vm=vm.name):
            if prepare_hook is not None:
                self.hypervisor.reset_migration_state(vm)
                downtime_prep_ns = prepare_hook()
        prep_ns = self.clock.now_ns - prep_start
        if downtime_prep_ns is None:
            downtime_prep_ns = prep_ns

        # Iterative pre-copy.  The first pass sends all RAM plus whatever
        # the preparation parked there (enclave checkpoints, records).
        rounds = 0
        to_send_bytes = vm.memory.take_dirty() * PAGE_SIZE + vm.memory.extra_bytes
        while True:
            rounds += 1
            with maybe_span(
                self.trace,
                "vm.precopy.round",
                party="source",
                round=rounds,
                bytes=to_send_bytes,
            ):
                dt = self._transfer(to_send_bytes)
            transferred += to_send_bytes
            vm.memory.advance(dt)  # guest keeps dirtying during the copy
            pending_pages = vm.memory.dirty_pages
            if delta_encoding:
                # Re-dirtied pages would ship as deltas, so the stop
                # criterion compares their *wire* cost to the target.
                pending = self._delta_wire_bytes(pending_pages)
            else:
                pending = pending_pages * PAGE_SIZE
            if pending <= downtime_target_bytes or rounds >= max_rounds:
                break
            dirty = vm.memory.take_dirty()
            to_send_bytes = self._delta_wire_bytes(dirty) if delta_encoding else dirty * PAGE_SIZE

        # Stop-and-copy: pause, ship the residual dirty set + CPU state.
        vm.pause()
        stop_start = self.clock.now_ns
        with maybe_span(self.trace, "vm.stop_and_copy", party="source", vm=vm.name):
            residual_pages = vm.memory.take_dirty()
            residual_page_bytes = (
                self._delta_wire_bytes(residual_pages)
                if delta_encoding
                else residual_pages * PAGE_SIZE
            )
            residual = residual_page_bytes + _VCPU_STATE_BYTES
            self._transfer(residual)
            transferred += residual
        stop_ns = self.clock.now_ns - stop_start
        vm.resume()  # resumes on the target host

        # Enclave rebuild/restore on the target (outside the VM's downtime
        # for non-enclave applications, reported separately by Fig 10(a),
        # but still part of this migration's total time).
        restore_start = self.clock.now_ns
        with maybe_span(self.trace, "vm.restore", party="target", vm=vm.name):
            if restore_hook is not None:
                restore_hook()
        restore_ns = self.clock.now_ns - restore_start

        total_ns = self.clock.now_ns - start_ns
        # The paper counts two-phase checkpointing into the downtime.
        report = MigrationReport(
            total_ns=total_ns,
            downtime_ns=stop_ns + downtime_prep_ns,
            transferred_bytes=transferred,
            precopy_rounds=rounds,
            prep_ns=prep_ns,
            restore_ns=restore_ns,
        )
        metrics = self.trace.metrics
        metrics.gauge("migration.downtime_ns").set(report.downtime_ns)
        metrics.gauge("migration.total_ns").set(report.total_ns)
        metrics.gauge("migration.transferred_bytes").set(report.transferred_bytes)
        metrics.gauge("migration.precopy_rounds").set(rounds)
        metrics.counter("migration.completed_total").inc()
        self.trace.emit(
            "qemu",
            "migrated",
            vm=vm.name,
            total_ms=round(report.total_ms, 3),
            downtime_ms=round(report.downtime_ms, 3),
            transferred_mb=round(report.transferred_mb, 1),
            rounds=rounds,
        )
        return report
