"""Virtual EPC: the guest-visible window onto the physical EPC.

"When creating a guest VM, the hypervisor will first reserve a range of
guest physical address which will be used as the guest's EPC region later
... the hypervisor only maps part of this region to real EPC and leaves
the remaining part unmapped" (§VI-A).

The guest SGX driver allocates pages from here; going over the vEPC quota
raises :class:`SgxEpcExhausted`, which the *driver* resolves with its LRU
EWB eviction (§VI-B).  First touches of unmapped gpas go through the
hypervisor's EPT-violation path (on-demand mapping cost).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import SgxEpcExhausted, SgxInstructionFault
from repro.hypervisor.ept import Ept
from repro.sgx.structures import PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover
    pass


class VirtualEpc:
    """One VM's EPC quota and lazily mapped gpa space."""

    def __init__(
        self,
        base_gpa: int,
        n_pages: int,
        premapped_pages: int,
        on_demand_map: Callable[[int], None],
    ) -> None:
        self.base_gpa = base_gpa
        self.n_pages = n_pages
        self.ept = Ept(base_gpa, n_pages)
        self._on_demand_map = on_demand_map
        self._free = list(range(n_pages - 1, -1, -1))
        self._premapped = set(range(min(premapped_pages, n_pages)))

    # ------------------------------------------------------------- geometry
    @property
    def size_bytes(self) -> int:
        return self.n_pages * PAGE_SIZE

    @property
    def used_pages(self) -> int:
        return self.n_pages - len(self._free)

    def gpa_of(self, page_number: int) -> int:
        return self.base_gpa + page_number * PAGE_SIZE

    # ------------------------------------------------------------- allocation
    def alloc_page(self) -> int:
        """Claim one vEPC page; returns its gpa.

        Raises :class:`SgxEpcExhausted` when the quota is used up — the
        driver's cue to evict.  Touching a page the hypervisor has not
        mapped yet triggers the on-demand mapping callback (EPT violation
        handling, which charges its cost).
        """
        if not self._free:
            raise SgxEpcExhausted(
                f"vEPC quota exhausted ({self.n_pages} pages): guest must evict"
            )
        number = self._free.pop()
        if number not in self._premapped:
            self._on_demand_map(self.gpa_of(number))
            self._premapped.add(number)
        return self.gpa_of(number)

    def free_page(self, gpa: int) -> None:
        number = (gpa - self.base_gpa) // PAGE_SIZE
        if not 0 <= number < self.n_pages:
            raise SgxInstructionFault(f"0x{gpa:x} is outside the vEPC")
        self._free.append(number)
