"""Virtual Machine Control Structure, per VCPU.

"Once a VMExit event occurs when the CPU is running an enclave, the
hardware will set a bit, named 'Enclave Interruption' bit, in the Guest
Interruptibility State field of the VMCS as well as in the EXIT_REASON
field before delivering the VMExit to the hypervisor" (§VI-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class ExitReason(enum.Enum):
    EPT_VIOLATION = "ept-violation"
    EXTERNAL_INTERRUPT = "external-interrupt"
    ILLEGAL_INSTRUCTION = "illegal-instruction"
    HYPERCALL = "hypercall"

#: Bit set in EXIT_REASON when the VMExit interrupted enclave execution.
ENCLAVE_INTERRUPTION_BIT = 1 << 27


@dataclass
class Vmcs:
    """The handful of VMCS fields the SGX-aware exit path reads."""

    vcpu_id: int
    exit_reason: ExitReason | None = None
    exit_reason_bits: int = 0
    guest_interruptibility: int = 0
    exit_qualification: dict = field(default_factory=dict)

    def record_exit(self, reason: ExitReason, in_enclave: bool, **qualification) -> None:
        """Fill the exit fields as hardware would on VMExit."""
        self.exit_reason = reason
        self.exit_reason_bits = ENCLAVE_INTERRUPTION_BIT if in_enclave else 0
        self.guest_interruptibility = ENCLAVE_INTERRUPTION_BIT if in_enclave else 0
        self.exit_qualification = qualification

    @property
    def enclave_interruption(self) -> bool:
        return bool(self.exit_reason_bits & ENCLAVE_INTERRUPTION_BIT)

    def clear_enclave_interruption(self) -> None:
        """What our KVM patch does before reusing the original handlers."""
        self.exit_reason_bits &= ~ENCLAVE_INTERRUPTION_BIT
