"""Hashes, MACs and key derivation.

SHA-256 and HMAC come from the standard library (the paper's contribution
is not a hash function); HKDF is implemented here on top of HMAC per
RFC 5869 and is used everywhere a key must be derived from another
(per-CPU sealing keys, channel session keys, envelope enc/mac split).
"""

from __future__ import annotations

import hashlib
import hmac as _hmac


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """HMAC-SHA-256 of ``data`` under ``key``."""
    return _hmac.new(key, data, hashlib.sha256).digest()


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison (the semantics matter even in a simulation)."""
    return _hmac.compare_digest(a, b)


def hkdf(key_material: bytes, info: bytes, length: int = 32, salt: bytes = b"") -> bytes:
    """HKDF-SHA-256 extract-and-expand (RFC 5869)."""
    if length > 255 * 32:
        raise ValueError("HKDF output too long")
    pseudo_random_key = hmac_sha256(salt or b"\x00" * 32, key_material)
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac_sha256(pseudo_random_key, block + info + bytes([counter]))
        output += block
        counter += 1
    return output[:length]
