"""Authenticated-encryption envelope (encrypt-then-MAC).

This is the wire format for everything security-critical that leaves an
enclave: checkpoints, sealed EPC pages, secure-channel messages.  It
follows the paper's construction — "the source control thread first
calculates a hash value of the checkpoint and then uses a randomly
generated migration key to encrypt the data together with the hash value"
(§IV) — and additionally MACs the ciphertext so tampering is detected
before any decryption state is consumed.

Supported ciphers mirror the paper's evaluation (§VIII-B): RC4 (default),
DES, AES (software), and "AES-NI" (the numpy-batched AES path standing in
for hardware acceleration; same bytes, cheaper modelled cost).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.backend import CryptoBackend, get_backend
from repro.crypto.hashes import constant_time_equal, hmac_sha256, sha256
from repro.crypto.keys import SymmetricKey
from repro.errors import CryptoError, IntegrityError

CIPHER_NAMES = ("rc4", "des", "aes", "aes-ni", "aes-cbc")

_MAGIC = b"SGXMIGv1"
_DIGEST_LEN = 32
_MAC_LEN = 32


@dataclass(frozen=True)
class Envelope:
    """A sealed payload: cipher name, nonce, ciphertext and outer MAC."""

    algorithm: str
    nonce: bytes
    ciphertext: bytes
    mac: bytes

    def to_bytes(self) -> bytes:
        """Serialize for network transfer (size counted by the net model)."""
        algo = self.algorithm.encode()
        return b"".join(
            [
                _MAGIC,
                len(algo).to_bytes(1, "big"),
                algo,
                len(self.nonce).to_bytes(1, "big"),
                self.nonce,
                len(self.ciphertext).to_bytes(8, "big"),
                self.ciphertext,
                self.mac,
            ]
        )

    @staticmethod
    def from_bytes(data: bytes) -> "Envelope":
        """Parse a serialized envelope (raises CryptoError when mangled)."""
        if data[: len(_MAGIC)] != _MAGIC:
            raise CryptoError("bad envelope magic")
        offset = len(_MAGIC)
        algo_len = data[offset]
        offset += 1
        algorithm = data[offset : offset + algo_len].decode()
        offset += algo_len
        nonce_len = data[offset]
        offset += 1
        nonce = data[offset : offset + nonce_len]
        offset += nonce_len
        ct_len = int.from_bytes(data[offset : offset + 8], "big")
        offset += 8
        ciphertext = data[offset : offset + ct_len]
        offset += ct_len
        mac = data[offset : offset + _MAC_LEN]
        if len(mac) != _MAC_LEN:
            raise CryptoError("truncated envelope")
        return Envelope(algorithm, nonce, ciphertext, mac)

    @property
    def size(self) -> int:
        return len(self.to_bytes())


def _cipher_process(
    algorithm: str,
    key: bytes,
    nonce: bytes,
    data: bytes,
    encrypt: bool,
    backend: CryptoBackend | None = None,
) -> bytes:
    b = backend if backend is not None else get_backend()
    if algorithm == "rc4":
        # RC4 has no nonce input; bind the nonce into the stream key.
        return b.rc4(sha256(key + nonce), data)
    if algorithm == "des":
        return b.des_ctr(sha256(key)[:8], nonce[:4], data)
    if algorithm in ("aes", "aes-ni"):
        return b.aes_ctr(sha256(key)[:16], nonce[:8], data)
    if algorithm == "aes-cbc":
        key16 = sha256(key)[:16]
        iv = sha256(nonce)[:16]
        return b.aes_cbc_encrypt(key16, iv, data) if encrypt else b.aes_cbc_decrypt(key16, iv, data)
    raise CryptoError(f"unknown cipher algorithm: {algorithm!r}")


def seal_envelope(
    key: SymmetricKey,
    plaintext: bytes,
    nonce: bytes,
    algorithm: str = "rc4",
    aad: bytes = b"",
) -> Envelope:
    """Seal ``plaintext`` under ``key``.

    The inner layout is ``sha256(plaintext) || plaintext`` (the paper's
    hash-then-encrypt), the whole of which is encrypted; the outer MAC
    covers ``algorithm || nonce || aad || ciphertext``.
    """
    if algorithm not in CIPHER_NAMES:
        raise CryptoError(f"unknown cipher algorithm: {algorithm!r}")
    if len(nonce) < 8:
        raise CryptoError("nonce must be at least 8 bytes")
    enc_key = key.derive("enc").material
    mac_key = key.derive("mac").material
    inner = sha256(plaintext) + plaintext
    ciphertext = _cipher_process(algorithm, enc_key, nonce, inner, encrypt=True)
    mac = hmac_sha256(mac_key, algorithm.encode() + nonce + aad + ciphertext)
    return Envelope(algorithm, nonce, ciphertext, mac)


def open_envelope(key: SymmetricKey, envelope: Envelope, aad: bytes = b"") -> bytes:
    """Open an envelope; raises :class:`IntegrityError` on any mismatch."""
    enc_key = key.derive("enc").material
    mac_key = key.derive("mac").material
    expected_mac = hmac_sha256(
        mac_key, envelope.algorithm.encode() + envelope.nonce + aad + envelope.ciphertext
    )
    if not constant_time_equal(expected_mac, envelope.mac):
        raise IntegrityError("envelope MAC mismatch")
    try:
        inner = _cipher_process(
            envelope.algorithm, enc_key, envelope.nonce, envelope.ciphertext, encrypt=False
        )
    except CryptoError as exc:
        raise IntegrityError(f"envelope decryption failed: {exc}") from exc
    digest, plaintext = inner[:_DIGEST_LEN], inner[_DIGEST_LEN:]
    if not constant_time_equal(digest, sha256(plaintext)):
        raise IntegrityError("inner checkpoint hash mismatch")
    return plaintext
