"""RSA signatures for attestation and channel authentication.

Used by: the Quoting Enclave (quote signatures), the attestation service
(verification-report signatures), the enclave image keypair of §V-B
("We put a pair of keys into the enclave image. The public key is in
plaintext while the private key is in ciphertext."), and enclave owners.

Key generation uses Miller-Rabin with 1024-bit moduli — small by modern
deployment standards but honest in structure, and fast enough that tests
can generate fresh keys.  Signing is full-block EMSA-style padding over a
SHA-256 digest.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashes import sha256
from repro.errors import SignatureError
from repro.sim.rng import DeterministicRng

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139,
)


def _is_probable_prime(n: int, rng: DeterministicRng, rounds: int = 24) -> bool:
    """Miller-Rabin probabilistic primality test."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randint(2, n - 2)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(bits: int, rng: DeterministicRng) -> int:
    """Generate a random probable prime with the top two bits set."""
    while True:
        candidate = rng.getrandbits(bits) | (0b11 << (bits - 2)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


def _pad_digest(digest: bytes, modulus_bytes: int) -> int:
    """EMSA-style padding: 0x00 0x01 FF..FF 0x00 digest."""
    padding_len = modulus_bytes - len(digest) - 3
    if padding_len < 8:
        raise ValueError("modulus too small for padded digest")
    padded = b"\x00\x01" + b"\xff" * padding_len + b"\x00" + digest
    return int.from_bytes(padded, "big")


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key (n, e); verifies signatures."""

    n: int
    e: int

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> None:
        """Raise :class:`SignatureError` unless ``signature`` is valid."""
        if len(signature) != self.modulus_bytes:
            raise SignatureError("signature length mismatch")
        expected = _pad_digest(sha256(message), self.modulus_bytes)
        recovered = pow(int.from_bytes(signature, "big"), self.e, self.n)
        if recovered != expected:
            raise SignatureError("RSA signature verification failed")

    def is_valid(self, message: bytes, signature: bytes) -> bool:
        """Boolean convenience wrapper around :meth:`verify`."""
        try:
            self.verify(message, signature)
        except SignatureError:
            return False
        return True

    def fingerprint(self) -> bytes:
        """Stable identifier for this key (hash of n || e)."""
        return sha256(self.n.to_bytes(self.modulus_bytes, "big") + self.e.to_bytes(4, "big"))


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key; signs SHA-256 digests."""

    n: int
    e: int
    d: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    @property
    def modulus_bytes(self) -> int:
        return (self.n.bit_length() + 7) // 8

    def sign(self, message: bytes) -> bytes:
        padded = _pad_digest(sha256(message), self.modulus_bytes)
        return pow(padded, self.d, self.n).to_bytes(self.modulus_bytes, "big")


#: Keygen memo: deterministic seeds always produce the same key, so the
#: testbed (which builds many machines/images per test) skips repeat work.
_KEYGEN_CACHE: dict[tuple[str, int], RsaPrivateKey] = {}


def generate_rsa_keypair(rng: DeterministicRng, bits: int = 1024) -> RsaPrivateKey:
    """Generate an RSA keypair with modulus of roughly ``bits`` bits.

    Results are memoized by the generator's seed: the same seed would
    deterministically reproduce the same primes anyway.
    """
    cache_key = (str(getattr(rng, "seed", "")), bits)
    if cache_key[0] and cache_key in _KEYGEN_CACHE:
        return _KEYGEN_CACHE[cache_key]
    keypair = _generate_rsa_keypair_uncached(rng, bits)
    if cache_key[0]:
        _KEYGEN_CACHE[cache_key] = keypair
    return keypair


def _generate_rsa_keypair_uncached(rng: DeterministicRng, bits: int) -> RsaPrivateKey:
    e = 65537
    while True:
        p = _generate_prime(bits // 2, rng)
        q = _generate_prime(bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        return RsaPrivateKey(n=p * q, e=e, d=pow(e, -1, phi))
