"""Typed key material.

Wrapping raw bytes in small types keeps key-handling honest: the code can
state *which* key it expects (a migration key, a sealing key, a session
key) and tests can assert that, e.g., K_migrate never appears outside an
enclave or a sealed channel message.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashes import hkdf
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.sim.rng import DeterministicRng


@dataclass(frozen=True)
class SymmetricKey:
    """A labelled symmetric key."""

    material: bytes
    label: str = "key"

    def __post_init__(self) -> None:
        if len(self.material) < 16:
            raise ValueError("symmetric keys must be at least 128 bits")

    def derive(self, purpose: str, length: int = 32) -> "SymmetricKey":
        """Derive a sub-key bound to ``purpose`` via HKDF."""
        material = hkdf(self.material, purpose.encode(), length)
        return SymmetricKey(material, f"{self.label}/{purpose}")

    def __repr__(self) -> str:
        # Never print key material.
        return f"<SymmetricKey {self.label} ({8 * len(self.material)} bits)>"

    @staticmethod
    def random(rng: DeterministicRng, label: str = "key", length: int = 32) -> "SymmetricKey":
        """Draw a fresh key from the given entropy source."""
        return SymmetricKey(rng.bytes(length), label)


@dataclass(frozen=True)
class KeyPair:
    """An asymmetric keypair with a label (image key, platform key, ...)."""

    private: RsaPrivateKey
    label: str = "keypair"
    public: RsaPublicKey = field(init=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "public", self.private.public)

    def __repr__(self) -> str:
        return f"<KeyPair {self.label} n={self.private.n.bit_length()} bits>"
