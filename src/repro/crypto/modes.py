"""Block-cipher modes of operation: CBC, CTR, PKCS#7 padding.

CBC matches the paper's "AES-CBC" checkpoint pipeline; CTR is used where a
stream interface is more convenient (MEE page sealing) and has a fast path
when the underlying cipher supports batched block encryption (AES).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.errors import CryptoError


class BlockCipher(Protocol):
    """Anything with a block size and single-block encrypt/decrypt."""

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...

    def decrypt_block(self, block: bytes) -> bytes: ...


# ---------------------------------------------------------------- padding
def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Append PKCS#7 padding up to a multiple of ``block_size``."""
    if not 1 <= block_size <= 255:
        raise ValueError("block size out of PKCS#7 range")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len

def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip and validate PKCS#7 padding."""
    if not data or len(data) % block_size != 0:
        raise CryptoError("padded data length is not a multiple of block size")
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size or data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise CryptoError("invalid PKCS#7 padding")
    return data[:-pad_len]


# ---------------------------------------------------------------- CBC
def cbc_encrypt(cipher: BlockCipher, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt with PKCS#7 padding."""
    size = cipher.block_size
    if len(iv) != size:
        raise ValueError("IV length must equal the cipher block size")
    padded = pkcs7_pad(plaintext, size)
    out = bytearray()
    previous = iv
    for i in range(0, len(padded), size):
        block = bytes(a ^ b for a, b in zip(padded[i : i + size], previous))
        previous = cipher.encrypt_block(block)
        out.extend(previous)
    return bytes(out)

def cbc_decrypt(cipher: BlockCipher, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt and strip PKCS#7 padding."""
    size = cipher.block_size
    if len(iv) != size:
        raise ValueError("IV length must equal the cipher block size")
    if len(ciphertext) % size != 0:
        raise CryptoError("ciphertext length is not a multiple of block size")
    out = bytearray()
    previous = iv
    for i in range(0, len(ciphertext), size):
        block = ciphertext[i : i + size]
        plain = cipher.decrypt_block(block)
        out.extend(a ^ b for a, b in zip(plain, previous))
        previous = block
    return pkcs7_unpad(bytes(out), size)


# ---------------------------------------------------------------- CTR
def _counter_blocks(nonce: bytes, first_counter: int, n_blocks: int, size: int) -> np.ndarray:
    """Build ``n_blocks`` counter blocks: nonce || big-endian counter."""
    counter_width = size - len(nonce)
    if counter_width < 4:
        raise ValueError("nonce leaves too little room for the counter")
    blocks = np.zeros((n_blocks, size), dtype=np.uint8)
    blocks[:, : len(nonce)] = np.frombuffer(nonce, dtype=np.uint8)
    counters = (first_counter + np.arange(n_blocks, dtype=np.uint64)).astype(">u8")
    counter_bytes = counters.view(np.uint8).reshape(n_blocks, 8)
    blocks[:, size - min(8, counter_width):] = counter_bytes[:, -min(8, counter_width):]
    return blocks

def ctr_keystream(cipher: BlockCipher, nonce: bytes, n_bytes: int, first_counter: int = 0) -> bytes:
    """Generate a CTR keystream of ``n_bytes``.

    Uses the cipher's batched ``encrypt_blocks`` when available (AES),
    falling back to per-block scalar encryption otherwise (DES).
    """
    size = cipher.block_size
    n_blocks = (n_bytes + size - 1) // size
    counters = _counter_blocks(nonce, first_counter, n_blocks, size)
    batched = getattr(cipher, "encrypt_blocks", None)
    if batched is not None:
        stream = batched(counters).tobytes()
    else:
        stream = b"".join(
            cipher.encrypt_block(counters[i].tobytes()) for i in range(n_blocks)
        )
    return stream[:n_bytes]

def ctr_process(cipher: BlockCipher, nonce: bytes, data: bytes, first_counter: int = 0) -> bytes:
    """CTR encrypt/decrypt (same operation): XOR data with the keystream."""
    stream = ctr_keystream(cipher, nonce, len(data), first_counter)
    data_arr = np.frombuffer(data, dtype=np.uint8)
    stream_arr = np.frombuffer(stream, dtype=np.uint8)
    return (data_arr ^ stream_arr).tobytes()
