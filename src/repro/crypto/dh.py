"""Diffie-Hellman key exchange over the RFC 3526 2048-bit MODP group.

The paper: "The source and the target control threads leverage
Diffie-Hellman key exchange protocol to build a secure channel" (§V-B).
This is classic finite-field DH; the shared secret is hashed into a
256-bit session key.
"""

from __future__ import annotations

from repro.crypto.hashes import sha256
from repro.errors import CryptoError
from repro.sim.rng import DeterministicRng

# RFC 3526, group 14 (2048-bit MODP).
MODP_2048_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D"
    "C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F"
    "83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9"
    "DE2BCBF6955817183995497CEA956AE515D2261898FA0510"
    "15728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
MODP_2048_G = 2


class DhKeyExchange:
    """One party's half of a Diffie-Hellman exchange."""

    def __init__(self, rng: DeterministicRng) -> None:
        self._private = rng.getrandbits(256) | (1 << 255)
        self.public = pow(MODP_2048_G, self._private, MODP_2048_P)

    def shared_secret(self, peer_public: int) -> bytes:
        """Complete the exchange and return a 32-byte session key.

        Rejects degenerate peer values (0, 1, p-1) that would force a
        predictable shared secret — a real small-subgroup check.
        """
        if not 1 < peer_public < MODP_2048_P - 1:
            raise CryptoError("degenerate DH public value")
        secret = pow(peer_public, self._private, MODP_2048_P)
        return sha256(secret.to_bytes(256, "big"))
