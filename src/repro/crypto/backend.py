"""Pluggable crypto backends: a pure-Python reference oracle and a fast path.

Every symmetric-cipher operation on the checkpoint hot path (envelope
sealing, MEE page sealing, the SGX-v2 migratable-page stream) goes through
one :class:`CryptoBackend`.  Two implementations exist:

* ``reference`` — this repository's from-scratch ciphers, invoked exactly
  as the original call sites did (fresh cipher object per operation).  It
  is the correctness oracle: slow, obvious, test-vector-verified.
* ``fast`` — byte-identical output, produced cheaply: cipher objects are
  cached per key instead of rebuilt per page, and when the optional
  ``cryptography`` package is importable the AES-CTR / AES-CBC / RC4
  work is delegated to OpenSSL.  Without ``cryptography`` the fast
  backend still wins by amortizing key schedules and batching XORs.

The backend changes *wall-clock* cost only.  Virtual (modelled) time is
charged by :class:`repro.sim.costs.CostModel` per algorithm and is
identical under both backends — as are all wire bytes, journal entries
and enclave state, which ``tests/crypto/test_backend_oracle.py`` and
``tests/integration/test_backend_differential.py`` prove.

Selection: ``REPRO_CRYPTO_BACKEND=reference|fast`` (default ``fast``),
or programmatically via :func:`set_backend` / :func:`use_backend`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.crypto.aes import Aes128
from repro.crypto.des import Des
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_process, pkcs7_pad, pkcs7_unpad
from repro.crypto.rc4 import Rc4
from repro.errors import CryptoError

BACKEND_ENV = "REPRO_CRYPTO_BACKEND"
BACKEND_NAMES = ("reference", "fast")

_COUNTER_LIMIT = 1 << 64

try:  # optional accelerator; never a hard dependency
    from cryptography.hazmat.primitives.ciphers import Cipher, algorithms, modes as _cg_modes

    try:  # moved to `decrepit` in cryptography >= 43
        from cryptography.hazmat.decrepit.ciphers.algorithms import ARC4 as _CgArc4
    except ImportError:  # pragma: no cover - older cryptography layouts
        _CgArc4 = getattr(algorithms, "ARC4", None)
    _HAVE_CRYPTOGRAPHY = True
except ImportError:  # pragma: no cover - stdlib-only environments
    Cipher = algorithms = _cg_modes = _CgArc4 = None
    _HAVE_CRYPTOGRAPHY = False


class CryptoBackend:
    """Uniform symmetric-cipher interface the hot paths call into.

    All methods are deterministic functions of their inputs; the two
    implementations below must agree byte-for-byte on every one.
    """

    name = "abstract"

    # RC4 has no nonce; callers bind context into the stream key themselves.
    def rc4(self, stream_key: bytes, data: bytes) -> bytes:
        raise NotImplementedError

    def des_ctr(self, key8: bytes, nonce: bytes, data: bytes, first_counter: int = 0) -> bytes:
        raise NotImplementedError

    def aes_ctr(self, key16: bytes, nonce: bytes, data: bytes, first_counter: int = 0) -> bytes:
        raise NotImplementedError

    def aes_cbc_encrypt(self, key16: bytes, iv: bytes, data: bytes) -> bytes:
        raise NotImplementedError

    def aes_cbc_decrypt(self, key16: bytes, iv: bytes, data: bytes) -> bytes:
        raise NotImplementedError


class ReferenceBackend(CryptoBackend):
    """The original pure-Python call sites, verbatim: the oracle."""

    name = "reference"

    def rc4(self, stream_key: bytes, data: bytes) -> bytes:
        return Rc4(stream_key).process(data)

    def des_ctr(self, key8: bytes, nonce: bytes, data: bytes, first_counter: int = 0) -> bytes:
        return ctr_process(Des(key8), nonce, data, first_counter)

    def aes_ctr(self, key16: bytes, nonce: bytes, data: bytes, first_counter: int = 0) -> bytes:
        return ctr_process(Aes128(key16), nonce, data, first_counter)

    def aes_cbc_encrypt(self, key16: bytes, iv: bytes, data: bytes) -> bytes:
        return cbc_encrypt(Aes128(key16), iv, data)

    def aes_cbc_decrypt(self, key16: bytes, iv: bytes, data: bytes) -> bytes:
        return cbc_decrypt(Aes128(key16), iv, data)


class _KeyedCache:
    """A small bounded cache of cipher objects keyed by key material.

    Key schedules (AES round keys, DES PC-1/PC-2 subkeys) dominate the
    per-page cost when the payload is a single 4 KB page; the hot paths
    reuse a handful of long-lived keys, so a tiny cache removes the
    rebuild entirely.
    """

    def __init__(self, factory, max_entries: int = 128) -> None:
        self._factory = factory
        self._max = max_entries
        self._entries: dict[bytes, object] = {}

    def get(self, key: bytes):
        cipher = self._entries.get(key)
        if cipher is None:
            if len(self._entries) >= self._max:
                self._entries.pop(next(iter(self._entries)))
            cipher = self._factory(key)
            self._entries[key] = cipher
        return cipher


class FastBackend(CryptoBackend):
    """Byte-identical to the reference, built for throughput.

    AES-CTR equivalence with OpenSSL: the reference builds counter blocks
    ``nonce || big-endian-64(first_counter + i)`` for an 8-byte nonce, and
    OpenSSL's CTR mode increments the whole 128-bit block — identical as
    long as the low 64 bits never wrap, which :meth:`aes_ctr` checks and
    otherwise falls back to the reference construction.
    """

    name = "fast"

    def __init__(self) -> None:
        self._aes = _KeyedCache(Aes128)
        self._des = _KeyedCache(Des)
        self._arc4_broken = not _HAVE_CRYPTOGRAPHY or _CgArc4 is None

    # ---------------------------------------------------------------- rc4
    def rc4(self, stream_key: bytes, data: bytes) -> bytes:
        if not self._arc4_broken and len(stream_key) * 8 in _CgArc4.key_sizes:
            try:
                encryptor = Cipher(_CgArc4(stream_key), mode=None).encryptor()
                return encryptor.update(data)
            except Exception:
                # Some OpenSSL builds compile RC4 out; remember and fall back.
                self._arc4_broken = True
        stream = Rc4(stream_key).keystream(len(data))
        return _xor(data, stream)

    # ---------------------------------------------------------------- des
    def des_ctr(self, key8: bytes, nonce: bytes, data: bytes, first_counter: int = 0) -> bytes:
        # OpenSSL has no single-DES CTR; amortize the key schedule instead.
        return ctr_process(self._des.get(key8), nonce, data, first_counter)

    # ---------------------------------------------------------------- aes
    def aes_ctr(self, key16: bytes, nonce: bytes, data: bytes, first_counter: int = 0) -> bytes:
        n_blocks = (len(data) + 15) // 16
        if (
            _HAVE_CRYPTOGRAPHY
            and len(nonce) == 8
            and 0 <= first_counter
            and first_counter + n_blocks < _COUNTER_LIMIT
        ):
            initial = nonce + first_counter.to_bytes(8, "big")
            encryptor = Cipher(algorithms.AES(key16), _cg_modes.CTR(initial)).encryptor()
            return encryptor.update(data)
        return ctr_process(self._aes.get(key16), nonce, data, first_counter)

    def aes_cbc_encrypt(self, key16: bytes, iv: bytes, data: bytes) -> bytes:
        if _HAVE_CRYPTOGRAPHY:
            padded = pkcs7_pad(data, 16)
            encryptor = Cipher(algorithms.AES(key16), _cg_modes.CBC(iv)).encryptor()
            return encryptor.update(padded) + encryptor.finalize()
        return cbc_encrypt(self._aes.get(key16), iv, data)

    def aes_cbc_decrypt(self, key16: bytes, iv: bytes, data: bytes) -> bytes:
        if _HAVE_CRYPTOGRAPHY:
            if len(data) % 16 != 0:
                raise CryptoError("ciphertext length is not a multiple of block size")
            decryptor = Cipher(algorithms.AES(key16), _cg_modes.CBC(iv)).decryptor()
            padded = decryptor.update(data) + decryptor.finalize()
            return pkcs7_unpad(padded, 16)
        return cbc_decrypt(self._aes.get(key16), iv, data)


def _xor(data: bytes, stream: bytes) -> bytes:
    """Batched XOR of two equal-length byte strings."""
    if not data:
        return b""
    n = len(data)
    return (int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")).to_bytes(n, "big")


# ---------------------------------------------------------------- registry
_ACTIVE: CryptoBackend | None = None


def make_backend(name: str) -> CryptoBackend:
    """Construct a fresh backend by name."""
    if name == "reference":
        return ReferenceBackend()
    if name == "fast":
        return FastBackend()
    raise CryptoError(f"unknown crypto backend: {name!r} (expected one of {BACKEND_NAMES})")


def get_backend() -> CryptoBackend:
    """The active backend; first use reads ``REPRO_CRYPTO_BACKEND``."""
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = make_backend(os.environ.get(BACKEND_ENV, "fast"))
    return _ACTIVE


def set_backend(backend: CryptoBackend | str | None) -> CryptoBackend | None:
    """Install a backend (by instance or name); returns the previous one.

    ``None`` resets to unselected so the next :func:`get_backend` call
    re-reads the environment.
    """
    global _ACTIVE
    previous = _ACTIVE
    if backend is None:
        _ACTIVE = None
    elif isinstance(backend, str):
        _ACTIVE = make_backend(backend)
    else:
        _ACTIVE = backend
    return previous


@contextmanager
def use_backend(backend: CryptoBackend | str) -> Iterator[CryptoBackend]:
    """Temporarily switch backends (tests and the differential harness)."""
    previous = set_backend(backend)
    try:
        yield get_backend()
    finally:
        set_backend(previous)
