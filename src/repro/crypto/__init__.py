"""Cryptographic substrate, implemented from scratch.

The paper's checkpoint pipeline, sealed-page format, attestation and secure
channel all need symmetric ciphers, hashes, Diffie-Hellman and signatures.
We implement the ciphers the paper evaluates (RC4, DES, AES — §VIII-B) as
real, test-vector-verified algorithms, plus the supporting primitives:

* :mod:`repro.crypto.rc4`     — RC4 stream cipher (paper's default).
* :mod:`repro.crypto.des`     — single DES (paper's alternative).
* :mod:`repro.crypto.aes`     — AES-128, scalar + numpy-batched.
* :mod:`repro.crypto.modes`   — CBC / CTR modes and PKCS#7 padding.
* :mod:`repro.crypto.hashes`  — SHA-256 / HMAC convenience wrappers.
* :mod:`repro.crypto.dh`      — RFC 3526 group-14 Diffie-Hellman.
* :mod:`repro.crypto.rsa`     — RSA signatures (attestation, channel auth).
* :mod:`repro.crypto.keys`    — typed key material and a KDF.
* :mod:`repro.crypto.authenc` — encrypt-then-MAC envelope (checkpoints,
  sealed EPC pages).
"""

from repro.crypto.aes import Aes128
from repro.crypto.authenc import CIPHER_NAMES, open_envelope, seal_envelope
from repro.crypto.backend import (
    BACKEND_NAMES,
    CryptoBackend,
    get_backend,
    make_backend,
    set_backend,
    use_backend,
)
from repro.crypto.des import Des
from repro.crypto.dh import DhKeyExchange
from repro.crypto.hashes import hkdf, hmac_sha256, sha256
from repro.crypto.keys import KeyPair, SymmetricKey
from repro.crypto.rc4 import Rc4
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey, generate_rsa_keypair

__all__ = [
    "Aes128",
    "BACKEND_NAMES",
    "CIPHER_NAMES",
    "CryptoBackend",
    "Des",
    "get_backend",
    "make_backend",
    "set_backend",
    "use_backend",
    "DhKeyExchange",
    "KeyPair",
    "Rc4",
    "RsaPrivateKey",
    "RsaPublicKey",
    "SymmetricKey",
    "generate_rsa_keypair",
    "hkdf",
    "hmac_sha256",
    "open_envelope",
    "seal_envelope",
    "sha256",
]
