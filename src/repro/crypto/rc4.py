"""RC4 stream cipher.

The paper uses RC4 as the default checkpoint cipher ("we use RC4 as the
encryption method and the output size is 20KB. The encryption process takes
about 200us", §VIII-B).  This is the standard KSA + PRGA construction;
encryption and decryption are the same keystream XOR.
"""

from __future__ import annotations


class Rc4:
    """RC4 with the classic 256-byte state."""

    def __init__(self, key: bytes) -> None:
        if not 1 <= len(key) <= 256:
            raise ValueError("RC4 key must be 1..256 bytes")
        state = list(range(256))
        j = 0
        for i in range(256):
            j = (j + state[i] + key[i % len(key)]) & 0xFF
            state[i], state[j] = state[j], state[i]
        self._state = state
        self._i = 0
        self._j = 0

    def keystream(self, n: int) -> bytes:
        """Generate the next ``n`` keystream bytes."""
        state = self._state
        i, j = self._i, self._j
        out = bytearray(n)
        for k in range(n):
            i = (i + 1) & 0xFF
            j = (j + state[i]) & 0xFF
            state[i], state[j] = state[j], state[i]
            out[k] = state[(state[i] + state[j]) & 0xFF]
        self._i, self._j = i, j
        return bytes(out)

    def process(self, data: bytes) -> bytes:
        """Encrypt or decrypt ``data`` (XOR with the keystream)."""
        stream = self.keystream(len(data))
        return bytes(a ^ b for a, b in zip(data, stream))


def rc4_encrypt(key: bytes, data: bytes) -> bytes:
    """One-shot RC4 encryption with a fresh cipher state."""
    return Rc4(key).process(data)


def rc4_decrypt(key: bytes, data: bytes) -> bytes:
    """One-shot RC4 decryption (identical to encryption)."""
    return Rc4(key).process(data)
