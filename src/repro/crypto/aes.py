"""AES-128 (FIPS 197), scalar and numpy-batched.

The paper encrypts the Memcached checkpoint "with AES-CBC which is
implemented with AES-NI" (§VIII-B, Fig. 11).  We provide:

* a scalar reference implementation (``encrypt_block``/``decrypt_block``),
  verified against the FIPS 197 appendix-C vector, and
* a numpy-vectorised batch path (``encrypt_blocks``) used by CTR mode so
  that multi-megabyte checkpoints encrypt in reasonable wall-clock time —
  the software analogue of AES-NI.

The S-box is derived from the GF(2^8) inverse plus the affine transform
rather than hard-coded, and a unit test checks the derivation against the
published table values.
"""

from __future__ import annotations

import numpy as np


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= 0x11B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    """Derive the AES S-box and its inverse from first principles."""
    # Multiplicative inverses (0 maps to 0).
    inverse = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if _gf_mul(x, y) == 1:
                inverse[x] = y
                break
    sbox = bytearray(256)
    for x in range(256):
        b = inverse[x]
        s = b
        for shift in (1, 2, 3, 4):
            s ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = s ^ 0x63
    inv_sbox = bytearray(256)
    for x, s in enumerate(sbox):
        inv_sbox[s] = x
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

_SBOX_NP = np.frombuffer(SBOX, dtype=np.uint8)
_XTIME_NP = np.array([_gf_mul(x, 2) for x in range(256)], dtype=np.uint8)

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

# ShiftRows as a flat permutation of the 16-byte state, where flat index
# i = r + 4*c (FIPS column-major layout, which coincides with byte order).
_SHIFT_ROWS = tuple((i + 4 * (i % 4)) % 16 for i in range(16))
_INV_SHIFT_ROWS = tuple(_SHIFT_ROWS.index(i) for i in range(16))
_SHIFT_ROWS_NP = np.array(_SHIFT_ROWS, dtype=np.intp)


class Aes128:
    """AES with a 128-bit key."""

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ValueError("AES-128 key must be exactly 16 bytes")
        self._round_keys = self._expand_key(key)
        self._round_keys_np = [
            np.frombuffer(bytes(rk), dtype=np.uint8) for rk in self._round_keys
        ]

    # ------------------------------------------------------------ key schedule
    @staticmethod
    def _expand_key(key: bytes) -> list[list[int]]:
        words = [list(key[4 * i : 4 * i + 4]) for i in range(4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        return [
            [b for word in words[4 * r : 4 * r + 4] for b in word]
            for r in range(11)
        ]

    # ------------------------------------------------------------ scalar path
    @staticmethod
    def _mix_single_column(col: list[int]) -> list[int]:
        a0, a1, a2, a3 = col
        return [
            _gf_mul(a0, 2) ^ _gf_mul(a1, 3) ^ a2 ^ a3,
            a0 ^ _gf_mul(a1, 2) ^ _gf_mul(a2, 3) ^ a3,
            a0 ^ a1 ^ _gf_mul(a2, 2) ^ _gf_mul(a3, 3),
            _gf_mul(a0, 3) ^ a1 ^ a2 ^ _gf_mul(a3, 2),
        ]

    @staticmethod
    def _inv_mix_single_column(col: list[int]) -> list[int]:
        a0, a1, a2, a3 = col
        return [
            _gf_mul(a0, 14) ^ _gf_mul(a1, 11) ^ _gf_mul(a2, 13) ^ _gf_mul(a3, 9),
            _gf_mul(a0, 9) ^ _gf_mul(a1, 14) ^ _gf_mul(a2, 11) ^ _gf_mul(a3, 13),
            _gf_mul(a0, 13) ^ _gf_mul(a1, 9) ^ _gf_mul(a2, 14) ^ _gf_mul(a3, 11),
            _gf_mul(a0, 11) ^ _gf_mul(a1, 13) ^ _gf_mul(a2, 9) ^ _gf_mul(a3, 14),
        ]

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block (scalar reference path)."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = [b ^ k for b, k in zip(block, self._round_keys[0])]
        for round_no in range(1, 11):
            state = [SBOX[b] for b in state]
            state = [state[_SHIFT_ROWS[i]] for i in range(16)]
            if round_no != 10:
                mixed = []
                for c in range(4):
                    mixed.extend(self._mix_single_column(state[4 * c : 4 * c + 4]))
                state = mixed
            state = [b ^ k for b, k in zip(state, self._round_keys[round_no])]
        return bytes(state)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block (scalar reference path)."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = [b ^ k for b, k in zip(block, self._round_keys[10])]
        for round_no in range(9, -1, -1):
            state = [state[_INV_SHIFT_ROWS[i]] for i in range(16)]
            state = [INV_SBOX[b] for b in state]
            state = [b ^ k for b, k in zip(state, self._round_keys[round_no])]
            if round_no != 0:
                mixed = []
                for c in range(4):
                    mixed.extend(self._inv_mix_single_column(state[4 * c : 4 * c + 4]))
                state = mixed
        return bytes(state)

    # ------------------------------------------------------------ batched path
    def encrypt_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Encrypt many blocks at once.

        ``blocks`` must be a ``(n, 16)`` uint8 array; the return value has
        the same shape.  This is the vectorised path CTR mode uses for its
        keystream, standing in for AES-NI throughput.
        """
        if blocks.ndim != 2 or blocks.shape[1] != 16 or blocks.dtype != np.uint8:
            raise ValueError("expected a (n, 16) uint8 array")
        state = blocks ^ self._round_keys_np[0]
        for round_no in range(1, 11):
            state = _SBOX_NP[state]
            state = state[:, _SHIFT_ROWS_NP]
            if round_no != 10:
                cols = state.reshape(-1, 4, 4)
                a0, a1, a2, a3 = (cols[:, :, r] for r in range(4))
                x0, x1, x2, x3 = (_XTIME_NP[a] for a in (a0, a1, a2, a3))
                mixed = np.empty_like(cols)
                mixed[:, :, 0] = x0 ^ (x1 ^ a1) ^ a2 ^ a3
                mixed[:, :, 1] = a0 ^ x1 ^ (x2 ^ a2) ^ a3
                mixed[:, :, 2] = a0 ^ a1 ^ x2 ^ (x3 ^ a3)
                mixed[:, :, 3] = (x0 ^ a0) ^ a1 ^ a2 ^ x3
                state = mixed.reshape(-1, 16)
            state = state ^ self._round_keys_np[round_no]
        return state
