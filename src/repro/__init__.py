"""repro — Secure Live Migration of SGX Enclaves on Untrusted Cloud.

A full-system reproduction of Gu et al., DSN 2017, on a simulated SGX
platform.  The package layers:

* :mod:`repro.sim`        — virtual clock, cost model, VCPU scheduler.
* :mod:`repro.crypto`     — RC4 / DES / AES / DH / RSA, from scratch.
* :mod:`repro.sgx`        — the SGX v1 hardware model (EPC, MEE,
  instructions, attestation) plus the paper's §VII-B proposed extensions.
* :mod:`repro.hypervisor` — KVM-model hypervisor and QEMU-model pre-copy.
* :mod:`repro.guestos`    — the untrusted guest OS and SGX driver.
* :mod:`repro.sdk`        — the enclave SDK: builder, runtime, control
  thread, untrusted SGX library, enclave owner.
* :mod:`repro.migration`  — the paper's contribution: secure enclave and
  VM live migration, agent enclave, owner-keyed snapshots.
* :mod:`repro.attacks`    — executable adversaries (consistency, fork,
  rollback, replay, tamper).
* :mod:`repro.workloads`  — nbench kernels, crypto apps, bank, mail
  server, auth server, memcached.

Quickstart::

    from repro import build_testbed, MigrationOrchestrator
    from repro.sdk import EnclaveProgram, AtomicEntry, HostApplication, WorkerSpec

    tb = build_testbed(seed=1)
    program = EnclaveProgram("hello-v1")
    program.add_entry("greet", AtomicEntry(lambda rt, args: f"hello {args}"))
    built = tb.builder.build("hello", program)
    tb.owner.register_image(built)
    app = HostApplication(tb.source, tb.source_os, built.image,
                          workers=[WorkerSpec("greet", args="world")],
                          owner=tb.owner).launch()
    result = MigrationOrchestrator(tb).migrate_enclave(app)
"""

from repro.errors import (
    AttestationError,
    ChannelError,
    ConsistencyViolation,
    CssaMismatch,
    IntegrityError,
    MigrationAborted,
    MigrationError,
    ReproError,
    RestoreError,
    SelfDestroyed,
    SgxAccessFault,
    SgxError,
    SgxMacMismatch,
)
from repro.machine import Machine
from repro.migration.orchestrator import EnclaveMigrationResult, MigrationOrchestrator
from repro.migration.snapshot import SnapshotManager
from repro.migration.testbed import Testbed, build_testbed
from repro.migration.vm import VmMigrationManager, migrate_plain_vm

__version__ = "1.0.0"

__all__ = [
    "AttestationError",
    "ChannelError",
    "ConsistencyViolation",
    "CssaMismatch",
    "EnclaveMigrationResult",
    "IntegrityError",
    "Machine",
    "MigrationAborted",
    "MigrationError",
    "MigrationOrchestrator",
    "ReproError",
    "RestoreError",
    "SelfDestroyed",
    "SgxAccessFault",
    "SgxError",
    "SgxMacMismatch",
    "SnapshotManager",
    "Testbed",
    "VmMigrationManager",
    "build_testbed",
    "migrate_plain_vm",
    "__version__",
]
