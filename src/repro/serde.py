"""Canonical serialization for simulated hardware state.

SSA frames, checkpoint payloads and channel messages must be *bytes* —
they live in (simulated) memory pages, are hashed, encrypted and shipped
over the network.  This module converts the restricted value universe we
allow in execution contexts (None, bool, int, str, bytes, lists, dicts
with string keys) to and from a canonical, deterministic byte encoding
built on JSON with explicit type tags.

Determinism matters: MRENCLAVE and checkpoint hashes must be stable across
runs, so dict keys are sorted and bytes are hex-tagged rather than relying
on repr or pickle (which would also be a deserialization hazard for data
arriving from untrusted components).
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError


class SerdeError(ReproError):
    """A value outside the canonical universe was (de)serialized."""


_BYTES_TAG = "__bytes__"
_TUPLE_TAG = "__tuple__"


def _encode(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        raise SerdeError("floats are not allowed in hardware state (non-deterministic)")
    if isinstance(value, (bytes, bytearray)):
        return {_BYTES_TAG: bytes(value).hex()}
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode(v) for v in value]}
    if isinstance(value, list):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise SerdeError(f"dict keys must be str, got {type(key).__name__}")
            if key in (_BYTES_TAG, _TUPLE_TAG):
                raise SerdeError(f"reserved key {key!r} in payload")
            out[key] = _encode(item)
        return out
    raise SerdeError(f"cannot serialize {type(value).__name__}")


def _decode(value: Any) -> Any:
    if isinstance(value, list):
        return [_decode(v) for v in value]
    if isinstance(value, dict):
        if set(value.keys()) == {_BYTES_TAG}:
            return bytes.fromhex(value[_BYTES_TAG])
        if set(value.keys()) == {_TUPLE_TAG}:
            return tuple(_decode(v) for v in value[_TUPLE_TAG])
        return {k: _decode(v) for k, v in value.items()}
    return value


def pack(value: Any) -> bytes:
    """Serialize ``value`` to canonical bytes."""
    return json.dumps(_encode(value), sort_keys=True, separators=(",", ":")).encode()


def unpack(data: bytes) -> Any:
    """Deserialize bytes produced by :func:`pack`."""
    try:
        return _decode(json.loads(data.decode()))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SerdeError(f"malformed canonical payload: {exc}") from exc
