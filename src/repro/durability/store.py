"""Stable storage: the one thing a machine crash does not erase.

A :class:`DurableStore` models the testbed's persistent media — each
party's journal file plus a bank of hardware monotonic counters.  The
split matters for the threat model:

* the **byte logs** are ordinary untrusted disk: a crash can tear the
  tail of an append, and an adversary (or a lazy operator restoring an
  old backup) can truncate or substitute an earlier copy;
* the **monotonic counters** model tamper-resistant hardware counters
  (TPM / CSME, the primitive Alder et al. build their rollback defense
  on): they only ever move forward and survive everything.

:class:`repro.durability.journal.Journal` commits a record by appending
the frame bytes *then* bumping the counter; replay cross-checks the two,
which is what turns "the journal looks shorter than it should be" into a
typed, refusable :class:`~repro.errors.JournalRolledBack`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultInjector
    from repro.sim.clock import VirtualClock
    from repro.sim.trace import EventTrace
    from repro.telemetry.metrics import MetricsRegistry


class DurableStore:
    """Per-testbed persistent storage: named byte logs + counters."""

    def __init__(self) -> None:
        self._logs: dict[str, bytearray] = {}
        self._counters: dict[str, int] = {}
        #: Optional fault injector; journal commits report record
        #: boundaries to it so crash plans can fire at record
        #: granularity (see :meth:`FaultInjector.record_appended`).
        self.injector: "FaultInjector | None" = None
        #: Telemetry wiring (set by ``build_testbed``): journal commits
        #: charge ``commit_cost_ns`` of modelled fsync time to ``clock``
        #: and report per-party commit latency/count to ``metrics``.  A
        #: bare store (unit tests) leaves all three unset and stays free.
        self.clock: "VirtualClock | None" = None
        self.metrics: "MetricsRegistry | None" = None
        self.commit_cost_ns: int = 0
        #: Optional event trace: journal commits emit payload-free
        #: ``("journal", "append")`` events through it so the flight
        #: recorder's per-party rings see durable state transitions.
        self.trace: "EventTrace | None" = None

    # ------------------------------------------------------------- byte logs
    def log(self, name: str) -> bytearray:
        """The (mutable) byte log under ``name``, created on first use."""
        return self._logs.setdefault(name, bytearray())

    def has_log(self, name: str) -> bool:
        return name in self._logs

    def set_log(self, name: str, data: bytes) -> None:
        """Replace the byte log under ``name`` wholesale.

        Journals only ever append; the sealed-storage namespaces rewrite
        their (sealed, versioned) table blob in place and rely on the
        namespace's monotonic counter — not the bytes — for freshness.
        """
        self._logs[name] = bytearray(data)

    def names(self) -> list[str]:
        return sorted(self._logs)

    # ------------------------------------------------------------- counters
    def counter(self, name: str) -> int:
        """Current value of the hardware monotonic counter for ``name``."""
        return self._counters.get(name, 0)

    def counter_bump(self, name: str) -> int:
        """Advance the monotonic counter; returns the new value."""
        value = self._counters.get(name, 0) + 1
        self._counters[name] = value
        return value

    def counter_advance(self, name: str, value: int) -> int:
        """Advance the counter to ``value`` (monotonic; never moves back).

        Hardware counters cannot be wound down, so an advance below the
        current value is simply a no-op — callers that need "this would
        have gone backwards" to be an error must compare first.  Returns
        the counter's (possibly unchanged) value.
        """
        current = self._counters.get(name, 0)
        if value > current:
            self._counters[name] = value
            return value
        return current
