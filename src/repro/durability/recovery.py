"""Crash recovery: rebuild a migration's state machine from the journals.

After a :class:`~repro.errors.PartyCrash` the protocol driver is gone and
one party's volatile state with it.  :class:`MigrationRecovery` reads the
write-ahead journals of all parties, decides where the protocol stood at
the instant of the crash, and either *finalizes* the migration (the key
already moved: finish delivery/restore, or rebuild the target from its
own sealed journal records) or *rolls it back* (the key never moved:
cancel the source, or rebuild the source from its own sealed checkpoint
record) — converging, in every case, to **at most one live instance**:

===========================================  ================================
observed journal state                        action → outcome
===========================================  ================================
orchestrator ``done``                         nothing to do (already-complete)
key not released, source enclave alive        cancel source, scrap any
                                              half-built target (resumed-source)
key not released, source dead, has a          rebuild source from its own
``checkpoint`` record                         sealed record (source-restored)
key not released, source dead, no record      clean abort, zero live
source ``released`` but the sealed blob was   clean abort, zero live — a SPENT
never journaled by the orchestrator           source **stays SPENT**, always
orchestrator ``release``, target alive        redeliver sealed key
                                              (idempotent), restore, respawn
orchestrator ``release``+``restored``,        respawn from the journaled
target alive                                  replay plan
orchestrator ``release``, target dead,        rebuild target, unseal K_migrate
target journaled ``key-installed``            from its own journal (completed)
orchestrator ``release``, target dead,        clean abort, zero live (the key
no ``key-installed`` record                   died with the target)
===========================================  ================================

Retransmitted sealed keys are idempotent (``target_receive_key`` installs
the same K_migrate again); rebuilt instances re-unseal their own secrets
via their EGETKEY sealing key, which a crash does not erase (same CPU,
same measurement).  A truncated or rolled-back journal makes
:meth:`Journal.records` raise before any action is taken — recovery
*refuses* rather than guesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.durability import wal
from repro.durability.journal import Journal, JournalRecord
from repro.errors import NetworkFault, RecoveryError, ReproError
from repro.sdk import control
from repro.sdk.host import HostApplication
from repro.telemetry.spans import maybe_span

_REDELIVERY_ROUNDS = 5


@dataclass
class RecoveryReport:
    """What :meth:`MigrationRecovery.recover` concluded and did."""

    outcome: str  #: already-complete | completed | resumed-source | source-restored | aborted
    live_instances: int
    target_app: HostApplication | None = None
    detail: str = ""
    journal_kinds: dict[str, list[str]] = field(default_factory=dict)

    @property
    def finalized(self) -> bool:
        return self.outcome in ("already-complete", "completed")


class MigrationRecovery:
    """Reconstructs one in-flight migration from its journals."""

    def __init__(
        self,
        testbed,
        source_app: HostApplication,
        orchestrator=None,
        target_app: HostApplication | None = None,
    ) -> None:
        self.tb = testbed
        self.app = source_app
        if target_app is None and orchestrator is not None:
            target_app = getattr(orchestrator, "_current_target", None)
        self.target_app = target_app
        image = source_app.image
        store = testbed.durable
        # Journals are addressed by machine *name* and journal epoch, not
        # by the literal roles: an N-hop chain swaps which machine plays
        # source, and each hop's journals carry the hop's epoch stamp.
        self.wal = Journal(
            store,
            wal.orchestrator_journal_name(
                image.name, getattr(testbed, "wal_epoch", 0)
            ),
            wal.PARTY_ORCHESTRATOR,
        )
        self.source_journal = Journal(
            store,
            wal.enclave_journal_name(
                testbed.source.name,
                image.name,
                getattr(testbed.source, "journal_epoch", 0),
            ),
            wal.PARTY_SOURCE,
        )
        self.target_journal = Journal(
            store,
            wal.enclave_journal_name(
                testbed.target.name,
                image.name,
                getattr(testbed.target, "journal_epoch", 0),
            ),
            wal.PARTY_TARGET,
        )

    # ------------------------------------------------------------------ main
    def recover(self) -> RecoveryReport:
        """Replay the journals and drive the migration to a safe rest.

        Raises :class:`~repro.errors.JournalCorrupt` /
        :class:`~repro.errors.JournalRolledBack` if any journal fails
        validation — a damaged log is refused, never interpreted.
        """
        with maybe_span(
            self.tb.trace,
            "recovery.replay",
            party="orchestrator",
            image=self.app.image.name,
        ):
            # Validate *all* journals up front; a rollback on any party's
            # log poisons the whole recovery, not just that party's branch.
            wal_records = self.wal.records()
            source_records = self.source_journal.records()
            target_records = self.target_journal.records()
            kinds = {
                self.wal.name: [r.kind for r in wal_records],
                self.source_journal.name: [r.kind for r in source_records],
                self.target_journal.name: [r.kind for r in target_records],
            }
            self.tb.trace.emit("recovery", "begin", journals=kinds)

            if _has(wal_records, wal.WAL_DONE):
                # The crash landed after the final commit (e.g. on the
                # `done` record itself): the target is live but may not
                # have joined the monitor's lineage yet.
                if self._target_alive():
                    self._join_lineage(self.target_app)
                return self._report(
                    "already-complete",
                    1 if self._target_alive() else 0,
                    self.target_app,
                    "orchestrator journaled done",
                    kinds,
                )

            released = _has(source_records, wal.REC_RELEASED) or _has(
                wal_records, wal.WAL_RELEASE
            )
            if not released:
                return self._recover_before_release(source_records, kinds)
            return self._recover_after_release(wal_records, target_records, kinds)

    # ------------------------------------------------- before point of no return
    def _recover_before_release(self, source_records, kinds) -> RecoveryReport:
        self._scrap_target()
        if self.app.library.enclave_id is not None:
            # The source never gave up K_migrate: roll the protocol back
            # and return the source to service.
            self.app.library.control_call(control.source_cancel_migration)
            self.app.library.last_checkpoint = None
            self.tb.source_os.end_migration()
            return self._report(
                "resumed-source", 1, None, "migration rolled back; source resumed", kinds
            )
        checkpoint = _last(source_records, wal.REC_CHECKPOINT)
        if checkpoint is None:
            return self._report(
                "aborted", 0, None, "source lost before any durable checkpoint", kinds
            )
        rebuilt = self._rebuild_instance(
            machine=self.tb.source,
            guest_os=self.tb.source_os,
            sealed_key=checkpoint.payload["sealed"],
            envelope=checkpoint.payload["envelope"],
            name_suffix="recovered-source",
        )
        return self._report(
            "source-restored",
            1,
            rebuilt,
            "source rebuilt from its own sealed checkpoint record",
            kinds,
        )

    # -------------------------------------------------- after point of no return
    def _recover_after_release(self, wal_records, target_records, kinds) -> RecoveryReport:
        release = _last(wal_records, wal.WAL_RELEASE)
        transferred = _last(wal_records, wal.WAL_TRANSFERRED)
        if release is None:
            # The source marked itself SPENT but the sealed key never
            # reached the orchestrator's log: K_migrate is gone.  The one
            # thing recovery must never do here is resurrect the source.
            self._scrap_target()
            return self._report(
                "aborted",
                0,
                None,
                "K_migrate was never exported; the SPENT source stays SPENT",
                kinds,
            )
        if self._target_alive():
            return self._finalize_live_target(wal_records, release, transferred, kinds)
        # Target died after the release.  Its journal sealed the received
        # K_migrate under the target enclave's own sealing key: a rebuilt
        # enclave with the same measurement on the same machine can
        # unseal it and restore from the journaled checkpoint envelope.
        installed = _last(target_records, wal.REC_KEY_INSTALLED)
        if installed is None or transferred is None:
            return self._report(
                "aborted",
                0,
                None,
                "the key died with the target before it was journaled; "
                "the source has self-destroyed — clean abort",
                kinds,
            )
        rebuilt = self._rebuild_instance(
            machine=self.tb.target,
            guest_os=self.tb.target_os,
            sealed_key=installed.payload["sealed"],
            envelope=transferred.payload["blob"],
            name_suffix="recovered-target",
        )
        return self._report(
            "completed", 1, rebuilt, "target rebuilt from its sealed journal", kinds
        )

    def _finalize_live_target(self, wal_records, release, transferred, kinds) -> RecoveryReport:
        target = self.target_app
        restored = _last(wal_records, wal.WAL_RESTORED)
        if restored is not None:
            # Crash landed between restore and respawn: only host-side
            # thread bookkeeping is missing.
            plan = {int(k): v for k, v in restored.payload["plan"].items()}
            target.respawn_after_restore(plan)
            self.tb.target_os.end_migration()
            self.wal.append(wal.WAL_DONE, {"via": "recovery-respawn"})
            self._join_lineage(target)
            return self._report(
                "completed", 1, target, "respawned from journaled replay plan", kinds
            )
        if transferred is None:
            self._scrap_target()
            return self._report(
                "aborted",
                0,
                None,
                "checkpoint was never journaled; nothing to restore",
                kinds,
            )
        # Redeliver the sealed key (same ciphertext — target_receive_key
        # is idempotent for a repeated blob) and run the restore steps.
        delivered = self._redeliver(release.payload["sealed"])
        library = target.library
        library.control_call(control.target_receive_key, delivered)
        blob = transferred.payload["blob"]
        plan = library.control_call(control.target_restore_memory, blob)
        library.replay_cssa(plan)
        library.control_call(control.target_verify_and_finish, blob)
        target.respawn_after_restore(plan)
        self.tb.target_os.end_migration()
        self.wal.append(wal.WAL_DONE, {"via": "recovery-redeliver"})
        self._join_lineage(target)
        return self._report(
            "completed", 1, target, "sealed key redelivered; restore completed", kinds
        )

    # --------------------------------------------------------------- rebuild
    def _rebuild_instance(
        self,
        machine,
        guest_os,
        sealed_key: bytes,
        envelope: bytes,
        name_suffix: str,
    ) -> HostApplication:
        """Fresh enclave, same image, state restored from journaled bytes."""
        party = "target" if machine is self.tb.target else "source"
        with maybe_span(
            self.tb.trace,
            "recovery.rebuild",
            party=party,
            image=self.app.image.name,
            suffix=name_suffix,
        ):
            # The crashed party may have left its OS in migration mode,
            # which refuses new enclaves; recovery ends that migration.
            guest_os.end_migration()
            mirror = self.target_app if machine is self.tb.target else self.app
            mirror = mirror or self.app
            new_app = HostApplication(
                machine,
                guest_os,
                self.app.image,
                self.app.workers,
                owner=None,
                name=f"{self.app.image.name}-{name_suffix}",
            )
            new_app.completed_iterations = list(mirror.completed_iterations)
            new_app.results = {k: list(v) for k, v in mirror.results.items()}
            new_app.library.launch(owner=None)
            library = new_app.library
            try:
                self._repair_storage(machine, library)
                library.control_call(control.recovery_install_key, sealed_key)
                plan = library.control_call(control.target_restore_memory, envelope)
                library.replay_cssa(plan)
                library.control_call(control.target_verify_and_finish, envelope)
            except ReproError as exc:
                library.destroy()
                raise RecoveryError(
                    f"rebuilt instance could not restore from its journal: {exc}"
                ) from exc
            new_app.respawn_after_restore(plan)
            self._join_lineage(new_app)
            return new_app

    def _repair_storage(self, machine, library) -> None:
        """Re-commit a half-handed-off sealed-storage namespace.

        Both sides journal the full sealed table at the handoff boundary
        (the source in its ``storage-export`` record, the target in its
        ``storage-import`` record), so a rebuilt instance can repair a
        namespace whose untrusted blob was torn or lost — the monotonic
        counters survive, and without the repair the freshness rules
        would (correctly, but terminally) refuse the namespace.
        Idempotent: a namespace that moved past the journaled version is
        left alone.
        """
        journal = (
            self.target_journal if machine is self.tb.target else self.source_journal
        )
        record = _last(
            journal.records(), wal.REC_STORAGE_IMPORT
        ) or _last(journal.records(), wal.REC_STORAGE_EXPORT)
        if record is None or "sealed" not in (record.payload or {}):
            return
        library.control_call(
            control.recovery_install_storage, record.payload["sealed"]
        )

    # --------------------------------------------------------------- helpers
    def _target_alive(self) -> bool:
        return (
            self.target_app is not None
            and self.target_app.library.enclave_id is not None
        )

    def _scrap_target(self) -> None:
        """Best-effort teardown of a half-built target instance."""
        if self.target_app is None:
            return
        try:
            self.target_app.destroy()
        except ReproError:
            pass

    def _redeliver(self, sealed: bytes) -> bytes:
        with maybe_span(
            self.tb.trace, "recovery.redeliver", party="orchestrator"
        ):
            last_exc: Exception | None = None
            for _ in range(_REDELIVERY_ROUNDS):
                try:
                    return self.tb.network.transfer("kmigrate", sealed)
                except NetworkFault as exc:
                    last_exc = exc
                    self.tb.clock.advance(8_000_000)
            raise RecoveryError(
                "sealed key could not be redelivered during recovery"
            ) from last_exc

    def _join_lineage(self, app: HostApplication) -> None:
        monitor = getattr(self.tb, "monitor", None)
        if monitor is None:
            return
        lineage = monitor.lineage_of(self.app)
        if lineage is None:
            lineage = monitor.register_lineage(self.app)
        monitor.join_lineage(lineage, app)

    def _report(
        self, outcome, live, target_app, detail, kinds
    ) -> RecoveryReport:
        self.tb.trace.emit("recovery", "outcome", outcome=outcome, detail=detail)
        return RecoveryReport(
            outcome=outcome,
            live_instances=live,
            target_app=target_app,
            detail=detail,
            journal_kinds=kinds,
        )


def _has(records: list[JournalRecord], kind: str) -> bool:
    return any(r.kind == kind for r in records)


def _last(records: list[JournalRecord], kind: str) -> JournalRecord | None:
    found = None
    for record in records:
        if record.kind == kind:
            found = record
    return found
