"""Write-ahead-log conventions shared by every migration party.

Journals are named by *role*, not by object identity, so a party that
crashes and is rebuilt finds its own log again:

* ``orchestrator/<image>`` — the untrusted migration driver;
* ``enclave/source/<image>`` / ``enclave/target/<image>`` — the two
  enclave instances (records are appended from *inside* the enclave;
  secret payloads are sealed under the enclave's EGETKEY sealing key
  before they touch the log);
* ``enclave/target/agent`` — the §VI-D agent enclave's escrow log.

Record kinds are listed here so the recovery logic and the tests agree
on the vocabulary.  The orchestrator journals the protocol's *artifacts*
(sealed checkpoint envelope, sealed K_migrate blob — both ciphertext an
adversary already sees on the wire); the enclaves journal their *state
transitions* (checkpointed, channel open, key released, key installed,
live), which is what makes "a SPENT source recovers as SPENT" decidable
after every volatile bit is gone.
"""

from __future__ import annotations

# Party names (addressable by record-granularity crash faults).
PARTY_SOURCE = "source"
PARTY_TARGET = "target"
PARTY_ORCHESTRATOR = "orchestrator"
PARTY_AGENT = "agent"

MIGRATION_PARTIES = (PARTY_SOURCE, PARTY_TARGET, PARTY_ORCHESTRATOR, PARTY_AGENT)

# Orchestrator record kinds, in protocol order.
WAL_BEGIN = "begin"
WAL_CHECKPOINT = "checkpoint"        # payload: sealed envelope bytes + sequence
WAL_TARGET_BUILT = "target-built"
WAL_CHANNEL = "channel"
WAL_TRANSFERRED = "transferred"      # payload: the delivered envelope bytes
WAL_STORAGE = "storage"              # payload: the channel-sealed storage handoff blob
WAL_STORAGE_DELIVERED = "storage-delivered"
WAL_RELEASE = "release"              # payload: the sealed K_migrate blob
WAL_DELIVERED = "delivered"
WAL_RESTORED = "restored"            # payload: the CSSA replay plan
WAL_DONE = "done"
WAL_ABORT = "abort"
WAL_CANCEL = "cancel"

# Enclave-side record kinds (appended from in-enclave control code).
REC_CHECKPOINT = "checkpoint"        # sealed: K_migrate; clear: envelope + sequence
REC_CHANNEL_OPEN = "channel-open"
REC_CHANNEL = "channel"
REC_STORAGE_EXPORT = "storage-export"    # source: storage left under the session key
REC_STORAGE_IMPORT = "storage-import"    # target: sealed re-bound storage table
REC_RELEASED = "released"            # the instant the instance is SPENT
REC_CANCELLED = "cancelled"
REC_KEY_INSTALLED = "key-installed"  # sealed: the received K_migrate
REC_LIVE = "live"
REC_ESCROW = "escrow"                # agent: sealed escrow-table entry
REC_ESCROW_RELEASE = "escrow-release"

AGENT_JOURNAL = "enclave/target/agent"


def orchestrator_journal_name(image_name: str, epoch: int = 0) -> str:
    """Epoch 0 keeps the legacy name; N-hop chains (where one image name
    migrates through the same pair of hosts repeatedly) stamp each hop's
    journals with the hop number so one hop's terminal records ("done",
    "released") can never masquerade as another hop's."""
    if epoch:
        return f"orchestrator/{image_name}@{epoch}"
    return f"orchestrator/{image_name}"


def enclave_journal_name(machine_name: str, image_name: str, epoch: int = 0) -> str:
    if epoch:
        return f"enclave/{machine_name}/{image_name}@{epoch}"
    return f"enclave/{machine_name}/{image_name}"


def storage_namespace(machine_name: str, image_name: str) -> str:
    """The sealed-storage namespace for one enclave instance on one host.

    The namespace holds a single sealed table blob (rewritten whole on
    every put) guarded by three hardware monotonic counters, named by
    suffix below: the committed table *version*, the *handoff* sequence
    last imported into the namespace, and the *retired* sequence at which
    the namespace was handed off to another host.
    """
    return f"storage/{machine_name}/{image_name}"


def storage_handoff_counter(namespace: str) -> str:
    return f"{namespace}/handoff"


def storage_retired_counter(namespace: str) -> str:
    return f"{namespace}/retired"


def storage_digests(store) -> dict[str, dict]:
    """Operator-facing summary of every sealed-storage namespace.

    Maps namespace → sha256 of the sealed table blob plus the three
    guarding counters.  The digest is over ciphertext the operator can
    read anyway; the CLI prints it so two hosts' disks can be compared
    (and a rollback attempt shown) without unsealing anything.
    """
    import hashlib

    digests: dict[str, dict] = {}
    for name in store.names():
        if not name.startswith("storage/"):
            continue
        digests[name] = {
            "sha256": hashlib.sha256(bytes(store.log(name))).hexdigest()[:16],
            "version": store.counter(name),
            "handoff": store.counter(storage_handoff_counter(name)),
            "retired": store.counter(storage_retired_counter(name)),
        }
    return digests
