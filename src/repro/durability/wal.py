"""Write-ahead-log conventions shared by every migration party.

Journals are named by *role*, not by object identity, so a party that
crashes and is rebuilt finds its own log again:

* ``orchestrator/<image>`` — the untrusted migration driver;
* ``enclave/source/<image>`` / ``enclave/target/<image>`` — the two
  enclave instances (records are appended from *inside* the enclave;
  secret payloads are sealed under the enclave's EGETKEY sealing key
  before they touch the log);
* ``enclave/target/agent`` — the §VI-D agent enclave's escrow log.

Record kinds are listed here so the recovery logic and the tests agree
on the vocabulary.  The orchestrator journals the protocol's *artifacts*
(sealed checkpoint envelope, sealed K_migrate blob — both ciphertext an
adversary already sees on the wire); the enclaves journal their *state
transitions* (checkpointed, channel open, key released, key installed,
live), which is what makes "a SPENT source recovers as SPENT" decidable
after every volatile bit is gone.
"""

from __future__ import annotations

# Party names (addressable by record-granularity crash faults).
PARTY_SOURCE = "source"
PARTY_TARGET = "target"
PARTY_ORCHESTRATOR = "orchestrator"
PARTY_AGENT = "agent"

MIGRATION_PARTIES = (PARTY_SOURCE, PARTY_TARGET, PARTY_ORCHESTRATOR, PARTY_AGENT)

# Orchestrator record kinds, in protocol order.
WAL_BEGIN = "begin"
WAL_CHECKPOINT = "checkpoint"        # payload: sealed envelope bytes + sequence
WAL_TARGET_BUILT = "target-built"
WAL_CHANNEL = "channel"
WAL_TRANSFERRED = "transferred"      # payload: the delivered envelope bytes
WAL_RELEASE = "release"              # payload: the sealed K_migrate blob
WAL_DELIVERED = "delivered"
WAL_RESTORED = "restored"            # payload: the CSSA replay plan
WAL_DONE = "done"
WAL_ABORT = "abort"
WAL_CANCEL = "cancel"

# Enclave-side record kinds (appended from in-enclave control code).
REC_CHECKPOINT = "checkpoint"        # sealed: K_migrate; clear: envelope + sequence
REC_CHANNEL_OPEN = "channel-open"
REC_CHANNEL = "channel"
REC_RELEASED = "released"            # the instant the instance is SPENT
REC_CANCELLED = "cancelled"
REC_KEY_INSTALLED = "key-installed"  # sealed: the received K_migrate
REC_LIVE = "live"
REC_ESCROW = "escrow"                # agent: sealed escrow-table entry
REC_ESCROW_RELEASE = "escrow-release"

AGENT_JOURNAL = "enclave/target/agent"


def orchestrator_journal_name(image_name: str) -> str:
    return f"orchestrator/{image_name}"


def enclave_journal_name(machine_name: str, image_name: str) -> str:
    return f"enclave/{machine_name}/{image_name}"
