"""Crash-point sweep: every party, every journal-record boundary.

The write-ahead journals turn "crash at an arbitrary instant" into a
finite experiment: between two adjacent committed records nothing durable
changes, so crashing a party immediately after each record it commits
visits *every* distinguishable crash window.  For each point the sweep
runs the migration with a :class:`~repro.faults.plan.RecordCrashFault`,
lets :class:`~repro.durability.recovery.MigrationRecovery` drive the
system to rest, and checks the safety contract:

* exactly one live instance, **or** a clean abort with zero — never two;
* a SPENT source never executes again (the invariant monitor watches);
* whatever instance survives still holds the pre-migration state.

:func:`chaos_soak` composes the same crash faults with the wire faults
of PR 1 (drop / duplicate / corrupt / delay / reorder / partition) into
seeded random schedules, so crashes land *inside* degraded-mode retries
and recoveries run over a still-hostile network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.durability import wal
from repro.durability.recovery import MigrationRecovery
from repro.errors import (
    InvariantViolation,
    MigrationAborted,
    MigrationError,
    PartyCrash,
    ReproError,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import MessageFault, FaultPlan
from repro.migration.orchestrator import FAULT_TOLERANT_RETRY, MigrationOrchestrator
from repro.migration.testbed import Testbed, build_testbed
from repro.sdk.host import HostApplication
from repro.sdk.program import AtomicEntry, EnclaveProgram
from repro.sim.rng import DeterministicRng

#: The counter value every surviving instance must still report.
COUNTER_START = 7

#: Wire labels the chaos soak aims its message faults at.
CHAOS_LABELS = ("channel-request", "channel-answer", "checkpoint-chunk", "kmigrate")
CHAOS_KINDS = ("drop", "duplicate", "corrupt", "delay", "reorder")


#: How many back-to-back recoveries one plan may force before the sweep
#: declares the point wedged.  A crash *pair* needs two; anything past
#: the plan's own crash count means recovery is not converging.
MAX_RECOVERIES = 4


@dataclass
class CrashPointResult:
    """One crash point's end state, as the sweep judged it."""

    party: str
    record: int
    #: ``completed`` / ``aborted`` / ``recovered:<recovery outcome>``.
    outcome: str
    live_instances: int
    counter_ok: bool
    violations: list[str] = field(default_factory=list)
    #: ``"source:2+target:3"`` when this point was a crash pair/chain.
    pair: str = ""
    #: How many recovery drives the plan forced (0 for a clean run).
    recoveries: int = 0
    #: Virtual time spent inside recovery, first crash to rest.
    recovery_ns: int = 0
    #: Folded-stack profile of the whole run, when the caller profiled.
    profile: dict | None = None

    @property
    def safe(self) -> bool:
        return (
            self.live_instances in (0, 1)
            and self.counter_ok
            and not self.violations
        )


def _sweep_program() -> EnclaveProgram:
    program = EnclaveProgram("repro/sweep-counter-v1")

    def incr(rt, args):
        value = rt.load_global("n") + int(1 if args is None else args)
        rt.store_global("n", value)
        return value

    program.add_entry("incr", AtomicEntry(incr))
    program.add_entry("read", AtomicEntry(lambda rt, args: rt.load_global("n")))
    return program


def build_sweep_app(tb: Testbed) -> HostApplication:
    """The standard sweep subject: a counter enclave at ``COUNTER_START``."""
    built = tb.builder.build(
        "sweep-counter", _sweep_program(), n_workers=1, global_names=("n",)
    )
    tb.owner.register_image(built)
    app = HostApplication(
        tb.source, tb.source_os, built.image, [], owner=tb.owner
    ).launch()
    app.ecall_once(0, "incr", COUNTER_START)
    return app


def reference_record_counts(seed: int | str = 0) -> dict[str, int]:
    """Clean-run journal lengths per party: the sweep's crash-point axis."""
    tb = build_testbed(seed=seed)
    app = build_sweep_app(tb)
    MigrationOrchestrator(tb, retry=FAULT_TOLERANT_RETRY).migrate_enclave(app)
    image = app.image.name
    return {
        wal.PARTY_ORCHESTRATOR: tb.durable.counter(
            wal.orchestrator_journal_name(image)
        ),
        wal.PARTY_SOURCE: tb.durable.counter(
            wal.enclave_journal_name("source", image)
        ),
        wal.PARTY_TARGET: tb.durable.counter(
            wal.enclave_journal_name("target", image)
        ),
    }


def run_crash_point(
    party: str, record: int, seed: int | str = 0
) -> CrashPointResult:
    """Crash ``party`` right after its ``record``-th commit; recover; judge."""
    plan = FaultPlan(seed=seed).crash_at_record(party, record)
    return _run_plan(plan, party=party, record=record, seed=seed)


def _sweep_point(task: tuple[str, int, object]) -> CrashPointResult:
    """Module-level (hence picklable) worker for one crash point."""
    party, record, seed = task
    return run_crash_point(party, record, seed=seed)


def sweep(
    seed: int | str = 0,
    parties: tuple[str, ...] = (
        wal.PARTY_ORCHESTRATOR,
        wal.PARTY_SOURCE,
        wal.PARTY_TARGET,
    ),
    workers: int | None = None,
) -> list[CrashPointResult]:
    """Visit every (party, record boundary) crash point of a migration.

    Each point builds its own testbed and shares nothing, so the sweep
    is embarrassingly parallel: ``workers`` > 1 fans the points out
    across that many OS processes (results come back in the same
    deterministic order as the serial path).  The default stays serial —
    callers opt in because process start-up only pays off once the
    record axis is long enough.
    """
    reference = reference_record_counts(seed)
    tasks = [
        (party, record, seed)
        for party in parties
        for record in range(1, reference[party] + 1)
    ]
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [_sweep_point(task) for task in tasks]
    import multiprocessing as mp

    method = "fork" if "fork" in mp.get_all_start_methods() else None
    ctx = mp.get_context(method)
    with ctx.Pool(processes=min(workers, len(tasks))) as pool:
        return pool.map(_sweep_point, tasks)


# ---------------------------------------------------------------------------
# Crash pairs: a second crash lands inside the first recovery
# ---------------------------------------------------------------------------

def run_crash_pair(
    first: tuple[str, int],
    second: tuple[str, int],
    seed: int | str = 0,
    profile_interval_ns: int | None = None,
) -> CrashPointResult:
    """Crash ``first`` mid-migration, then ``second`` mid-recovery.

    The second :class:`~repro.faults.plan.RecordCrashFault` counts that
    party's commits from process start, so it fires during whichever
    drive (original run or recovery) reaches the record number — for
    small record numbers that is the recovery re-drive.  Pass
    ``profile_interval_ns`` to attach the sampling profiler and get a
    folded-stack profile of the whole crash-recover-crash-recover run.
    """
    plan = (
        FaultPlan(seed=seed)
        .crash_at_record(first[0], first[1])
        .crash_at_record(second[0], second[1])
    )
    pair = f"{first[0]}:{first[1]}+{second[0]}:{second[1]}"
    return _run_plan(
        plan,
        party=first[0],
        record=first[1],
        seed=seed,
        pair=pair,
        profile_interval_ns=profile_interval_ns,
    )


def _pair_point(task) -> CrashPointResult:
    """Module-level (hence picklable) worker for one crash pair."""
    first, second, seed, profile_interval_ns = task
    return run_crash_pair(
        first, second, seed=seed, profile_interval_ns=profile_interval_ns
    )


def sweep_pairs(
    seed: int | str = 0,
    parties: tuple[str, ...] = (
        wal.PARTY_ORCHESTRATOR,
        wal.PARTY_SOURCE,
        wal.PARTY_TARGET,
    ),
    stride: int = 2,
    limit: int | None = None,
    workers: int | None = None,
    profile_interval_ns: int | None = None,
) -> list[CrashPointResult]:
    """A sampled sweep over (first crash, second crash) pairs.

    The full pair matrix is quadratic in journal length, so this visits
    every ``stride``-th record on each axis (``stride=1`` for the full
    matrix) and optionally truncates at ``limit`` points.  Pair order is
    deterministic, so a sampled prefix is a stable subset.
    """
    reference = reference_record_counts(seed)
    tasks = []
    for party_a in parties:
        for rec_a in range(1, reference[party_a] + 1, stride):
            for party_b in parties:
                for rec_b in range(1, reference[party_b] + 1, stride):
                    tasks.append(
                        ((party_a, rec_a), (party_b, rec_b), seed, profile_interval_ns)
                    )
    if limit is not None:
        tasks = tasks[:limit]
    if workers is None or workers <= 1 or len(tasks) <= 1:
        return [_pair_point(task) for task in tasks]
    import multiprocessing as mp

    method = "fork" if "fork" in mp.get_all_start_methods() else None
    ctx = mp.get_context(method)
    with ctx.Pool(processes=min(workers, len(tasks))) as pool:
        return pool.map(_pair_point, tasks)


# ---------------------------------------------------------------------------
# One plan, one verdict (shared by the sweep and the chaos soak)
# ---------------------------------------------------------------------------

def _run_plan(
    plan: FaultPlan,
    party: str = "",
    record: int = 0,
    seed: int | str = 0,
    pair: str = "",
    profile_interval_ns: int | None = None,
) -> CrashPointResult:
    tb = build_testbed(seed=seed)
    if profile_interval_ns is not None:
        tb.telemetry.ensure_profiler(profile_interval_ns).enable()
    app = build_sweep_app(tb)
    orch = MigrationOrchestrator(
        tb, retry=FAULT_TOLERANT_RETRY, faults=FaultInjector(plan)
    )
    live_app: HostApplication | None = None
    recoveries = 0
    recovery_started_ns: int | None = None
    recovery_ns = 0
    try:
        result = orch.migrate_enclave(app)
        outcome, live_app = "completed", result.target_app
    except MigrationAborted:
        # A clean abort pre-release leaves the source back in service; an
        # abort past the point of no return leaves nothing alive.
        outcome = "aborted"
        if app.library.enclave_id is not None and not orch._source_crashed:
            live_app = app
    except PartyCrash:
        # A crash pair/chain crashes a party *during* recovery: keep
        # re-driving (each drive consumes one RecordCrashFault, so this
        # converges) up to the bounded attempt budget.
        recovery_started_ns = tb.clock.now_ns
        outcome = "wedged"
        while recoveries < MAX_RECOVERIES:
            recoveries += 1
            try:
                report = MigrationRecovery(tb, app, orchestrator=orch).recover()
            except PartyCrash:
                continue
            except ReproError as exc:
                # A crash firing *inside* recovery (the pair's second
                # point) surfaces wrapped, e.g. as RecoveryError with a
                # PartyCrash cause; the fault is spent now, so re-drive.
                if isinstance(exc.__cause__, PartyCrash):
                    continue
                raise
            outcome = f"recovered:{report.outcome}"
            if report.live_instances:
                live_app = (
                    report.target_app if report.target_app is not None else app
                )
            break
        recovery_ns = tb.clock.now_ns - recovery_started_ns

    violations = _drain_monitor(tb)
    if outcome == "wedged":
        violations = ["recovery did not converge within "
                      f"{MAX_RECOVERIES} drives"] + violations
    live = _live_count(tb, app, live_app)
    counter_ok = True
    if live_app is not None:
        try:
            counter_ok = live_app.ecall_once(0, "read") == COUNTER_START
        except ReproError:
            counter_ok = False
    profiler = tb.telemetry.profiler
    return CrashPointResult(
        party=party,
        record=record,
        outcome=outcome,
        live_instances=live,
        counter_ok=counter_ok,
        violations=violations,
        pair=pair,
        recoveries=recoveries,
        recovery_ns=recovery_ns,
        profile=(
            profiler.profile().as_dict()
            if profiler is not None and profiler.sample_count
            else None
        ),
    )


def _drain_monitor(tb: Testbed) -> list[str]:
    monitor = getattr(tb, "monitor", None)
    if monitor is None:
        return []
    try:
        monitor.check_now()
    except InvariantViolation:
        pass
    return list(monitor.violations)


def _live_count(
    tb: Testbed, app: HostApplication, live_app: HostApplication | None
) -> int:
    monitor = getattr(tb, "monitor", None)
    if monitor is not None and monitor.lineage_of(app) is not None:
        return monitor.lineage_live_count(app)
    return 0 if live_app is None else 1


# ---------------------------------------------------------------------------
# Agent crash points (§VI-D escrow, exactly-once across crashes)
# ---------------------------------------------------------------------------

def run_agent_crash_point(record: int, seed: int | str = 0) -> CrashPointResult:
    """Crash the agent after its ``record``-th commit, recover, re-drive.

    Record 1 is the ``escrow`` commit: recovery reloads the entry and the
    release proceeds — the migration completes.  Record 2 is the
    ``escrow-release`` commit: the entry recovers as *released*, a second
    release is refused, and the run ends as a clean abort with zero live
    instances (the source self-destroyed at escrow time) — exactly-once
    beats availability.
    """
    from repro.migration.agent import AgentService, build_agent_image

    tb = build_testbed(seed=seed)
    agent_built = build_agent_image(tb.builder)
    tb.owner.set_agent_image(agent_built)
    app = build_sweep_app(tb)
    agent = AgentService(tb, agent_built)
    plan = FaultPlan(seed=seed).crash_at_record(wal.PARTY_AGENT, record)
    FaultInjector(plan).attach(tb)

    orch = MigrationOrchestrator(tb, retry=FAULT_TOLERANT_RETRY)
    orch.checkpoint_enclave(app)
    try:
        agent.escrow_from(app)
    except PartyCrash:
        _crash_agent(agent)
        agent.recover()
    target = orch.build_virgin_target(app)
    outcome, live_app = "completed", target
    try:
        agent.release_to(target)
    except PartyCrash:
        _crash_agent(agent)
        agent.recover()
        try:
            agent.release_to(target)
        except MigrationError:
            # The journaled release survives the crash: refuse, abort.
            target.destroy()
            outcome, live_app = "aborted", None
    if live_app is not None:
        ckpt = app.library.last_checkpoint.envelope.to_bytes()
        replay = orch.restore(target, ckpt)
        target.respawn_after_restore(replay)
        tb.target_os.end_migration()

    counter_ok = True
    if live_app is not None:
        counter_ok = live_app.ecall_once(0, "read") == COUNTER_START
    return CrashPointResult(
        party=wal.PARTY_AGENT,
        record=record,
        outcome=outcome,
        live_instances=0 if live_app is None else 1,
        counter_ok=counter_ok,
        violations=_drain_monitor(tb),
    )


def _crash_agent(agent) -> None:
    """Model the agent process dying: its enclave's EPC state is gone."""
    for thread in agent.app.process.threads:
        thread.suspended = True
    if agent.app.library.enclave_id is not None:
        agent.app.library.destroy()


# ---------------------------------------------------------------------------
# Chaos soak: crashes inside a hostile network
# ---------------------------------------------------------------------------

def chaos_soak(seed: int | str = 0, iterations: int = 6) -> list[CrashPointResult]:
    """Seeded random schedules mixing record crashes with wire faults.

    Every iteration must end safe (``CrashPointResult.safe``); the caller
    asserts that.  The plans are fully determined by ``seed``, so a
    failing iteration replays exactly.
    """
    reference = reference_record_counts(seed)
    rng = DeterministicRng(seed).fork("chaos-soak")
    results = []
    for iteration in range(iterations):
        plan = FaultPlan(seed=f"{seed}/soak/{iteration}")
        for _ in range(rng.randint(0, 2)):
            label = rng.choice(CHAOS_LABELS)
            nth = rng.randint(1, 3) if label == "checkpoint-chunk" else 1
            plan.message_faults.append(
                MessageFault(rng.choice(CHAOS_KINDS), label, nth)
            )
        if rng.random() < 0.25:
            plan.partition(duration_ns=rng.randint(4, 24) * 1_000_000)
        party = rng.choice(tuple(reference))
        crash_record = rng.randint(1, reference[party])
        plan.crash_at_record(party, crash_record)
        result = _run_plan(plan, party=party, record=crash_record, seed=seed)
        results.append(result)
    return results
