"""Crash-consistent migration: write-ahead journals and recovery.

Submodules:

* :mod:`repro.durability.store` — stable storage (byte logs + hardware
  monotonic counters);
* :mod:`repro.durability.journal` — the CRC-framed, counter-stamped
  append-only journal each party writes;
* :mod:`repro.durability.wal` — naming and record-kind conventions;
* :mod:`repro.durability.recovery` — rebuilds a crashed migration from
  the journals and converges to at most one live instance;
* :mod:`repro.durability.sweep` — the crash-point sweep and chaos-soak
  harnesses that exercise all of the above.
"""

from repro.durability.journal import Journal, JournalRecord
from repro.durability.store import DurableStore

__all__ = ["DurableStore", "Journal", "JournalRecord"]
