"""Append-only, CRC-framed, counter-stamped write-ahead journal.

Each migration party keeps one journal per protocol run and appends a
record at every state transition.  A record commits in two moves:

1. the CRC-framed record bytes are appended to the party's byte log on
   the :class:`~repro.durability.store.DurableStore` (untrusted disk);
2. the party's hardware monotonic counter is bumped — *this* is the
   commit point.

On replay the counter is the ground truth the disk has to agree with:

* a frame whose counter is exactly one past the hardware counter is a
  **torn tail** — the crash hit between the append and the bump — and is
  silently dropped (the record never committed);
* a journal whose last committed counter is *below* the hardware counter
  has been truncated or substituted with an earlier copy and is refused
  with :class:`~repro.errors.JournalRolledBack` (the Alder-et-al.
  monotonic-counter rollback defense);
* a frame that fails its CRC, or counters that are not a gapless
  ascending run from 1, mean the log bytes themselves are damaged:
  :class:`~repro.errors.JournalCorrupt`.

Record payloads are the restricted :mod:`repro.serde` value universe.
Secrets never appear in a payload in the clear — parties that journal
secret material (K_migrate, escrow entries) seal it into an
:class:`~repro.crypto.authenc.Envelope` under an enclave sealing key
*before* appending, and store only the envelope bytes.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterable

from repro import serde
from repro.durability.store import DurableStore
from repro.errors import JournalCorrupt, JournalRolledBack
from repro.telemetry.spans import maybe_span

_FRAME_HEADER = struct.Struct("<II")  # body length, crc32(body)


@dataclass(frozen=True)
class JournalRecord:
    """One committed journal record."""

    counter: int
    kind: str
    payload: Any

    def __repr__(self) -> str:  # keep payloads out of assertion output
        return f"<JournalRecord #{self.counter} {self.kind!r}>"


class Journal:
    """A named append-only journal owned by one migration party."""

    def __init__(self, store: DurableStore, name: str, party: str) -> None:
        self.store = store
        self.name = name
        #: Which protocol party writes this journal ("source", "target",
        #: "agent", "orchestrator") — used to address record-granularity
        #: crash faults.
        self.party = party

    # ----------------------------------------------------------------- write
    def append(self, kind: str, payload: Any = None, defer_charge: bool = False) -> int:
        """Commit one record; returns its counter value.

        The record is durable the moment the monotonic counter is bumped.
        If a crash fault is planned for this party at this record index,
        it fires *after* the commit — "crash at record boundary" always
        means the record itself survived.

        Commits on a telemetry-wired store charge the modelled fsync cost
        to the virtual clock and report ``journal.commit_latency_ns`` /
        ``journal.appends_total`` per party — journal commits sit on the
        migration hot path, so their cost must show up in the figures.

        ``defer_charge=True`` skips the clock charge: an fsync blocks
        only the committing thread, so a cost-yielding caller (the
        control thread's checkpoint generator) yields the commit cost to
        the scheduler instead, letting other VCPUs keep running through
        the I/O wait rather than modelling it as a stop-the-world stall.
        """
        start_ns = self.store.clock.now_ns if self.store.clock is not None else None
        counter = self.store.counter(self.name) + 1
        body = serde.pack({"c": counter, "k": kind, "p": payload})
        frame = _FRAME_HEADER.pack(len(body), zlib.crc32(body)) + body
        self.store.log(self.name).extend(frame)
        if not defer_charge and self.store.clock is not None and self.store.commit_cost_ns:
            # The synchronous fsync stall gets its own span so the
            # critical-path engine (and `repro diff`) can blame journal
            # commits directly instead of smearing them over the
            # enclosing protocol step.  Deferred charges are yielded to
            # the scheduler and attributed to whatever runs meanwhile.
            with maybe_span(
                getattr(self.store, "trace", None),
                "journal.commit",
                party=self.party,
                journal=self.name,
                record_kind=kind,
            ):
                self.store.clock.advance(self.store.commit_cost_ns)
        self.store.counter_bump(self.name)
        if getattr(self.store, "trace", None) is not None:
            # Payload-free by construction: journal payloads may hold
            # sealed blobs, and nothing sealed ever enters the trace.
            self.store.trace.emit(
                "journal",
                "append",
                journal=self.name,
                party=self.party,
                kind=kind,
                counter=counter,
                n_bytes=len(frame),
            )
        if self.store.metrics is not None:
            self.store.metrics.counter("journal.appends_total", party=self.party).inc()
            if start_ns is not None:
                elapsed = self.store.clock.now_ns - start_ns
                if defer_charge:
                    # The caller yields the commit cost to the scheduler;
                    # record the modelled latency it will experience.
                    elapsed += self.store.commit_cost_ns
                self.store.metrics.histogram(
                    "journal.commit_latency_ns", party=self.party
                ).observe(elapsed)
        if self.store.injector is not None:
            self.store.injector.record_appended(self.party, self.name, counter)
        return counter

    # ------------------------------------------------------------------ read
    def records(self) -> list[JournalRecord]:
        """Replay the journal, validating frames against the counter.

        Raises :class:`JournalCorrupt` or :class:`JournalRolledBack`;
        see the module docstring for the exact rules.
        """
        raw = bytes(self.store.log(self.name))
        hw_counter = self.store.counter(self.name)
        records: list[JournalRecord] = []
        offset = 0
        while offset < len(raw):
            if offset + _FRAME_HEADER.size > len(raw):
                # Trailing partial header: a torn append, never committed.
                break
            length, crc = _FRAME_HEADER.unpack_from(raw, offset)
            body = raw[offset + _FRAME_HEADER.size : offset + _FRAME_HEADER.size + length]
            if len(body) < length:
                break  # torn tail: body cut short mid-append
            if zlib.crc32(body) != crc:
                raise JournalCorrupt(
                    f"journal {self.name!r}: CRC mismatch in frame at offset {offset}"
                )
            try:
                decoded = serde.unpack(body)
                counter, kind, payload = decoded["c"], decoded["k"], decoded["p"]
            except (serde.SerdeError, KeyError, TypeError) as exc:
                raise JournalCorrupt(
                    f"journal {self.name!r}: malformed record at offset {offset}: {exc}"
                ) from exc
            if counter != len(records) + 1:
                raise JournalCorrupt(
                    f"journal {self.name!r}: counter {counter} out of sequence "
                    f"(expected {len(records) + 1})"
                )
            if counter == hw_counter + 1:
                # Frame written but counter never bumped: drop the tail.
                break
            if counter > hw_counter + 1:
                raise JournalCorrupt(
                    f"journal {self.name!r}: record #{counter} is beyond the "
                    f"hardware counter ({hw_counter}) by more than one"
                )
            records.append(JournalRecord(counter, kind, payload))
            offset += _FRAME_HEADER.size + length
        if len(records) < hw_counter:
            raise JournalRolledBack(
                f"journal {self.name!r} holds {len(records)} committed records but the "
                f"hardware monotonic counter says {hw_counter}: the log was truncated "
                f"or rolled back to an earlier copy — refusing to recover from it"
            )
        return records

    # --------------------------------------------------------------- queries
    def last(self, *kinds: str) -> JournalRecord | None:
        """The most recent record whose kind is in ``kinds`` (any, if empty)."""
        found = None
        for record in self.records():
            if not kinds or record.kind in kinds:
                found = record
        return found

    def find(self, kind: str) -> list[JournalRecord]:
        return [r for r in self.records() if r.kind == kind]

    def has(self, kind: str) -> bool:
        return any(r.kind == kind for r in self.records())

    def kinds(self) -> list[str]:
        return [r.kind for r in self.records()]

    def __len__(self) -> int:
        return len(self.records())


def journals_in(store: DurableStore, prefix: str = "") -> Iterable[str]:
    """Names of journals on ``store`` starting with ``prefix``."""
    return [name for name in store.names() if name.startswith(prefix)]
