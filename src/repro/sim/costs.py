"""Calibrated cost model.

Every modelled duration in the reproduction comes from one instance of
:class:`CostModel`, so experiments are reproducible and calibration lives in
exactly one place.  The default constants are calibrated against the numbers
the paper reports for its Skylake testbed (DELL Inspiron 7559, i7-6700HQ):

* RC4 over the 20 KB checkpoint takes about 200 us  -> 10 ns/byte.
* DES over the same checkpoint takes about 300 us   -> 15 ns/byte.
* Two-phase checkpointing totals ~255 us with <=4 enclaves (Fig. 9c).
* Restoring an enclave takes ~175 us, linear in enclave count (Fig. 10a).
* Migrating a 2 GB VM moves ~1 GB and takes ~30 s (Fig. 10b/10d).
* Downtime without enclaves is ~8 ms (Fig. 10c).

The absolute values are a model (we have no Skylake SGX part here); the
benchmark suite validates the *shapes* of the paper's figures, which emerge
from mechanism (VCPU contention, serial rebuild, per-byte crypto cost), not
from these constants alone.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostModel:
    """Modelled durations, all in nanoseconds (or ns per byte / per page)."""

    # -- cipher and hash throughput (ns per byte) ---------------------------
    rc4_ns_per_byte: float = 10.0
    des_ns_per_byte: float = 15.0
    aes_sw_ns_per_byte: float = 12.0
    aes_ni_ns_per_byte: float = 2.5
    sha256_ns_per_byte: float = 1.5
    memcpy_ns_per_byte: float = 0.25

    # -- public-key operations ----------------------------------------------
    dh_keygen_ns: int = 180_000
    dh_shared_secret_ns: int = 180_000
    rsa_sign_ns: int = 650_000
    rsa_verify_ns: int = 30_000

    # -- SGX instruction latencies -------------------------------------------
    ecreate_ns: int = 10_000
    eadd_page_ns: int = 1_500
    eextend_page_ns: int = 1_500
    einit_ns: int = 20_000
    eenter_ns: int = 3_800
    eexit_ns: int = 3_300
    eresume_ns: int = 3_800
    aex_ns: int = 7_000
    ewb_page_ns: int = 10_000
    eldb_page_ns: int = 10_000
    eremove_page_ns: int = 700
    ereport_ns: int = 4_000
    egetkey_ns: int = 3_000
    # Extra penalty for touching an EPC page that was evicted (page-fault
    # round trip through the driver plus ELDB).  This is what makes the
    # memory-hungry nbench kernels slow inside an enclave (Fig. 9a).
    epc_fault_ns: int = 22_000

    # -- guest scheduling ------------------------------------------------------
    context_switch_ns: int = 1_200
    scheduler_quantum_ns: int = 15_000
    signal_delivery_ns: int = 3_000
    hypercall_ns: int = 2_000
    upcall_ns: int = 4_000

    # -- network (migration link between source and target machine) ----------
    net_bandwidth_bytes_per_s: int = 37_500_000  # 300 Mbit/s effective
    net_latency_ns: int = 250_000  # one-way, same rack

    # -- pre-copy delta encoding ----------------------------------------------
    # A page re-dirtied after its first full send ships as an XOR+RLE
    # delta against the copy the target already holds.  The ratio is the
    # wire bytes of such a delta as a fraction of the full page; guest
    # writers touch a few cache lines per re-dirtied page, so deltas
    # compress well (see docs/CALIBRATION.md for the measurement).
    precopy_delta_ratio: float = 0.32
    delta_page_header_bytes: int = 16  # page number + run table per delta

    # -- wide-area paths used by attestation ----------------------------------
    wan_latency_ns: int = 18_000_000  # one-way to owner / IAS
    ias_processing_ns: int = 5_000_000

    # -- durability ------------------------------------------------------------
    # One write-ahead journal commit: append + fsync on commodity SSD
    # plus the monotonic-counter bump.  Charged on every party's state
    # transition, so it sits on the migration hot path.
    # Calibrated by scripts/calibrate_fsync.py: median of 2000 timed
    # 256-byte append+fsync cycles on this repo's filesystem (median
    # 130,503 ns, p10 100,637 ns, p90 202,509 ns, mean 144,555 ns).
    journal_commit_ns: int = 131_000

    # -- misc ------------------------------------------------------------------
    page_size: int = 4096

    # ------------------------------------------------------------------ helpers
    def cipher_ns(self, algorithm: str, n_bytes: int) -> int:
        """Modelled time to run ``algorithm`` over ``n_bytes`` of data."""
        per_byte = {
            "rc4": self.rc4_ns_per_byte,
            "des": self.des_ns_per_byte,
            "aes": self.aes_sw_ns_per_byte,
            "aes-ni": self.aes_ni_ns_per_byte,
        }.get(algorithm)
        if per_byte is None:
            raise ValueError(f"unknown cipher algorithm: {algorithm!r}")
        return int(per_byte * n_bytes)

    def hash_ns(self, n_bytes: int) -> int:
        """Modelled time to hash ``n_bytes`` with SHA-256."""
        return int(self.sha256_ns_per_byte * n_bytes)

    def memcpy_ns(self, n_bytes: int) -> int:
        """Modelled time to copy ``n_bytes`` between buffers."""
        return int(self.memcpy_ns_per_byte * n_bytes)

    def net_transfer_ns(self, n_bytes: int) -> int:
        """Modelled time to push ``n_bytes`` over the migration link."""
        serialize = int(n_bytes * 1_000_000_000 / self.net_bandwidth_bytes_per_s)
        return self.net_latency_ns + serialize

    def wan_round_trip_ns(self) -> int:
        """Modelled round-trip to a wide-area service (owner or IAS)."""
        return 2 * self.wan_latency_ns

    def enclave_build_ns(self, n_pages: int) -> int:
        """Modelled time to rebuild an enclave of ``n_pages`` EPC pages."""
        return (
            self.ecreate_ns
            + n_pages * (self.eadd_page_ns + self.eextend_page_ns)
            + self.einit_ns
        )


DEFAULT_COSTS = CostModel()
