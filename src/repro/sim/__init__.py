"""Simulation substrate: virtual time, cost model, cooperative scheduler.

Everything in the reproduction that claims a duration charges it to a
:class:`~repro.sim.clock.VirtualClock` using constants from
:class:`~repro.sim.costs.CostModel`.  Interleaved execution (the quiescence
protocol, the data-consistency attack) runs on the round-robin
:class:`~repro.sim.engine.Engine`, which models VCPU contention.
"""

from repro.sim.clock import Stopwatch, VirtualClock
from repro.sim.costs import CostModel
from repro.sim.engine import Engine, SimThread, ThreadState
from repro.sim.rng import DeterministicRng
from repro.sim.trace import EventTrace

__all__ = [
    "CostModel",
    "DeterministicRng",
    "Engine",
    "EventTrace",
    "SimThread",
    "Stopwatch",
    "ThreadState",
    "VirtualClock",
]
