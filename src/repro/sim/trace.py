"""Structured event tracing and metric counters.

The experiments assert on traces ("the source enclave never resumed after
self-destroy", "K_migrate was transferred exactly once") and the benchmark
harness reads metrics ("bytes on the wire", "downtime window") out of them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.sim.clock import VirtualClock


@dataclass(frozen=True)
class Event:
    """One traced event at a point in virtual time."""

    t_ns: int
    category: str
    name: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.t_ns / 1000:.1f}us] {self.category}.{self.name} {self.payload}"


class EventTrace:
    """An append-only trace of events plus named numeric counters."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._events: list[Event] = []
        self._counters: Counter[str] = Counter()
        self._observers: list[Any] = []

    # ---------------------------------------------------------------- record
    def emit(self, category: str, name: str, /, **payload: Any) -> Event:
        """Record an event at the current virtual time."""
        event = Event(self._clock.now_ns, category, name, payload)
        self._events.append(event)
        for observer in self._observers:
            observer(event)
        return event

    def add_observer(self, observer) -> None:
        """Call ``observer(event)`` on every future emit (live monitors).

        Observers survive :meth:`clear` — they watch the stream, not the
        stored history."""
        self._observers.append(observer)

    def count(self, counter: str, delta: int = 1) -> None:
        """Add ``delta`` to the named counter."""
        self._counters[counter] += delta

    # ---------------------------------------------------------------- query
    @property
    def events(self) -> list[Event]:
        return list(self._events)

    def counter(self, name: str) -> int:
        return self._counters[name]

    def select(self, category: str | None = None, name: str | None = None) -> Iterator[Event]:
        """Iterate events matching the given category and/or name."""
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            yield event

    def first(self, category: str | None = None, name: str | None = None) -> Event | None:
        return next(self.select(category, name), None)

    def last(self, category: str | None = None, name: str | None = None) -> Event | None:
        found = None
        for event in self.select(category, name):
            found = event
        return found

    def count_of(self, category: str | None = None, name: str | None = None) -> int:
        return sum(1 for _ in self.select(category, name))

    def tally(self, category: str) -> Counter[str]:
        """Event-name histogram for one category (e.g. every ``"fault"``
        the injector fired, or every degraded-mode ``"migration"`` event)."""
        return Counter(event.name for event in self.select(category))

    def clear(self) -> None:
        self._events.clear()
        self._counters.clear()
