"""Structured event tracing and metric counters.

The experiments assert on traces ("the source enclave never resumed after
self-destroy", "K_migrate was transferred exactly once") and the benchmark
harness reads metrics ("bytes on the wire", "downtime window") out of them.

Counters are backed by a :class:`~repro.telemetry.metrics.MetricsRegistry`
(the trace's ``metrics`` attribute), which the telemetry layer shares for
its own typed instruments; the old ``count``/``counter`` API is preserved
on top of it.  When a :class:`~repro.telemetry.spans.Tracer` is attached
(``trace.tracer``, wired by :class:`repro.telemetry.Telemetry`),
instrumented components also emit spans through it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.sim.clock import VirtualClock
from repro.telemetry.metrics import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.spans import Tracer


@dataclass(frozen=True)
class Event:
    """One traced event at a point in virtual time."""

    t_ns: int
    category: str
    name: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.t_ns / 1000:.1f}us] {self.category}.{self.name} {self.payload}"


class EventsView(Sequence):
    """A read-only, live view of the trace's event list.

    Replaces the full-list copy the old ``events`` property made on every
    access; it indexes and iterates the underlying storage directly and
    compares equal to plain lists so existing assertions keep working.
    """

    __slots__ = ("_events",)

    def __init__(self, events: list[Event]) -> None:
        self._events = events

    def __len__(self) -> int:
        return len(self._events)

    def __getitem__(self, index):
        return self._events[index]

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __eq__(self, other) -> bool:
        if isinstance(other, EventsView):
            return self._events == other._events
        if isinstance(other, (list, tuple)):
            return list(self._events) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EventsView of {len(self._events)} events>"


class EventTrace:
    """An append-only trace of events plus named numeric counters."""

    def __init__(self, clock: VirtualClock, metrics: MetricsRegistry | None = None) -> None:
        self._clock = clock
        self._events: list[Event] = []
        self._observers: list[Any] = []
        #: Typed metrics registry backing :meth:`count`; the telemetry
        #: layer shares this registry for spans-adjacent instruments.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Span tracer, attached by :class:`repro.telemetry.Telemetry`.
        #: Components treat it as optional so bare traces stay cheap.
        self.tracer: "Tracer | None" = None

    # ---------------------------------------------------------------- record
    def emit(self, category: str, name: str, /, **payload: Any) -> Event:
        """Record an event at the current virtual time."""
        event = Event(self._clock.now_ns, category, name, payload)
        self._events.append(event)
        for observer in self._observers:
            observer(event)
        return event

    def add_observer(self, observer) -> None:
        """Call ``observer(event)`` on every future emit (live monitors).

        Observers survive :meth:`clear` — they watch the stream, not the
        stored history."""
        self._observers.append(observer)

    def count(self, counter: str, delta: int = 1) -> None:
        """Add ``delta`` to the named counter."""
        self.metrics.counter(counter).inc(delta)

    # ---------------------------------------------------------------- query
    @property
    def events(self) -> EventsView:
        return EventsView(self._events)

    def counter(self, name: str) -> int:
        return int(self.metrics.value(name, default=0))

    def select(self, category: str | None = None, name: str | None = None) -> Iterator[Event]:
        """Iterate events matching the given category and/or name."""
        for event in self._events:
            if category is not None and event.category != category:
                continue
            if name is not None and event.name != name:
                continue
            yield event

    def first(self, category: str | None = None, name: str | None = None) -> Event | None:
        return next(self.select(category, name), None)

    def last(self, category: str | None = None, name: str | None = None) -> Event | None:
        found = None
        for event in self.select(category, name):
            found = event
        return found

    def count_of(self, category: str | None = None, name: str | None = None) -> int:
        return sum(1 for _ in self.select(category, name))

    def tally(self, category: str) -> Counter[str]:
        """Event-name histogram for one category (e.g. every ``"fault"``
        the injector fired, or every degraded-mode ``"migration"`` event)."""
        return Counter(event.name for event in self.select(category))

    def clear(self) -> None:
        """Drop stored events and zero every metric.

        Resetting the registry matters for observers that read counters
        mid-run: a cleared trace with stale counters would silently report
        the previous run's numbers."""
        self._events.clear()
        self.metrics.reset()
        if self.tracer is not None:
            self.tracer.clear()
