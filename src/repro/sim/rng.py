"""Deterministic randomness.

All "random" material in the simulation (keys, nonces, workload data) comes
from seeded generators so that every test and benchmark run is exactly
reproducible.  Security in this model comes from the *protocol structure*,
not from entropy quality, so a PRNG is the right substitute for an HWRNG.
"""

from __future__ import annotations

import random


class DeterministicRng:
    """A seeded random source with the handful of draws the system needs."""

    def __init__(self, seed: int | str | bytes = 0) -> None:
        self._rng = random.Random(seed)
        self.seed = seed

    def bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        return self._rng.randbytes(n)

    def u64(self) -> int:
        """Return a pseudo-random unsigned 64-bit integer."""
        return self._rng.getrandbits(64)

    def randint(self, lo: int, hi: int) -> int:
        """Return a pseudo-random integer in ``[lo, hi]``."""
        return self._rng.randint(lo, hi)

    def getrandbits(self, k: int) -> int:
        """Return a pseudo-random integer with ``k`` random bits."""
        return self._rng.getrandbits(k)

    def choice(self, seq):
        """Return a pseudo-random element of ``seq``."""
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        """Shuffle ``seq`` in place."""
        self._rng.shuffle(seq)

    def random(self) -> float:
        """Return a pseudo-random float in ``[0, 1)``."""
        return self._rng.random()

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent child generator from this one.

        Children created with distinct labels produce independent streams,
        which keeps component randomness decoupled from draw order.
        """
        return DeterministicRng(f"{self.seed}/{label}")
