"""Virtual time.

The reproduction never reads the wall clock for results.  All modelled
durations are charged to a :class:`VirtualClock` in integer nanoseconds, so
experiment output is deterministic and the benchmarks report the same kind
of quantity the paper reports (microseconds / milliseconds of system time),
independent of how fast the simulation itself happens to run.
"""

from __future__ import annotations

from dataclasses import dataclass, field


NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


class VirtualClock:
    """A monotonically advancing virtual clock with nanosecond resolution."""

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise ValueError("clock cannot start before t=0")
        self._now_ns = int(start_ns)
        #: Optional ``callback(prev_ns, now_ns)`` invoked after every
        #: forward move of the clock.  A single slot, not a list: the
        #: only consumer is the sampling profiler, and the hot path
        #: (every modelled cost charge) must stay one attribute check
        #: when profiling is off.
        self.on_advance = None

    @property
    def now_ns(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self) -> float:
        """Current virtual time in microseconds."""
        return self._now_ns / NS_PER_US

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now_ns / NS_PER_MS

    def advance(self, delta_ns: int) -> int:
        """Advance the clock by ``delta_ns`` and return the new time.

        Negative durations are rejected: virtual time never runs backwards.
        """
        delta_ns = int(delta_ns)
        if delta_ns < 0:
            raise ValueError(f"cannot advance clock by {delta_ns} ns")
        prev_ns = self._now_ns
        self._now_ns = prev_ns + delta_ns
        if self.on_advance is not None and delta_ns:
            self.on_advance(prev_ns, self._now_ns)
        return self._now_ns

    def advance_to(self, t_ns: int) -> int:
        """Advance the clock to absolute time ``t_ns`` if it is later."""
        if t_ns > self._now_ns:
            prev_ns = self._now_ns
            self._now_ns = int(t_ns)
            if self.on_advance is not None:
                self.on_advance(prev_ns, self._now_ns)
        return self._now_ns

    def stopwatch(self) -> "Stopwatch":
        """Return a stopwatch that measures virtual time on this clock."""
        return Stopwatch(self)


@dataclass
class Stopwatch:
    """Measures elapsed virtual time between :meth:`start` and :meth:`stop`."""

    clock: VirtualClock
    start_ns: int = field(default=0)
    stop_ns: int | None = field(default=None)

    def __post_init__(self) -> None:
        self.start_ns = self.clock.now_ns

    def restart(self) -> None:
        self.start_ns = self.clock.now_ns
        self.stop_ns = None

    def stop(self) -> int:
        """Freeze the stopwatch and return the elapsed nanoseconds."""
        self.stop_ns = self.clock.now_ns
        return self.elapsed_ns

    @property
    def elapsed_ns(self) -> int:
        end = self.stop_ns if self.stop_ns is not None else self.clock.now_ns
        return end - self.start_ns

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / NS_PER_US

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_ns / NS_PER_MS
