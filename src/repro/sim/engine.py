"""Cooperative round-robin execution engine with VCPU contention.

Threads are Python generators that yield the modelled cost (in ns) of the
work they just performed, or a :class:`Block` marker when they must wait for
a condition.  Each scheduling round runs at most ``n_vcpus`` ready threads
"in parallel"; the virtual clock advances by the longest step in the round
plus a context-switch charge.  With more runnable threads than VCPUs a
thread is only scheduled every ``ceil(runnable / n_vcpus)`` rounds — this is
the contention that makes two-phase checkpointing slower at 8 enclaves than
at 4 in Figure 9(c) of the paper.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Generator, Iterable

from repro.errors import ReproError
from repro.sim.clock import VirtualClock


class EngineStall(ReproError):
    """The engine made no progress: every live thread is blocked."""


class ThreadState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    FINISHED = "finished"


@dataclass
class Block:
    """Yielded by a thread body to wait until ``predicate()`` is true."""

    predicate: Callable[[], bool]
    poll_cost_ns: int = 500


ThreadBody = Generator[int | Block, None, None]


class SimThread:
    """A schedulable thread wrapping a generator body."""

    def __init__(self, name: str, body: ThreadBody) -> None:
        self.name = name
        self._body = body
        self.state = ThreadState.READY
        self._block: Block | None = None
        self.result: object = None
        self.steps_run = 0
        self.cpu_time_ns = 0
        # An OS-level suspension (scheduler's stop_thread): the thread keeps
        # its state but is never scheduled while this is set.
        self.suspended = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimThread {self.name} {self.state.value}>"

    @property
    def finished(self) -> bool:
        return self.state is ThreadState.FINISHED

    def maybe_wake(self) -> None:
        """Move a blocked thread back to READY if its condition now holds."""
        if self.state is ThreadState.BLOCKED and self._block is not None:
            if self._block.predicate():
                self._block = None
                self.state = ThreadState.READY

    def run_step(self) -> int:
        """Advance the body by one yield; return the step's modelled cost."""
        if self.state is not ThreadState.READY:
            raise ReproError(f"cannot step thread in state {self.state}")
        try:
            yielded = next(self._body)
        except StopIteration as stop:
            self.state = ThreadState.FINISHED
            self.result = stop.value
            return 0
        self.steps_run += 1
        if isinstance(yielded, Block):
            self._block = yielded
            self.state = ThreadState.BLOCKED
            self.cpu_time_ns += yielded.poll_cost_ns
            return yielded.poll_cost_ns
        cost = int(yielded)
        if cost < 0:
            raise ReproError(f"thread {self.name} yielded negative cost {cost}")
        self.cpu_time_ns += cost
        return cost


class Engine:
    """Round-robin scheduler over :class:`SimThread` on ``n_vcpus`` VCPUs."""

    def __init__(self, clock: VirtualClock, n_vcpus: int = 4, context_switch_ns: int = 1_200) -> None:
        if n_vcpus < 1:
            raise ValueError("need at least one VCPU")
        self.clock = clock
        self.n_vcpus = n_vcpus
        self.context_switch_ns = context_switch_ns
        self._threads: list[SimThread] = []
        self._cursor = 0
        self.rounds_run = 0
        #: Clock advance per fully idle round (every thread blocked).
        self.idle_tick_ns = 10_000
        self._consecutive_idle = 0
        #: Idle rounds tolerated before declaring a stall.
        self.max_idle_rounds = 10_000
        #: Zero-argument callables invoked after every productive round;
        #: the invariant monitor uses this to watch the system live.  A
        #: hook that raises aborts the round loop — that is the point.
        self.round_hooks: list[Callable[[], None]] = []

    # ------------------------------------------------------------- membership
    def add(self, thread: SimThread) -> SimThread:
        self._threads.append(thread)
        return thread

    def spawn(self, name: str, body: ThreadBody) -> SimThread:
        return self.add(SimThread(name, body))

    def remove_finished(self) -> None:
        self._threads = [t for t in self._threads if not t.finished]
        self._cursor = 0

    @property
    def threads(self) -> list[SimThread]:
        return list(self._threads)

    def live_threads(self) -> list[SimThread]:
        return [t for t in self._threads if not t.finished]

    # ------------------------------------------------------------- scheduling
    def _ready_threads(self) -> list[SimThread]:
        for thread in self._threads:
            thread.maybe_wake()
        return [
            t for t in self._threads if t.state is ThreadState.READY and not t.suspended
        ]

    def step_round(self) -> bool:
        """Run one scheduling round.

        Returns ``True`` if any thread made progress.  Raises
        :class:`EngineStall` if live threads exist but all are blocked on
        conditions that never became true (a deadlock in the modelled
        system, e.g. spinning on a flag nobody will clear — the engine's
        caller decides whether that is a bug or, as with self-destroy, the
        intended terminal state).
        """
        ready = self._ready_threads()
        if not ready:
            blocked = [t for t in self.live_threads() if not t.suspended]
            if blocked:
                # Everyone is waiting: let virtual time pass (an idle CPU)
                # so time-based conditions can come true.  A condition
                # that never does is a genuine stall.
                self._consecutive_idle += 1
                if self._consecutive_idle > self.max_idle_rounds:
                    raise EngineStall(
                        "no runnable thread; blocked: " + ", ".join(t.name for t in blocked)
                    )
                self.clock.advance(self.idle_tick_ns)
                self.rounds_run += 1
                return True
            # Only suspended (or no) threads remain: quiescent, not stuck.
            return False
        self._consecutive_idle = 0

        # Round-robin selection of up to n_vcpus threads, continuing from
        # where the previous round left off.
        if self._cursor >= len(ready):
            self._cursor = 0
        picked = [ready[(self._cursor + i) % len(ready)] for i in range(min(self.n_vcpus, len(ready)))]
        self._cursor = (self._cursor + len(picked)) % max(len(ready), 1)

        round_cost = 0
        for thread in picked:
            round_cost = max(round_cost, thread.run_step())
        if len(ready) > self.n_vcpus:
            round_cost += self.context_switch_ns
        self.clock.advance(round_cost)
        self.rounds_run += 1
        for hook in self.round_hooks:
            hook()
        return True

    def run(
        self,
        until: Callable[[], bool] | None = None,
        max_rounds: int = 1_000_000,
    ) -> int:
        """Run rounds until ``until()`` holds (or all threads finish).

        Returns the number of rounds executed.  ``max_rounds`` bounds
        runaway simulations; exceeding it is an error because every
        modelled protocol in this repository terminates.
        """
        rounds = 0
        while rounds < max_rounds:
            if until is not None and until():
                return rounds
            if not self.step_round():
                if until is not None and not until():
                    raise EngineStall("all threads finished before condition held")
                return rounds
            rounds += 1
        raise ReproError(f"engine exceeded {max_rounds} rounds without terminating")

    def run_all(self, max_rounds: int = 1_000_000) -> int:
        """Run until every thread has finished."""
        return self.run(until=None, max_rounds=max_rounds)


def as_body(fn: Callable[[], Iterable[int | Block]]) -> ThreadBody:
    """Adapt a function returning an iterable of costs into a thread body."""
    def gen() -> ThreadBody:
        yield from fn()
    return gen()
