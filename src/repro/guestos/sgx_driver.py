"""The guest SGX driver.

§VI-B: "Our SGX driver in the guest OS first asks the hypervisor for the
address of EPC and then maps the whole EPC into the kernel virtual address
space ... If the SGX driver needs to allocate a new EPC page when it has
already used up all its EPC, it will first choose some EPC pages based on
a simplified LRU algorithm and then use SGX instructions to swap them into
normal memory."

The driver also keeps the enclave creation/destruction records the target
guest OS replays to rebuild enclaves after migration (§VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import GuestOsError, NoSuchEnclave, SgxEpcExhausted
from repro.sdk.image import EnclaveImage
from repro.sgx import instructions as isa
from repro.sgx.enclave import EnclaveHw
from repro.sgx.structures import (
    VA_SLOTS_PER_PAGE,
    EvictedPage,
    PageType,
    Permissions,
    Tcs,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.hypervisor.vm import Vm


@dataclass
class EnclaveRecord:
    """One line of the driver's creation log (replayed on the target)."""

    enclave_id: int
    image: EnclaveImage
    destroyed: bool = False


@dataclass
class _DriverEnclave:
    enclave_id: int
    image: EnclaveImage
    hw: EnclaveHw
    gpa_map: dict[int, int] = field(default_factory=dict)  # vaddr -> gpa
    evicted: dict[int, tuple[EvictedPage, int, int]] = field(default_factory=dict)


class SgxDriver:
    """Per-VM SGX driver state and operations."""

    def __init__(self, machine: "Machine", vm: "Vm") -> None:
        self.machine = machine
        self.vm = vm
        self.cpu = machine.cpu
        self.trace = machine.trace
        self.costs = machine.costs
        # Learn the vEPC geometry from the hypervisor (new hypercall).
        machine.hypervisor.hc_get_epc_info(vm)
        self._enclaves: dict[int, _DriverEnclave] = {}
        self._next_id = 1
        self.records: list[EnclaveRecord] = []
        self._lru_clock = 0
        self._lru: dict[tuple[int, int], int] = {}  # (id, vaddr) -> last touch
        self._va_pages: list[tuple[int, list[int]]] = []  # (epc index, free slots)
        self.page_fault_count = 0
        self.refuse_new_enclaves = False
        # Reserve one Version Array page up front: eviction *requires* a
        # VA slot, and allocating one under full-EPC pressure would need
        # the very page we are trying to free (real drivers do the same).
        index = isa.alloc_va_page(self.cpu)
        self._va_pages.append((index, list(range(VA_SLOTS_PER_PAGE - 1, -1, -1))))

    # ------------------------------------------------------------- helpers
    def _touch(self, enclave_id: int, vaddr: int) -> None:
        self._lru_clock += 1
        self._lru[(enclave_id, vaddr)] = self._lru_clock

    def _va_slot(self) -> tuple[int, int]:
        for index, free in self._va_pages:
            if free:
                return index, free.pop()
        index = self._with_physical_epc(lambda: isa.alloc_va_page(self.cpu))
        free = list(range(VA_SLOTS_PER_PAGE - 1, 0, -1))
        self._va_pages.append((index, free))
        return index, VA_SLOTS_PER_PAGE - 1  # slot taken implicitly

    def _release_va_slot(self, va_index: int, slot: int) -> None:
        for index, free in self._va_pages:
            if index == va_index:
                free.append(slot)
                return

    def _pick_victim(self, skip: tuple[int, int] | None = None) -> tuple[int, int]:
        """Least-recently-used resident REG page across all enclaves."""
        best: tuple[int, int] | None = None
        best_touch = None
        for (enclave_id, vaddr), touch in self._lru.items():
            if (enclave_id, vaddr) == skip:
                continue
            denc = self._enclaves.get(enclave_id)
            if denc is None or not denc.hw.page_present(vaddr):
                continue
            if denc.hw.page_type(vaddr) is not PageType.REG:
                continue
            if best_touch is None or touch < best_touch:
                best, best_touch = (enclave_id, vaddr), touch
        if best is None:
            raise SgxEpcExhausted("vEPC exhausted and no evictable page found")
        return best

    def _evict_one(self, skip: tuple[int, int] | None = None) -> None:
        enclave_id, vaddr = self._pick_victim(skip)
        denc = self._enclaves[enclave_id]
        va_index, slot = self._va_slot()
        blob = isa.ewb(self.cpu, denc.hw, vaddr, va_index, slot)
        denc.evicted[vaddr] = (blob, va_index, slot)
        self.vm.vepc.free_page(denc.gpa_map.pop(vaddr))
        self._lru.pop((enclave_id, vaddr), None)
        self.trace.count("driver.evictions")

    def _alloc_gpa(self, skip: tuple[int, int] | None = None) -> int:
        """Claim one vEPC page, LRU-evicting until one is available."""
        while True:
            try:
                return self.vm.vepc.alloc_page()
            except SgxEpcExhausted:
                self._evict_one(skip)

    def _with_physical_epc(self, fn, skip: tuple[int, int] | None = None):
        """Run an EPC-consuming instruction, resolving *physical* pressure.

        The vEPC quota is the driver's own business (``_alloc_gpa``);
        running out of physical EPC means the hypervisor overcommitted
        and must revoke a page from some VM (§VI-A) — possibly this one.
        """
        from repro.errors import HypervisorError

        for _attempt in range(256):
            try:
                return fn()
            except SgxEpcExhausted:
                try:
                    self.machine.hypervisor.reclaim_physical(self.vm.name)
                except HypervisorError:
                    self._evict_one(skip)  # we are the only tenant: self-evict
        raise SgxEpcExhausted("physical EPC pressure could not be resolved")

    # ------------------------------------------------------------- ioctl API
    def create_enclave(self, image: EnclaveImage) -> int:
        """Build a runnable enclave from an image (ioctl ECREATE..EINIT)."""
        if self.refuse_new_enclaves:
            raise GuestOsError("guest OS is migrating: enclave creation refused")
        enclave_id = self._next_id
        self._next_id += 1

        secs_gpa = self._alloc_gpa()
        hw = self._with_physical_epc(
            lambda: isa.ecreate(self.cpu, image.layout.base, image.layout.size)
        )
        denc = _DriverEnclave(enclave_id, image, hw)
        denc.gpa_map[-1] = secs_gpa  # SECS occupies one quota page
        self._enclaves[enclave_id] = denc

        for spec in image.pages:
            gpa = self._alloc_gpa()
            if spec.tcs_index is not None:
                template = image.tcs_templates[spec.tcs_index]
                content: bytes | Tcs = Tcs(
                    template.vaddr, template.oentry, template.ossa, template.nssa
                )
            else:
                content = spec.content
            self._with_physical_epc(
                lambda c=content, s=spec: isa.eadd(self.cpu, hw, s.vaddr, c, s.sec_info)
            )
            denc.gpa_map[spec.vaddr] = gpa
            if spec.measure:
                isa.eextend(self.cpu, hw, spec.vaddr)
            if spec.sec_info.page_type is PageType.REG:
                self._touch(enclave_id, spec.vaddr)
        isa.einit(self.cpu, hw, image.sigstruct)

        self.records.append(EnclaveRecord(enclave_id, image))
        self.trace.emit(
            "driver", "create_enclave", id=enclave_id, image=image.name, pages=image.n_pages
        )
        return enclave_id

    def rebuild_from_records(self, records: list[EnclaveRecord]) -> dict[int, int]:
        """Replay a migrated VM's enclave creation log (§VI-D).

        "the guest OS rebuilds all the enclaves according to the records
        of enclave creation and destruction."  Destroyed enclaves are
        skipped; live ones are rebuilt as virgin instances (their state
        arrives separately via their control threads).  Returns the
        mapping from the source's enclave ids to the rebuilt ids.
        """
        mapping: dict[int, int] = {}
        for record in records:
            if record.destroyed:
                continue
            mapping[record.enclave_id] = self.create_enclave(record.image)
        return mapping

    def destroy_enclave(self, enclave_id: int) -> None:
        denc = self._entry(enclave_id)
        isa.destroy_enclave(self.cpu, denc.hw)
        for gpa in denc.gpa_map.values():
            self.vm.vepc.free_page(gpa)
        for _, va_index, slot in denc.evicted.values():
            self._release_va_slot(va_index, slot)
        for key in [k for k in self._lru if k[0] == enclave_id]:
            del self._lru[key]
        del self._enclaves[enclave_id]
        for record in self.records:
            if record.enclave_id == enclave_id:
                record.destroyed = True
        self.trace.emit("driver", "destroy_enclave", id=enclave_id)

    def _entry(self, enclave_id: int) -> _DriverEnclave:
        denc = self._enclaves.get(enclave_id)
        if denc is None:
            raise NoSuchEnclave(f"enclave id {enclave_id}")
        return denc

    def hw(self, enclave_id: int) -> EnclaveHw:
        return self._entry(enclave_id).hw

    def image(self, enclave_id: int) -> EnclaveImage:
        return self._entry(enclave_id).image

    def live_enclave_ids(self) -> list[int]:
        return sorted(self._enclaves)

    # ------------------------------------------------------------- faults
    def handle_page_fault(self, enclave_id: int, vaddr: int) -> None:
        """Load an evicted page back (the EPT-violation / #PF round trip)."""
        denc = self._entry(enclave_id)
        if vaddr not in denc.evicted:
            raise GuestOsError(f"page fault at 0x{vaddr:x} but page is not evicted")
        self.machine.clock.advance(self.costs.epc_fault_ns)
        self.page_fault_count += 1
        self.trace.count("driver.page_faults")
        blob, va_index, slot = denc.evicted.pop(vaddr)
        gpa = self._alloc_gpa(skip=(enclave_id, vaddr))
        self._with_physical_epc(
            lambda: isa.eldb(self.cpu, denc.hw, blob, va_index, slot),
            skip=(enclave_id, vaddr),
        )
        denc.gpa_map[vaddr] = gpa
        self._release_va_slot(va_index, slot)
        self._touch(enclave_id, vaddr)
