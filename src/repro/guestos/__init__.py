"""Guest operating system model.

The guest OS is *untrusted* in the paper's threat model: it schedules the
enclave's host threads (and may lie about having stopped them — the data-
consistency adversary of §IV-A), it runs the SGX driver that manages the
virtual EPC with LRU eviction (§VI-B), it delivers the migration signal to
enclave applications, and it reports readiness to the hypervisor (§VI-D).
"""

from repro.guestos.kernel import GuestOs
from repro.guestos.process import GuestProcess, GuestThread
from repro.guestos.scheduler import MaliciousScheduler, Scheduler
from repro.guestos.sgx_driver import EnclaveRecord, SgxDriver

__all__ = [
    "EnclaveRecord",
    "GuestOs",
    "GuestProcess",
    "GuestThread",
    "MaliciousScheduler",
    "Scheduler",
    "SgxDriver",
]
