"""The guest kernel: processes, signals, and migration preparation.

§VI-D steps ②-⑥ live here: the kernel receives the hypervisor's migration
upcall, refuses new enclaves, sends SIGUSR1 to every enclave process,
waits (running the guest scheduler) until every SGX library has reported
its enclave ready, and finally issues the migration-ready hypercall.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable

from repro.errors import GuestOsError
from repro.guestos.process import SIGUSR1, GuestProcess, GuestThread
from repro.guestos.scheduler import MaliciousScheduler, Scheduler
from repro.guestos.sgx_driver import SgxDriver
from repro.sim.engine import Engine, ThreadBody

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine
    from repro.hypervisor.vm import Vm


class GuestOs:
    """One VM's operating system."""

    def __init__(self, machine: "Machine", vm: "Vm", malicious_scheduler: bool = False) -> None:
        self.machine = machine
        self.vm = vm
        self.trace = machine.trace
        self.costs = machine.costs
        self.engine = Engine(
            machine.clock,
            n_vcpus=vm.n_vcpus,
            context_switch_ns=machine.costs.context_switch_ns,
        )
        scheduler_cls = MaliciousScheduler if malicious_scheduler else Scheduler
        self.scheduler = scheduler_cls(self.engine, self.trace)
        self.driver = SgxDriver(machine, vm)
        self.processes: dict[int, GuestProcess] = {}
        self.migrating = False
        self._ready_enclaves: set[int] = set()
        #: Per-kernel PID allocator.  Deliberately not the class-level
        #: counter on GuestProcess: that one is process-global, so a
        #: second testbed in the same interpreter would see different
        #: pids — and the per-process RDRAND stream (forked by pid)
        #: would diverge between two same-seed runs.
        self._next_pid = itertools.count(100)
        vm.guest_os = self

    # ------------------------------------------------------------- processes
    def spawn_process(self, name: str) -> GuestProcess:
        process = GuestProcess(name, pid=next(self._next_pid))
        self.processes[process.pid] = process
        return process

    def spawn_thread(self, process: GuestProcess, name: str, body: ThreadBody) -> GuestThread:
        return self.scheduler.spawn(process, name, body)

    def deliver_signal(self, process: GuestProcess, signal: int) -> None:
        """Deliver a signal; the registered handler runs in-process."""
        self.machine.clock.advance(self.costs.signal_delivery_ns)
        handler = process.signal_handlers.get(signal)
        if handler is None:
            raise GuestOsError(f"{process.name} has no handler for signal {signal}")
        handler()

    # ------------------------------------------------------------- execution
    def run_until(self, predicate: Callable[[], bool], max_rounds: int = 2_000_000) -> int:
        return self.engine.run(until=predicate, max_rounds=max_rounds)

    def run_all(self, max_rounds: int = 2_000_000) -> int:
        return self.engine.run_all(max_rounds=max_rounds)

    # ------------------------------------------------------------- migration
    def mark_enclave_ready(self, enclave_id: int) -> None:
        """Syscall the SGX library uses after its control thread returns."""
        self._ready_enclaves.add(enclave_id)
        self.trace.emit("guestos", "enclave_ready", id=enclave_id)

    def enclaves_ready(self) -> bool:
        return self._ready_enclaves >= set(self.driver.live_enclave_ids())

    def on_migration_notify(self) -> None:
        """Hypervisor upcall (step ②): prepare every enclave, then ack.

        "After the guest OS receives the migration notification, it will
        refuse to create any new enclaves till the end of migration and
        ask applications to make enclaves prepared for migration" (§VI-D).
        """
        self.migrating = True
        self.driver.refuse_new_enclaves = True
        self._ready_enclaves.clear()
        enclave_processes = [
            p for p in self.processes.values() if SIGUSR1 in p.signal_handlers
        ]
        for process in enclave_processes:
            self.deliver_signal(process, SIGUSR1)  # step ③
        if self.driver.live_enclave_ids():
            self.run_until(self.enclaves_ready)  # steps ④-⑤ under the scheduler
        self.machine.hypervisor.hc_migration_ready(self.vm)  # step ⑥

    def end_migration(self) -> None:
        """Clear migration mode (used on the target after restore)."""
        self.migrating = False
        self.driver.refuse_new_enclaves = False
