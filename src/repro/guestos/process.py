"""Guest processes and threads.

A :class:`GuestProcess` is one application in the guest (typically a host
application with an enclave inside its address space).  Its threads are
engine threads (:class:`repro.sim.engine.SimThread`) scheduled by the
guest scheduler on the VM's VCPUs.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.sim.engine import SimThread, ThreadBody

SIGUSR1 = 10


class GuestThread(SimThread):
    """An OS thread belonging to a guest process."""

    def __init__(self, process: "GuestProcess", name: str, body: ThreadBody) -> None:
        super().__init__(f"{process.name}/{name}", body)
        self.process = process


class GuestProcess:
    """One guest user process: threads, signals, a host address space."""

    _pids = itertools.count(100)

    def __init__(self, name: str, pid: int | None = None) -> None:
        # PIDs must come from the owning kernel: the class-level counter
        # (kept as a fallback for bare constructions) is process-global
        # state that would leak across testbeds and break same-seed
        # determinism — the per-process RDRAND stream is forked by pid.
        self.pid = next(self._pids) if pid is None else pid
        self.name = name
        self.threads: list[GuestThread] = []
        self.signal_handlers: dict[int, Callable[[], None]] = {}
        #: Untrusted host memory of the process, used for enclave argument
        #: passing ("we pass arguments through shared memory outside the
        #: enclave", §VI-C).  Anything stored here is adversary-readable.
        self.shared_memory: dict[str, Any] = {}

    def register_signal_handler(self, signal: int, handler: Callable[[], None]) -> None:
        """What the SGX library does for SIGUSR1 before creating enclaves."""
        self.signal_handlers[signal] = handler

    def live_threads(self) -> list[GuestThread]:
        return [t for t in self.threads if not t.finished]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GuestProcess {self.name} pid={self.pid} threads={len(self.threads)}>"
