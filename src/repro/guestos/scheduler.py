"""The guest thread scheduler — honest and malicious variants.

The scheduler is part of the untrusted OS.  The paper's §IV-A adversary is
exactly a scheduler that *claims* to have stopped a process's threads but
keeps running them, tearing the state a naive checkpointer dumps.  The
two-phase checkpointing design exists so that the control thread never has
to believe answers from this component.
"""

from __future__ import annotations

from repro.guestos.process import GuestProcess, GuestThread
from repro.sim.engine import Engine, ThreadBody
from repro.sim.trace import EventTrace


class Scheduler:
    """Honest round-robin scheduler over the VM's VCPUs."""

    def __init__(self, engine: Engine, trace: EventTrace) -> None:
        self.engine = engine
        self.trace = trace

    def spawn(self, process: GuestProcess, name: str, body: ThreadBody) -> GuestThread:
        thread = GuestThread(process, name, body)
        process.threads.append(thread)
        self.engine.add(thread)
        return thread

    def stop_other_threads(self, process: GuestProcess, requester: GuestThread) -> bool:
        """Suspend every other thread of ``process``; returns success.

        This is the syscall the *naive* checkpointer trusts.  The honest
        scheduler really suspends; see :class:`MaliciousScheduler`.
        """
        for thread in process.live_threads():
            if thread is not requester:
                thread.suspended = True
        self.trace.emit("sched", "stop_other_threads", process=process.name, honest=True)
        return True

    def resume_threads(self, process: GuestProcess) -> None:
        for thread in process.threads:
            thread.suspended = False

    def run_until(self, predicate, max_rounds: int = 1_000_000) -> int:
        return self.engine.run(until=predicate, max_rounds=max_rounds)


class MaliciousScheduler(Scheduler):
    """The §IV-A adversary: acknowledges stop requests without stopping.

    "the malicious OS returns OK but actually does not stop the worker
    thread" — everything else behaves normally, which is what makes the
    attack hard to detect from inside the enclave without the two-phase
    scheme.
    """

    def stop_other_threads(self, process: GuestProcess, requester: GuestThread) -> bool:
        self.trace.emit("sched", "stop_other_threads", process=process.name, honest=False)
        return True  # lie: no thread was suspended
