"""The in-enclave runtime: what the SDK links into every enclave.

Everything here executes *inside* an enclave session (the code the TCB
trusts).  It provides:

* faulting memory access (evicted pages are transparently reloaded by the
  untrusted driver, as hardware page faults would arrange);
* a tiny allocator and a named object store over enclave heap pages;
* the two-phase-checkpointing flags (§IV-B): the global flag at the
  enclave base and the per-TCS local flags;
* the entry/exit stubs and the in-enclave CSSA bookkeeping of §IV-C:
  "At the entry of enclave, the stub code will record CSSA_EENTER (the
  return value of EENTER)."
"""

from __future__ import annotations

import struct
from typing import Any, Callable

from repro.crypto.authenc import Envelope, open_envelope, seal_envelope
from repro.errors import (
    EnclavePageFault,
    MigrationError,
    SealedStorageError,
    StorageRetired,
    StorageRolledBack,
)
from repro.sdk.image import (
    FLAG_BUSY,
    FLAG_FREE,
    FLAG_SPIN,
    OBJ_BOOT,
    TCS_CSSA_EENTER_OFF,
    TCS_LOCAL_FLAG_OFF,
    TCS_PREV_FLAG_OFF,
    TCS_REPLAY_COUNT_OFF,
    EnclaveImage,
)
from repro.serde import pack, unpack
from repro.sgx.cpu import EnclaveSession
from repro.sim.rng import DeterministicRng


class EnclaveRuntime:
    """Runtime services bound to one open enclave session."""

    def __init__(
        self,
        session: EnclaveSession,
        image: EnclaveImage,
        fault_handler: Callable[[int], None],
        rdrand: DeterministicRng,
    ) -> None:
        self.session = session
        self.image = image
        self.layout = image.layout
        self._fault_handler = fault_handler
        self.rdrand = rdrand  # models the in-enclave RDRAND entropy source
        #: Write-ahead journal for this enclave's protocol transitions
        #: (installed by the SDK library when the machine has durable
        #: storage; None means journaling is off, e.g. unit tests that
        #: build runtimes by hand).
        self._journal = None

    # ------------------------------------------------------------ raw memory
    def read(self, vaddr: int, n: int) -> bytes:
        """Read enclave memory, transparently resolving evicted pages."""
        while True:
            try:
                return self.session.read(vaddr, n)
            except EnclavePageFault as fault:
                self._fault_handler(fault.vaddr)

    def write(self, vaddr: int, data: bytes) -> None:
        while True:
            try:
                self.session.write(vaddr, data)
                return
            except EnclavePageFault as fault:
                self._fault_handler(fault.vaddr)

    def load_u64(self, vaddr: int) -> int:
        return struct.unpack("<Q", self.read(vaddr, 8))[0]

    def store_u64(self, vaddr: int, value: int) -> None:
        self.write(vaddr, struct.pack("<Q", value))

    # ------------------------------------------------------------ globals
    def load_global(self, name: str) -> int:
        return self.load_u64(self.layout.global_slot(name))

    def store_global(self, name: str, value: int) -> None:
        self.store_u64(self.layout.global_slot(name), value)

    # ------------------------------------------------------------ object store
    def store_obj(self, name: str, obj: Any) -> None:
        """Persist a canonical value in the named enclave-memory slot."""
        vaddr, capacity = self.layout.object_slot(name)
        blob = pack(obj)
        if len(blob) + 8 > capacity:
            raise MigrationError(
                f"object {name!r} needs {len(blob) + 8} bytes but slot holds {capacity}"
            )
        self.write(vaddr, struct.pack("<Q", len(blob)) + blob)

    def load_obj(self, name: str, default: Any = None) -> Any:
        vaddr, _capacity = self.layout.object_slot(name)
        length = self.load_u64(vaddr)
        if length == 0:
            return default
        return unpack(self.read(vaddr + 8, length))

    def delete_obj(self, name: str) -> None:
        vaddr, _capacity = self.layout.object_slot(name)
        self.store_u64(vaddr, 0)

    # ------------------------------------------------------------ flags (§IV-B)
    def global_flag(self) -> int:
        return self.load_u64(self.layout.global_flag_vaddr())

    def set_global_flag(self, value: int) -> None:
        self.store_u64(self.layout.global_flag_vaddr(), value)

    def restore_mode(self) -> int:
        return self.load_u64(self.layout.restore_mode_vaddr())

    def set_restore_mode(self, value: int) -> None:
        self.store_u64(self.layout.restore_mode_vaddr(), value)

    def attested(self) -> bool:
        return self.load_u64(self.layout.attested_vaddr()) == 1

    def set_attested(self) -> None:
        self.store_u64(self.layout.attested_vaddr(), 1)

    def channel_state(self) -> int:
        return self.load_u64(self.layout.channel_state_vaddr())

    def set_channel_state(self, value: int) -> None:
        self.store_u64(self.layout.channel_state_vaddr(), value)

    def local_flag(self, tcs_index: int) -> int:
        return self.load_u64(self.layout.tcs_record_vaddr(tcs_index, TCS_LOCAL_FLAG_OFF))

    def set_local_flag(self, tcs_index: int, value: int) -> None:
        self.store_u64(self.layout.tcs_record_vaddr(tcs_index, TCS_LOCAL_FLAG_OFF), value)

    def cssa_eenter(self, tcs_index: int) -> int:
        return self.load_u64(self.layout.tcs_record_vaddr(tcs_index, TCS_CSSA_EENTER_OFF))

    def replay_count(self, tcs_index: int) -> int:
        return self.load_u64(self.layout.tcs_record_vaddr(tcs_index, TCS_REPLAY_COUNT_OFF))

    def set_replay_count(self, tcs_index: int, value: int) -> None:
        self.store_u64(self.layout.tcs_record_vaddr(tcs_index, TCS_REPLAY_COUNT_OFF), value)

    # ------------------------------------------------------------ stubs (§IV-C)
    def entry_stub(self, tcs_index: int) -> str:
        """SDK code at the fixed enclave entry; returns the path to take.

        * ``"proceed"`` — normal ecall, run the requested entry.
        * ``"spin"``    — the global flag is set: park in the spin region.
        * ``"handler"`` — entered with CSSA > 0: exception-handler path.
        """
        rax = self.session.rax  # EENTER's return value: the current CSSA
        record = self.layout.tcs_record_vaddr(tcs_index, TCS_CSSA_EENTER_OFF)
        self.store_u64(record, rax)
        if self.restore_mode() == 1:
            # Target-side CSSA replay: count this entry for verification.
            self.set_replay_count(tcs_index, self.replay_count(tcs_index) + 1)
            return "spin"
        if rax > 0:
            return "handler"
        # Save the previous local flag and mark the thread busy.
        prev = self.local_flag(tcs_index)
        self.store_u64(self.layout.tcs_record_vaddr(tcs_index, TCS_PREV_FLAG_OFF), prev)
        if self.global_flag() == 1:
            self.set_local_flag(tcs_index, FLAG_SPIN)
            return "spin"
        self.set_local_flag(tcs_index, FLAG_BUSY)
        return "proceed"

    def control_entry_stub(self, tcs_index: int) -> None:
        """Entry stub for the control TCS.

        The control thread *is* the migration machinery, so it never
        parks on the global flag and its entries are not counted as CSSA
        replays; it only maintains its own bookkeeping.
        """
        record = self.layout.tcs_record_vaddr(tcs_index, TCS_CSSA_EENTER_OFF)
        self.store_u64(record, self.session.rax)
        prev = self.local_flag(tcs_index)
        self.store_u64(self.layout.tcs_record_vaddr(tcs_index, TCS_PREV_FLAG_OFF), prev)
        self.set_local_flag(tcs_index, FLAG_BUSY)

    def exit_stub(self, tcs_index: int) -> None:
        """SDK code at the exit: restore the saved local flag."""
        prev = self.load_u64(self.layout.tcs_record_vaddr(tcs_index, TCS_PREV_FLAG_OFF))
        self.set_local_flag(tcs_index, prev)

    def handler_check(self, tcs_index: int) -> str:
        """The SDK exception handler: park if a migration is in progress.

        "If the global flag is set, the thread will also set its local
        flag to spin and spin in the exception handler until the end of
        migration" (§IV-B).
        """
        if self.global_flag() == 1:
            self.set_local_flag(tcs_index, FLAG_SPIN)
            return "spin"
        return "resume"

    def quiescent(self, worker_indices: list[int]) -> bool:
        """Control-thread check: are all workers in a safe state?

        "The control thread waits until a quiescent point when all the
        worker threads are in either free or spin state" (§IV-B).
        """
        return all(
            self.local_flag(i) in (FLAG_FREE, FLAG_SPIN) for i in worker_indices
        )

    # ------------------------------------------------------------ heap
    # "For some functions, such as malloc and free, the SDK implements
    # them in enclave directly" (§VI-C).  A first-fit free-list allocator
    # whose metadata lives in enclave memory, so allocations survive
    # checkpointing/migration like any other enclave state.
    _HEAP_HDR = 16  # per-block header: u64 size | u64 state (0 free, 1 used)

    def _heap_init_if_needed(self) -> None:
        base = self.layout.heap_base
        if self.layout.heap_bytes < 2 * self._HEAP_HDR:
            raise MigrationError("image has no heap")
        if self.load_u64(base) == 0:  # first use: one big free block
            self.store_u64(base, self.layout.heap_bytes - self._HEAP_HDR)
            self.store_u64(base + 8, 0)

    def malloc(self, n_bytes: int) -> int:
        """Allocate ``n_bytes`` of enclave heap; returns the vaddr."""
        if n_bytes <= 0:
            raise MigrationError("malloc size must be positive")
        self._heap_init_if_needed()
        need = (n_bytes + 7) & ~7
        cursor = self.layout.heap_base
        end = self.layout.heap_base + self.layout.heap_bytes
        while cursor < end:
            size = self.load_u64(cursor)
            used = self.load_u64(cursor + 8)
            if not used and size >= need:
                remainder = size - need
                if remainder > 4 * self._HEAP_HDR:
                    # Split: write the new free block after this one.
                    self.store_u64(cursor, need)
                    next_block = cursor + self._HEAP_HDR + need
                    self.store_u64(next_block, remainder - self._HEAP_HDR)
                    self.store_u64(next_block + 8, 0)
                self.store_u64(cursor + 8, 1)
                return cursor + self._HEAP_HDR
            cursor += self._HEAP_HDR + size
        raise MigrationError(f"enclave heap exhausted allocating {n_bytes} bytes")

    def free(self, vaddr: int) -> None:
        """Release a block returned by :meth:`malloc`; coalesces forward."""
        block = vaddr - self._HEAP_HDR
        if not self.layout.heap_base <= block < self.layout.heap_base + self.layout.heap_bytes:
            raise MigrationError(f"free of non-heap address 0x{vaddr:x}")
        if self.load_u64(block + 8) != 1:
            raise MigrationError(f"double free at 0x{vaddr:x}")
        self.store_u64(block + 8, 0)
        # Coalesce with the next block while it is free.
        end = self.layout.heap_base + self.layout.heap_bytes
        size = self.load_u64(block)
        next_block = block + self._HEAP_HDR + size
        while next_block < end and self.load_u64(next_block + 8) == 0 and self.load_u64(next_block) > 0:
            size += self._HEAP_HDR + self.load_u64(next_block)
            next_block = block + self._HEAP_HDR + size
        self.store_u64(block, size)

    # ------------------------------------------------------------ ocalls
    # "we insert trampolines into an enclave, which enables the enclave
    # to call the outside functions without leaking any security
    # information; there are other trampolines in SGX library (outside
    # the enclave) for transferring the control flow into the enclave"
    # (§VI-C).  The handler table is installed by the untrusted library;
    # arguments and results cross through canonical bytes only, so the
    # trampoline cannot smuggle out live object references.
    def ocall(self, name: str, args: Any = None) -> Any:
        handler = getattr(self, "_ocall_table", {}).get(name)
        if handler is None:
            raise MigrationError(f"no ocall handler registered for {name!r}")
        from repro.serde import pack, unpack

        marshalled = pack(args)  # crosses the boundary as bytes
        result = handler(unpack(marshalled))
        return unpack(pack(result))

    def install_ocall_table(self, table: dict[str, Callable[[Any], Any]]) -> None:
        """Called by the SGX library when it opens a session."""
        self._ocall_table = dict(table)

    # ------------------------------------------------------------ durability
    def journal_record(
        self, kind: str, payload: dict | None = None, secret=None, defer_charge: bool = False
    ) -> int:
        """Append one write-ahead record for this enclave's party.

        ``payload`` goes to the (untrusted) log in the clear — it must
        only carry public protocol state and ciphertext the adversary
        already sees.  ``secret`` is sealed under this enclave's EGETKEY
        sealing key first (MRENCLAVE policy: only a same-measurement
        enclave on this CPU can unseal it after a crash) and stored as
        ``payload["sealed"]``.  No-op when journaling is off.

        With ``defer_charge=True`` the modelled fsync cost is returned
        (instead of charged to the clock) so a cost-yielding caller can
        yield it — the commit then blocks only this thread, not every
        VCPU.  Returns 0 otherwise.
        """
        if self._journal is None:
            return 0
        if secret is not None:
            payload = dict(payload or {})
            payload["sealed"] = self.journal_seal(secret)
        self._journal.append(kind, payload, defer_charge=defer_charge)
        if defer_charge:
            return int(self._journal.store.commit_cost_ns or 0)
        return 0

    def journal_seal(self, value) -> bytes:
        """Seal a serde value for journal storage (crash-survivable)."""
        envelope = seal_envelope(
            self._journal_seal_key(),
            pack(value),
            self.random_bytes(16),
            "aes",
            aad=b"journal",
        )
        return envelope.to_bytes()

    def journal_unseal(self, blob: bytes):
        """Open a journal-sealed blob (same measurement, same CPU only)."""
        envelope = Envelope.from_bytes(blob)
        return unpack(open_envelope(self._journal_seal_key(), envelope, aad=b"journal"))

    def _journal_seal_key(self):
        # Imported lazily: instructions/authenc import serde/keys, and a
        # module-level import here would cycle through the SDK package.
        from repro.crypto.keys import SymmetricKey
        from repro.sgx.instructions import egetkey

        return SymmetricKey(egetkey(self.session, "seal_mrenclave"), "journal-seal")

    # ------------------------------------------------------------ sealed storage
    # Migratable persistent state (the Alder et al. / CTR extension of
    # the paper): one namespace per enclave instance per host, holding a
    # single sealed key→value table.  The blob lives on untrusted disk
    # and is rewritten whole on every put; freshness comes from three
    # hardware monotonic counters — the committed table *version*, the
    # last imported *handoff* sequence, and the *retired* sequence set
    # when the namespace is handed off to another host.  Anything the
    # counters contradict is refused with a typed SealedStorageError.

    def storage_namespace(self) -> str:
        if self._journal is None:
            raise SealedStorageError(
                "sealed storage needs a durable store; this enclave has none"
            )
        from repro.durability import wal

        return wal.storage_namespace(self._journal.party, self.image.name)

    def _storage_seal_key(self):
        from repro.crypto.keys import SymmetricKey
        from repro.sgx.instructions import egetkey

        return SymmetricKey(egetkey(self.session, "seal_mrenclave"), "storage-seal")

    def storage_check_live(self) -> str:
        """Refuse a namespace that was handed off; returns its name.

        A namespace is retired when its retired-counter has caught up
        with (or passed) its handoff-counter: the last thing that
        happened to it was an *outgoing* handoff.  A later import onto
        the same host advances the handoff counter past the tombstone
        and the namespace is live again (N-hop chains reuse hosts).
        """
        from repro.durability import wal

        ns = self.storage_namespace()
        store = self._journal.store
        retired = store.counter(wal.storage_retired_counter(ns))
        if retired and retired >= store.counter(wal.storage_handoff_counter(ns)):
            raise StorageRetired(
                f"storage namespace {ns!r} was handed off at sequence {retired}: "
                "a resumed source must not fork the counter lineage"
            )
        return ns

    def storage_table(self) -> tuple[dict, int]:
        """Load and freshness-check the sealed table → (entries, version)."""
        ns = self.storage_check_live()
        store = self._journal.store
        version = store.counter(ns)
        blob = bytes(store.log(ns)) if store.has_log(ns) else b""
        if not blob:
            if version:
                raise StorageRolledBack(
                    f"storage namespace {ns!r} is at version {version} but the "
                    "sealed table is gone: refusing the empty substitute"
                )
            return {}, 0
        payload = unpack(
            open_envelope(
                self._storage_seal_key(), Envelope.from_bytes(blob), aad=b"sealed-storage"
            )
        )
        blob_version = int(payload["version"])
        if blob_version < version:
            raise StorageRolledBack(
                f"storage namespace {ns!r}: sealed table is version {blob_version} "
                f"but the monotonic counter says {version} — a stale copy was "
                "restored; refusing to serve rolled-back state"
            )
        if blob_version > version + 1:
            raise StorageRolledBack(
                f"storage namespace {ns!r}: sealed table version {blob_version} is "
                f"ahead of the counter ({version}) by more than one commit"
            )
        if blob_version == version + 1:
            # Torn commit: the blob hit disk but the crash beat the
            # counter advance.  The blob carries this enclave's MAC, so
            # it is genuinely the newest state — finish the commit.
            store.counter_advance(ns, blob_version)
        return dict(payload["entries"]), blob_version

    def storage_commit(self, entries: dict, version: int) -> int:
        """Seal and write the table at ``version``, then commit it."""
        ns = self.storage_namespace()
        store = self._journal.store
        envelope = seal_envelope(
            self._storage_seal_key(),
            pack({"version": version, "entries": entries}),
            self.random_bytes(16),
            "aes",
            aad=b"sealed-storage",
        )
        store.set_log(ns, envelope.to_bytes())
        store.counter_advance(ns, version)
        return version

    def storage_put(self, key: str, value) -> int:
        """Set one entry; returns the new committed version."""
        entries, version = self.storage_table()
        entries[key] = value
        return self.storage_commit(entries, version + 1)

    def storage_get(self, key: str, default=None):
        entries, _version = self.storage_table()
        return entries.get(key, default)

    def storage_version(self) -> int:
        """The committed version counter (0 when the namespace is empty)."""
        if self._journal is None:
            return 0
        return self._journal.store.counter(self.storage_namespace())

    # ------------------------------------------------------------ entropy
    def random_bytes(self, n: int) -> bytes:
        return self.rdrand.bytes(n)

    def fresh_dh_private_store(self, slot: str = OBJ_BOOT) -> None:
        """Generate and persist a DH private key inside the enclave."""
        private = self.rdrand.getrandbits(256) | (1 << 255)
        self.store_obj(slot, {"dh_private": private})
