"""The untrusted SGX library (outside the enclave).

This is the host-side half of the SDK: it issues EENTER/ERESUME, owns the
AEP, dispatches the in-enclave exception handler after AEX, forwards page
faults to the driver, registers the migration signal handler, and — on
the target — drives the CSSA replay the control thread later verifies.

Everything here is *untrusted* in the paper's model: tests replace pieces
of it with lying variants and check the enclave-side logic catches them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.durability.journal import Journal
from repro.durability.wal import enclave_journal_name
from repro.errors import MigrationError
from repro.guestos.process import SIGUSR1, GuestProcess, GuestThread
from repro.sdk import control
from repro.sdk.image import FLAG_BUSY, EnclaveImage
from repro.sdk.program import AtomicEntry, EnclaveProgram, ResumableEntry, lookup_program
from repro.sdk.runtime import EnclaveRuntime
from repro.sgx import instructions as isa
from repro.telemetry.spans import maybe_span

if TYPE_CHECKING:  # pragma: no cover
    from repro.guestos.kernel import GuestOs
    from repro.machine import Machine
    from repro.sdk.owner import EnclaveOwner


class SgxLibrary:
    """Per-application untrusted runtime support."""

    def __init__(
        self,
        machine: "Machine",
        guest_os: "GuestOs",
        process: GuestProcess,
        image: EnclaveImage,
        interrupt_every: int = 6,
    ) -> None:
        self.machine = machine
        self.guest_os = guest_os
        self.process = process
        self.image = image
        self.program: EnclaveProgram = lookup_program(image.code_id)
        self.enclave_id: int | None = None
        self.rdrand = machine.rng.fork(f"rdrand/{image.name}/{process.pid}")
        #: Interpreter steps between injected timer interrupts (AEX).
        self.interrupt_every = interrupt_every
        #: Figure 9(b) ablation: SDK built without migration support
        #: (no stubs, no flags, no CSSA bookkeeping, no control thread).
        self.migration_support = True
        #: Untrusted host functions reachable from in-enclave code via
        #: the §VI-C trampolines (``rt.ocall``).
        self.ocall_handlers: dict[str, object] = {}
        self.last_checkpoint: control.CheckpointResult | None = None
        #: Checkpoint cipher.  The paper's default is RC4 (§VIII-B), but
        #: its 10 ns/B dominates the two-phase hot path; AES-NI CTR ships
        #: the same envelope format at 2.5 ns/B (see docs/PERFORMANCE.md).
        #: ``bench_ablation_ciphers`` still measures every cipher.
        self.checkpoint_algorithm = "aes-ni"
        self.checkpoint_use_installed_key = False
        #: Platform supports SGX v2 EDMM: W+X pages become migratable.
        self.sgx_v2 = False
        #: Write-ahead journal for this enclave's protocol transitions,
        #: named by role so a rebuilt instance finds its own log again.
        #: None when the machine has no durable store.
        durable = getattr(machine, "durable", None)
        if durable is not None:
            self.journal = Journal(
                durable,
                enclave_journal_name(
                    machine.name, image.name, getattr(machine, "journal_epoch", 0)
                ),
                machine.name,
            )
        else:
            self.journal = None

    # ------------------------------------------------------------- plumbing
    @property
    def driver(self):
        return self.guest_os.driver

    @property
    def cpu(self):
        return self.machine.cpu

    def hw(self):
        if self.enclave_id is None:
            raise MigrationError("enclave was never launched")
        return self.driver.hw(self.enclave_id)

    def _fault(self, vaddr: int) -> None:
        self.driver.handle_page_fault(self.enclave_id, vaddr)

    def _runtime(self, session) -> EnclaveRuntime:
        rt = EnclaveRuntime(session, self.image, self._fault, self.rdrand)
        rt.install_ocall_table(self.ocall_handlers)
        rt._journal = self.journal
        return rt

    def register_ocall(self, name: str, handler) -> None:
        """Install an untrusted host function reachable from the enclave."""
        self.ocall_handlers[name] = handler

    # ------------------------------------------------------------- lifecycle
    def launch(self, owner: "EnclaveOwner | None" = None) -> int:
        """Create the enclave, register the migration signal, provision."""
        self.enclave_id = self.driver.create_enclave(self.image)
        self.process.register_signal_handler(SIGUSR1, self.on_migration_signal)
        if owner is not None:
            quote, dh_public = self.control_call(
                control.provision_request, self.machine.quoting_enclave
            )
            owner_public, sealed = owner.provision(self.image.name, quote, dh_public)
            self.control_call(control.provision_complete, owner_public, sealed)
        return self.enclave_id

    def destroy(self) -> None:
        if self.enclave_id is not None:
            self.driver.destroy_enclave(self.enclave_id)
            self.enclave_id = None

    # ------------------------------------------------------------- control ecalls
    def control_call(self, fn: Callable, *args) -> Any:
        """Synchronous ecall on the control TCS (protocol operations)."""
        template = self.image.control_tcs
        session = isa.eenter(self.cpu, self.hw(), template.vaddr, aep=self)
        rt = self._runtime(session)
        rt.control_entry_stub(template.index)
        try:
            return fn(rt, *args)
        finally:
            rt.exit_stub(template.index)
            isa.eexit(session)

    def control_checkpoint_body(self) -> Iterator[int]:
        """Engine body: run two-phase checkpointing on the control TCS."""
        template = self.image.control_tcs
        cpu = self.cpu
        trace = self.machine.trace
        trace.emit("ckpt", "start", enclave=self.enclave_id)
        # One span per enclave, on its own track: a VM migration runs
        # several of these engine bodies interleaved, so per-enclave
        # tracks keep each span well-nested regardless of scheduling.
        with maybe_span(
            trace,
            "checkpoint.two_phase",
            party=self.machine.name,
            track=self.enclave_id,
            enclave=self.enclave_id,
            image=self.image.name,
        ) as ckpt_span:
            start_ns = self.machine.clock.now_ns
            with cpu.collect_charges() as charged:
                session = isa.eenter(cpu, self.hw(), template.vaddr, aep=self)
            yield charged[0]
            rt = self._runtime(session)
            rt.control_entry_stub(template.index)
            try:
                result = yield from control.generate_checkpoint(
                    rt,
                    self.machine.costs,
                    algorithm=self.checkpoint_algorithm,
                    use_installed_key=self.checkpoint_use_installed_key,
                    sgx_v2=self.sgx_v2,
                )
            except BaseException:
                # Leave the enclave cleanly so the TCS does not stay busy.
                rt.exit_stub(template.index)
                isa.eexit(session)
                raise
            rt.exit_stub(template.index)
            with cpu.collect_charges() as charged:
                isa.eexit(session)
            yield charged[0]
            # Hand the sealed checkpoint to the host: it lands in normal RAM
            # (where pre-copy will pick it up) and the OS learns we are ready.
            self.last_checkpoint = result
            self.process.shared_memory["checkpoint"] = result.envelope
            self.guest_os.vm.memory.park_extra_bytes(result.envelope.size)
            self.guest_os.mark_enclave_ready(self.enclave_id)
            metrics = trace.metrics
            metrics.histogram(
                "checkpoint.duration_ns", party=self.machine.name
            ).observe(self.machine.clock.now_ns - start_ns)
            metrics.counter("checkpoint.bytes").inc(result.envelope.size)
            metrics.counter("checkpoint.generated_total").inc()
        trace.emit(
            "ckpt", "done", enclave=self.enclave_id, bytes=result.memory_bytes
        )
        return result

    def on_migration_signal(self) -> None:
        """SIGUSR1 handler: start the control thread (§VI-D step ④)."""
        self.guest_os.spawn_thread(
            self.process,
            f"control-{self.image.name}",
            self.control_checkpoint_body(),
        )

    # ------------------------------------------------------------- worker ecalls
    def ecall_body(
        self,
        worker_index: int,
        entry_name: str,
        args: Any = None,
        on_result: Callable[[Any], None] | None = None,
    ) -> Iterator[int]:
        """Engine body: one ecall on a worker TCS, with SDK stubs."""
        template = self.image.worker_tcs(worker_index)
        cpu = self.cpu
        with cpu.collect_charges() as charged:
            session = isa.eenter(cpu, self.hw(), template.vaddr, aep=self)
        yield charged[0]
        rt = self._runtime(session)
        verdict = rt.entry_stub(template.index) if self.migration_support else "proceed"
        yield 300
        if verdict == "spin":
            # Parked in the spin region: "keep in the region until it
            # finds that the global flag is unset" (§IV-B).  On a
            # self-destroyed source that is forever.
            while rt.global_flag() == 1:
                yield 400
            rt.set_local_flag(template.index, FLAG_BUSY)
        elif verdict == "handler":
            raise MigrationError("fresh ecall entered with CSSA > 0")
        rt, result = yield from self._run_entry(rt, template, entry_name, args, regs=None)
        if self.migration_support:
            rt.exit_stub(template.index)
        with cpu.collect_charges() as charged:
            isa.eexit(rt.session)
        yield charged[0]
        self.process.shared_memory[f"result/{entry_name}/{worker_index}"] = result
        monitor = getattr(self.machine, "monitor", None)
        if monitor is not None:
            monitor.on_ecall_result(self)
        if on_result is not None:
            on_result(result)
        return result

    def resume_body(
        self,
        worker_index: int,
        continue_with: Callable[[], Iterator[int]] | None = None,
    ) -> Iterator[int]:
        """Engine body for the target: ERESUME a migrated worker thread."""
        template = self.image.worker_tcs(worker_index)
        cpu = self.cpu
        with cpu.collect_charges() as charged:
            session, ctx = isa.eresume(cpu, self.hw(), template.vaddr, aep=self)
        yield charged[0]
        if ctx.get("kind") != "work":
            raise MigrationError(f"unexpected SSA context kind {ctx.get('kind')!r}")
        rt = self._runtime(session)
        rt, result = yield from self._run_entry(
            rt, template, ctx["entry"], None, regs=ctx["regs"]
        )
        rt.exit_stub(template.index)
        with cpu.collect_charges() as charged:
            isa.eexit(rt.session)
        yield charged[0]
        self.process.shared_memory[f"result/{ctx['entry']}/{worker_index}"] = result
        if continue_with is not None:
            yield from continue_with()
        return result

    def _run_entry(self, rt, template, entry_name, args, regs):
        """Interpreter for enclave entries, with timer-interrupt injection."""
        cpu = self.cpu
        entry = self.program.entry(entry_name)
        if isinstance(entry, AtomicEntry):
            with cpu.collect_charges() as charged:
                result = entry.fn(rt, args)
            yield entry.cost_for(args) + charged[0]
            return rt, result
        if not isinstance(entry, ResumableEntry):  # pragma: no cover - guard
            raise MigrationError(f"unknown entry type for {entry_name!r}")
        if regs is None:
            with cpu.collect_charges() as charged:
                regs = dict(entry.prepare(rt, args))
                regs.setdefault("__pc", 0)
            yield entry.step_cost_ns + charged[0]
        steps_since_interrupt = 0
        while regs["__pc"] < len(entry.steps):
            if steps_since_interrupt >= self.interrupt_every:
                steps_since_interrupt = 0
                rt, regs = yield from self._interrupt_cycle(rt, template, entry_name, regs)
            with cpu.collect_charges() as charged:
                entry.steps[regs["__pc"]](rt, regs)
                regs["__pc"] += 1
            yield entry.step_cost_ns + charged[0]
            steps_since_interrupt += 1
        return rt, regs.get("result")

    def _interrupt_cycle(self, rt, template, entry_name, regs):
        """Timer interrupt: AEX, enter the SDK handler, then ERESUME.

        "if the developer defines an exception handler in the enclave,
        the SGX library will use EENTER to invoke that handler after the
        enclave is interrupted, and then use ERESUME to resume the
        execution" (§VI-C).  The SDK handler is where a long-running
        worker notices the global flag (§IV-B).
        """
        cpu = self.cpu
        with cpu.collect_charges() as charged:
            isa.aex(rt.session, {"kind": "work", "entry": entry_name, "regs": regs})
        yield charged[0]
        if not self.migration_support:
            # No SDK handler: plain ERESUME, as a stock runtime would do.
            with cpu.collect_charges() as charged:
                session, ctx = isa.eresume(cpu, self.hw(), template.vaddr, aep=self)
            yield charged[0]
            return self._runtime(session), ctx["regs"]
        with cpu.collect_charges() as charged:
            handler_session = isa.eenter(cpu, self.hw(), template.vaddr, aep=self)
        yield charged[0]
        handler_rt = self._runtime(handler_session)
        verdict = handler_rt.entry_stub(template.index)
        if verdict not in ("handler", "spin"):  # pragma: no cover - guard
            raise MigrationError(f"handler entry took path {verdict!r}")
        decision = handler_rt.handler_check(template.index)
        yield 300
        if decision == "spin":
            while handler_rt.global_flag() == 1:
                yield 500
            # Migration was cancelled: the worker may continue.
            handler_rt.set_local_flag(template.index, FLAG_BUSY)
        with cpu.collect_charges() as charged:
            isa.eexit(handler_session)
        yield charged[0]
        with cpu.collect_charges() as charged:
            session, ctx = isa.eresume(cpu, self.hw(), template.vaddr, aep=self)
        yield charged[0]
        return self._runtime(session), ctx["regs"]

    # ------------------------------------------------------------- target side
    def replay_cssa(self, plan: dict[int, int]) -> None:
        """Rebuild the hardware CSSA counters by EENTER/AEX replay.

        This is the §IV-C restore path: "Only the untrusted SGX library
        together with guest OS can restore the value of CSSA through
        executing the EENTER and triggering the AEX repeatedly."
        """
        for worker_index, target_cssa in sorted(plan.items()):
            template = next(
                t for t in self.image.tcs_templates if t.index == worker_index
            )
            for _ in range(target_cssa):
                session = isa.eenter(self.cpu, self.hw(), template.vaddr, aep=self)
                rt = self._runtime(session)
                rt.entry_stub(template.index)  # counted: restore mode is on
                isa.aex(session, {"kind": "replay"})
