"""The enclave SDK and the untrusted SGX library.

"We also provide an SDK for developers so that they can write code running
in an enclave without awareness of our mechanism for migration, e.g., the
control thread" (§I).  The SDK builder injects into every image:

* the control thread (its TCS and its entry),
* entry/exit stubs that maintain the two-phase-checkpointing flags and
  record EENTER's CSSA return value (§IV-B, §IV-C),
* the exception handler that parks interrupted workers during migration,
* the embedded image keypair of §V-B (public plaintext, private sealed).

Developers only write :class:`~repro.sdk.program.EnclaveProgram` entries.
"""

from repro.sdk.builder import SdkBuilder
from repro.sdk.host import HostApplication, WorkerSpec
from repro.sdk.image import EnclaveImage
from repro.sdk.library import SgxLibrary
from repro.sdk.owner import EnclaveOwner
from repro.sdk.program import AtomicEntry, EnclaveProgram, ResumableEntry

__all__ = [
    "AtomicEntry",
    "EnclaveImage",
    "EnclaveOwner",
    "EnclaveProgram",
    "HostApplication",
    "ResumableEntry",
    "SdkBuilder",
    "SgxLibrary",
    "WorkerSpec",
]
