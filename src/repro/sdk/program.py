"""Enclave programs: what developers write.

An :class:`EnclaveProgram` is the enclave's code.  Two entry flavours:

* :class:`AtomicEntry` — a plain function; runs to completion within one
  scheduling step, so it can never be interrupted mid-flight.  Right for
  short request handlers and compute kernels.
* :class:`ResumableEntry` — an explicit step machine whose live state is
  a serializable register dict.  Between steps the thread can be
  preempted (AEX), its context parked in an SSA frame, checkpointed,
  migrated, and resumed on another machine.  This is the shape that makes
  mid-execution migration (and the §IV-A consistency attack window)
  expressible.

Because enclave code must be byte-measurable (MRENCLAVE) but our "code" is
Python, every program registers under a ``code_id`` in a process-global
registry — the model's analogue of the enclave binary being available on
both machines ("the target machine creates and initializes a virgin
enclave using the same image", §III Step-1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.sdk.runtime import EnclaveRuntime


class ProgramError(ReproError):
    """Bad program structure or a missing registry entry."""


@dataclass(frozen=True)
class AtomicEntry:
    """An ecall that runs to completion in one step."""

    fn: Callable[["EnclaveRuntime", Any], Any]
    #: Modelled execution cost; ``cost_fn(args)`` overrides when provided.
    cost_ns: int = 5_000
    cost_fn: Callable[[Any], int] | None = None

    def cost_for(self, args: Any) -> int:
        return self.cost_fn(args) if self.cost_fn is not None else self.cost_ns


@dataclass(frozen=True)
class ResumableEntry:
    """An ecall expressed as an interruptible step machine.

    ``prepare(rt, args)`` returns the initial register dict (canonical
    values only — it must survive :mod:`repro.serde`).  Each step mutates
    the registers and enclave memory; after the last step the entry's
    result is ``regs.get("result")``.
    """

    prepare: Callable[["EnclaveRuntime", Any], dict[str, Any]]
    steps: tuple[Callable[["EnclaveRuntime", dict[str, Any]], None], ...]
    step_cost_ns: int = 5_000


@dataclass
class EnclaveProgram:
    """A named, versioned set of enclave entry points."""

    code_id: str
    entries: dict[str, AtomicEntry | ResumableEntry] = field(default_factory=dict)

    def entry(self, name: str) -> AtomicEntry | ResumableEntry:
        try:
            return self.entries[name]
        except KeyError:
            raise ProgramError(f"program {self.code_id!r} has no entry {name!r}") from None

    def add_entry(self, name: str, entry: AtomicEntry | ResumableEntry) -> "EnclaveProgram":
        if name in self.entries:
            raise ProgramError(f"duplicate entry {name!r}")
        self.entries[name] = entry
        return self


# ---------------------------------------------------------------------------
# Program registry — the model's "binary distribution channel".
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, EnclaveProgram] = {}


def register_program(program: EnclaveProgram) -> EnclaveProgram:
    """Publish a program so any machine can instantiate its image.

    Re-registering the same ``code_id`` must provide an identical entry
    set (same "binary"); anything else is a build error.
    """
    existing = _REGISTRY.get(program.code_id)
    if existing is not None and set(existing.entries) != set(program.entries):
        raise ProgramError(f"conflicting registration for code id {program.code_id!r}")
    _REGISTRY[program.code_id] = program
    return program


def lookup_program(code_id: str) -> EnclaveProgram:
    try:
        return _REGISTRY[code_id]
    except KeyError:
        raise ProgramError(f"no registered program with code id {code_id!r}") from None
