"""The enclave owner: the remote party that trusts only the enclave.

At launch the owner attests the enclave (via IAS) and provisions the
plaintext image private key of §V-B.  For legal checkpoint/resume (§V-C)
the owner hands out K_encrypt over the same attested exchange and logs
every grant: "all the checkpoint/resume operations are logged.  By
auditing the log, an owner can check suspicious rollbacks."

The owner is *not* on the migration path (§III: "the remote attestation
is done by source control thread without involving the enclave owner").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.authenc import seal_envelope
from repro.crypto.dh import MODP_2048_G, MODP_2048_P
from repro.crypto.hashes import sha256
from repro.crypto.keys import SymmetricKey
from repro.errors import AttestationError
from repro.sdk.builder import BuiltImage
from repro.serde import pack
from repro.sgx.attestation import AttestationService, verify_avr
from repro.sgx.structures import Quote
from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.rng import DeterministicRng


@dataclass
class AuditEntry:
    """One owner-audited checkpoint/resume operation."""

    t_ns: int
    image: str
    operation: str  # "snapshot" | "resume"
    sequence: int | None
    reason: str


@dataclass
class _ImageRecord:
    built: BuiltImage
    kencrypt: SymmetricKey | None = None
    last_sequence: int | None = None


class EnclaveOwner:
    """Holds per-image secrets; answers attested key requests."""

    def __init__(
        self,
        name: str,
        ias: AttestationService,
        clock: VirtualClock,
        costs: CostModel,
        rng: DeterministicRng,
    ) -> None:
        self.name = name
        self.ias = ias
        self.clock = clock
        self.costs = costs
        self.rng = rng.fork(f"owner/{name}")
        self._images: dict[str, _ImageRecord] = {}
        self.audit_log: list[AuditEntry] = []
        self._agent_mrenclave: bytes | None = None

    def register_image(self, built: BuiltImage) -> None:
        self._images[built.image.name] = _ImageRecord(built)

    def set_agent_image(self, built: BuiltImage) -> None:
        """Declare the developer-provided agent enclave (§VI-D).

        Its measurement is provisioned into every enclave so the source
        control thread knows which agent it may escrow K_migrate to.
        """
        self.register_image(built)
        self._agent_mrenclave = built.image.mrenclave

    # ------------------------------------------------------------- internals
    def _record(self, image_name: str) -> _ImageRecord:
        record = self._images.get(image_name)
        if record is None:
            raise AttestationError(f"owner does not manage image {image_name!r}")
        return record

    def _attest(self, record: _ImageRecord, quote: Quote, purpose: str, dh_public: int) -> None:
        """Verify a quote through IAS and check the DH binding."""
        # App -> owner -> IAS -> owner: two WAN round trips.
        self.clock.advance(self.costs.wan_round_trip_ns())
        avr = self.ias.verify_quote(quote)
        self.clock.advance(self.costs.wan_round_trip_ns())
        verify_avr(avr, self.ias.public_key, expected_mrenclave=record.built.image.mrenclave)
        expected = sha256(purpose.encode() + dh_public.to_bytes(256, "big")).ljust(64, b"\x00")
        if avr.report_data != expected:
            raise AttestationError("quote does not bind the offered DH value")

    def _answer(self, dh_public: int, payload: dict, aad: bytes) -> tuple[int, bytes]:
        """Complete the DH exchange and seal ``payload`` for the enclave."""
        private = self.rng.getrandbits(256) | (1 << 255)
        owner_public = pow(MODP_2048_G, private, MODP_2048_P)
        shared = pow(dh_public, private, MODP_2048_P)
        session_key = SymmetricKey(sha256(shared.to_bytes(256, "big")), "owner-session")
        sealed = seal_envelope(session_key, pack(payload), self.rng.bytes(16), "aes", aad=aad)
        return owner_public, sealed.to_bytes()

    # ------------------------------------------------------------- launch
    def provision(self, image_name: str, quote: Quote, dh_public: int) -> tuple[int, bytes]:
        """Launch-time provisioning: deliver the plaintext image key."""
        record = self._record(image_name)
        self._attest(record, quote, "provision", dh_public)
        key = record.built.image_private_key.private
        payload = {
            "priv_n": key.n,
            "priv_e": key.e,
            "priv_d": key.d,
            "ias_n": self.ias.public_key.n,
            "ias_e": self.ias.public_key.e,
            "agent_mr": self._agent_mrenclave,
        }
        return self._answer(dh_public, payload, b"provision")

    # ------------------------------------------------------------- §V-C keys
    def grant_snapshot_key(
        self, image_name: str, quote: Quote, dh_public: int, reason: str
    ) -> tuple[int, bytes]:
        """Hand K_encrypt to an attested enclave about to checkpoint."""
        record = self._record(image_name)
        self._attest(record, quote, "snapshot", dh_public)
        if record.kencrypt is None:
            record.kencrypt = SymmetricKey(self.rng.bytes(32), f"{image_name}/kencrypt")
        self.audit_log.append(
            AuditEntry(self.clock.now_ns, image_name, "snapshot", None, reason)
        )
        payload = {"key": record.kencrypt.material, "sequence": None}
        return self._answer(dh_public, payload, b"snapshot")

    def record_snapshot(self, image_name: str, sequence: int) -> None:
        """Log which checkpoint sequence a granted snapshot produced."""
        record = self._record(image_name)
        record.last_sequence = sequence
        for entry in reversed(self.audit_log):
            if entry.image == image_name and entry.operation == "snapshot":
                entry.sequence = sequence
                break

    def grant_resume_key(
        self, image_name: str, quote: Quote, dh_public: int, reason: str
    ) -> tuple[int, bytes]:
        """Hand K_encrypt to a fresh, attested enclave that will resume."""
        record = self._record(image_name)
        if record.kencrypt is None:
            raise AttestationError(f"no snapshot key was ever issued for {image_name!r}")
        self._attest(record, quote, "resume", dh_public)
        self.audit_log.append(
            AuditEntry(self.clock.now_ns, image_name, "resume", record.last_sequence, reason)
        )
        payload = {"key": record.kencrypt.material, "sequence": record.last_sequence}
        return self._answer(dh_public, payload, b"resume")

    def suspicious_rollbacks(self) -> list[AuditEntry]:
        """Audit helper: resumes of a sequence that was already resumed."""
        seen: set[int] = set()
        flagged = []
        for entry in self.audit_log:
            if entry.operation != "resume" or entry.sequence is None:
                continue
            if entry.sequence in seen:
                flagged.append(entry)
            seen.add(entry.sequence)
        return flagged
