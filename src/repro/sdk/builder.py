"""The SDK builder: turns a developer program into an enclave image.

"Our SDK hides the details ... The SDK also adds the code of control
thread, and another TCS for invoking the thread, without the developers'
involvement" (§VI-C).  Concretely, the builder:

* lays out the control block (global flag at the enclave base, per-TCS
  flag/CSSA records) — the two-phase-checkpointing state of §IV-B;
* adds one TCS + stack + SSA region per worker thread, plus one more TCS
  for the injected control thread;
* serializes a code manifest page so MRENCLAVE covers the program;
* embeds the §V-B image keypair (public plaintext, private ciphertext);
* computes the measurement the same way the hardware will and signs the
  SIGSTRUCT with the vendor key.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.authenc import seal_envelope
from repro.crypto.keys import KeyPair, SymmetricKey
from repro.crypto.rsa import generate_rsa_keypair
from repro.sdk.image import (
    CONTROL_ENTRY,
    DISPATCH_ENTRY,
    OBJ_BOOT,
    OBJ_CHANNEL,
    OBJ_IMAGE_PRIVKEY,
    EnclaveImage,
    EnclaveLayout,
    PageSpec,
    TcsTemplate,
)
from repro.sdk.program import EnclaveProgram, register_program
from repro.serde import pack
from repro.sgx.measurement import MeasurementLog
from repro.sgx.structures import (
    DEFAULT_NSSA,
    PAGE_SIZE,
    PageType,
    Permissions,
    SecInfo,
    SigStruct,
    Tcs,
)
from repro.sim.rng import DeterministicRng

DEFAULT_BASE = 0x1000_0000

#: Reserved object-store slots the SDK always provides (1 page each).
_BUILTIN_OBJECTS = (OBJ_IMAGE_PRIVKEY, OBJ_BOOT, OBJ_CHANNEL)


@dataclass
class BuiltImage:
    """Builder output: the image plus the owner-side secrets."""

    image: EnclaveImage
    #: Plaintext image private key — held by the *owner*, delivered to
    #: enclaves only over attested channels (§V-B).
    image_private_key: KeyPair


class SdkBuilder:
    """Builds signed enclave images from programs."""

    def __init__(self, vendor_key: KeyPair, rng: DeterministicRng) -> None:
        self._vendor_key = vendor_key
        self._rng = rng

    def build(
        self,
        name: str,
        program: EnclaveProgram,
        n_workers: int = 2,
        heap_pages: int = 4,
        data_objects: dict[str, int] | None = None,
        global_names: tuple[str, ...] = (),
        nssa: int = DEFAULT_NSSA,
        base: int = DEFAULT_BASE,
        add_unreadable_page: bool = False,
    ) -> BuiltImage:
        """Build, measure and sign an image for ``program``.

        ``data_objects`` maps object-store slot names to capacities in
        bytes; ``global_names`` get one u64 slot each.  Setting
        ``add_unreadable_page`` adds a W+X (non-readable) page, the SGX v1
        corner the paper calls out as unmigratable (§IV-B).
        """
        register_program(program)
        rng = self._rng.fork(f"image/{name}")
        image_key = KeyPair(generate_rsa_keypair(rng.fork("image-key")), f"{name}/image")

        pages: list[PageSpec] = []
        cursor = base

        def take_page(spec: PageSpec) -> int:
            nonlocal cursor
            pages.append(spec)
            cursor += PAGE_SIZE
            return spec.vaddr

        # Page 0: control block (global flag lives at offset 0).
        take_page(PageSpec(cursor, SecInfo(PageType.REG, Permissions.RW)))

        # Code manifest page(s): measured stand-in for the text segment.
        manifest = pack(
            {"code_id": program.code_id, "entries": sorted(program.entries)}
        )
        for off in range(0, max(len(manifest), 1), PAGE_SIZE):
            take_page(
                PageSpec(
                    cursor,
                    SecInfo(PageType.REG, Permissions.RX),
                    content=manifest[off : off + PAGE_SIZE],
                )
            )

        # Key page: §V-B embedded keypair.  The private half is sealed to
        # an owner-held key; it is opaque ciphertext to everyone else.
        owner_seal = SymmetricKey(rng.bytes(32), f"{name}/owner-seal")
        priv_blob = pack({"n": image_key.private.n, "e": image_key.private.e, "d": image_key.private.d})
        priv_ct = seal_envelope(owner_seal, priv_blob, rng.bytes(16), "aes").to_bytes()
        key_page = pack(
            {"pub_n": image_key.public.n, "pub_e": image_key.public.e, "priv_ct": priv_ct}
        )
        key_page_vaddr = cursor
        take_page(
            PageSpec(cursor, SecInfo(PageType.REG, Permissions.R), content=key_page[:PAGE_SIZE])
        )

        # Globals page: one u64 slot per name.
        globals_table: dict[str, int] = {}
        if global_names:
            globals_base = cursor
            take_page(PageSpec(cursor, SecInfo(PageType.REG, Permissions.RW)))
            for i, gname in enumerate(global_names):
                if (i + 1) * 8 > PAGE_SIZE:
                    raise ValueError("too many globals for one page")
                globals_table[gname] = globals_base + i * 8

        # Object store: built-ins first, then developer slots.
        objects_table: dict[str, tuple[int, int]] = {}
        all_objects = {obj: PAGE_SIZE for obj in _BUILTIN_OBJECTS}
        all_objects.update(data_objects or {})
        for oname, capacity in all_objects.items():
            n_pages = max(1, -(-capacity // PAGE_SIZE))
            objects_table[oname] = (cursor, n_pages * PAGE_SIZE)
            for _ in range(n_pages):
                take_page(PageSpec(cursor, SecInfo(PageType.REG, Permissions.RW)))

        # Heap.
        heap_base = cursor
        for _ in range(heap_pages):
            take_page(PageSpec(cursor, SecInfo(PageType.REG, Permissions.RW)))

        # The SGX v1 unmigratable corner: a writable+executable page the
        # control thread cannot read.
        if add_unreadable_page:
            take_page(
                PageSpec(cursor, SecInfo(PageType.REG, Permissions.W | Permissions.X))
            )

        # Per-thread resources: stacks, SSA regions, then the TCS pages.
        n_tcs = n_workers + 1  # + control thread
        stack_bases = []
        for _ in range(n_tcs):
            stack_bases.append(take_page(PageSpec(cursor, SecInfo(PageType.REG, Permissions.RW))))
        ssa_bases = []
        for _ in range(n_tcs):
            ssa_bases.append(cursor)
            for _ in range(nssa):
                take_page(PageSpec(cursor, SecInfo(PageType.REG, Permissions.RW)))

        tcs_templates: list[TcsTemplate] = []
        for i in range(n_tcs):
            role = "worker" if i < n_workers else "control"
            oentry = DISPATCH_ENTRY if role == "worker" else CONTROL_ENTRY
            template = TcsTemplate(
                index=i, vaddr=cursor, oentry=oentry, ossa=ssa_bases[i], nssa=nssa, role=role
            )
            tcs_templates.append(template)
            take_page(
                PageSpec(
                    cursor,
                    SecInfo(PageType.TCS, Permissions.NONE),
                    tcs_index=i,
                )
            )

        size = cursor - base
        layout = EnclaveLayout(
            base=base,
            size=size,
            n_tcs=n_tcs,
            nssa=nssa,
            globals_table=globals_table,
            objects_table=objects_table,
            heap_base=heap_base,
            heap_bytes=heap_pages * PAGE_SIZE,
            key_page_vaddr=key_page_vaddr,
            key_page_len=len(key_page),
        )

        mrenclave = self._measure(base, size, pages, tcs_templates)
        body = SigStruct(mrenclave, self._vendor_key.label, self._vendor_key.public.n, b"")
        sigstruct = SigStruct(
            mrenclave,
            self._vendor_key.label,
            self._vendor_key.public.n,
            self._vendor_key.private.sign(body.signed_body()),
        )
        image = EnclaveImage(
            name=name,
            code_id=program.code_id,
            layout=layout,
            pages=pages,
            tcs_templates=tcs_templates,
            sigstruct=sigstruct,
            image_public_n=image_key.public.n,
            image_public_e=image_key.public.e,
        )
        return BuiltImage(image=image, image_private_key=image_key)

    @staticmethod
    def _measure(
        base: int, size: int, pages: list[PageSpec], tcs_templates: list[TcsTemplate]
    ) -> bytes:
        """Compute the MRENCLAVE the hardware will produce for this image.

        Replays the exact ECREATE/EADD/EEXTEND sequence the driver issues,
        using the same :class:`MeasurementLog`, so EINIT's comparison with
        the SIGSTRUCT is an end-to-end check rather than a tautology.
        """
        log = MeasurementLog()
        log.ecreate(base, size)
        for spec in pages:
            log.eadd(spec.vaddr, spec.sec_info)
            if not spec.measure:
                continue
            if spec.tcs_index is not None:
                template = tcs_templates[spec.tcs_index]
                tcs = Tcs(template.vaddr, template.oentry, template.ossa, template.nssa)
                log.eextend(spec.vaddr, tcs.to_bytes().ljust(PAGE_SIZE, b"\x00"))
            else:
                log.eextend(spec.vaddr, spec.content.ljust(PAGE_SIZE, b"\x00"))
        return log.finalize()
