"""The control thread: in-enclave migration logic.

"we introduce control thread, a new thread that runs within each enclave,
to assist migration ... Control threads are totally transparent to enclave
developers as long as the developers use our SDK" (§III).

Everything in this module executes inside an enclave session (it is part
of the enclave's TCB).  The untrusted SGX library merely EENTERs the
control TCS and invokes these functions; none of them ever hands key
material or plaintext state to the outside.

Source-side ops: two-phase checkpoint generation (§IV-B), single secure
channel with mutual authentication (§V-B), K_migrate handoff followed by
self-destroy (§V-B), cancellation.

Target-side ops: channel request, checkpoint restore, CSSA replay
verification (§IV-C / §III step-4), and finish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.crypto.authenc import Envelope, open_envelope, seal_envelope
from repro.crypto.dh import MODP_2048_G, MODP_2048_P
from repro.crypto.hashes import sha256
from repro.crypto.keys import SymmetricKey
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import (
    AttestationError,
    ChannelError,
    CssaMismatch,
    HandoffReplayed,
    MigrationError,
    RestoreError,
    SelfDestroyed,
    StorageRolledBack,
)
from repro.migration.checkpoint import (
    EnclaveCheckpoint,
    TcsState,
    open_checkpoint,
    seal_checkpoint,
)
from repro.sdk.image import (
    FLAG_BUSY,
    FLAG_FREE,
    FLAG_SPIN,
    OBJ_BOOT,
    OBJ_CHANNEL,
    OBJ_IMAGE_PRIVKEY,
    TCS_CSSA_EENTER_OFF,
)
from repro.sdk.runtime import EnclaveRuntime
from repro.serde import pack, unpack
from repro.sgx.attestation import (
    AttestationVerificationReport,
    QuotingEnclave,
    quote_for,
    verify_avr,
)
from repro.sgx.structures import PAGE_SIZE, PageType, Permissions, Quote
from repro.sim.costs import CostModel

# Channel states (stored in the control block).
CHANNEL_NONE = 0
CHANNEL_OPEN = 1
CHANNEL_SPENT = 2  # key handed over; the enclave has self-destroyed


@dataclass
class CheckpointResult:
    """What the control thread hands back to the (untrusted) library."""

    envelope: Envelope
    memory_bytes: int
    skipped_pages: int
    sequence: int


def _ensure_not_destroyed(rt: EnclaveRuntime) -> None:
    if rt.channel_state() == CHANNEL_SPENT:
        raise SelfDestroyed("this enclave instance handed over its state and will not run")


def _bind_report_data(purpose: str, dh_public: int) -> bytes:
    """Bind a DH public value into EREPORT's report_data field.

    Padded to the architectural 64-byte report_data width so comparisons
    against REPORT/QUOTE fields are exact.
    """
    return sha256(purpose.encode() + dh_public.to_bytes(256, "big")).ljust(64, b"\x00")


# ---------------------------------------------------------------------------
# Two-phase checkpoint generation (§IV-B)
# ---------------------------------------------------------------------------

def generate_checkpoint(
    rt: EnclaveRuntime,
    costs: CostModel,
    algorithm: str = "rc4",
    use_installed_key: bool = False,
    poll_cost_ns: int = 600,
    pages_per_step: int = 16,
    sgx_v2: bool = False,
) -> Iterator[int]:
    """Two-phase checkpointing, as a cost-yielding generator.

    Phase one sets the global flag and waits for every worker to reach a
    safe state (free or spin) — *without asking the OS anything*.  Phase
    two dumps all readable memory, derives the per-TCS tracked CSSA, and
    seals everything under a freshly drawn K_migrate — or, when
    ``use_installed_key`` is set, under the owner-provided K_encrypt that
    an attested :func:`owner_key_install` placed in enclave memory (the
    legal checkpoint/resume path of §V-C).

    Returns a :class:`CheckpointResult` via ``StopIteration.value``.
    """
    _ensure_not_destroyed(rt)
    image = rt.image
    worker_indices = [t.index for t in image.tcs_templates if t.role == "worker"]
    control_index = image.control_tcs.index

    # Phase one: raise the flag, then wait for the quiescent point.
    rt.set_global_flag(1)
    yield 500
    while not rt.quiescent(worker_indices):
        yield poll_cost_ns

    # Phase two: the enclave is quiescent; dump from inside.
    if use_installed_key:
        installed = rt.load_obj(OBJ_CHANNEL, default={}) or {}
        if "kmigrate" not in installed:
            raise MigrationError("no owner key installed for checkpointing")
        kmigrate = SymmetricKey(installed["kmigrate"], "kencrypt")
    else:
        kmigrate = SymmetricKey(rt.random_bytes(32), "kmigrate")
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    sequence = int(channel.get("sequence", 0)) + 1
    channel.update({"kmigrate": kmigrate.material, "ckpt_done": True, "sequence": sequence})
    rt.store_obj(OBJ_CHANNEL, channel)
    yield 500

    pages: dict[int, bytes] = {}
    readable = image.readable_reg_vaddrs()
    for start in range(0, len(readable), pages_per_step):
        batch = readable[start : start + pages_per_step]
        for vaddr in batch:
            pages[vaddr] = rt.read(vaddr, PAGE_SIZE)
        yield costs.memcpy_ns(len(batch) * PAGE_SIZE)
    if sgx_v2:
        # §IV-B: "this problem can be fixed in SGX v2 which supports
        # dynamically changing page permissions" — EMODPE the W+X pages
        # readable for the copy, then restore their permissions.
        from repro.sgx.sgx2 import dump_unreadable_page_v2

        unreadable = [
            p.vaddr
            for p in image.pages
            if p.sec_info.page_type is PageType.REG and p.vaddr not in pages
        ]
        for vaddr in unreadable:
            pages[vaddr] = dump_unreadable_page_v2(rt.session, vaddr)
            yield costs.memcpy_ns(PAGE_SIZE) + 4 * costs.eextend_page_ns

    tcs_states = []
    for template in image.tcs_templates:
        if template.index == control_index:
            tcs_states.append(TcsState(template.index, cssa=0, local_flag=FLAG_FREE))
            continue
        flag = rt.local_flag(template.index)
        cssa = rt.cssa_eenter(template.index) if flag == FLAG_SPIN else 0
        tcs_states.append(TcsState(template.index, cssa=cssa, local_flag=flag))

    skipped = [
        p.vaddr
        for p in image.pages
        if p.vaddr not in pages and p.tcs_index is None
    ]
    checkpoint = EnclaveCheckpoint(
        image_name=image.name,
        code_id=image.code_id,
        mrenclave=image.mrenclave,
        sequence=sequence,
        pages=pages,
        tcs_states=tcs_states,
        skipped_pages=skipped,
        # Bind the storage snapshot to this checkpoint: the target will
        # refuse to go live on a namespace older than this (0 when the
        # enclave keeps no persistent storage).
        storage_version=rt.storage_version(),
    )
    # Charge the hash+encrypt pipeline in slices so concurrent control
    # threads overlap on the VCPUs instead of serializing one big step.
    body_len = checkpoint.memory_bytes
    crypto_ns = costs.hash_ns(body_len) + costs.cipher_ns(algorithm, body_len)
    slices = 10
    for _ in range(slices):
        yield crypto_ns // slices
    envelope = seal_checkpoint(checkpoint, kmigrate, rt.random_bytes(16), algorithm)
    # Durability: the sealed envelope is ciphertext the host sees anyway;
    # K_migrate goes into the record sealed under this enclave's own
    # EGETKEY key, so only a same-measurement rebuild can ever read it.
    # The fsync blocks this control thread, not the machine: defer the
    # commit cost into a yield so concurrent checkpointers overlap their
    # journal waits instead of serializing on a stop-the-world charge.
    commit_wait_ns = rt.journal_record(
        "checkpoint",
        {"sequence": sequence, "envelope": envelope.to_bytes()},
        secret={"kmigrate": kmigrate.material, "sequence": sequence},
        defer_charge=True,
    )
    if commit_wait_ns:
        yield commit_wait_ns
    return CheckpointResult(
        envelope=envelope,
        memory_bytes=body_len,
        skipped_pages=len(skipped),
        sequence=sequence,
    )


# ---------------------------------------------------------------------------
# Boot-time provisioning (§II-A attestation, §V-B image keys)
# ---------------------------------------------------------------------------

def provision_request(rt: EnclaveRuntime, qe: QuotingEnclave) -> tuple[Quote, int]:
    """Start owner provisioning: fresh DH half + quote binding it."""
    rt.fresh_dh_private_store(OBJ_BOOT)
    private = rt.load_obj(OBJ_BOOT)["dh_private"]
    dh_public = pow(MODP_2048_G, private, MODP_2048_P)
    quote = quote_for(rt.session, qe, _bind_report_data("provision", dh_public))
    return quote, dh_public


def provision_complete(rt: EnclaveRuntime, owner_dh_public: int, sealed: bytes) -> None:
    """Finish provisioning: derive the session key, store the secrets."""
    boot = rt.load_obj(OBJ_BOOT)
    if boot is None:
        raise AttestationError("no provisioning in progress")
    shared = pow(owner_dh_public, boot["dh_private"], MODP_2048_P)
    session_key = SymmetricKey(sha256(shared.to_bytes(256, "big")), "provision-session")
    payload = unpack(open_envelope(session_key, Envelope.from_bytes(sealed), aad=b"provision"))
    rt.store_obj(
        OBJ_IMAGE_PRIVKEY,
        {
            "n": payload["priv_n"],
            "e": payload["priv_e"],
            "d": payload["priv_d"],
            "ias_n": payload["ias_n"],
            "ias_e": payload["ias_e"],
            "agent_mr": payload.get("agent_mr"),
        },
    )
    rt.delete_obj(OBJ_BOOT)
    rt.set_attested()


# ---------------------------------------------------------------------------
# The migration secure channel (§V-B)
# ---------------------------------------------------------------------------

def owner_key_request(rt: EnclaveRuntime, qe: QuotingEnclave, purpose: str) -> tuple[Quote, int]:
    """Generic attested key request to the enclave owner (§V-C).

    Used for snapshot (get K_encrypt before checkpointing) and resume
    (get K_encrypt back into a fresh enclave).  The owner logs every
    grant, which is what makes rollbacks auditable.
    """
    rt.fresh_dh_private_store(OBJ_BOOT)
    private = rt.load_obj(OBJ_BOOT)["dh_private"]
    dh_public = pow(MODP_2048_G, private, MODP_2048_P)
    quote = quote_for(rt.session, qe, _bind_report_data(purpose, dh_public))
    return quote, dh_public


def owner_key_install(
    rt: EnclaveRuntime, owner_dh_public: int, sealed: bytes, purpose: str
) -> None:
    """Install an owner-granted key (K_encrypt) into enclave memory."""
    boot = rt.load_obj(OBJ_BOOT)
    if boot is None:
        raise ChannelError("no owner key request in progress")
    shared = pow(owner_dh_public, boot["dh_private"], MODP_2048_P)
    session_key = SymmetricKey(sha256(shared.to_bytes(256, "big")), "owner-session")
    payload = unpack(
        open_envelope(session_key, Envelope.from_bytes(sealed), aad=purpose.encode())
    )
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    channel["kmigrate"] = payload["key"]
    if payload.get("sequence") is not None:
        channel["expected_sequence"] = payload["sequence"]
    rt.store_obj(OBJ_CHANNEL, channel)
    rt.delete_obj(OBJ_BOOT)


def target_channel_request(rt: EnclaveRuntime, qe: QuotingEnclave) -> tuple[Quote, int]:
    """Target side: fresh DH half + quote, sent to the source enclave."""
    rt.fresh_dh_private_store(OBJ_BOOT)
    private = rt.load_obj(OBJ_BOOT)["dh_private"]
    dh_public = pow(MODP_2048_G, private, MODP_2048_P)
    quote = quote_for(rt.session, qe, _bind_report_data("migrate-target", dh_public))
    return quote, dh_public


def source_open_channel(
    rt: EnclaveRuntime,
    avr: AttestationVerificationReport,
    target_dh_public: int,
) -> tuple[int, bytes]:
    """Source side: attest the target, then answer its DH half.

    The source acts as the enclave owner would at launch time (§III
    Step-2): it checks the IAS-signed report, requires the *same
    measurement as itself* (same image), and verifies the report binds
    the DH value.  It will do this for exactly one target ("build only
    one secure channel even if receiving many exchange requests").
    """
    _ensure_not_destroyed(rt)
    if not rt.attested():
        raise ChannelError("source enclave was never provisioned by its owner")
    if rt.channel_state() != CHANNEL_NONE:
        raise ChannelError("migration channel already established: refusing a second target")
    secrets = rt.load_obj(OBJ_IMAGE_PRIVKEY)
    ias_key = RsaPublicKey(secrets["ias_n"], secrets["ias_e"])
    verify_avr(avr, ias_key, expected_mrenclave=rt.image.mrenclave)
    if avr.report_data != _bind_report_data("migrate-target", target_dh_public):
        raise AttestationError("target quote does not bind the offered DH value")

    private = rt.rdrand.getrandbits(256) | (1 << 255)
    source_dh_public = pow(MODP_2048_G, private, MODP_2048_P)
    shared = pow(target_dh_public, private, MODP_2048_P)
    session_key = sha256(shared.to_bytes(256, "big"))

    # Authenticate the source to the target with the image private key
    # (§V-B: "All the messages from the source enclave to the target
    # enclave are encrypted by this private key").
    image_key = RsaPrivateKey(secrets["n"], secrets["e"], secrets["d"])
    transcript = pack(
        {"source_pub": source_dh_public, "target_pub": target_dh_public, "purpose": "migrate"}
    )
    signature = image_key.sign(transcript)

    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    channel.update({"session_key": session_key, "role": "source"})
    rt.store_obj(OBJ_CHANNEL, channel)
    rt.set_channel_state(CHANNEL_OPEN)
    rt.journal_record("channel-open")
    return source_dh_public, signature


def target_complete_channel(
    rt: EnclaveRuntime, source_dh_public: int, signature: bytes
) -> None:
    """Target side: verify the source's signature with the embedded key.

    "the target enclave can get the plaintext private key from the source
    enclave ... the target control thread can verify the received message
    with the public key" — the public key sits in a *measured* page of
    the virgin image, so the untrusted stack cannot substitute it.
    """
    boot = rt.load_obj(OBJ_BOOT)
    if boot is None:
        raise ChannelError("no channel request in progress")
    key_page = unpack(rt.read(rt.layout.key_page_vaddr, rt.layout.key_page_len))
    image_public = RsaPublicKey(key_page["pub_n"], key_page["pub_e"])
    private = boot["dh_private"]
    target_dh_public = pow(MODP_2048_G, private, MODP_2048_P)
    transcript = pack(
        {"source_pub": source_dh_public, "target_pub": target_dh_public, "purpose": "migrate"}
    )
    image_public.verify(transcript, signature)  # raises SignatureError
    shared = pow(source_dh_public, private, MODP_2048_P)
    session_key = sha256(shared.to_bytes(256, "big"))
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    channel.update({"session_key": session_key, "role": "target"})
    rt.store_obj(OBJ_CHANNEL, channel)
    rt.set_channel_state(CHANNEL_OPEN)
    rt.delete_obj(OBJ_BOOT)
    rt.journal_record("channel")


def _session_key(rt: EnclaveRuntime) -> SymmetricKey:
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    if "session_key" not in channel:
        raise ChannelError("no migration channel established")
    return SymmetricKey(channel["session_key"], "migration-session")


# ---------------------------------------------------------------------------
# Sealed-storage & counter handoff (persistent-state migration)
# ---------------------------------------------------------------------------
#
# A long-lived service's sealed storage is bound to its host: the table
# blob is sealed under this CPU's EGETKEY key and its freshness counters
# live in this host's tamper-resistant counter bank.  Neither survives
# the move on its own, so the migration protocol gains a negotiated
# `handoff-storage` step between checkpoint transfer and key release:
# the source re-seals (table, version) under the channel session key with
# the channel sequence bound into the payload, and the target re-binds it
# to its own EGETKEY key and counter bank before K_migrate ever moves.
# The source's namespace is tombstoned at the point of no return, so a
# resumed or rebuilt source can never fork the counter lineage.

def storage_put(rt: EnclaveRuntime, key: str, value) -> int:
    """Service-facing entry: write one persistent entry (control TCS)."""
    _ensure_not_destroyed(rt)
    return rt.storage_put(key, value)


def storage_get(rt: EnclaveRuntime, key: str, default=None):
    """Service-facing entry: read one persistent entry (control TCS)."""
    _ensure_not_destroyed(rt)
    return rt.storage_get(key, default)


def source_export_storage(rt: EnclaveRuntime) -> bytes:
    """Re-seal the sealed-storage namespace for the attested target.

    Runs after the checkpoint is generated (the channel sequence exists)
    and strictly before :func:`source_release_key` — the export itself is
    not the point of no return; a cancelled migration leaves the source's
    namespace untouched and usable.
    """
    _ensure_not_destroyed(rt)
    if rt.channel_state() != CHANNEL_OPEN:
        raise ChannelError("cannot hand off storage without an open channel")
    channel = rt.load_obj(OBJ_CHANNEL)
    if not channel.get("ckpt_done"):
        raise MigrationError("storage handoff runs after checkpoint generation")
    entries, version = rt.storage_table()
    sequence = int(channel["sequence"])
    sealed = seal_envelope(
        _session_key(rt),
        pack({"version": version, "entries": entries, "sequence": sequence}),
        rt.random_bytes(16),
        "aes",
        aad=b"storage-handoff",
    )
    channel["storage_exported"] = version
    rt.store_obj(OBJ_CHANNEL, channel)
    # Journal the full table as a sealed secret, mirroring the target's
    # storage-import record: either side of a half-handed-off namespace
    # can then be repaired from its own journal after a crash.
    rt.journal_record(
        "storage-export",
        {"sequence": sequence, "version": version},
        secret={"sequence": sequence, "version": version, "entries": entries},
    )
    return sealed.to_bytes()


def _import_storage_table(
    rt: EnclaveRuntime, sequence: int, version: int, entries: dict
) -> int:
    """Shared import core: freshness checks, journal intent, re-bind.

    Refusals are typed and durable: a handoff whose channel sequence was
    already imported here raises :class:`HandoffReplayed` (the handoff
    counter only moves forward), and a table older than what this host
    already committed raises :class:`StorageRolledBack`.  The sealed
    import record is journaled *before* the namespace is rewritten, so a
    crash mid-import is repaired from the journal instead of leaving a
    half-bound namespace that local freshness rules would refuse.
    """
    from repro.durability import wal

    ns = rt.storage_namespace()
    store = rt._journal.store
    last_handoff = store.counter(wal.storage_handoff_counter(ns))
    if sequence <= last_handoff:
        raise HandoffReplayed(
            f"storage handoff for sequence {sequence} was already imported into "
            f"{ns!r} (handoff counter is at {last_handoff}): refusing the replay"
        )
    if version < store.counter(ns):
        raise StorageRolledBack(
            f"storage handoff carries version {version} but namespace {ns!r} "
            f"already committed version {store.counter(ns)}: a stale export "
            "is being replayed onto a newer host"
        )
    rt.journal_record(
        "storage-import",
        {"sequence": sequence, "version": version},
        secret={"sequence": sequence, "version": version, "entries": entries},
    )
    rt.storage_commit(entries, version)
    store.counter_advance(wal.storage_handoff_counter(ns), sequence)
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    channel["storage_imported"] = sequence
    rt.store_obj(OBJ_CHANNEL, channel)
    return version


def target_import_storage(rt: EnclaveRuntime, sealed: bytes) -> int:
    """Re-bind a handed-off namespace to this host; returns its version."""
    payload = unpack(
        open_envelope(_session_key(rt), Envelope.from_bytes(sealed), aad=b"storage-handoff")
    )
    return _import_storage_table(
        rt, int(payload["sequence"]), int(payload["version"]), dict(payload["entries"])
    )


def recovery_install_storage(rt: EnclaveRuntime, sealed: bytes) -> int:
    """Crash recovery: re-commit a storage import this identity journaled.

    ``sealed`` is the journal-sealed ``storage-import`` record payload —
    same EGETKEY policy as :func:`recovery_install_key`.  Idempotent: a
    namespace that already advanced past the journaled version (the
    import committed, then the service kept writing) is left alone.
    """
    from repro.durability import wal

    payload = rt.journal_unseal(sealed)
    version = int(payload["version"])
    ns = rt.storage_namespace()
    store = rt._journal.store
    if version >= store.counter(ns):
        rt.storage_commit(dict(payload["entries"]), version)
    store.counter_advance(wal.storage_handoff_counter(ns), int(payload["sequence"]))
    return store.counter(ns)


def _retire_storage(rt: EnclaveRuntime, sequence: int) -> None:
    """Tombstone the source namespace at the point of no return.

    The retired counter is advanced to the outgoing handoff sequence; the
    namespace stays refusable until a *newer* handoff is imported back
    onto this host (which N-hop chains legitimately do).
    """
    from repro.durability import wal

    ns = rt.storage_namespace()
    rt._journal.store.counter_advance(wal.storage_retired_counter(ns), int(sequence))


# ---------------------------------------------------------------------------
# K_migrate handoff + self-destroy (§V-B)
# ---------------------------------------------------------------------------

def source_release_key(rt: EnclaveRuntime) -> bytes:
    """Hand K_migrate to the single attested target, then self-destroy.

    "The source control thread will refuse to resume the source enclave
    after it transfers the K_migrate ... This is done simply by keeping
    the global flag unchanged so that all the work threads will spin
    forever."
    """
    _ensure_not_destroyed(rt)
    if rt.channel_state() != CHANNEL_OPEN:
        raise ChannelError("cannot release K_migrate without an open channel")
    channel = rt.load_obj(OBJ_CHANNEL)
    if not channel.get("ckpt_done"):
        raise MigrationError("no checkpoint was generated for this migration")
    sealed = seal_envelope(
        _session_key(rt),
        pack({"kmigrate": channel["kmigrate"], "sequence": channel["sequence"]}),
        rt.random_bytes(16),
        "aes",
        aad=b"kmigrate",
    )
    # Journal the transition *before* flipping the state: whatever the
    # crash timing, a "released" record on disk means this instance must
    # recover as SPENT — the converse (SPENT without a record) cannot
    # happen because the record commits first.
    rt.journal_record("released", {"sequence": channel["sequence"]})
    # The storage namespace follows the key over the point of no return:
    # tombstone it in the same control call, so a resumed or rebuilt
    # source refuses to fork the counter lineage.
    if channel.get("storage_exported") is not None:
        _retire_storage(rt, channel["sequence"])
    # Self-destroy: the global flag stays set forever and the channel is
    # marked spent, so no second checkpoint, channel or key can exist.
    rt.set_channel_state(CHANNEL_SPENT)
    return sealed.to_bytes()


def source_cancel_migration(rt: EnclaveRuntime) -> None:
    """Abort before the point of no return: wipe the key, resume workers.

    "If a migration is canceled, the source enclave will delete the
    K_migrate immediately so the checkpoint will be useless."
    """
    if rt.channel_state() == CHANNEL_SPENT:
        raise SelfDestroyed("cannot cancel: K_migrate was already handed over")
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    channel.pop("kmigrate", None)
    channel.pop("session_key", None)
    channel.pop("storage_exported", None)  # the namespace stays ours
    channel["ckpt_done"] = False
    rt.store_obj(OBJ_CHANNEL, channel)
    rt.set_channel_state(CHANNEL_NONE)
    rt.set_global_flag(0)  # workers leave the spin region
    rt.journal_record("cancelled")


def target_receive_key(rt: EnclaveRuntime, sealed: bytes) -> None:
    """Target side: accept K_migrate over the session channel."""
    payload = unpack(
        open_envelope(_session_key(rt), Envelope.from_bytes(sealed), aad=b"kmigrate")
    )
    channel = rt.load_obj(OBJ_CHANNEL)
    channel["kmigrate"] = payload["kmigrate"]
    channel["expected_sequence"] = payload["sequence"]
    rt.store_obj(OBJ_CHANNEL, channel)
    # Re-sealed under *this* enclave's EGETKEY key: if the target dies
    # after this point, a same-measurement rebuild recovers K_migrate
    # from its own journal instead of begging the (SPENT) source.
    rt.journal_record(
        "key-installed",
        {"sequence": payload["sequence"]},
        secret={"kmigrate": payload["kmigrate"], "sequence": payload["sequence"]},
    )


def recovery_install_key(rt: EnclaveRuntime, sealed: bytes) -> None:
    """Crash recovery: re-install a K_migrate this enclave identity
    journaled earlier.

    ``sealed`` is the journal-sealed record payload; only an enclave with
    the same measurement on the same CPU can open it (EGETKEY policy), so
    the untrusted recovery driver can *carry* the blob but never read or
    forge it.
    """
    payload = rt.journal_unseal(sealed)
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    channel["kmigrate"] = payload["kmigrate"]
    channel["expected_sequence"] = payload["sequence"]
    rt.store_obj(OBJ_CHANNEL, channel)


# ---------------------------------------------------------------------------
# Agent-enclave paths (§VI-D optimization)
# ---------------------------------------------------------------------------

def source_escrow_to_agent(
    rt: EnclaveRuntime,
    avr: AttestationVerificationReport,
    agent_dh_public: int,
) -> tuple[int, bytes]:
    """Escrow K_migrate to the remote agent enclave, then self-destroy.

    "the source control thread first remotely attests the agent enclave
    on the target machine and then transfers the K_migrate to it in
    advance" (§VI-D).  The agent's measurement was provisioned by the
    owner, so the source knows exactly which enclave it may trust.
    """
    _ensure_not_destroyed(rt)
    if not rt.attested():
        raise ChannelError("source enclave was never provisioned by its owner")
    if rt.channel_state() != CHANNEL_NONE:
        raise ChannelError("migration channel already established")
    secrets = rt.load_obj(OBJ_IMAGE_PRIVKEY)
    agent_mr = secrets.get("agent_mr")
    if agent_mr is None:
        raise ChannelError("owner provisioned no agent enclave measurement")
    ias_key = RsaPublicKey(secrets["ias_n"], secrets["ias_e"])
    verify_avr(avr, ias_key, expected_mrenclave=agent_mr)
    if avr.report_data != _bind_report_data("agent-escrow", agent_dh_public):
        raise AttestationError("agent quote does not bind the offered DH value")
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    if not channel.get("ckpt_done"):
        raise MigrationError("no checkpoint was generated for this migration")

    private = rt.rdrand.getrandbits(256) | (1 << 255)
    source_dh_public = pow(MODP_2048_G, private, MODP_2048_P)
    shared = pow(agent_dh_public, private, MODP_2048_P)
    session_key = SymmetricKey(sha256(shared.to_bytes(256, "big")), "agent-escrow")
    # The agent path has no direct source↔target session, so any sealed
    # storage rides inside the escrow payload and is re-bound when the
    # agent releases the key to the attested target.
    storage = None
    if rt._journal is not None and rt.storage_version():
        entries, version = rt.storage_table()
        storage = {"version": version, "entries": entries}
    sealed = seal_envelope(
        session_key,
        pack(
            {
                "kmigrate": channel["kmigrate"],
                "sequence": channel["sequence"],
                "target_mr": rt.image.mrenclave,
                "storage": storage,
            }
        ),
        rt.random_bytes(16),
        "aes",
        aad=b"agent-escrow",
    )
    # Point of no return: the key has left this instance.  Same commit
    # order as source_release_key: record first, then tombstone any
    # handed-off storage, then SPENT.
    rt.journal_record("released", {"sequence": channel["sequence"], "escrow": True})
    if storage is not None:
        _retire_storage(rt, channel["sequence"])
    rt.set_channel_state(CHANNEL_SPENT)
    return source_dh_public, sealed.to_bytes()


def target_request_key_from_agent(rt: EnclaveRuntime, agent_mrenclave: bytes):
    """Target side: local-attested key request to the agent enclave.

    Returns (report, dh_public): an EREPORT addressed to the agent on
    the same CPU, binding a fresh DH half.
    """
    from repro.sgx.instructions import ereport
    from repro.sgx.structures import TargetInfo

    rt.fresh_dh_private_store(OBJ_BOOT)
    private = rt.load_obj(OBJ_BOOT)["dh_private"]
    dh_public = pow(MODP_2048_G, private, MODP_2048_P)
    report = ereport(
        rt.session,
        TargetInfo(agent_mrenclave),
        _bind_report_data("agent-release", dh_public),
    )
    return report, dh_public


def target_install_agent_key(
    rt: EnclaveRuntime, agent_dh_public: int, sealed: bytes
) -> None:
    """Target side: install K_migrate received from the agent."""
    boot = rt.load_obj(OBJ_BOOT)
    if boot is None:
        raise ChannelError("no agent key request in progress")
    shared = pow(agent_dh_public, boot["dh_private"], MODP_2048_P)
    session_key = SymmetricKey(sha256(shared.to_bytes(256, "big")), "agent-release")
    payload = unpack(
        open_envelope(session_key, Envelope.from_bytes(sealed), aad=b"agent-release")
    )
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    channel["kmigrate"] = payload["kmigrate"]
    channel["expected_sequence"] = payload["sequence"]
    rt.store_obj(OBJ_CHANNEL, channel)
    rt.delete_obj(OBJ_BOOT)
    storage = payload.get("storage")
    if storage is not None:
        _import_storage_table(
            rt,
            int(payload["sequence"]),
            int(storage["version"]),
            dict(storage["entries"]),
        )
    rt.journal_record(
        "key-installed",
        {"sequence": payload["sequence"], "via": "agent"},
        secret={"kmigrate": payload["kmigrate"], "sequence": payload["sequence"]},
    )


# ---------------------------------------------------------------------------
# Target restore (§III steps 3-4)
# ---------------------------------------------------------------------------

def target_restore_memory(rt: EnclaveRuntime, sealed_checkpoint: bytes) -> dict[int, int]:
    """Step-3a: decrypt the checkpoint and restore all memory.

    Returns the CSSA replay plan {tcs_index: target CSSA} the untrusted
    library must now execute with EENTER/AEX; the enclave will *verify*
    the library actually did it (step-4) before going live.
    """
    channel = rt.load_obj(OBJ_CHANNEL, default={}) or {}
    if "kmigrate" not in channel:
        raise RestoreError("K_migrate has not arrived")
    kmigrate = SymmetricKey(channel["kmigrate"], "kmigrate")
    checkpoint = open_checkpoint(kmigrate, Envelope.from_bytes(sealed_checkpoint))
    if checkpoint.code_id != rt.image.code_id or checkpoint.mrenclave != rt.image.mrenclave:
        raise RestoreError("checkpoint was taken from a different image")
    if checkpoint.sequence != channel.get("expected_sequence"):
        raise RestoreError("checkpoint sequence does not match the delivered key")

    writable = {
        p.vaddr
        for p in rt.image.pages
        if Permissions.W in p.sec_info.permissions
    }
    for vaddr, data in checkpoint.pages.items():
        if vaddr in writable:
            rt.write(vaddr, data)
        elif rt.read(vaddr, len(data)) != data:
            # Read-only pages (code, embedded keys) are measured into the
            # image; the virgin enclave must already hold identical bytes.
            raise RestoreError(f"immutable page 0x{vaddr:x} differs from the image")
    # Enter restore mode: replayed EENTERs are counted, not executed.
    rt.set_restore_mode(1)
    for template in rt.image.tcs_templates:
        rt.set_replay_count(template.index, 0)
    return {
        state.index: state.cssa
        for state in checkpoint.tcs_states
        if state.cssa > 0
    }


def target_verify_and_finish(rt: EnclaveRuntime, sealed_checkpoint: bytes) -> None:
    """Step-4: check the tracked CSSA against the checkpoint, go live.

    "before resuming execution, the target control thread will check
    whether the tracked CSSA is the same as the one in the checkpoint."
    A lying SGX library (wrong replay count) is caught here and the
    enclave refuses to run.
    """
    channel = rt.load_obj(OBJ_CHANNEL)
    kmigrate = SymmetricKey(channel["kmigrate"], "kmigrate")
    checkpoint = open_checkpoint(kmigrate, Envelope.from_bytes(sealed_checkpoint))
    control_index = rt.image.control_tcs.index

    for state in checkpoint.tcs_states:
        if state.index == control_index:
            continue
        replays = rt.replay_count(state.index)
        if replays != state.cssa:
            raise CssaMismatch(
                f"TCS {state.index}: library replayed CSSA to {replays}, "
                f"checkpoint requires {state.cssa}"
            )
        if state.cssa > 0 and rt.cssa_eenter(state.index) != state.cssa - 1:
            raise CssaMismatch(
                f"TCS {state.index}: tracked CSSA_EENTER "
                f"{rt.cssa_eenter(state.index)} != {state.cssa - 1}"
            )

    # The replay's dummy AEX frames clobbered the restored SSA pages;
    # rewrite them (and the bookkeeping records) from the checkpoint.
    for template in rt.image.tcs_templates:
        for frame in range(template.nssa):
            vaddr = template.ossa + frame * PAGE_SIZE
            if vaddr in checkpoint.pages:
                rt.write(vaddr, checkpoint.pages[vaddr])
        state = checkpoint.tcs_state(template.index)
        if template.index != control_index:
            rt.set_local_flag(
                template.index, FLAG_BUSY if state.cssa > 0 else FLAG_FREE
            )
            record = rt.layout.tcs_record_vaddr(template.index, TCS_CSSA_EENTER_OFF)
            rt.store_u64(record, state.cssa)

    # Storage/checkpoint binding: a checkpoint taken at storage version N
    # must not go live on a namespace older than N — that would pair a
    # fresh memory image with rolled-back persistent state (the stale
    # storage-handoff attack).  Version 0 means "no storage constraint".
    if checkpoint.storage_version:
        if rt.storage_version() < checkpoint.storage_version:
            raise StorageRolledBack(
                f"checkpoint was taken at storage version {checkpoint.storage_version} "
                f"but this host's namespace is at {rt.storage_version()}: refusing to "
                "go live on rolled-back persistent state"
            )

    rt.journal_record("live")
    rt.set_restore_mode(0)
    rt.set_global_flag(0)  # end of migration: workers may run
