"""Host applications: the untrusted process wrapping an enclave.

A :class:`HostApplication` owns a guest process, launches the enclave via
the SGX library, and runs worker threads that ecall into it according to
:class:`WorkerSpec`.  After a migration the target side re-creates the
host application and the library resumes interrupted workers from their
restored SSA state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.errors import MigrationError
from repro.sdk.image import EnclaveImage
from repro.sdk.library import SgxLibrary

if TYPE_CHECKING:  # pragma: no cover
    from repro.guestos.kernel import GuestOs
    from repro.machine import Machine
    from repro.sdk.owner import EnclaveOwner


@dataclass(frozen=True)
class WorkerSpec:
    """What one worker thread does.

    ``repeat`` is the number of ecalls the host loop performs; ``None``
    means loop forever (a server).  ``args_fn(iteration)`` produces each
    call's arguments.
    """

    entry: str
    args: Any = None
    repeat: int | None = 1
    args_fn: Callable[[int], Any] | None = None
    #: Host-side pause between ecalls.  Above ~10us the thread genuinely
    #: sleeps (yields its VCPU) instead of busy-waiting, which matters
    #: for scheduling-contention experiments like Figure 9(c).
    think_time_ns: int = 1_000

    def args_for(self, iteration: int) -> Any:
        return self.args_fn(iteration) if self.args_fn is not None else self.args


class HostApplication:
    """One enclave application inside a guest VM."""

    def __init__(
        self,
        machine: "Machine",
        guest_os: "GuestOs",
        image: EnclaveImage,
        workers: list[WorkerSpec],
        owner: "EnclaveOwner | None" = None,
        name: str | None = None,
    ) -> None:
        if len(workers) > image.n_workers:
            raise MigrationError(
                f"image {image.name} has {image.n_workers} worker TCS, "
                f"{len(workers)} requested"
            )
        self.machine = machine
        self.guest_os = guest_os
        self.image = image
        self.workers = workers
        self.owner = owner
        self.process = guest_os.spawn_process(name or image.name)
        self.library = SgxLibrary(machine, guest_os, self.process, image)
        self.results: dict[str, list[Any]] = {}
        #: Host-loop progress per worker.  This lives in ordinary process
        #: memory, so on migration it travels with the VM: the target
        #: resumes each loop where it left off instead of replaying it.
        self.completed_iterations: list[int] = [0] * len(workers)

    # ------------------------------------------------------------- lifecycle
    def launch(self) -> "HostApplication":
        """Create the enclave, provision it, start the worker threads."""
        self.library.launch(self.owner)
        for index, spec in enumerate(self.workers):
            self.guest_os.spawn_thread(
                self.process,
                f"worker-{index}",
                self._worker_loop(index, spec),
            )
        return self

    def _record(self, entry: str, result: Any) -> None:
        self.results.setdefault(entry, []).append(result)

    def _worker_loop(self, index: int, spec: WorkerSpec, start_iteration: int = 0) -> Iterator[int]:
        from repro.sim.engine import Block

        iteration = start_iteration
        while spec.repeat is None or iteration < spec.repeat:
            result = yield from self.library.ecall_body(
                index, spec.entry, spec.args_for(iteration)
            )
            self._record(spec.entry, result)
            iteration += 1
            self.completed_iterations[index] = iteration
            if spec.think_time_ns > 10_000:
                wake_at = self.machine.clock.now_ns + spec.think_time_ns
                yield Block(lambda: self.machine.clock.now_ns >= wake_at)
            else:
                yield spec.think_time_ns  # busy host-side gap

    # ------------------------------------------------------------- target side
    def respawn_after_restore(self, replay_plan: dict[int, int]) -> None:
        """Start target-side worker threads after a successful restore.

        Workers whose checkpointed CSSA was non-zero are resumed from
        their SSA frame (ERESUME path) — their in-flight ecall is
        iteration ``completed_iterations[i]`` and the host loop continues
        after it.  The rest re-enter their loop at their recorded
        position; a loop that already finished is not restarted.
        """
        for index, spec in enumerate(self.workers):
            tcs_index = self.image.worker_tcs(index).index
            done = self.completed_iterations[index]
            if replay_plan.get(tcs_index, 0) > 0:
                def continue_loop(i=index, s=spec, next_iteration=done + 1):
                    self.completed_iterations[i] = next_iteration
                    yield from self._worker_loop(i, s, next_iteration)

                body = self.library.resume_body(index, continue_with=continue_loop)
            else:
                if spec.repeat is not None and done >= spec.repeat:
                    continue  # this worker's loop had already finished
                body = self._worker_loop(index, spec, start_iteration=done)
            self.guest_os.spawn_thread(self.process, f"worker-{index}", body)

    def destroy(self) -> None:
        """Tear down the enclave (driver EREMOVE path)."""
        self.library.destroy()

    def ecall_once(self, index: int, entry: str, args: Any = None) -> Any:
        """Synchronous convenience: run one ecall to completion now."""
        thread = self.guest_os.spawn_thread(
            self.process, f"oneshot-{entry}", self.library.ecall_body(index, entry, args)
        )
        self.guest_os.run_until(lambda: thread.finished)
        return thread.result
