"""Enclave images: the buildable, measurable unit.

An image is what EINIT measures and what both machines must share for
migration ("creates and initializes a virgin enclave using the same image
of the migrated enclave", §III Step-1).  It fixes the memory layout — the
paper relies on this: "The memory layout of an enclave is decided during
development.  Our SDK puts the global flag at the beginning of enclave, so
the address of the global flag can help the control thread to determine
the address range of the enclave" (§IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sgx.structures import PAGE_SIZE, PageType, Permissions, SecInfo, SigStruct

# Control-block offsets (page 0 of every image).
GLOBAL_FLAG_OFF = 0       # 0 = clear, 1 = migration in progress
RESTORE_MODE_OFF = 8      # 1 while the target replays CSSA
ATTESTED_OFF = 16         # 1 once the owner has provisioned secrets
CHANNEL_STATE_OFF = 24    # see control thread: 0 none / 1 open / 2 spent
TCS_RECORDS_OFF = 64      # per-TCS records start here
TCS_RECORD_STRIDE = 64
TCS_LOCAL_FLAG_OFF = 0    # 0 free / 1 busy / 2 spin
TCS_CSSA_EENTER_OFF = 8   # rax recorded by the entry stub
TCS_REPLAY_COUNT_OFF = 16  # EENTERs observed while in restore mode
TCS_PREV_FLAG_OFF = 24    # saved flag for the exit stub to restore

# Local flag values.
FLAG_FREE = 0
FLAG_BUSY = 1
FLAG_SPIN = 2

# Entry names the SDK injects (not developer-visible).
DISPATCH_ENTRY = "__dispatch__"
CONTROL_ENTRY = "__control__"

# Built-in object-store slots the SDK reserves.
OBJ_IMAGE_PRIVKEY = "__image_privkey__"
OBJ_BOOT = "__boot__"
OBJ_CHANNEL = "__channel__"


@dataclass(frozen=True)
class TcsTemplate:
    """Build-time description of one TCS."""

    index: int
    vaddr: int
    oentry: str
    ossa: int
    nssa: int
    role: str  # "worker" | "control"


@dataclass(frozen=True)
class PageSpec:
    """Build-time description of one enclave page for EADD/EEXTEND."""

    vaddr: int
    sec_info: SecInfo
    content: bytes = b""
    tcs_index: int | None = None  # set for TCS pages
    measure: bool = True


@dataclass
class EnclaveLayout:
    """Address map shared by the builder, runtime and control thread."""

    base: int
    size: int
    n_tcs: int
    nssa: int
    globals_table: dict[str, int] = field(default_factory=dict)
    #: name -> (vaddr, capacity_bytes) for the object store
    objects_table: dict[str, tuple[int, int]] = field(default_factory=dict)
    heap_base: int = 0
    heap_bytes: int = 0
    #: The measured page carrying the §V-B embedded keypair.
    key_page_vaddr: int = 0
    key_page_len: int = 0

    # ------------------------------------------------------- control block
    @property
    def control_block(self) -> int:
        return self.base

    def global_flag_vaddr(self) -> int:
        return self.base + GLOBAL_FLAG_OFF

    def restore_mode_vaddr(self) -> int:
        return self.base + RESTORE_MODE_OFF

    def attested_vaddr(self) -> int:
        return self.base + ATTESTED_OFF

    def channel_state_vaddr(self) -> int:
        return self.base + CHANNEL_STATE_OFF

    def tcs_record_vaddr(self, tcs_index: int, field_off: int) -> int:
        return self.base + TCS_RECORDS_OFF + tcs_index * TCS_RECORD_STRIDE + field_off

    # ------------------------------------------------------- object store
    def object_slot(self, name: str) -> tuple[int, int]:
        try:
            return self.objects_table[name]
        except KeyError:
            raise KeyError(f"image has no object slot {name!r}") from None

    def global_slot(self, name: str) -> int:
        try:
            return self.globals_table[name]
        except KeyError:
            raise KeyError(f"image has no global slot {name!r}") from None


@dataclass
class EnclaveImage:
    """Everything needed to instantiate one enclave, on any machine."""

    name: str
    code_id: str
    layout: EnclaveLayout
    pages: list[PageSpec]
    tcs_templates: list[TcsTemplate]
    sigstruct: SigStruct
    #: The image keypair of §V-B: public half embedded in plaintext (also
    #: inside a measured page); private half embedded only as ciphertext.
    image_public_n: int
    image_public_e: int

    @property
    def mrenclave(self) -> bytes:
        return self.sigstruct.mrenclave

    @property
    def n_workers(self) -> int:
        return sum(1 for t in self.tcs_templates if t.role == "worker")

    @property
    def n_pages(self) -> int:
        return len(self.pages)

    def worker_tcs(self, worker_index: int) -> TcsTemplate:
        workers = [t for t in self.tcs_templates if t.role == "worker"]
        return workers[worker_index]

    @property
    def control_tcs(self) -> TcsTemplate:
        return next(t for t in self.tcs_templates if t.role == "control")

    def used_reg_vaddrs(self) -> list[int]:
        """The REG pages a checkpoint must carry (everything but TCS)."""
        return [p.vaddr for p in self.pages if p.sec_info.page_type is PageType.REG]

    def readable_reg_vaddrs(self) -> list[int]:
        """REG pages the control thread can actually dump (SGX v1 limit:
        executable+writable+non-readable pages cannot be read, §IV-B)."""
        return [
            p.vaddr
            for p in self.pages
            if p.sec_info.page_type is PageType.REG
            and Permissions.R in p.sec_info.permissions
        ]
