"""Deterministic per-host resource model: EPC pages and NIC bandwidth.

The fleet runner's slot timeline (PR 9) bounds *how many* migrations
run at once; this module bounds *where* they run.  A
:class:`HostModel` holds ``hosts`` simulated machines, each with a
fixed EPC capacity (4 KiB pages) and a NIC bandwidth share
(bytes/sec).  Migrations are placed round-robin — migration *i* drains
host ``i % H`` onto host ``(i+1) % H`` — and must acquire, in order:

1. an **admission slot** (the runner's global ``max_inflight`` bound);
2. **EPC pages** on the target host: the restore path needs
   ``ceil(transferred_bytes / page_size)`` free pages for the whole
   migration;
3. a **bandwidth grant** on both NICs: a rate reservation of
   ``transferred_bytes / duration`` on the source *and* target host
   for the whole migration.

When a resource is oversubscribed the migration *waits*, and every
nanosecond of waiting is typed (``queued:admission`` / ``queued:epc``
/ ``queued:bandwidth``) so the wait-state attribution layer can fold
it into the critical path.  The decomposition is constructed so that
``start = arrival + Σ waits`` exactly — the conservation invariant is
true by construction and checked anyway.

Durations are never stretched: a bandwidth grant is a rate
*reservation*, so a migration still occupies its interval for exactly
the virtual duration its own testbed clock measured.  That keeps the
whole fleet run a pure function of its configuration — same seeds and
host shape → byte-identical reports, heatmaps, and bench files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import InvariantViolation
from repro.telemetry.waitstate import (
    WAIT_ADMISSION,
    WAIT_BANDWIDTH,
    WAIT_EPC,
    WaitProfile,
)

__all__ = [
    "Admission",
    "HostModel",
    "HostSpec",
    "HostUtilization",
]

#: Defaults chosen against the measured counter-enclave migration
#: (~80 KiB transferred over ~106 ms virtual → ~20 EPC pages and a
#: ~770 KiB/s stream): 32 pages admit one restore but not two, and a
#: 1 MiB/s NIC carries one stream but not two — so a 4-host fleet at
#: n=64 queues on every typed resource, which is the point.
DEFAULT_EPC_PAGES = 32
DEFAULT_BW_BYTES_PER_SEC = 1 * 1024 * 1024
PAGE_BYTES = 4096


@dataclass(frozen=True)
class HostSpec:
    """The shape of every host in the (homogeneous) simulated fleet."""

    hosts: int
    epc_pages: int = DEFAULT_EPC_PAGES
    bw_bytes_per_sec: int = DEFAULT_BW_BYTES_PER_SEC
    page_bytes: int = PAGE_BYTES

    def __post_init__(self) -> None:
        if self.hosts < 1:
            raise ValueError("host model needs at least one host")
        if self.epc_pages < 1:
            raise ValueError("hosts need at least one EPC page")
        if self.bw_bytes_per_sec < 1:
            raise ValueError("hosts need nonzero NIC bandwidth")
        if self.page_bytes < 1:
            raise ValueError("page_bytes must be positive")


@dataclass(frozen=True)
class Admission:
    """One migration's grant: where it ran, when, and why it waited."""

    index: int
    source_host: int
    target_host: int
    start_ns: int
    end_ns: int
    epc_pages: int
    bw_bytes_per_sec: int
    #: Ordered ``(kind, duration_ns, host)`` waits (host None = fleet-wide).
    waits: tuple[tuple[str, int, int | None], ...]

    @property
    def queued_ns(self) -> int:
        return sum(ns for _, ns, _ in self.waits)


@dataclass
class HostUtilization:
    """One host's usage timeline for one resource."""

    host: int
    resource: str  # "epc" | "bandwidth"
    capacity: int
    #: ``(t_ns, usage)`` steps; usage holds from each point to the next.
    timeline: list[tuple[int, int]] = field(default_factory=list)
    peak: int = 0
    mean: float = 0.0

    @property
    def peak_pct(self) -> float:
        return 100.0 * self.peak / self.capacity if self.capacity else 0.0

    @property
    def mean_pct(self) -> float:
        return 100.0 * self.mean / self.capacity if self.capacity else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "host": self.host,
            "resource": self.resource,
            "capacity": self.capacity,
            "peak": self.peak,
            "peak_pct": round(self.peak_pct, 4),
            "mean": round(self.mean, 4),
            "mean_pct": round(self.mean_pct, 4),
            "timeline": [[t, u] for t, u in self.timeline],
        }


class _Ledger:
    """Interval reservations against one capacity (one host, one resource)."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.reservations: list[tuple[int, int, int]] = []  # (start, end, amount)

    def usage_at(self, t_ns: int) -> int:
        return sum(a for s, e, a in self.reservations if s <= t_ns < e)

    def peak_over(self, start_ns: int, end_ns: int) -> int:
        """Max concurrent usage over ``[start_ns, end_ns)``."""
        points = {start_ns}
        points.update(
            s for s, e, _ in self.reservations if start_ns < s < end_ns
        )
        return max((self.usage_at(p) for p in points), default=0)

    def fits(self, start_ns: int, duration_ns: int, amount: int) -> bool:
        return self.peak_over(start_ns, start_ns + duration_ns) + amount <= self.capacity

    def candidates(self, after_ns: int) -> list[int]:
        """Times at which a blocked request could become feasible."""
        return sorted(e for _, e, _ in self.reservations if e > after_ns)

    def reserve(self, start_ns: int, end_ns: int, amount: int) -> None:
        self.reservations.append((start_ns, end_ns, amount))


def _earliest_fit(
    ledgers: list[tuple["_Ledger", int]], t0: int, duration_ns: int
) -> int:
    """Earliest ``t >= t0`` at which every ledger admits its demand.

    Candidate starts are ``t0`` and every reservation-end event after
    it; because all reservations eventually end, the search always
    terminates with a feasible time (demands are pre-clamped to
    capacity).
    """
    candidates = {t0}
    for ledger, _ in ledgers:
        candidates.update(ledger.candidates(t0))
    for t in sorted(candidates):
        if all(ledger.fits(t, duration_ns, amount) for ledger, amount in ledgers):
            return t
    raise InvariantViolation(
        "host model found no feasible start — a reservation never ends"
    )


class HostModel:
    """Places migrations on hosts and accounts every wait, typed."""

    def __init__(self, spec: HostSpec) -> None:
        self.spec = spec
        self._epc = [_Ledger(spec.epc_pages) for _ in range(spec.hosts)]
        self._bw = [_Ledger(spec.bw_bytes_per_sec) for _ in range(spec.hosts)]
        self.admissions: list[Admission] = []

    # ------------------------------------------------------------- placement
    def place(self, index: int) -> tuple[int, int]:
        """Deterministic round-robin: drain host i%H onto host (i+1)%H."""
        h = self.spec.hosts
        return index % h, (index + 1) % h

    # ------------------------------------------------------------- admission
    def admit(
        self,
        index: int,
        arrival_ns: int,
        slot_free_ns: int,
        duration_ns: int,
        bytes_moved: int,
    ) -> Admission:
        """Grant the migration a start time, accounting every wait.

        ``slot_free_ns`` is the runner's admission-slot constraint (the
        earliest a ``max_inflight`` slot frees).  EPC demand derives
        from the migration's own measured transfer volume; bandwidth
        demand is the rate that volume implies over the measured
        duration.  Demands above a host's capacity are clamped — a
        single migration can always run somewhere, it just monopolises
        the resource while it does.
        """
        spec = self.spec
        source, target = self.place(index)
        pages = max(1, -(-bytes_moved // spec.page_bytes))
        pages = min(pages, spec.epc_pages)
        if duration_ns > 0:
            rate = max(1, -(-bytes_moved * 1_000_000_000 // duration_ns))
        else:
            rate = 1
        rate = min(rate, spec.bw_bytes_per_sec)

        t0 = max(arrival_ns, slot_free_ns)
        wait_admission = t0 - arrival_ns
        # EPC alone: how long the target host's pages gate us.
        epc_ledgers = [(self._epc[target], pages)]
        t_epc = _earliest_fit(epc_ledgers, t0, duration_ns)
        wait_epc = t_epc - t0
        # Joint fit: EPC must still hold at whatever later time the
        # bandwidth grant lands, so the final search satisfies both; the
        # *additional* delay past t_epc is the bandwidth queue.
        bw_ledgers = epc_ledgers + [
            (self._bw[source], rate),
            (self._bw[target], rate),
        ]
        if source == target:
            bw_ledgers = epc_ledgers + [(self._bw[source], rate)]
        start = _earliest_fit(bw_ledgers, t_epc, duration_ns)
        wait_bw = start - t_epc
        end = start + duration_ns

        self._epc[target].reserve(start, end, pages)
        self._bw[source].reserve(start, end, rate)
        if source != target:
            self._bw[target].reserve(start, end, rate)

        admission = Admission(
            index=index,
            source_host=source,
            target_host=target,
            start_ns=start,
            end_ns=end,
            epc_pages=pages,
            bw_bytes_per_sec=rate,
            waits=(
                (WAIT_ADMISSION, wait_admission, None),
                (WAIT_EPC, wait_epc, target),
                (WAIT_BANDWIDTH, wait_bw, target),
            ),
        )
        self.admissions.append(admission)
        return admission

    def profile(self, mig_id: str, admission: Admission, arrival_ns: int) -> WaitProfile:
        return WaitProfile(
            mig_id=mig_id,
            arrival_ns=arrival_ns,
            start_ns=admission.start_ns,
            end_ns=admission.end_ns,
            waits=admission.waits,
            source_host=admission.source_host,
            target_host=admission.target_host,
        )

    # ----------------------------------------------------------- utilization
    def _ledger_utilization(
        self, host: int, resource: str, ledger: _Ledger, end_ns: int
    ) -> HostUtilization:
        points = sorted({0, *(s for s, _, _ in ledger.reservations),
                         *(e for _, e, _ in ledger.reservations)})
        points = [p for p in points if p < end_ns] or [0]
        timeline = [(p, ledger.usage_at(p)) for p in points]
        # Collapse repeats so the timeline only records changes.
        collapsed: list[tuple[int, int]] = []
        for t, u in timeline:
            if not collapsed or collapsed[-1][1] != u:
                collapsed.append((t, u))
        peak = max((u for _, u in collapsed), default=0)
        weighted = 0
        for (t, u), nxt in zip(collapsed, [*collapsed[1:], (end_ns, 0)]):
            weighted += u * (max(nxt[0], t) - t)
        mean = weighted / end_ns if end_ns > 0 else 0.0
        return HostUtilization(
            host=host,
            resource=resource,
            capacity=ledger.capacity,
            timeline=collapsed,
            peak=peak,
            mean=mean,
        )

    def utilization(self, end_ns: int) -> list[HostUtilization]:
        """Per-host, per-resource usage timelines over ``[0, end_ns)``."""
        out: list[HostUtilization] = []
        for host in range(self.spec.hosts):
            out.append(self._ledger_utilization(host, "epc", self._epc[host], end_ns))
            out.append(
                self._ledger_utilization(host, "bandwidth", self._bw[host], end_ns)
            )
        return out

    def check_capacity(self, end_ns: int) -> None:
        """Hard invariant: no host ever exceeds a capacity.

        Grants are only issued when they fit, so a breach means the
        reservation bookkeeping and the admission search disagree.
        """
        for util in self.utilization(max(end_ns, 1)):
            if util.peak > util.capacity:
                raise InvariantViolation(
                    f"host-{util.host:02d} {util.resource} peak {util.peak} "
                    f"exceeds capacity {util.capacity}"
                )

    # --------------------------------------------------------------- heatmap
    #: Utilization ramp, darkest-last; index = floor(util * len / 100).
    HEAT_RAMP = " .:-=+*#%@"

    def heatmap(self, end_ns: int, buckets: int = 64) -> str:
        """Deterministic ASCII heatmap: one row per host per resource.

        Each cell is the time-weighted mean utilization of one bucket
        of ``[0, end_ns)``, mapped onto :data:`HEAT_RAMP`.
        """
        if end_ns <= 0:
            end_ns = 1
        lines = [
            f"host utilization over {end_ns / 1e9:.3f}s "
            f"({buckets} buckets, ramp '{self.HEAT_RAMP}')"
        ]
        for util in self.utilization(end_ns):
            cells = []
            for b in range(buckets):
                lo = end_ns * b // buckets
                hi = end_ns * (b + 1) // buckets
                if hi <= lo:
                    hi = lo + 1
                weighted = 0
                steps = util.timeline or [(0, 0)]
                for (t, u), nxt in zip(steps, [*steps[1:], (end_ns, 0)]):
                    s, e = max(t, lo), min(nxt[0], hi)
                    if e > s:
                        weighted += u * (e - s)
                frac = weighted / ((hi - lo) * util.capacity) if util.capacity else 0.0
                idx = min(int(frac * len(self.HEAT_RAMP)), len(self.HEAT_RAMP) - 1)
                cells.append(self.HEAT_RAMP[idx])
            label = f"{util.resource:<9}"
            lines.append(
                f"  host-{util.host:02d} {label} |{''.join(cells)}| "
                f"peak {util.peak}/{util.capacity} mean {util.mean_pct:.1f}%"
            )
        return "\n".join(lines) + "\n"
