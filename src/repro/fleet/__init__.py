"""Fleet-scale migration runs: N seeded migrations under one SLO plane.

The paper evaluates one migration at a time; the ROADMAP's north star is
a datacenter scheduler draining hundreds of enclaves concurrently.  This
package is the first concrete step: a deterministic multi-migration
runner (:class:`~repro.fleet.runner.FleetRunner`) whose per-migration
telemetry feeds the streaming bus, the SLO engine, and a curses-free
live console (:class:`~repro.fleet.console.FleetConsole`) — surfaced as
``repro fleet``.
"""

from repro.fleet.blame import StragglerReport, blame_report
from repro.fleet.console import FleetConsole
from repro.fleet.hosts import Admission, HostModel, HostSpec, HostUtilization
from repro.fleet.runner import (
    FleetConfig,
    FleetReport,
    FleetRunner,
    MigrationRecord,
    write_contention_bench,
    write_fleet_bench,
)

__all__ = [
    "Admission",
    "FleetConfig",
    "FleetConsole",
    "FleetReport",
    "FleetRunner",
    "HostModel",
    "HostSpec",
    "HostUtilization",
    "MigrationRecord",
    "StragglerReport",
    "blame_report",
    "write_contention_bench",
    "write_fleet_bench",
]
