"""Straggler detection and ranked contention blame for fleet runs.

A straggler is a migration whose *wall* time (arrival → completion on
the fleet clock) is an outlier against the fleet.  For every straggler
this module answers the operator's question — *why was this one slow?*
— by decomposing its excess wall time into causes:

* **typed waits**, measured exactly by the host model
  (``queued:epc@host-03`` and friends), and
* **self-slowdown**: running time above the fleet's median, blamed on
  the migration's own critical-path contributors (the same ranked
  table ``repro explain`` prints).

The decomposition is exact by construction — ``excess = queued +
(running − median running)`` — so attribution coverage is always 100%
of the excess (capped when a migration queued long but ran *faster*
than the median).  The report is a pure function of the fleet report:
byte-identical across same-seed runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.telemetry.waitstate import WaitProfile, fleet_critical_path, wait_blame_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.runner import FleetReport, MigrationRecord
    from repro.telemetry.criticalpath import CriticalPathReport

__all__ = ["BlameCause", "StragglerBlame", "StragglerReport", "blame_report"]

#: A migration is a straggler when its wall time exceeds the fleet
#: median by this factor (and by any positive excess at all).
DEFAULT_STRAGGLER_FACTOR = 1.5


def _median(values: list[int]) -> int:
    if not values:
        return 0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) // 2


@dataclass(frozen=True)
class BlameCause:
    """One ranked cause of a straggler's excess wall time."""

    kind: str  # "wait" | "span"
    name: str
    duration_ns: int
    share_pct: float  # share of the straggler's excess

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "duration_ns": self.duration_ns,
            "share_pct": round(self.share_pct, 4),
        }


@dataclass
class StragglerBlame:
    """One straggler with its ranked, typed blame decomposition."""

    mig_id: str
    index: int
    wall_ns: int
    running_ns: int
    queued_ns: int
    excess_ns: int
    causes: list[BlameCause] = field(default_factory=list)
    attributed_pct: float = 0.0
    #: The folded fleet critical path (waits + the migration's own
    #: spans) — ``blames("wait/host-03/epc")`` works on it directly.
    critical_path: "CriticalPathReport | None" = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "mig_id": self.mig_id,
            "index": self.index,
            "wall_ns": self.wall_ns,
            "running_ns": self.running_ns,
            "queued_ns": self.queued_ns,
            "excess_ns": self.excess_ns,
            "attributed_pct": round(self.attributed_pct, 4),
            "causes": [c.as_dict() for c in self.causes],
        }


@dataclass
class StragglerReport:
    """The fleet-wide contention blame report."""

    median_wall_ns: int
    median_running_ns: int
    threshold_ns: int
    factor: float
    stragglers: list[StragglerBlame] = field(default_factory=list)
    #: Fleet totals per typed wait blame name, busiest first.
    queue_totals: list[tuple[str, int]] = field(default_factory=list)
    hosts: list[dict[str, Any]] = field(default_factory=list)

    @property
    def min_attributed_pct(self) -> float:
        return min((s.attributed_pct for s in self.stragglers), default=100.0)

    def as_dict(self) -> dict[str, Any]:
        return {
            "median_wall_ns": self.median_wall_ns,
            "median_running_ns": self.median_running_ns,
            "threshold_ns": self.threshold_ns,
            "factor": self.factor,
            "min_attributed_pct": round(self.min_attributed_pct, 4),
            "stragglers": [s.as_dict() for s in self.stragglers],
            "queue_totals": [
                {"name": name, "duration_ns": ns} for name, ns in self.queue_totals
            ],
            "hosts": self.hosts,
        }

    def render_text(self, top: int = 5) -> str:
        lines = [
            f"fleet blame: {len(self.stragglers)} straggler(s) "
            f"(wall > {self.factor:g}x median {self.median_wall_ns / 1e6:.1f}ms)"
        ]
        if self.queue_totals:
            lines.append("queue totals:")
            for name, ns in self.queue_totals:
                lines.append(f"  {name:<28} {ns / 1e6:10.2f}ms")
        for rank, s in enumerate(self.stragglers, 1):
            lines.append(
                f"#{rank} {s.mig_id}  wall {s.wall_ns / 1e6:.1f}ms "
                f"(+{s.excess_ns / 1e6:.1f}ms vs median) "
                f"queued {s.queued_ns / 1e6:.1f}ms"
            )
            for cause in s.causes[:top]:
                lines.append(
                    f"    {cause.kind:<5} {cause.name:<40} "
                    f"{cause.duration_ns / 1e6:9.2f}ms {cause.share_pct:6.1f}%"
                )
            lines.append(f"    attributed: {s.attributed_pct:.1f}% of excess")
        if not self.stragglers:
            lines.append("no stragglers: the fleet is evenly paced")
        return "\n".join(lines) + "\n"


def _profile_of(record: "MigrationRecord") -> WaitProfile:
    return WaitProfile(
        mig_id=record.mig_id,
        arrival_ns=record.arrival_ns,
        start_ns=record.start_ns,
        end_ns=record.end_ns,
        waits=tuple(record.waits),
        source_host=record.source_host,
        target_host=record.target_host,
    )


def blame_report(
    report: "FleetReport",
    factor: float = DEFAULT_STRAGGLER_FACTOR,
) -> StragglerReport:
    """Rank stragglers and attribute their excess wall time."""
    records = [r for r in report.records if r.status == "ok"]
    walls = [r.end_ns - r.arrival_ns for r in records]
    runnings = [r.duration_ns for r in records]
    median_wall = _median(walls)
    median_running = _median(runnings)
    threshold = int(median_wall * factor)

    queue_totals: dict[str, int] = {}
    for record in report.records:
        for kind, ns, host in record.waits:
            if ns > 0:
                name = wait_blame_name(kind, host)
                queue_totals[name] = queue_totals.get(name, 0) + ns

    out = StragglerReport(
        median_wall_ns=median_wall,
        median_running_ns=median_running,
        threshold_ns=threshold,
        factor=factor,
        queue_totals=sorted(queue_totals.items(), key=lambda kv: (-kv[1], kv[0])),
        hosts=[u.as_dict() for u in report.host_utilization],
    )

    for record in records:
        wall = record.end_ns - record.arrival_ns
        excess = wall - median_wall
        if wall <= threshold or excess <= 0:
            continue
        profile = _profile_of(record)
        self_slow = max(0, record.duration_ns - median_running)
        # Shares are relative to the attribution total (all typed waits
        # plus self-slowdown) so they sum to 100%; coverage of the
        # *excess* is reported separately as attributed_pct.
        attribution_total = profile.queued_ns + self_slow or 1
        causes: list[BlameCause] = []
        attributed = 0
        for kind, ns, host in record.waits:
            if ns > 0:
                causes.append(
                    BlameCause("wait", wait_blame_name(kind, host), ns,
                               100.0 * ns / attribution_total)
                )
                attributed += ns
        if self_slow > 0:
            # Blame the migration's own excess on its critical-path
            # contributors, proportionally to their measured share.
            spans = record.top_spans or [
                {"name": f"{record.mig_id}/migration.run", "duration_ns": 1}
            ]
            total = sum(s["duration_ns"] for s in spans) or 1
            for span in spans:
                ns = self_slow * span["duration_ns"] // total
                if ns > 0:
                    causes.append(
                        BlameCause(
                            "span", span["name"], ns, 100.0 * ns / attribution_total
                        )
                    )
            attributed += self_slow
        causes.sort(key=lambda c: (-c.duration_ns, c.name))
        inner = report.inner_paths.get(record.mig_id)
        out.stragglers.append(
            StragglerBlame(
                mig_id=record.mig_id,
                index=record.index,
                wall_ns=wall,
                running_ns=record.duration_ns,
                queued_ns=profile.queued_ns,
                excess_ns=excess,
                causes=causes,
                attributed_pct=min(100.0, 100.0 * attributed / excess),
                critical_path=fleet_critical_path(profile, inner),
            )
        )

    out.stragglers.sort(key=lambda s: (-s.excess_ns, s.mig_id))
    return out
