"""Deterministic concurrent multi-migration runner with a fleet SLO plane.

:class:`FleetRunner` drives N seeded migrations through the full §IV/§V
protocol — each on its own testbed (own virtual clock, own telemetry,
own flight recorder namespaced by migration id) — and composes them
into one *fleet timeline* with a deterministic admission model:

* the fleet has ``max_inflight`` slots; migration *i* is admitted at
  the earliest time a slot frees up and occupies its slot for exactly
  the virtual duration its own testbed clock measured;
* every per-migration sample (run-scope delta) is stamped with its
  fleet *completion* time and fed to the shared
  :class:`~repro.telemetry.slo.SloEngine`, so burn-rate alerts fire at
  deterministic fleet times;
* per-migration downtime feeds one mergeable
  :class:`~repro.telemetry.sketch.QuantileSketch` — the fleet p50/p99
  the console and ``BENCH_fleet.json`` report.

Because execution is serial Python over virtual clocks, the whole run
is a pure function of its configuration: same seeds → byte-identical
``BENCH_fleet.json``, console snapshot, and OTLP artifacts.  Faults are
injected on a deterministic cadence (``fault_every``) so CI can assert
the SLO engine actually fires under load.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.fleet.hosts import (
    DEFAULT_BW_BYTES_PER_SEC,
    DEFAULT_EPC_PAGES,
    HostModel,
    HostSpec,
    HostUtilization,
)
from repro.telemetry.sketch import QuantileSketch
from repro.telemetry.slo import SloEngine, SloObjective, SloViolation, default_objectives
from repro.telemetry.waitstate import (
    WAIT_KINDS,
    WaitProfile,
    verify_conservation,
    wait_blame_name,
)

__all__ = [
    "FleetConfig",
    "FleetReport",
    "FleetRunner",
    "MigrationRecord",
    "write_contention_bench",
    "write_fleet_bench",
]

#: Default fault spec for the injected-fault cadence: a 5 ms delay on
#: the checkpoint message lands inside stop-and-copy, pushing downtime
#: from ~28.8 ms to ~33.8 ms — past the default 30 ms SLO budget.
DEFAULT_FAULT_SPEC = "delay:checkpoint:1"


@dataclass(frozen=True)
class FleetConfig:
    """One fleet run, fully determined by this value."""

    n: int = 16
    #: Base seeds, cycled across migrations; each migration derives
    #: ``"<seed>/mig<i>"`` so same-seed migrations still jitter apart.
    seeds: tuple[int | str, ...] = (1,)
    max_inflight: int = 8
    #: Hops per migration; >1 drives an N-hop chain (same enclave
    #: ping-ponged) instead of a single source→target migration.
    hops: int = 1
    #: Inject ``fault_spec`` into every k-th migration (0 = never).
    fault_every: int = 0
    fault_spec: str = DEFAULT_FAULT_SPEC
    objectives: tuple[SloObjective, ...] | None = None
    #: Per-host contention model (0 = off: the plain slot timeline).
    #: With ``hosts > 0`` every migration is placed source→target and
    #: must acquire EPC pages and a bandwidth grant before starting.
    hosts: int = 0
    epc_per_host: int = DEFAULT_EPC_PAGES
    bw_per_host: int = DEFAULT_BW_BYTES_PER_SEC

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("fleet needs at least one migration")
        if not self.seeds:
            raise ValueError("fleet needs at least one seed")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.hops < 1:
            raise ValueError("hops must be at least 1")
        if self.fault_every < 0:
            raise ValueError("fault_every cannot be negative")
        if self.hosts < 0:
            raise ValueError("hosts cannot be negative")
        if self.hosts:
            # HostSpec validates capacities; fail at config time.
            HostSpec(self.hosts, self.epc_per_host, self.bw_per_host)

    def seed_for(self, index: int) -> str:
        base = self.seeds[index % len(self.seeds)]
        return f"{base}/mig{index:04d}"

    def mig_id(self, index: int) -> str:
        base = self.seeds[index % len(self.seeds)]
        return f"mig{index:04d}-s{base}"

    def faulted(self, index: int) -> bool:
        return self.fault_every > 0 and index % self.fault_every == 0

    def series_key(self) -> str:
        """The BENCH_fleet.json series this configuration writes."""
        seeds = "-".join(str(s) for s in self.seeds)
        key = f"n{self.n}_seeds{seeds}_inflight{self.max_inflight}"
        if self.hops > 1:
            key += f"_hops{self.hops}"
        if self.fault_every:
            key += f"_fault{self.fault_every}"
        if self.hosts:
            key += f"_hosts{self.hosts}_epc{self.epc_per_host}_bw{self.bw_per_host}"
        return key

    def host_spec(self) -> HostSpec | None:
        if not self.hosts:
            return None
        return HostSpec(self.hosts, self.epc_per_host, self.bw_per_host)


@dataclass
class MigrationRecord:
    """One migration's place on the fleet timeline."""

    index: int
    mig_id: str
    seed: str
    status: str                  # "ok" | "failed"
    faulted: bool
    start_ns: int                # fleet admission time
    end_ns: int                  # fleet completion time
    duration_ns: int             # the migration's own virtual duration
    downtime_ns: int | None
    total_ns: int | None
    outcome: str = "migrated"
    error: str | None = None
    #: Alerts that fired or cleared because of this migration's samples.
    alerts: list[str] = field(default_factory=list)
    #: Contention-model fields (hosts > 0): when the migration was
    #: submitted, where it was placed, and every typed wait it served.
    arrival_ns: int = 0
    source_host: int | None = None
    target_host: int | None = None
    #: Ordered ``(kind, duration_ns, host)`` waits (see waitstate).
    waits: list[tuple[str, int, int | None]] = field(default_factory=list)
    #: Top critical-path contributions of the migration's own run —
    #: the blame targets for self-slowdown in the straggler report.
    top_spans: list[dict[str, Any]] = field(default_factory=list)

    @property
    def wall_ns(self) -> int:
        return self.end_ns - self.arrival_ns

    @property
    def queued_ns(self) -> int:
        return sum(ns for _, ns, _ in self.waits)

    def wait_profile(self) -> WaitProfile:
        return WaitProfile(
            mig_id=self.mig_id,
            arrival_ns=self.arrival_ns,
            start_ns=self.start_ns,
            end_ns=self.end_ns,
            waits=tuple(self.waits),
            source_host=self.source_host,
            target_host=self.target_host,
        )

    def as_dict(self) -> dict[str, Any]:
        out = {
            "index": self.index,
            "mig_id": self.mig_id,
            "seed": self.seed,
            "status": self.status,
            "faulted": self.faulted,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "downtime_ns": self.downtime_ns,
            "total_ns": self.total_ns,
            "outcome": self.outcome,
            "error": self.error,
            "alerts": list(self.alerts),
        }
        if self.waits or self.source_host is not None:
            out.update(
                {
                    "arrival_ns": self.arrival_ns,
                    "wall_ns": self.wall_ns,
                    "queued_ns": self.queued_ns,
                    "source_host": self.source_host,
                    "target_host": self.target_host,
                    "waits": {
                        wait_blame_name(kind, host): ns
                        for kind, ns, host in self.waits
                        if ns > 0
                    },
                    "top_spans": list(self.top_spans),
                }
            )
        return out


@dataclass
class FleetReport:
    """Outcome of one fleet run."""

    config: FleetConfig
    records: list[MigrationRecord]
    downtime_sketch: QuantileSketch
    slo: SloEngine
    #: OTLP sample artifacts: the first migration's traces document and
    #: a fleet-level metrics document carrying the downtime sketch.
    otlp_traces_sample: dict[str, Any] | None = None
    #: Contention plane (hosts > 0): the host model with its
    #: reservations, per-wait-kind queueing sketches, the total-queued
    #: sketch, and each migration's own critical-path report keyed by
    #: mig_id (what the straggler report folds waits into).
    host_model: HostModel | None = None
    wait_sketches: dict[str, QuantileSketch] = field(default_factory=dict)
    queue_sketch: QuantileSketch | None = None
    inner_paths: dict[str, Any] = field(default_factory=dict)

    @property
    def makespan_ns(self) -> int:
        return max((r.end_ns for r in self.records), default=0)

    @property
    def host_utilization(self) -> list[HostUtilization]:
        if self.host_model is None:
            return []
        return self.host_model.utilization(max(self.makespan_ns, 1))

    @property
    def total_queued_ns(self) -> int:
        return sum(r.queued_ns for r in self.records)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.status == "ok")

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.status != "ok")

    @property
    def migrations_per_sec(self) -> float:
        makespan = self.makespan_ns
        if makespan <= 0:
            return 0.0
        return len(self.records) / (makespan / 1e9)

    def bench_payload(self) -> dict[str, float]:
        """Lower-is-better leaves for the bench ratchet."""
        sketch = self.downtime_sketch
        return {
            "makespan_ns": float(self.makespan_ns),
            "ns_per_migration": (
                self.makespan_ns / len(self.records) if self.records else 0.0
            ),
            "downtime_p50_ns": sketch.p50,
            "downtime_p99_ns": sketch.p99,
        }

    def contention_payload(self) -> dict[str, float]:
        """The ``BENCH_fleet_contention.json`` leaves for this run.

        Queueing delays are lower-is-better; the utilization leaves are
        change-detectors — deterministic runs reproduce them exactly,
        so any drift means the scheduler's behavior changed.
        """
        if self.host_model is None or self.queue_sketch is None:
            return {}
        utils = self.host_utilization
        epc = [u.mean_pct for u in utils if u.resource == "epc"]
        bw = [u.mean_pct for u in utils if u.resource == "bandwidth"]
        payload = {
            "makespan_ns": float(self.makespan_ns),
            "queueing_p50_ns": self.queue_sketch.p50,
            "queueing_p99_ns": self.queue_sketch.p99,
            "epc_util_pct": round(sum(epc) / len(epc), 4) if epc else 0.0,
            "bw_util_pct": round(sum(bw) / len(bw), 4) if bw else 0.0,
        }
        for kind in WAIT_KINDS:
            sketch = self.wait_sketches.get(kind)
            if sketch is not None:
                payload[f"queued_{kind}_p99_ns"] = sketch.p99
        return payload

    def otlp_metrics(self) -> dict[str, Any]:
        """Fleet-level OTLP metrics: the downtime sketch as a histogram."""
        from repro.telemetry.otlp import _attributes, SCOPE, sketch_to_otlp_histogram

        resource = {
            "service.name": "repro-fleet",
            "fleet.n": self.config.n,
            "fleet.seeds": ",".join(str(s) for s in self.config.seeds),
            "crypto.backend": os.environ.get("REPRO_CRYPTO_BACKEND", "reference"),
        }
        metrics = [
            sketch_to_otlp_histogram(
                "fleet.downtime_ns", self.downtime_sketch, t_ns=self.makespan_ns
            )
        ]
        if self.host_model is not None:
            if self.queue_sketch is not None and self.queue_sketch.count:
                metrics.append(
                    sketch_to_otlp_histogram(
                        "fleet.queued_ns", self.queue_sketch, t_ns=self.makespan_ns
                    )
                )
            for kind in WAIT_KINDS:
                sketch = self.wait_sketches.get(kind)
                if sketch is not None and sketch.count:
                    metrics.append(
                        sketch_to_otlp_histogram(
                            f"fleet.queued.{kind}_ns",
                            sketch,
                            t_ns=self.makespan_ns,
                        )
                    )
            for util in self.host_utilization:
                # The utilization timeline as a gauge series: one data
                # point per step change, on the fleet's virtual clock.
                metrics.append(
                    {
                        "name": f"fleet.host.{util.resource}_used",
                        "gauge": {
                            "dataPoints": [
                                {
                                    "timeUnixNano": str(t),
                                    "asDouble": float(u),
                                    "attributes": _attributes(
                                        {
                                            "host": util.host,
                                            "capacity": util.capacity,
                                        }
                                    ),
                                }
                                for t, u in util.timeline
                            ]
                        },
                    }
                )
        return {
            "resourceMetrics": [
                {
                    "resource": {"attributes": _attributes(resource)},
                    "scopeMetrics": [{"scope": dict(SCOPE), "metrics": metrics}],
                }
            ]
        }

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "n": self.config.n,
            "seeds": [str(s) for s in self.config.seeds],
            "max_inflight": self.config.max_inflight,
            "hops": self.config.hops,
            "fault_every": self.config.fault_every,
            "makespan_ns": self.makespan_ns,
            "migrations_per_sec": self.migrations_per_sec,
            "completed": self.completed,
            "failed": self.failed,
            "downtime": {
                "p50_ns": self.downtime_sketch.p50,
                "p95_ns": self.downtime_sketch.p95,
                "p99_ns": self.downtime_sketch.p99,
                "count": self.downtime_sketch.count,
            },
            "slo": self.slo.as_dict(),
            "records": [r.as_dict() for r in self.records],
        }
        if self.host_model is not None:
            spec = self.host_model.spec
            out["hosts"] = {
                "count": spec.hosts,
                "epc_pages": spec.epc_pages,
                "bw_bytes_per_sec": spec.bw_bytes_per_sec,
                "total_queued_ns": self.total_queued_ns,
                "queueing": {
                    "p50_ns": self.queue_sketch.p50 if self.queue_sketch else 0.0,
                    "p99_ns": self.queue_sketch.p99 if self.queue_sketch else 0.0,
                },
                "utilization": [u.as_dict() for u in self.host_utilization],
            }
        return out


class FleetRunner:
    """Runs a :class:`FleetConfig` to a :class:`FleetReport`.

    ``on_record`` (if given) is called after every migration completes,
    with the fresh :class:`MigrationRecord` and the runner itself — the
    live console hook.
    """

    def __init__(
        self,
        config: FleetConfig,
        on_record: Callable[[MigrationRecord, "FleetRunner"], None] | None = None,
    ) -> None:
        self.config = config
        self.on_record = on_record
        self.records: list[MigrationRecord] = []
        self.downtime_sketch = QuantileSketch()
        self.slo = SloEngine(config.objectives or default_objectives())
        self._slots = [0] * config.max_inflight
        spec = config.host_spec()
        self.hosts: HostModel | None = HostModel(spec) if spec else None
        self.wait_sketches: dict[str, QuantileSketch] = {
            kind: QuantileSketch() for kind in WAIT_KINDS
        }
        self.queue_sketch = QuantileSketch()
        self._inner_paths: dict[str, Any] = {}

    # ------------------------------------------------------------------- run
    def run(self) -> FleetReport:
        otlp_sample = None
        for index in range(self.config.n):
            record, traces_doc = self._run_one(index)
            if index == 0:
                otlp_sample = traces_doc
            self.records.append(record)
            if self.on_record is not None:
                self.on_record(record, self)
        if self.hosts is not None:
            # Hard invariants of the contention plane: no host may ever
            # exceed a capacity, and every record's wall time must be
            # fully covered by running + typed waits (checked per-record
            # at admission too; re-checked here over the final state).
            makespan = max((r.end_ns for r in self.records), default=0)
            self.hosts.check_capacity(max(makespan, 1))
            for record in self.records:
                verify_conservation(record.wait_profile())
        return FleetReport(
            config=self.config,
            records=self.records,
            downtime_sketch=self.downtime_sketch,
            slo=self.slo,
            otlp_traces_sample=otlp_sample,
            host_model=self.hosts,
            wait_sketches=self.wait_sketches,
            queue_sketch=self.queue_sketch,
            inner_paths=self._inner_paths,
        )

    @property
    def fleet_now_ns(self) -> int:
        """Latest completion time on the fleet timeline so far."""
        return max((r.end_ns for r in self.records), default=0)

    @property
    def inflight_at_now(self) -> int:
        now = self.fleet_now_ns
        return sum(1 for t in self._slots if t > now)

    # ------------------------------------------------------------ one flight
    def _run_one(self, index: int) -> tuple[MigrationRecord, dict[str, Any] | None]:
        from repro.errors import MigrationAborted, ReproError
        from repro.faults import FaultInjector, parse_fault_spec
        from repro.migration.chain import run_chain
        from repro.migration.orchestrator import MigrationOrchestrator
        from repro.migration.testbed import build_testbed
        from repro.sdk import AtomicEntry, EnclaveProgram, HostApplication
        from repro.telemetry.otlp import default_resource, to_otlp_traces

        config = self.config
        mig_id = config.mig_id(index)
        seed = config.seed_for(index)
        faulted = config.faulted(index)

        tb = build_testbed(seed=seed)
        telemetry = tb.telemetry
        telemetry.flightrecorder.namespace = mig_id
        telemetry.ensure_bus()

        program = EnclaveProgram("fleet/counter-v1")
        program.add_entry(
            "incr",
            AtomicEntry(
                lambda rt, args: (
                    rt.store_global(
                        "n", rt.load_global("n") + int(1 if args is None else args)
                    )
                    or rt.load_global("n")
                )
            ),
        )
        built = tb.builder.build(
            "fleet-enclave", program, n_workers=1, global_names=("n",)
        )
        tb.owner.register_image(built)
        app = HostApplication(
            tb.source, tb.source_os, built.image, [], owner=tb.owner
        ).launch()
        for _ in range(3):
            app.ecall_once(0, "incr")

        plan = None
        if faulted:
            plan = parse_fault_spec(config.fault_spec)
            plan.seed = seed

        status, outcome, error = "ok", "migrated", None
        try:
            if config.hops > 1:
                chain = run_chain(
                    tb, app, config.hops, plans={1: plan} if plan else None
                )
                outcome = chain.hops[-1].outcome
            else:
                orch = MigrationOrchestrator(
                    tb, faults=FaultInjector(plan) if plan else None
                )
                orch.migrate_enclave(app)
        except (MigrationAborted, ReproError) as exc:
            status, outcome, error = "failed", "aborted", str(exc)

        # ---------------------------------------------------- fleet timeline
        duration = tb.clock.now_ns
        slot = min(range(len(self._slots)), key=lambda i: self._slots[i])
        slot_free = self._slots[slot]
        arrival = 0
        waits: list[tuple[str, int, int | None]] = []
        source_host = target_host = None
        if self.hosts is not None:
            bytes_moved = int(
                telemetry.metrics.value("migration.transferred_bytes", default=0)
            ) or int(telemetry.metrics.value("checkpoint.bytes", default=0))
            admission = self.hosts.admit(
                index,
                arrival_ns=arrival,
                slot_free_ns=slot_free,
                duration_ns=duration,
                bytes_moved=bytes_moved,
            )
            start, end = admission.start_ns, admission.end_ns
            waits = list(admission.waits)
            source_host = admission.source_host
            target_host = admission.target_host
            queued = admission.queued_ns
            self.queue_sketch.observe(queued)
            for kind, wait_ns, host in waits:
                self.wait_sketches[kind].observe(wait_ns)
                telemetry.metrics.gauge(
                    "fleet.queued_ns", kind=kind, host=-1 if host is None else host
                ).set(wait_ns)
        else:
            start = slot_free
            end = start + duration
        self._slots[slot] = end

        # ---------------------------------------------- wait-state telemetry
        top_spans: list[dict[str, Any]] = []
        if self.hosts is not None:
            # Surface the typed waits as run-scope metrics so SLO
            # objectives (and `aggregate_run_metrics`) can target
            # queueing the same way they target downtime.
            by_kind = {kind: 0 for kind in WAIT_KINDS}
            for kind, wait_ns, _ in waits:
                by_kind[kind] += wait_ns
            for run_id in sorted(telemetry.run_metrics)[:1]:
                delta = telemetry.run_metrics[run_id]
                delta["fleet.queued_ns"] = sum(by_kind.values())
                for kind, wait_ns in by_kind.items():
                    delta[f"fleet.queued.{kind}_ns"] = wait_ns
            if status == "ok":
                from repro.telemetry.criticalpath import ANCHOR_TOTAL, critical_path

                try:
                    inner = critical_path(telemetry, tb.network, ANCHOR_TOTAL)
                except ValueError:
                    inner = None
                if inner is not None:
                    self._inner_paths[mig_id] = inner
                    top_spans = [
                        {
                            "name": c.name,
                            "duration_ns": c.duration_ns,
                            "share_pct": round(c.share_pct, 4),
                        }
                        for c in inner.contributions[:5]
                    ]

        # ------------------------------------------------------- SLO + sketch
        downtime = total = None
        alerts: list[str] = []
        for run_id in sorted(telemetry.run_metrics):
            delta = telemetry.run_metrics[run_id]
            value = delta.get("migration.downtime_ns")
            if isinstance(value, (int, float)) and value >= 0:
                self.downtime_sketch.observe(value)
                downtime = int(value) if downtime is None else max(downtime, int(value))
            t = delta.get("migration.total_ns")
            if isinstance(t, (int, float)):
                total = int(t) if total is None else total + int(t)
            # Violations emit into *this* migration's telemetry, so its
            # flight recorder dumps the alert under the mig-id namespace.
            fresh = self.slo.ingest_run(end, delta, source=mig_id, emit_to=telemetry)
            alerts.extend(self._alert_line(v) for v in fresh)
        if status == "failed" and not telemetry.run_metrics:
            # The run never opened a scope; a refusal is still a sample.
            fresh = self.slo.ingest_run(
                end, {"migration.aborts_total": 1}, source=mig_id, emit_to=telemetry
            )
            alerts.extend(self._alert_line(v) for v in fresh)

        traces_doc = None
        if index == 0:
            traces_doc = to_otlp_traces(
                telemetry, resource=default_resource(telemetry, **{"fleet.mig": mig_id})
            )
        telemetry.bus.finalize()

        record = MigrationRecord(
            index=index,
            mig_id=mig_id,
            seed=seed,
            status=status,
            faulted=faulted,
            start_ns=start,
            end_ns=end,
            duration_ns=duration,
            downtime_ns=downtime,
            total_ns=total,
            outcome=outcome,
            error=error,
            alerts=alerts,
            arrival_ns=arrival,
            source_host=source_host,
            target_host=target_host,
            waits=waits,
            top_spans=top_spans,
        )
        if self.hosts is not None:
            # Conservation is a hard invariant: every nanosecond of this
            # migration's wall time is running or a typed wait.
            verify_conservation(record.wait_profile())
        return record, traces_doc

    @staticmethod
    def _alert_line(violation: SloViolation) -> str:
        return f"{violation.objective}/{violation.burn_label}:{violation.kind}"


# ------------------------------------------------------------------- ratchet

def write_fleet_bench(
    report: FleetReport, bench_dir: str | None = None
) -> str | None:
    """Merge this run's series into ``BENCH_fleet.json``.

    Same read-modify-write shape as the benchmark harness (sorted keys,
    two-space indent, trailing newline), so the ratchet and CI diff the
    file byte-wise.  ``bench_dir`` defaults to ``$REPRO_BENCH_DIR``;
    returns ``None`` (writing nothing) when neither is set.
    """
    return _merge_bench(
        "BENCH_fleet.json", report.config.series_key(), report.bench_payload(), bench_dir
    )


def write_contention_bench(
    report: FleetReport, bench_dir: str | None = None
) -> str | None:
    """Merge this run's contention series into ``BENCH_fleet_contention.json``.

    Only fleet runs with the host model enabled produce a contention
    series; returns ``None`` otherwise (and when no bench dir is set).
    """
    payload = report.contention_payload()
    if not payload:
        return None
    return _merge_bench(
        "BENCH_fleet_contention.json", report.config.series_key(), payload, bench_dir
    )


def _merge_bench(
    filename: str, series_key: str, payload: dict[str, float], bench_dir: str | None
) -> str | None:
    directory = bench_dir or os.environ.get("REPRO_BENCH_DIR")
    if not directory:
        return None
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, filename)
    existing: dict[str, Any] = {}
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
    existing[series_key] = payload
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(existing, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
