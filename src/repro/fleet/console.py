"""Curses-free live console for fleet runs.

One :class:`FleetConsole` hooks a :class:`~repro.fleet.runner.FleetRunner`
via its ``on_record`` callback and renders plain-text frames: a status
grid (one cell per migration), the fleet downtime percentiles from the
shared sketch, and the SLO engine's currently-firing alerts.  Frames
are pure functions of fleet state on the *virtual* timeline — no wall
time, no terminal control sequences — so ``--watch`` output and the
final snapshot are byte-identical across runs and safe to diff in CI.
"""

from __future__ import annotations

from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.fleet.runner import FleetReport, FleetRunner, MigrationRecord

__all__ = ["FleetConsole"]

#: Status-grid cells: one character per migration.
CELL_PENDING = "."
CELL_OK = "#"
CELL_OK_FAULTED = "+"
CELL_SLO_ALERT = "!"
CELL_FAILED = "X"

GRID_WIDTH = 64


class FleetConsole:
    """Accumulates fleet progress and renders deterministic text frames."""

    def __init__(
        self,
        n: int,
        stream: "IO[str] | None" = None,
        frame_every: int = 0,
    ) -> None:
        self.n = n
        self.stream = stream
        #: Emit a frame to ``stream`` every this-many completions
        #: (0 = only when :meth:`render` is called explicitly).
        self.frame_every = frame_every
        self._cells = [CELL_PENDING] * n
        self._records: list["MigrationRecord"] = []
        self._runner: "FleetRunner | None" = None
        self.frames_emitted = 0

    # ---------------------------------------------------------------- intake
    def on_record(self, record: "MigrationRecord", runner: "FleetRunner") -> None:
        """The :class:`FleetRunner` ``on_record`` hook."""
        self._runner = runner
        self._records.append(record)
        if record.status != "ok":
            cell = CELL_FAILED
        elif any(a.endswith(":fired") for a in record.alerts):
            cell = CELL_SLO_ALERT
        elif record.faulted:
            cell = CELL_OK_FAULTED
        else:
            cell = CELL_OK
        if 0 <= record.index < self.n:
            self._cells[record.index] = cell
        if (
            self.stream is not None
            and self.frame_every > 0
            and len(self._records) % self.frame_every == 0
        ):
            self.emit_frame()

    # --------------------------------------------------------------- render
    def render(self, final: bool = False) -> str:
        """One full frame of fleet state as plain text."""
        records = self._records
        done = len(records)
        failed = sum(1 for r in records if r.status != "ok")
        faulted = sum(1 for r in records if r.faulted)
        runner = self._runner
        now_ns = max((r.end_ns for r in records), default=0)
        lines = [
            (
                f"fleet: {done}/{self.n} done"
                f" ({failed} failed, {faulted} faulted)"
                f" | fleet-time {now_ns / 1e9:.3f}s"
                + (
                    f" | inflight {runner.inflight_at_now}"
                    if runner is not None and not final
                    else ""
                )
            )
        ]
        for row in range(0, self.n, GRID_WIDTH):
            lines.append("  " + "".join(self._cells[row : row + GRID_WIDTH]))
        if runner is not None and runner.downtime_sketch.count:
            sketch = runner.downtime_sketch
            lines.append(
                f"downtime: p50 {sketch.p50 / 1e6:.2f}ms"
                f" p95 {sketch.p95 / 1e6:.2f}ms"
                f" p99 {sketch.p99 / 1e6:.2f}ms"
                f" (n={sketch.count})"
            )
        if runner is not None:
            active = runner.slo.active_alerts()
            if active:
                lines.append(
                    "alerts: "
                    + ", ".join(f"{obj}/{label} FIRING" for obj, label in active)
                )
            elif final:
                lines.append("alerts: none")
        if records and not final:
            last = records[-1]
            lines.append(
                f"last: {last.mig_id} {last.status}"
                f" {last.duration_ns / 1e6:.1f}ms"
                + (
                    f" downtime {last.downtime_ns / 1e6:.2f}ms"
                    if last.downtime_ns is not None
                    else ""
                )
            )
        if runner is not None and getattr(runner, "hosts", None) is not None:
            queued = sum(r.queued_ns for r in records)
            sketch = runner.queue_sketch
            lines.append(
                f"queued: total {queued / 1e6:.1f}ms"
                + (
                    f" | p50 {sketch.p50 / 1e6:.2f}ms p99 {sketch.p99 / 1e6:.2f}ms"
                    if sketch.count
                    else ""
                )
            )
            if final and now_ns:
                lines.append(self.heatmap().rstrip("\n"))
        if final and runner is not None and done:
            makespan = max((r.end_ns for r in records), default=0)
            rate = done / (makespan / 1e9) if makespan else 0.0
            lines.append(f"throughput: {rate:.1f} migrations/sec over {self.n} runs")
        return "\n".join(lines) + "\n"

    def heatmap(self) -> str:
        """The host-utilization heatmap (empty without a host model)."""
        runner = self._runner
        if runner is None or getattr(runner, "hosts", None) is None:
            return ""
        now_ns = max((r.end_ns for r in self._records), default=0)
        return runner.hosts.heatmap(max(now_ns, 1))

    def emit_frame(self) -> None:
        if self.stream is None:
            return
        self.frames_emitted += 1
        self.stream.write(f"--- frame {self.frames_emitted} ---\n")
        self.stream.write(self.render())
        self.stream.flush()

    def snapshot(self, report: "FleetReport | None" = None) -> str:
        """The final console frame (written to ``--console-out``)."""
        return self.render(final=True)
