"""SLO engine: declarative objectives, sliding windows, burn-rate alerts.

"Which of my 500 migrations is burning its downtime budget, and why" is
an *objective* question, not a metric question — a raw gauge cannot say
whether 31 ms of downtime is fine (budget 50 ms) or an incident (budget
30 ms, 99 % target, error budget already half spent).  This module holds
the objective side:

* :class:`SloObjective` — one declarative objective over a scalar
  signal from the per-migration run deltas (the shape
  :class:`~repro.telemetry.sketch.RunScope` closes to).  Two kinds:

  - ``"budget"`` — each sample is *good* iff ``value <= budget``; the
    objective demands at least ``target`` of samples good over the
    window.  This covers the per-migration downtime budget, the
    recovery-cost ceiling, and the refusal-rate objective (signal
    ``migration.aborts_total``, budget 0: any refusal is a bad sample).
  - ``"quantile"`` — the windowed ``q``-quantile of the signal must stay
    at or below ``budget`` (fleet p99 downtime).

* :class:`BurnRate` — one alerting rate for a budget objective, in the
  multiwindow multi-burn-rate shape: the alert fires only when the
  error budget burns at ``factor``× the sustainable rate over *both*
  the evaluation window and a shorter confirmation window, so a single
  old bad sample cannot page and a fresh spike cannot hide.

* :class:`SloEngine` — evaluates every objective as samples stream in
  (directly, or subscribed to a :class:`~repro.telemetry.stream.TelemetryBus`
  where it consumes ``metric`` records), with **hysteresis**: an alert
  fires exactly once when it trips and clears exactly once when the
  long-window burn falls back under the factor.  Firing emits a typed
  :class:`SloViolation` and — when a telemetry surface is in reach — a
  ``("slo", "violation")`` trace event, which the flight recorder
  treats as a dump trigger and the invariant monitor records in its
  ``slo_violations`` ledger.

Windows slide over *virtual* time (single testbed) or *fleet* time (the
fleet runner's admission clock); samples may arrive slightly out of
time order (fleet completion order ≠ fleet end-time order) and are kept
sorted, bounded by ``max_window_samples`` per signal.

Edge-case semantics (pinned by ``tests/telemetry/test_slo.py``):

* ``target=1.0`` leaves zero error budget — any bad sample is an
  infinite burn rate and fires immediately;
* ``budget<=0`` on a non-negative signal marks every positive sample
  bad (budget 0 is exactly the refusal-rate shape);
* an empty window burns at 0 and can never fire;
* a window shorter than the sample spacing sees at most one sample and
  behaves like a per-sample gate.
"""

from __future__ import annotations

import math
from bisect import insort
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry
    from repro.telemetry.stream import StreamRecord, TelemetryBus

__all__ = [
    "BurnRate",
    "SloEngine",
    "SloObjective",
    "SloViolation",
    "default_objectives",
]

KIND_BUDGET = "budget"
KIND_QUANTILE = "quantile"

#: One second of virtual time, the natural unit for fleet-scale windows
#: (a fleet of ~100 ms migrations turns over its whole population in a
#: few virtual seconds).
SECOND_NS = 1_000_000_000


@dataclass(frozen=True)
class BurnRate:
    """One multiwindow burn-rate alert attached to a budget objective."""

    label: str
    #: Fires when the error budget burns at >= factor x the sustainable
    #: rate (bad_fraction / error_budget) over both windows below.
    factor: float
    window_ns: int
    #: Short confirmation window that must agree before firing.
    confirm_window_ns: int

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError(f"burn-rate factor must be positive, got {self.factor}")
        if self.window_ns <= 0 or self.confirm_window_ns <= 0:
            raise ValueError("burn-rate windows must be positive")
        if self.confirm_window_ns > self.window_ns:
            raise ValueError(
                f"confirmation window ({self.confirm_window_ns}) cannot exceed "
                f"the evaluation window ({self.window_ns})"
            )


#: The classic fast/slow pair, scaled to fleet time: the fast rate pages
#: on an acute burn, the slow rate on a sustained simmer.
DEFAULT_BURN_RATES = (
    BurnRate("fast", factor=4.0, window_ns=2 * SECOND_NS, confirm_window_ns=SECOND_NS // 4),
    BurnRate("slow", factor=1.5, window_ns=8 * SECOND_NS, confirm_window_ns=SECOND_NS),
)


@dataclass(frozen=True)
class SloObjective:
    """One declarative objective over a per-migration scalar signal."""

    name: str
    #: Series key in the run delta (e.g. ``migration.downtime_ns``).
    signal: str
    #: Per-sample ceiling (budget kind) or quantile ceiling (quantile kind).
    budget: float
    kind: str = KIND_BUDGET
    #: Fraction of samples that must be good (budget kind only).
    target: float = 0.99
    #: Quantile to gate (quantile kind only).
    q: float = 0.99
    #: Evaluation window for the quantile kind (budget kind windows live
    #: on the burn rates).
    window_ns: int = 8 * SECOND_NS
    burn_rates: tuple[BurnRate, ...] = DEFAULT_BURN_RATES
    #: A sample counts as bad when value > budget; missing signals in a
    #: delta contribute ``missing_value`` when set (refusal-rate treats
    #: an absent aborts counter as 0), else no sample.
    missing_value: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in (KIND_BUDGET, KIND_QUANTILE):
            raise ValueError(f"unknown objective kind {self.kind!r}")
        if not 0 <= self.target <= 1:
            raise ValueError(f"target must be in [0, 1], got {self.target}")
        if not 0 < self.q <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {self.q}")
        if self.window_ns <= 0:
            raise ValueError("window must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target


@dataclass(frozen=True)
class SloViolation:
    """One fired (or cleared) alert, typed and machine-readable."""

    t_ns: int
    objective: str
    signal: str
    burn_label: str          # burn-rate label, or "quantile"
    burn: float              # burn multiple (budget) or quantile value (quantile)
    threshold: float         # firing threshold the measurement crossed
    window_ns: int
    samples: int             # samples in the evaluation window at fire time
    bad: int                 # bad samples in the window (budget kind)
    source: str = ""         # migration id of the tipping sample, if known
    kind: str = "fired"      # "fired" | "cleared"

    def message(self) -> str:
        if self.kind == "cleared":
            return (
                f"slo {self.objective}/{self.burn_label} cleared at "
                f"t={self.t_ns / 1e6:.3f}ms"
            )
        if self.burn_label == "quantile":
            return (
                f"slo {self.objective}: windowed quantile of {self.signal} is "
                f"{self.burn:.0f} > ceiling {self.threshold:.0f} "
                f"({self.samples} samples)"
            )
        burn = "inf" if math.isinf(self.burn) else f"{self.burn:.2f}"
        return (
            f"slo {self.objective}/{self.burn_label}: error budget burning at "
            f"{burn}x (>= {self.threshold:.2f}x) over {self.window_ns / 1e9:.2f}s "
            f"({self.bad}/{self.samples} bad {self.signal} samples)"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "t_ns": self.t_ns,
            "objective": self.objective,
            "signal": self.signal,
            "burn_label": self.burn_label,
            "burn": None if math.isinf(self.burn) else self.burn,
            "threshold": self.threshold,
            "window_ns": self.window_ns,
            "samples": self.samples,
            "bad": self.bad,
            "source": self.source,
            "kind": self.kind,
            "message": self.message(),
        }


def default_objectives(
    downtime_budget_ns: float = 30_000_000,
    downtime_target: float = 0.95,
    fleet_p99_downtime_ns: float = 40_000_000,
    recovery_cost_ns: float = 120_000_000,
    refusal_target: float = 0.95,
) -> tuple[SloObjective, ...]:
    """The fleet's standard objective set.

    The defaults bracket the calibrated single-migration numbers (clean
    enclave downtime ~28.8 ms at seed 1): a clean fleet stays green, a
    fleet with injected faults burns the downtime budget.
    """
    return (
        SloObjective(
            name="downtime-budget",
            signal="migration.downtime_ns",
            budget=downtime_budget_ns,
            target=downtime_target,
        ),
        SloObjective(
            name="fleet-p99-downtime",
            signal="migration.downtime_ns",
            kind=KIND_QUANTILE,
            q=0.99,
            budget=fleet_p99_downtime_ns,
        ),
        SloObjective(
            name="recovery-cost",
            signal="migration.total_ns",
            budget=recovery_cost_ns,
            target=downtime_target,
        ),
        SloObjective(
            name="refusal-rate",
            signal="migration.aborts_total",
            budget=0,
            target=refusal_target,
            missing_value=0,
        ),
    )


@dataclass
class _Sample:
    t_ns: int
    value: float
    source: str = ""

    def __lt__(self, other: "_Sample") -> bool:
        return (self.t_ns, self.source) < (other.t_ns, other.source)


@dataclass
class _AlertState:
    firing: bool = False
    fired_total: int = 0
    cleared_total: int = 0


class SloEngine:
    """Evaluates a set of objectives over streaming per-migration samples."""

    def __init__(
        self,
        objectives: tuple[SloObjective, ...] | list[SloObjective] | None = None,
        telemetry: "Telemetry | None" = None,
        max_window_samples: int = 4096,
        on_violation: Callable[[SloViolation], None] | None = None,
    ) -> None:
        self.objectives = tuple(objectives if objectives is not None else default_objectives())
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ValueError(f"objective names must be unique, got {names}")
        self.telemetry = telemetry
        self.max_window_samples = max_window_samples
        self.on_violation = on_violation
        #: Every fired/cleared alert, in evaluation order.
        self.violations: list[SloViolation] = []
        self._windows: dict[str, list[_Sample]] = {o.name: [] for o in self.objectives}
        self._states: dict[tuple[str, str], _AlertState] = {}
        self._now_ns = 0

    # ---------------------------------------------------------------- intake
    def attach(self, bus: "TelemetryBus", name: str = "slo-engine", capacity: int = 64):
        """Subscribe to a bus; ``metric`` records become samples."""
        return bus.subscribe(name, capacity=capacity, callback=self.on_records)

    def on_records(self, records: list["StreamRecord"]) -> None:
        for record in records:
            if record.kind == "metric":
                delta = record.payload.get("delta") or {}
                self.ingest_run(record.t_ns, delta, source=record.source)

    def ingest_run(
        self,
        t_ns: int,
        delta: dict[str, Any],
        source: str = "",
        emit_to: "Telemetry | None" = None,
    ) -> list[SloViolation]:
        """Fold one closed run delta into every objective and evaluate.

        Returns the alerts that fired or cleared *because of this
        sample*.  ``emit_to`` overrides the engine's telemetry for the
        emitted trace events — the fleet runner passes the migration's
        own telemetry so its flight recorder captures the violation.
        """
        before = len(self.violations)
        for objective in self.objectives:
            value = delta.get(objective.signal, objective.missing_value)
            if isinstance(value, dict):  # histogram delta: gate on the mean
                value = value.get("mean", None)
            if value is None:
                continue
            self._observe(objective, t_ns, float(value), source)
        self.evaluate(t_ns, emit_to=emit_to)
        return self.violations[before:]

    def observe(
        self, t_ns: int, signal: str, value: float, source: str = ""
    ) -> None:
        """Feed one raw sample to every objective watching ``signal``."""
        for objective in self.objectives:
            if objective.signal == signal:
                self._observe(objective, t_ns, float(value), source)

    def _observe(self, objective: SloObjective, t_ns: int, value: float, source: str) -> None:
        window = self._windows[objective.name]
        insort(window, _Sample(int(t_ns), value, source))
        # Bound memory: evict samples past every window this objective
        # can ever look at, then hard-cap the sample count.
        horizon = objective.window_ns
        for rate in objective.burn_rates:
            horizon = max(horizon, rate.window_ns)
        newest = window[-1].t_ns
        while window and window[0].t_ns <= newest - horizon:
            window.pop(0)
        if len(window) > self.max_window_samples:
            del window[: len(window) - self.max_window_samples]
        self._now_ns = max(self._now_ns, int(t_ns))

    # ------------------------------------------------------------- evaluation
    def _window_stats(
        self, objective: SloObjective, window_ns: int, now_ns: int
    ) -> tuple[int, int]:
        """(samples, bad) within ``(now - window, now]``."""
        samples = bad = 0
        for sample in reversed(self._windows[objective.name]):
            if sample.t_ns <= now_ns - window_ns:
                break
            samples += 1
            if sample.value > objective.budget:
                bad += 1
        return samples, bad

    def _burn(self, objective: SloObjective, window_ns: int, now_ns: int) -> tuple[float, int, int]:
        samples, bad = self._window_stats(objective, window_ns, now_ns)
        if samples == 0 or bad == 0:
            return 0.0, samples, bad
        bad_fraction = bad / samples
        if objective.error_budget <= 0:
            return math.inf, samples, bad
        return bad_fraction / objective.error_budget, samples, bad

    def _windowed_quantile(self, objective: SloObjective, now_ns: int) -> tuple[float, int]:
        values = sorted(
            s.value
            for s in self._windows[objective.name]
            if s.t_ns > now_ns - objective.window_ns
        )
        if not values:
            return 0.0, 0
        rank = math.ceil(objective.q * len(values)) - 1
        return values[max(rank, 0)], len(values)

    def _state(self, objective: str, label: str) -> _AlertState:
        return self._states.setdefault((objective, label), _AlertState())

    def evaluate(
        self, now_ns: int | None = None, emit_to: "Telemetry | None" = None
    ) -> list[SloViolation]:
        """Evaluate every alert at ``now_ns``; returns fresh transitions."""
        now = self._now_ns if now_ns is None else int(now_ns)
        fresh: list[SloViolation] = []
        for objective in self.objectives:
            if objective.kind == KIND_QUANTILE:
                value, samples = self._windowed_quantile(objective, now)
                state = self._state(objective.name, "quantile")
                if not state.firing and samples > 0 and value > objective.budget:
                    fresh.append(
                        self._transition(
                            state, objective, "quantile", now, value,
                            objective.budget, samples, 0, fired=True,
                        )
                    )
                elif state.firing and value <= objective.budget:
                    fresh.append(
                        self._transition(
                            state, objective, "quantile", now, value,
                            objective.budget, samples, 0, fired=False,
                        )
                    )
                continue
            for rate in objective.burn_rates:
                burn, samples, bad = self._burn(objective, rate.window_ns, now)
                confirm_burn, _, _ = self._burn(objective, rate.confirm_window_ns, now)
                state = self._state(objective.name, rate.label)
                if not state.firing and burn >= rate.factor and confirm_burn >= rate.factor:
                    fresh.append(
                        self._transition(
                            state, objective, rate.label, now, burn,
                            rate.factor, samples, bad, fired=True,
                        )
                    )
                elif state.firing and burn < rate.factor:
                    fresh.append(
                        self._transition(
                            state, objective, rate.label, now, burn,
                            rate.factor, samples, bad, fired=False,
                        )
                    )
        if fresh:
            self._emit(fresh, emit_to)
        return fresh

    def _transition(
        self,
        state: _AlertState,
        objective: SloObjective,
        label: str,
        now: int,
        burn: float,
        threshold: float,
        samples: int,
        bad: int,
        fired: bool,
    ) -> SloViolation:
        window = self._windows[objective.name]
        source = window[-1].source if window else ""
        state.firing = fired
        if fired:
            state.fired_total += 1
        else:
            state.cleared_total += 1
        violation = SloViolation(
            t_ns=now,
            objective=objective.name,
            signal=objective.signal,
            burn_label=label,
            burn=burn,
            threshold=threshold,
            window_ns=(
                objective.window_ns
                if label == "quantile"
                else next(r.window_ns for r in objective.burn_rates if r.label == label)
            ),
            samples=samples,
            bad=bad,
            source=source,
            kind="fired" if fired else "cleared",
        )
        self.violations.append(violation)
        return violation

    def _emit(self, violations: list[SloViolation], emit_to: "Telemetry | None") -> None:
        telemetry = emit_to or self.telemetry
        for violation in violations:
            if self.on_violation is not None:
                self.on_violation(violation)
            if telemetry is not None:
                telemetry.trace.emit(
                    "slo",
                    "violation" if violation.kind == "fired" else "resolved",
                    **violation.as_dict(),
                )
                telemetry.metrics.counter(
                    "slo.alerts_total",
                    objective=violation.objective,
                    kind=violation.kind,
                ).inc()

    # ---------------------------------------------------------------- queries
    def active_alerts(self) -> list[tuple[str, str]]:
        """(objective, burn label) pairs currently firing, sorted."""
        return sorted(key for key, state in self._states.items() if state.firing)

    def fired(self) -> list[SloViolation]:
        return [v for v in self.violations if v.kind == "fired"]

    def as_dict(self) -> dict[str, Any]:
        return {
            "objectives": [o.name for o in self.objectives],
            "active_alerts": [list(k) for k in self.active_alerts()],
            "violations": [v.as_dict() for v in self.violations],
        }
