"""Fold spans + events from every party into one causal phase timeline.

The paper's evaluation reads three headline quantities off a migration —
downtime, total migration time, transferred bytes (Figs. 9-11) — plus a
per-phase breakdown of where they went.  The reconstructor computes all
of them from the telemetry of one run as a single structured report, so
benchmarks, the CLI and CI diff one artifact instead of grepping events.

Phase mapping (span name → phase):

* enclave migration (``MigrationOrchestrator``): the six protocol steps
  under ``migration.step.*`` plus the enclosing ``migration.stop_and_copy``
  window, whose duration *is* the ``migration.downtime_ns`` metric;
* whole-VM migration (``QemuMonitor``): ``vm.prepare``, the
  ``vm.precopy.round`` series, ``vm.stop_and_copy`` and ``vm.restore``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry
    from repro.telemetry.spans import Span

#: Span names that become phases of the reconstructed timeline, in the
#: order the fault-free protocol visits them (earlier = expected first).
PHASE_SPANS = {
    "vm.prepare": "prepare",
    "vm.precopy.round": "pre-copy round",
    "vm.stop_and_copy": "stop-and-copy",
    "vm.restore": "restore",
    "migration.stop_and_copy": "stop-and-copy",
    "migration.step.checkpoint": "checkpoint",
    "migration.step.build-target": "build-target",
    "migration.step.establish-channel": "establish-channel",
    "migration.step.transfer-checkpoint": "transfer-checkpoint",
    "migration.step.handoff-key": "handoff-key",
    "migration.step.restore": "restore",
    "migration.step.resume": "resume",
}

#: The phase ordering of one clean (fault-free) enclave migration.
EXPECTED_ENCLAVE_PHASES = [
    "stop-and-copy",
    "checkpoint",
    "build-target",
    "establish-channel",
    "transfer-checkpoint",
    "handoff-key",
    "restore",
    "resume",
]


@dataclass(frozen=True)
class Phase:
    """One reconstructed phase of the migration timeline."""

    name: str
    party: str
    start_ns: int
    end_ns: int
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "party": self.party,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


@dataclass
class TimelineReport:
    """The paper's headline figures plus the causal phase breakdown."""

    phases: list[Phase]
    downtime_ns: int
    total_ns: int
    transferred_bytes: int
    attempts: int
    aborted: bool
    faults_injected: dict[str, int]

    @property
    def phase_names(self) -> list[str]:
        return [p.name for p in self.phases]

    def per_phase_ns(self) -> dict[str, int]:
        """Total virtual time spent in each phase name (summed over rounds
        and retries)."""
        totals: dict[str, int] = {}
        for phase in self.phases:
            totals[phase.name] = totals.get(phase.name, 0) + phase.duration_ns
        return totals

    def as_dict(self) -> dict[str, Any]:
        return {
            "figures": {
                "downtime_ns": self.downtime_ns,
                "total_ns": self.total_ns,
                "transferred_bytes": self.transferred_bytes,
                "attempts": self.attempts,
                "aborted": self.aborted,
            },
            "per_phase_ns": self.per_phase_ns(),
            "faults_injected": dict(self.faults_injected),
            "phases": [p.as_dict() for p in self.phases],
        }


def reconstruct(telemetry: "Telemetry") -> TimelineReport:
    """Build the timeline report for the migration run(s) in ``telemetry``."""
    metrics = telemetry.metrics
    phases = [
        _phase_from(span)
        for span in sorted(telemetry.tracer.finished(), key=lambda s: (s.start_ns, s.span_id))
        if span.name in PHASE_SPANS
    ]
    downtime_ns = int(metrics.value("migration.downtime_ns", default=0))
    if downtime_ns == 0:
        # No completed run set the gauge; fall back to the stop-and-copy
        # window of whatever (possibly failed) attempt got furthest.
        windows = [p.duration_ns for p in phases if p.name == "stop-and-copy"]
        downtime_ns = max(windows, default=0)
    total_ns = int(metrics.value("migration.total_ns", default=0))
    if total_ns == 0 and phases:
        total_ns = max(p.end_ns for p in phases) - min(p.start_ns for p in phases)
    transferred = int(metrics.value("migration.transferred_bytes", default=0))
    if transferred == 0:
        transferred = int(metrics.sum_across_labels("wire.bytes"))
    faults = {
        instrument.labels.get("kind", "?"): instrument.value
        for instrument in metrics
        if instrument.name == "faults.injected"
    }
    return TimelineReport(
        phases=phases,
        downtime_ns=downtime_ns,
        total_ns=total_ns,
        transferred_bytes=transferred,
        attempts=int(metrics.value("migration.attempts_total", default=0)),
        aborted=metrics.value("migration.aborts_total", default=0) > 0,
        faults_injected=faults,
    )


def _phase_from(span: "Span") -> Phase:
    name = PHASE_SPANS[span.name]
    if span.name == "vm.precopy.round":
        name = f"{name} {span.attrs.get('round', '?')}"
    return Phase(
        name=name,
        party=span.party,
        start_ns=span.start_ns,
        end_ns=span.end_ns,  # finished() guarantees end_ns is set
        status=span.status,
        attrs=dict(span.attrs),
    )


def well_nested(spans: list["Span"]) -> bool:
    """True iff every pair of finished spans on one (party, track) either
    nests or is disjoint — the property the tracer enforces structurally
    and the fault-matrix property test re-checks from the outside."""
    by_track: dict[tuple[str, str], list["Span"]] = {}
    for span in spans:
        if span.finished:
            by_track.setdefault((span.party, span.track), []).append(span)
    for track_spans in by_track.values():
        for a in track_spans:
            for b in track_spans:
                if a.span_id >= b.span_id:
                    continue
                # overlap that is neither containment nor disjointness
                if a.start_ns < b.start_ns < a.end_ns < b.end_ns:
                    return False
                if b.start_ns < a.start_ns < b.end_ns < a.end_ns:
                    return False
    return True
