"""Canonical instrumented runs for the CLI, CI, and the golden tests.

``repro trace`` / ``repro metrics`` and the telemetry test-suite all need
the *same* seeded migration so their artifacts agree byte for byte; this
module is that single definition.  Everything runs on the virtual clock,
so one seed maps to exactly one trace.

``repro diff`` perturbs the same run: passing ``costs`` (usually
``dataclasses.replace(DEFAULT_COSTS, journal_commit_ns=...)``) re-runs
the identical protocol under a different cost model, which is what makes
two snapshots comparable span-for-span.  ``profile_interval_ns`` attaches
the sampling profiler before the run; the profile never perturbs virtual
time, so a profiled run stays byte-identical to an unprofiled one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.migration.testbed import Testbed
    from repro.sim.costs import CostModel


def run_seeded_migration(
    seed: int | str = 1,
    vm: bool = False,
    costs: "CostModel | None" = None,
    profile_interval_ns: int | None = None,
) -> "Testbed":
    """Run one fault-free migration and return its (telemetry-rich) testbed.

    ``vm=False`` migrates a single counter enclave through the two-phase
    protocol; ``vm=True`` live-migrates a whole VM carrying two enclave
    applications (the Figure-10 shape).  The returned testbed's
    ``telemetry`` carries the spans and metrics of the run (and the
    profiler, when ``profile_interval_ns`` is set).
    """
    if vm:
        return _run_vm_migration(seed, costs, profile_interval_ns)
    return _run_enclave_migration(seed, costs, profile_interval_ns)


def _counter_program():
    from repro.sdk import AtomicEntry, EnclaveProgram

    program = EnclaveProgram("telemetry/counter-v1")
    program.add_entry(
        "incr",
        AtomicEntry(
            lambda rt, args: (
                rt.store_global("n", rt.load_global("n") + int(1 if args is None else args))
                or rt.load_global("n")
            )
        ),
    )
    return program


def _build(seed, costs, profile_interval_ns) -> "Testbed":
    from repro.migration.testbed import build_testbed
    from repro.sim.costs import DEFAULT_COSTS

    tb = build_testbed(seed=seed, costs=costs if costs is not None else DEFAULT_COSTS)
    if profile_interval_ns is not None:
        tb.telemetry.ensure_profiler(profile_interval_ns).enable()
    return tb


def _run_enclave_migration(seed, costs=None, profile_interval_ns=None) -> "Testbed":
    from repro.migration.orchestrator import MigrationOrchestrator
    from repro.sdk import HostApplication

    tb = _build(seed, costs, profile_interval_ns)
    built = tb.builder.build(
        "telemetry-demo", _counter_program(), n_workers=1, global_names=("n",)
    )
    tb.owner.register_image(built)
    app = HostApplication(
        tb.source, tb.source_os, built.image, [], owner=tb.owner
    ).launch()
    for _ in range(3):
        app.ecall_once(0, "incr")
    result = MigrationOrchestrator(tb).migrate_enclave(app)
    result.target_app.ecall_once(0, "incr", 0)
    return tb


def _run_vm_migration(seed, costs=None, profile_interval_ns=None) -> "Testbed":
    from repro.migration.vm import VmMigrationManager
    from repro.sdk import HostApplication, WorkerSpec
    from repro.workloads.apps import build_app_image

    tb = _build(seed, costs, profile_interval_ns)
    apps = []
    for i in range(2):
        built = build_app_image(tb.builder, "cr4", flavor=f"telemetry{i}")
        tb.owner.register_image(built)
        apps.append(
            HostApplication(
                tb.source, tb.source_os, built.image,
                workers=[WorkerSpec("process", args=1, repeat=None)],
                owner=tb.owner,
            ).launch()
        )
    for _ in range(30):
        tb.source_os.engine.step_round()
    VmMigrationManager(tb, apps).migrate()
    return tb
