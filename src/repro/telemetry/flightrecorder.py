"""Black-box flight recorder: last-N state per party, dumped on failure.

The recorder observes the event trace and keeps one bounded ring buffer
per party with the most recent events, spans, and journal records that
party produced.  When something goes wrong — an invariant violation, a
``StepTimeout``, an injected machine or party crash — it automatically
captures a correlated snapshot: the trigger, every party's ring, the
open and recently finished spans, and the headline metrics, all under
the run's trace id.

Dumps are **redacted by construction**: byte strings (sealed
checkpoints, ciphertext, keys) are replaced by ``"<redacted: N bytes>"``
before they enter a ring, so no dump can leak payload material even if
it is uploaded as a CI artifact.  Set ``REPRO_FLIGHT_DIR`` to also write
each dump as a JSON file (CI uploads these when a job fails).
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

#: (category, name) pairs that trigger an automatic dump.
TRIGGER_EVENTS: frozenset[tuple[str, str]] = frozenset(
    {
        ("invariant", "violation"),
        ("migration", "step_timeout"),
        ("fault", "crash"),
        ("fault", "party_crash"),
        ("slo", "violation"),
    }
)

#: Recorders constructed since the last reset; the test harness dumps
#: every one of them when a test fails (same pattern as the invariant
#: monitor's active registry).
_ACTIVE: list["FlightRecorder"] = []
_DUMP_SEQ = 0

#: Per-run dump-file retention (chaos soaks and fleet SLO storms can
#: trigger hundreds of dumps; an unbounded dump dir is itself an
#: incident).  At most ``REPRO_FLIGHT_MAX_DUMPS`` files are kept: the
#: first ``cap - 1`` chronologically plus the most recent one, with a
#: running count of everything dropped in between embedded in the
#: surviving last dump.
DEFAULT_MAX_DUMP_FILES = 32
_DUMP_FILES: list[str] = []
_OVERFLOW_PATH: str | None = None
_DUMPS_DROPPED = 0


def max_dump_files() -> int:
    raw = os.environ.get("REPRO_FLIGHT_MAX_DUMPS", "")
    try:
        value = int(raw) if raw else DEFAULT_MAX_DUMP_FILES
    except ValueError:
        value = DEFAULT_MAX_DUMP_FILES
    return max(2, value)  # first + last is the floor


def dumps_dropped() -> int:
    return _DUMPS_DROPPED


def active_recorders() -> list["FlightRecorder"]:
    return list(_ACTIVE)


def reset_active() -> None:
    global _OVERFLOW_PATH, _DUMPS_DROPPED
    _ACTIVE.clear()
    _DUMP_FILES.clear()
    _OVERFLOW_PATH = None
    _DUMPS_DROPPED = 0


def redact(value: Any) -> Any:
    """Strip payload bytes from a value, recursively.

    Sizes survive (they are figures); the bytes themselves never reach a
    ring buffer or a dump file.
    """
    if isinstance(value, (bytes, bytearray)):
        return f"<redacted: {len(value)} bytes>"
    if isinstance(value, dict):
        return {str(k): redact(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [redact(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class FlightRecorder:
    """Bounded per-party history with automatic dump-on-failure."""

    def __init__(
        self,
        telemetry: "Telemetry",
        capacity: int = 64,
        max_dumps: int = 8,
        dump_dir: str | None = None,
        namespace: str | None = None,
    ) -> None:
        self.telemetry = telemetry
        self.capacity = capacity
        self.max_dumps = max_dumps
        #: Dump-file namespace; the fleet runner sets this to the
        #: migration id so concurrent migrations can never clobber each
        #: other's dump files.  Defaults to the run's trace id at dump
        #: time (which the orchestrator sets per migration).
        self.namespace = namespace
        #: Directory dumps are mirrored into as JSON files; defaults to
        #: ``$REPRO_FLIGHT_DIR`` (unset = in-memory only).
        self.dump_dir = dump_dir if dump_dir is not None else os.environ.get(
            "REPRO_FLIGHT_DIR"
        ) or None
        self.rings: dict[str, deque] = {}
        self.dumps: list[dict[str, Any]] = []
        telemetry.trace.add_observer(self._on_event)
        _ACTIVE.append(self)

    # ---------------------------------------------------------------- intake
    def _party_of(self, event) -> str:
        payload = event.payload
        for key in ("party", "side"):
            value = payload.get(key)
            if value:
                return str(value)
        if event.category == "net":
            return "wire"
        return "orchestrator"

    def _on_event(self, event) -> None:
        if event.category == "flight":
            return  # never record our own dump markers
        entry = {
            "t_ns": event.t_ns,
            "category": event.category,
            "name": event.name,
            "payload": redact(event.payload),
        }
        ring = self.rings.setdefault(self._party_of(event), deque(maxlen=self.capacity))
        ring.append(entry)
        if (event.category, event.name) in TRIGGER_EVENTS:
            self.dump(trigger=f"{event.category}.{event.name}", event=entry)

    # ----------------------------------------------------------------- dumps
    def dump(self, trigger: str, event: dict[str, Any] | None = None) -> dict[str, Any]:
        """Capture a correlated snapshot of everything the rings hold."""
        tracer = self.telemetry.tracer
        snapshot = {
            "trigger": trigger,
            "t_ns": self.telemetry.clock.now_ns,
            "trace_id": tracer.trace_id,
            "event": event,
            "rings": {party: list(self.rings[party]) for party in sorted(self.rings)},
            "open_spans": [self._span_dict(s) for s in tracer.open_spans()],
            "recent_spans": [self._span_dict(s) for s in tracer.finished()[-10:]],
            "metrics": self._headline_metrics(),
        }
        self.dumps.append(snapshot)
        del self.dumps[: -self.max_dumps]
        path = self._write(snapshot)
        self.telemetry.trace.emit(
            "flight", "dump", trigger=trigger, **({"path": path} if path else {})
        )
        return snapshot

    def _span_dict(self, span) -> dict[str, Any]:
        return {
            "span_id": span.span_id,
            "name": span.name,
            "party": span.party,
            "track": span.track,
            "start_ns": span.start_ns,
            "end_ns": span.end_ns,
            "status": span.status,
            "attrs": redact(span.attrs),
        }

    def _headline_metrics(self) -> dict[str, Any]:
        prefixes = ("migration.", "faults.", "invariants.", "journal.", "wire.")
        return {
            key: value
            for key, value in sorted(self.telemetry.metrics.snapshot().items())
            if key.startswith(prefixes)
        }

    def _namespace(self, snapshot: dict[str, Any]) -> str:
        raw = self.namespace or snapshot.get("trace_id") or "run"
        slug = "".join(c if c.isalnum() else "-" for c in str(raw))
        return slug or "run"

    def _write(self, snapshot: dict[str, Any]) -> str | None:
        if not self.dump_dir:
            return None
        global _DUMP_SEQ, _OVERFLOW_PATH, _DUMPS_DROPPED
        _DUMP_SEQ += 1
        slug = "".join(c if c.isalnum() else "-" for c in snapshot["trigger"])
        # The migration-id namespace keeps concurrent fleet dumps apart;
        # the global sequence keeps same-namespace dumps ordered and
        # unique even across recorder instances.
        path = os.path.join(
            self.dump_dir,
            f"flight-{self._namespace(snapshot)}-{_DUMP_SEQ:04d}-{slug}.json",
        )
        overflow = len(_DUMP_FILES) >= max_dump_files() - 1
        if overflow:
            # Retention cap reached: this dump takes the rotating "last"
            # slot, replacing (and counting) the previous occupant, so
            # the dir always holds the first cap-1 dumps plus the newest.
            if _OVERFLOW_PATH is not None:
                _DUMPS_DROPPED += 1
                try:
                    os.remove(_OVERFLOW_PATH)
                except OSError:
                    pass
            snapshot = dict(snapshot)
            snapshot["dumps_dropped"] = _DUMPS_DROPPED
        try:
            os.makedirs(self.dump_dir, exist_ok=True)
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
        except OSError:
            return None  # a full disk must never take the run down too
        if overflow:
            _OVERFLOW_PATH = path
        else:
            _DUMP_FILES.append(path)
        return path
