"""Deterministic virtual-clock sampling profiler.

A wall-clock sampling profiler interrupts the process every N
microseconds of CPU time; this one "interrupts" the *virtual* clock
every ``interval_ns`` of modelled time.  Whenever a cost charge carries
the clock across one or more sampling boundaries, the profiler captures
the innermost open span and its parent chain and credits the crossed
interval(s) to that stack.  Because sampling keys off the virtual
clock:

* the profile is **deterministic** — same seed, same stacks, same
  weights, byte-identical ``.folded`` output;
* enabling the profiler never changes the run — it only *reads* the
  clock and the span stacks, so virtual-time results are identical with
  profiling on or off (overhead on modelled time is exactly zero);
* the wall-clock cost when disabled is one ``is not None`` check per
  clock advance (the hook slot in :class:`~repro.sim.clock.VirtualClock`).

Output is the collapsed folded-stack format flamegraph tooling eats
(``party;outer;inner weight_ns`` per line) plus a JSON form that
round-trips through :meth:`Profile.from_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry

#: Default sampling interval: 10 µs of virtual time.  The seeded
#: migration spans ~3 ms, so the default yields a few hundred samples —
#: enough to resolve every protocol step without bloating artifacts.
DEFAULT_INTERVAL_NS = 10_000

#: Stack frame reported when no span is open at a sample boundary.
IDLE_FRAME = "<idle>"


@dataclass
class Profile:
    """One finished profile: stacks and their attributed virtual time."""

    interval_ns: int
    start_ns: int
    end_ns: int
    sample_count: int
    #: folded stack (party first, root-to-leaf span names) → weight ns.
    stacks: dict[tuple[str, ...], int] = field(default_factory=dict)

    @property
    def total_weight_ns(self) -> int:
        return sum(self.stacks.values())

    def weight_of(self, query: str) -> int:
        """Virtual time attributed to stacks with a frame containing
        ``query`` (substring match, any depth)."""
        return sum(
            weight
            for frames, weight in self.stacks.items()
            if any(query in frame for frame in frames)
        )

    def folded(self) -> str:
        """The collapsed-stack text flamegraph tools consume."""
        lines = [
            f"{';'.join(frames)} {weight}"
            for frames, weight in sorted(self.stacks.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def as_dict(self) -> dict[str, Any]:
        return {
            "interval_ns": self.interval_ns,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "sample_count": self.sample_count,
            "total_weight_ns": self.total_weight_ns,
            "stacks": {
                ";".join(frames): weight
                for frames, weight in sorted(self.stacks.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Profile":
        return cls(
            interval_ns=int(payload["interval_ns"]),
            start_ns=int(payload["start_ns"]),
            end_ns=int(payload["end_ns"]),
            sample_count=int(payload["sample_count"]),
            stacks={
                tuple(key.split(";")): int(weight)
                for key, weight in payload["stacks"].items()
            },
        )


class SamplingProfiler:
    """Samples the span stack at fixed virtual-time boundaries."""

    def __init__(
        self, telemetry: "Telemetry", interval_ns: int = DEFAULT_INTERVAL_NS
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"sampling interval must be positive, got {interval_ns}")
        self.telemetry = telemetry
        self.interval_ns = int(interval_ns)
        self.enabled = False
        self.sample_count = 0
        self.samples: dict[tuple[str, ...], int] = {}
        self._start_ns = 0
        self._next_ns = 0
        self._saved_hook = None
        # Incrementally built span-id index: tracer.spans is append-only,
        # so each sample indexes only the spans started since the last.
        self._by_id: dict[int, Any] = {}
        self._indexed = 0

    # -------------------------------------------------------------- control
    def enable(self) -> "SamplingProfiler":
        """Install the clock hook; the first sample lands one interval in."""
        if self.enabled:
            return self
        clock = self.telemetry.clock
        self._saved_hook = clock.on_advance
        self._start_ns = clock.now_ns
        self._next_ns = clock.now_ns + self.interval_ns
        clock.on_advance = self._on_advance
        self.enabled = True
        return self

    def disable(self) -> "SamplingProfiler":
        if not self.enabled:
            return self
        self.telemetry.clock.on_advance = self._saved_hook
        self._saved_hook = None
        self.enabled = False
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.enable()

    def __exit__(self, *_exc) -> None:
        self.disable()

    # ------------------------------------------------------------- sampling
    def _on_advance(self, prev_ns: int, now_ns: int) -> None:
        boundary = self._next_ns
        if now_ns < boundary:
            if self._saved_hook is not None:
                self._saved_hook(prev_ns, now_ns)
            return
        # The advance crossed n boundaries; one capture covers them all
        # (the whole advance happened under one span stack).
        crossed = (now_ns - boundary) // self.interval_ns + 1
        self._next_ns = boundary + crossed * self.interval_ns
        stack = self._capture_stack()
        self.samples[stack] = self.samples.get(stack, 0) + crossed * self.interval_ns
        self.sample_count += crossed
        if self._saved_hook is not None:
            self._saved_hook(prev_ns, now_ns)

    def _capture_stack(self) -> tuple[str, ...]:
        tracer = self.telemetry.tracer
        spans = tracer.spans
        by_id = self._by_id
        while self._indexed < len(spans):
            span = spans[self._indexed]
            by_id[span.span_id] = span
            self._indexed += 1
        span = tracer.active()
        if span is None:
            return (IDLE_FRAME,)
        party = span.party
        chain: list[str] = []
        while span is not None:
            chain.append(span.name)
            span = by_id.get(span.parent_id) if span.parent_id is not None else None
        chain.append(party)
        chain.reverse()
        return tuple(chain)

    # -------------------------------------------------------------- results
    def profile(self) -> Profile:
        """A snapshot of everything sampled so far."""
        return Profile(
            interval_ns=self.interval_ns,
            start_ns=self._start_ns,
            end_ns=self.telemetry.clock.now_ns,
            sample_count=self.sample_count,
            stacks=dict(self.samples),
        )

    def reset(self) -> None:
        self.samples.clear()
        self.sample_count = 0
        self._start_ns = self.telemetry.clock.now_ns
        self._next_ns = self._start_ns + self.interval_ns
