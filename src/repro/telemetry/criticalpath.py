"""Critical-path analysis: who to blame for every nanosecond.

Given an anchor span (``migration.run`` for total time,
``migration.stop_and_copy`` for downtime) the engine partitions the
anchor's interval into segments and blames each segment on exactly one
*unit* — the innermost span or wire transfer covering it.  Because the
segments partition the interval, their durations sum to the anchor's
duration **by construction**: 100% of total time and 100% of downtime
are always attributed, and the ranked contribution report cannot drift
from the headline gauges.

The blame rule for one elementary slice is deterministic:

1. among all units covering the slice, prefer the latest-started
   (innermost nesting on the virtual clock);
2. at equal start, prefer a wire transfer over a span (the transfer is
   the payload of the step that issued it);
3. then prefer the shorter unit, then the lower unit id — total order,
   no ties.

Everything here is a pure function of recorded state: building a report
never advances the clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.telemetry.causal import CausalDag, build_dag

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.network import Network, TransferRecord
    from repro.telemetry import Telemetry
    from repro.telemetry.spans import Span

#: Anchors of the two headline walks (§VIII figures).
ANCHOR_TOTAL = "migration.run"
ANCHOR_DOWNTIME = "migration.stop_and_copy"


@dataclass(frozen=True)
class _Unit:
    """One blame candidate: a finished span or a wire transfer."""

    kind: str  #: "span" | "transfer"
    name: str  #: e.g. "source/migration.step.checkpoint" or "wire/kmigrate"
    start_ns: int
    end_ns: int
    uid: int  #: span_id or wire seq (namespaced by kind)

    @property
    def sort_key(self) -> tuple:
        # Innermost-first: latest start, transfers beat spans, shorter
        # beats longer, then a stable id tiebreak.
        return (
            self.start_ns,
            1 if self.kind == "transfer" else 0,
            -(self.end_ns - self.start_ns),
            -self.uid,
        )


@dataclass(frozen=True)
class Segment:
    """One attributed slice of the anchor interval."""

    start_ns: int
    end_ns: int
    blame: str
    kind: str
    uid: int

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    def as_dict(self) -> dict[str, Any]:
        return {
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "blame": self.blame,
            "kind": self.kind,
        }


@dataclass(frozen=True)
class Contribution:
    """One blamed unit's total share of the anchor interval."""

    name: str
    kind: str
    duration_ns: int
    share_pct: float
    segments: int

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "duration_ns": self.duration_ns,
            "share_pct": round(self.share_pct, 4),
            "segments": self.segments,
        }


@dataclass
class CriticalPathReport:
    """The attribution of one anchor span's interval."""

    anchor: str
    start_ns: int
    end_ns: int
    segments: list[Segment] = field(default_factory=list)
    contributions: list[Contribution] = field(default_factory=list)
    #: Every name on the blame paths (blamed units plus their span
    #: ancestors) — what ``--require-blame`` matches against.
    blame_path_names: list[str] = field(default_factory=list)

    @property
    def total_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def attributed_ns(self) -> int:
        return sum(s.duration_ns for s in self.segments)

    def blames(self, query: str) -> bool:
        """True when ``query`` appears in any blamed unit or ancestor name."""
        return any(query in name for name in self.blame_path_names)

    def as_dict(self) -> dict[str, Any]:
        return {
            "anchor": self.anchor,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "total_ns": self.total_ns,
            "attributed_ns": self.attributed_ns,
            "segments": [s.as_dict() for s in self.segments],
            "contributions": [c.as_dict() for c in self.contributions],
        }


def _span_unit_name(span: "Span") -> str:
    base = f"{span.party}/{span.name}"
    return f"{base}#{span.track}" if span.track else base


def attribute_interval(
    anchor_span: "Span",
    spans: list["Span"],
    transfers: list["TransferRecord"],
) -> CriticalPathReport:
    """Partition the anchor span's interval among its covering units."""
    if not anchor_span.finished:
        raise ValueError(f"anchor span {anchor_span.name!r} is still open")
    start, end = anchor_span.start_ns, anchor_span.end_ns
    units: list[_Unit] = []
    for span in spans:
        if not span.finished or span.end_ns <= start or span.start_ns >= end:
            continue
        units.append(
            _Unit(
                "span",
                _span_unit_name(span),
                max(span.start_ns, start),
                min(span.end_ns, end),
                span.span_id,
            )
        )
    for record in transfers:
        t_done = record.t_done_ns
        if t_done is None or t_done <= start or record.t_send_ns >= end:
            continue
        if record.t_send_ns == t_done:
            continue  # zero-width: nothing to blame it for
        units.append(
            _Unit(
                "transfer",
                f"wire/{record.label}",
                max(record.t_send_ns, start),
                min(t_done, end),
                record.seq,
            )
        )

    bounds = sorted({start, end, *(u.start_ns for u in units), *(u.end_ns for u in units)})
    segments: list[Segment] = []
    for a, b in zip(bounds, bounds[1:]):
        covering = [u for u in units if u.start_ns <= a and u.end_ns >= b]
        # The anchor itself covers everything, so `covering` is never
        # empty — unattributed time blames the anchor span.
        winner = max(covering, key=lambda u: u.sort_key)
        if (
            segments
            and segments[-1].kind == winner.kind
            and segments[-1].uid == winner.uid
            and segments[-1].end_ns == a
        ):
            last = segments[-1]
            segments[-1] = Segment(last.start_ns, b, last.blame, last.kind, last.uid)
        else:
            segments.append(Segment(a, b, winner.name, winner.kind, winner.uid))

    contributions = _rank(segments, end - start)
    blame_paths = _blame_path_names(segments, spans)
    return CriticalPathReport(
        anchor=anchor_span.name,
        start_ns=start,
        end_ns=end,
        segments=segments,
        contributions=contributions,
        blame_path_names=blame_paths,
    )


def _rank(segments: list[Segment], total_ns: int) -> list[Contribution]:
    grouped: dict[tuple[str, str], list[Segment]] = {}
    for segment in segments:
        grouped.setdefault((segment.blame, segment.kind), []).append(segment)
    ranked = [
        Contribution(
            name=name,
            kind=kind,
            duration_ns=sum(s.duration_ns for s in group),
            share_pct=(
                100.0 * sum(s.duration_ns for s in group) / total_ns if total_ns else 0.0
            ),
            segments=len(group),
        )
        for (name, kind), group in grouped.items()
    ]
    ranked.sort(key=lambda c: (-c.duration_ns, c.name))
    return ranked


def _blame_path_names(segments: list[Segment], spans: list["Span"]) -> list[str]:
    """Blamed names plus every ancestor span name on their paths."""
    by_id = {s.span_id: s for s in spans}
    names: list[str] = []

    def add(name: str) -> None:
        if name not in names:
            names.append(name)

    for segment in segments:
        add(segment.blame)
        span = by_id.get(segment.uid) if segment.kind == "span" else None
        while span is not None:
            add(_span_unit_name(span))
            span = by_id.get(span.parent_id) if span.parent_id is not None else None
    return names


def critical_path(
    telemetry: "Telemetry", network: "Network", anchor: str = ANCHOR_TOTAL
) -> CriticalPathReport:
    """Attribution report for the last finished ``anchor`` span."""
    anchor_span = telemetry.tracer.last(anchor)
    if anchor_span is None:
        raise ValueError(f"no finished {anchor!r} span in this trace")
    return attribute_interval(anchor_span, telemetry.tracer.spans, network.log)


@dataclass
class ExplainReport:
    """Both headline walks plus the DAG's fault summary."""

    total: CriticalPathReport
    downtime: CriticalPathReport
    dag: CausalDag
    figures: dict[str, Any] = field(default_factory=dict)

    @property
    def reports(self) -> list[CriticalPathReport]:
        return [self.total, self.downtime]

    def blames(self, query: str) -> bool:
        return self.total.blames(query) or self.downtime.blames(query)

    # ------------------------------------------------------ counterfactuals
    def counterfactual(self, query: str) -> dict[str, Any]:
        """Downtime if every blamed unit matching ``query`` were free.

        The blamed segments partition the downtime interval, so zeroing
        the matched units' attributed time is a sound first-order
        estimate: the time they *serially held* the critical path goes
        away; second-order re-ordering effects (another unit expanding
        into the freed window) cannot make it slower.
        """
        saved = sum(
            c.duration_ns for c in self.downtime.contributions if query in c.name
        )
        return {
            "query": query,
            "saved_ns": saved,
            "downtime_ns": self.downtime.total_ns - saved,
            "share_pct": (
                round(100.0 * saved / self.downtime.total_ns, 4)
                if self.downtime.total_ns
                else 0.0
            ),
        }

    def counterfactuals(self) -> list[dict[str, Any]]:
        """One "if this unit were free" estimate per downtime contributor."""
        return [
            {
                "unit": c.name,
                "kind": c.kind,
                "saved_ns": c.duration_ns,
                "downtime_ns": self.downtime.total_ns - c.duration_ns,
                "share_pct": round(c.share_pct, 4),
            }
            for c in self.downtime.contributions
        ]

    def as_dict(self) -> dict[str, Any]:
        return {
            "figures": self.figures,
            "total": self.total.as_dict(),
            "downtime": self.downtime.as_dict(),
            "counterfactuals": self.counterfactuals(),
            "dag_health": self.dag.health(),
            "trace_ids": self.dag.trace_ids(),
        }

    # ------------------------------------------------------------ rendering
    def render_text(self) -> str:
        lines: list[str] = []
        figures = self.figures
        lines.append("=== repro explain: migration critical path ===")
        if figures:
            lines.append(
                f"downtime {figures.get('downtime_ns', 0) / 1e6:.3f} ms | "
                f"total {figures.get('total_ns', 0) / 1e6:.3f} ms | "
                f"transferred {int(figures.get('transferred_bytes', 0))} bytes"
            )
        for title, report in (("total time", self.total), ("downtime", self.downtime)):
            lines.append("")
            lines.append(
                f"-- {title}: {report.anchor} "
                f"[{report.start_ns}..{report.end_ns}] = {report.total_ns} ns "
                f"({report.attributed_ns} ns attributed, "
                f"{100.0 * report.attributed_ns / report.total_ns if report.total_ns else 0.0:.1f}%)"
            )
            for rank, contribution in enumerate(report.contributions, 1):
                lines.append(
                    f"  {rank:2d}. {contribution.name:45s} "
                    f"{contribution.duration_ns:>12d} ns  "
                    f"{contribution.share_pct:6.2f}%  "
                    f"({contribution.segments} segment"
                    f"{'s' if contribution.segments != 1 else ''})"
                )
        lines.append("")
        lines.append("-- counterfactuals (downtime if the unit were free):")
        for entry in self.counterfactuals()[:5]:
            lines.append(
                f"   if {entry['unit']:43s} were free: "
                f"downtime = {entry['downtime_ns'] / 1e6:.3f} ms "
                f"(-{entry['saved_ns'] / 1e6:.3f} ms)"
            )
        health = self.dag.health()
        lines.append("")
        lines.append(
            f"-- causal DAG: {health['spans']} spans, {health['transfers']} transfers, "
            f"{health['edges']} edges"
        )
        for kind in ("broken_edges", "duplicate_edges", "reordered_transfers"):
            entries = health[kind]
            label = kind.replace("_", " ")
            if entries:
                detail = ", ".join(e["label"] for e in entries)
                lines.append(f"   {label}: {len(entries)} ({detail})")
            else:
                lines.append(f"   {label}: none")
        return "\n".join(lines) + "\n"


def explain_migration(telemetry: "Telemetry", network: "Network") -> ExplainReport:
    """The ``repro explain`` payload for one enclave-protocol run."""
    metrics = telemetry.metrics
    report = ExplainReport(
        total=critical_path(telemetry, network, ANCHOR_TOTAL),
        downtime=critical_path(telemetry, network, ANCHOR_DOWNTIME),
        dag=build_dag(telemetry, network),
        figures={
            "downtime_ns": metrics.value("migration.downtime_ns", default=0),
            "total_ns": metrics.value("migration.total_ns", default=0),
            "transferred_bytes": metrics.value("migration.transferred_bytes", default=0),
        },
    )
    return report
