"""Migration telemetry: spans, typed metrics, timelines, exporters.

One :class:`Telemetry` object per testbed bundles the span tracer and the
metrics registry (shared with the event trace's counters) and installs a
trace observer that folds injected faults into ``faults.injected{kind=}``.
Everything runs on the virtual clock: telemetry never reads wall time, so
two runs with the same seed produce byte-identical artifacts.

See ``docs/OBSERVABILITY.md`` for the span taxonomy, the metric naming
scheme, and how the exporters map onto the paper's figures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    metric_key,
)
from repro.telemetry.spans import Span, SpanError, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.clock import VirtualClock
    from repro.sim.trace import EventTrace
    from repro.telemetry.timeline import TimelineReport

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "Span",
    "SpanError",
    "Telemetry",
    "Tracer",
    "metric_key",
]


class Telemetry:
    """The telemetry surface of one testbed: tracer + metrics + trace."""

    def __init__(self, clock: "VirtualClock", trace: "EventTrace") -> None:
        self.clock = clock
        self.trace = trace
        self.metrics: MetricsRegistry = trace.metrics
        self.tracer = Tracer(clock, trace)
        trace.tracer = self.tracer
        trace.add_observer(self._on_event)
        # The black-box recorder rides along on every telemetry surface
        # (bounded rings; costs nothing until something goes wrong).
        from repro.telemetry.flightrecorder import FlightRecorder

        self.flightrecorder = FlightRecorder(self)

    # ------------------------------------------------------------ conveniences
    def span(self, name: str, party: str = "orchestrator", track: str = "", **attrs):
        return self.tracer.span(name, party, track, **attrs)

    def counter(self, name: str, **labels) -> CounterMetric:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> GaugeMetric:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels) -> HistogramMetric:
        return self.metrics.histogram(name, **labels)

    def timeline(self) -> "TimelineReport":
        from repro.telemetry.timeline import reconstruct

        return reconstruct(self)

    # ---------------------------------------------------------------- observer
    def _on_event(self, event) -> None:
        # Fold every injected fault into a typed counter so soak runs and
        # the CLI report them without grepping the event list.
        if event.category == "fault":
            self.metrics.counter("faults.injected", kind=event.name).inc()


def ensure_telemetry(testbed) -> Telemetry:
    """The testbed's telemetry, created and attached on first use.

    Components instrumented with spans call this instead of assuming
    :func:`~repro.migration.testbed.build_testbed` ran; hand-assembled
    testbeds get a working telemetry layer the first time anything needs
    one.
    """
    telemetry = getattr(testbed, "telemetry", None)
    if telemetry is None:
        telemetry = Telemetry(testbed.clock, testbed.trace)
        testbed.telemetry = telemetry
    return telemetry
