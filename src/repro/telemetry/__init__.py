"""Migration telemetry: spans, typed metrics, timelines, exporters.

One :class:`Telemetry` object per testbed bundles the span tracer and the
metrics registry (shared with the event trace's counters) and installs a
trace observer that folds injected faults into ``faults.injected{kind=}``.
Everything runs on the virtual clock: telemetry never reads wall time, so
two runs with the same seed produce byte-identical artifacts.

See ``docs/OBSERVABILITY.md`` for the span taxonomy, the metric naming
scheme, and how the exporters map onto the paper's figures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    metric_key,
)
from repro.telemetry.spans import Span, SpanError, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.clock import VirtualClock
    from repro.sim.trace import EventTrace
    from repro.telemetry.timeline import TimelineReport

__all__ = [
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "Span",
    "SpanError",
    "Telemetry",
    "Tracer",
    "metric_key",
]


class Telemetry:
    """The telemetry surface of one testbed: tracer + metrics + trace."""

    def __init__(self, clock: "VirtualClock", trace: "EventTrace") -> None:
        self.clock = clock
        self.trace = trace
        self.metrics: MetricsRegistry = trace.metrics
        self.tracer = Tracer(clock, trace)
        trace.tracer = self.tracer
        trace.add_observer(self._on_event)
        # The black-box recorder rides along on every telemetry surface
        # (bounded rings; costs nothing until something goes wrong).
        from repro.telemetry.flightrecorder import FlightRecorder

        self.flightrecorder = FlightRecorder(self)
        #: Sampling profiler, attached lazily by :meth:`ensure_profiler`.
        self.profiler = None
        #: Streaming bus, attached lazily by :meth:`ensure_bus` (or by
        #: :meth:`repro.telemetry.stream.TelemetryBus.attach`).
        self.bus = None
        #: Closed per-migration metric deltas, keyed by run (trace) id.
        self.run_metrics: dict[str, dict] = {}
        self.last_run_id: str | None = None
        self._run_scopes: dict[str, "object"] = {}

    # ------------------------------------------------------------ conveniences
    def span(self, name: str, party: str = "orchestrator", track: str = "", **attrs):
        return self.tracer.span(name, party, track, **attrs)

    def counter(self, name: str, **labels) -> CounterMetric:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> GaugeMetric:
        return self.metrics.gauge(name, **labels)

    def histogram(self, name: str, **labels) -> HistogramMetric:
        return self.metrics.histogram(name, **labels)

    def timeline(self) -> "TimelineReport":
        from repro.telemetry.timeline import reconstruct

        return reconstruct(self)

    # ------------------------------------------------------------- profiling
    def ensure_profiler(self, interval_ns: int | None = None):
        """The testbed's sampling profiler, created on first use."""
        from repro.telemetry.profiler import DEFAULT_INTERVAL_NS, SamplingProfiler

        if self.profiler is None:
            self.profiler = SamplingProfiler(
                self, interval_ns or DEFAULT_INTERVAL_NS
            )
        return self.profiler

    # ------------------------------------------------------------- streaming
    def ensure_bus(self, replay: bool = True):
        """The testbed's streaming bus, created and tailed on first use.

        See :mod:`repro.telemetry.stream`: the bus receives every trace
        event, every finished span (at its end time), and every closed
        run scope's metric delta, and fans them out to bounded
        subscribers (SLO engine, exporters, console).
        """
        if self.bus is None:
            from repro.telemetry.stream import TelemetryBus

            TelemetryBus().attach(self, replay=replay)
        return self.bus

    # ------------------------------------------------------------ run scopes
    def begin_run(self, run_id: str):
        """Open a per-migration metric scope (see :class:`RunScope`)."""
        from repro.telemetry.sketch import RunScope

        scope = RunScope(self.metrics, run_id)
        self._run_scopes[run_id] = scope
        return scope

    def end_run(self, run_id: str) -> dict | None:
        """Close a scope; its delta lands in :attr:`run_metrics`.

        Returns ``None`` (and records nothing) for an unknown run id or
        a scope tainted by a mid-run registry reset.
        """
        scope = self._run_scopes.pop(run_id, None)
        if scope is None:
            return None
        delta = scope.close()
        if delta is not None:
            self.run_metrics[run_id] = delta
            self.last_run_id = run_id
            if self.bus is not None:
                # The run's closed metric delta is a first-class stream
                # record: the SLO engine and fleet console consume these
                # instead of re-deriving per-run numbers from raw spans.
                self.bus.publish(
                    self.clock.now_ns,
                    "metric",
                    {"run_id": run_id, "delta": delta},
                    source=run_id,
                )
        return delta

    def run_isolation_violations(self) -> list[str]:
        """Scope-isolation check the invariant monitor sweeps.

        Closed run scopes must *partition* the shared registry's
        counters: no scope may report a negative increment, and the
        per-run increments of one counter series may never sum to more
        than the registry's global value — a larger sum means two
        migrations double-counted each other's events through a shared
        scope.  Scopes closed before the registry's last reset are
        excluded (their baseline no longer exists).
        """
        violations: list[str] = []
        sums: dict[str, float] = {}
        for run_id, delta in self.run_metrics.items():
            for series, value in delta.items():
                if isinstance(value, dict):
                    moved = value.get("count", 0)
                else:
                    instrument = self.metrics._instruments.get(series)
                    if instrument is None or instrument.kind != "counter":
                        continue
                    moved = value
                if moved < 0:
                    violations.append(
                        f"run scope {run_id}: series {series} decreased by "
                        f"{-moved} inside one migration (scopes must only "
                        "ever add)"
                    )
                sums[series] = sums.get(series, 0) + max(moved, 0)
        if getattr(self.metrics, "generation", 0) == 0:
            for series, total in sums.items():
                instrument = self.metrics._instruments.get(series)
                if instrument is None:
                    continue
                global_value = (
                    instrument.count
                    if instrument.kind == "histogram"
                    else instrument.value
                )
                if instrument.kind == "gauge":
                    continue
                if total > global_value:
                    violations.append(
                        f"run scopes over-count series {series}: per-run "
                        f"deltas sum to {total} but the registry holds "
                        f"{global_value} (concurrent migrations are sharing "
                        "one scope)"
                    )
        return violations

    # ---------------------------------------------------------------- observer
    def _on_event(self, event) -> None:
        # Fold every injected fault into a typed counter so soak runs and
        # the CLI report them without grepping the event list.
        if event.category == "fault":
            self.metrics.counter("faults.injected", kind=event.name).inc()


def ensure_telemetry(testbed) -> Telemetry:
    """The testbed's telemetry, created and attached on first use.

    Components instrumented with spans call this instead of assuming
    :func:`~repro.migration.testbed.build_testbed` ran; hand-assembled
    testbeds get a working telemetry layer the first time anything needs
    one.
    """
    telemetry = getattr(testbed, "telemetry", None)
    if telemetry is None:
        telemetry = Telemetry(testbed.clock, testbed.trace)
        testbed.telemetry = telemetry
    return telemetry
