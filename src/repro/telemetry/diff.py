"""Run comparison: align two migration runs, rank what changed.

The paper's claims are differential (Fig. 9/10 compare cost curves
across configurations) and so are regressions: "fig10 downtime +18%"
is useless without *which span paid for it*.  This module captures a
run as a :class:`RunSnapshot` — figures, metrics, per-span aggregates,
and both critical-path walks, all keyed by stable names — and
:func:`diff_runs` aligns two snapshots into a :class:`RunDiff` whose
headline reads like::

    downtime +1.413 ms; 92.8% of the delta from source/journal.commit

Alignment is by name, not by time: span keys are ``party/name``,
critical-path contributions keep their blame-unit names, and metric
series keep their canonical ``name{labels}`` keys — all invariant
across cost-model perturbations of the same seeded protocol.

Snapshots serialize to JSON (committed as ``BENCH_baseline_run.json``
for the bench ratchet) and :func:`resolve_run` accepts either a
snapshot path or a run spec like ``seed=1,journal-cost-ns=524000`` that
re-runs the canonical migration under a perturbed cost model.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.migration.testbed import Testbed

#: The headline figures a diff leads with (all lower-is-better).
FIGURE_NAMES = ("downtime_ns", "total_ns", "transferred_bytes")


@dataclass
class RunSnapshot:
    """Everything `repro diff` needs to know about one run."""

    label: str = "run"
    meta: dict[str, Any] = field(default_factory=dict)
    #: migration.downtime_ns / total_ns / transferred_bytes scalars.
    figures: dict[str, float] = field(default_factory=dict)
    #: The full registry snapshot (``name{labels}`` → scalar | histogram).
    metrics: dict[str, Any] = field(default_factory=dict)
    #: ``party/name`` → {"count", "total_ns"} over finished spans.
    spans: dict[str, dict[str, int]] = field(default_factory=dict)
    #: "total" / "downtime" → ranked contribution dicts (criticalpath).
    critical: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    #: Folded-stack profile (profiler.Profile.as_dict()), when profiled.
    profile: dict[str, Any] | None = None
    #: Per-migration metric deltas (telemetry.run_metrics), when scoped.
    runs: dict[str, dict[str, Any]] = field(default_factory=dict)

    # --------------------------------------------------------------- capture
    @classmethod
    def capture(
        cls, tb: "Testbed", label: str = "run", meta: dict | None = None
    ) -> "RunSnapshot":
        """Snapshot a finished run's testbed (pure read, no clock moves)."""
        telemetry = tb.telemetry
        metrics = telemetry.metrics
        spans: dict[str, dict[str, int]] = {}
        for span in telemetry.tracer.spans:
            if not span.finished:
                continue
            entry = spans.setdefault(
                f"{span.party}/{span.name}", {"count": 0, "total_ns": 0}
            )
            entry["count"] += 1
            entry["total_ns"] += span.duration_ns
        critical: dict[str, list[dict[str, Any]]] = {}
        try:
            from repro.telemetry.criticalpath import explain_migration

            explain = explain_migration(telemetry, tb.network)
            critical["total"] = [c.as_dict() for c in explain.total.contributions]
            critical["downtime"] = [
                c.as_dict() for c in explain.downtime.contributions
            ]
        except ValueError:
            pass  # no finished migration.run anchor (e.g. VM-only runs)
        profiler = telemetry.profiler
        return cls(
            label=label,
            meta=dict(meta or {}),
            figures={
                name: metrics.value(f"migration.{name}", default=0)
                for name in FIGURE_NAMES
            },
            metrics=metrics.snapshot(),
            spans=spans,
            critical=critical,
            profile=(
                profiler.profile().as_dict()
                if profiler is not None and profiler.sample_count
                else None
            ),
            runs=dict(telemetry.run_metrics),
        )

    # ------------------------------------------------------------ round-trip
    def as_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "meta": self.meta,
            "figures": self.figures,
            "metrics": self.metrics,
            "spans": self.spans,
            "critical": self.critical,
            "profile": self.profile,
            "runs": self.runs,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "RunSnapshot":
        return cls(
            label=payload.get("label", "run"),
            meta=payload.get("meta", {}),
            figures=payload.get("figures", {}),
            metrics=payload.get("metrics", {}),
            spans=payload.get("spans", {}),
            critical=payload.get("critical", {}),
            profile=payload.get("profile"),
            runs=payload.get("runs", {}),
        )

    def save(self, path: str) -> None:
        from repro.telemetry.exporters import json_safe

        with open(path, "w", encoding="utf-8") as fh:
            json.dump(json_safe(self.as_dict()), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "RunSnapshot":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


@dataclass(frozen=True)
class DeltaEntry:
    """One aligned key's movement between two runs."""

    key: str
    kind: str
    base: float
    fresh: float

    @property
    def delta(self) -> float:
        return self.fresh - self.base

    def as_dict(self) -> dict[str, Any]:
        return {
            "key": self.key,
            "kind": self.kind,
            "base": self.base,
            "fresh": self.fresh,
            "delta": self.delta,
        }


@dataclass
class RunDiff:
    """The ranked comparison of two run snapshots."""

    base_label: str
    fresh_label: str
    figures: dict[str, DeltaEntry] = field(default_factory=dict)
    #: Critical-path contribution deltas, ranked by |delta|, per anchor.
    downtime_attribution: list[DeltaEntry] = field(default_factory=list)
    total_attribution: list[DeltaEntry] = field(default_factory=list)
    span_deltas: list[DeltaEntry] = field(default_factory=list)
    metric_deltas: list[DeltaEntry] = field(default_factory=list)

    # -------------------------------------------------------------- queries
    @property
    def downtime_delta_ns(self) -> float:
        entry = self.figures.get("downtime_ns")
        return entry.delta if entry else 0.0

    def share_of_downtime_delta(self, entry: DeltaEntry) -> float:
        """This contributor's signed share of the downtime delta, in %."""
        if not self.downtime_delta_ns:
            return 0.0
        return 100.0 * entry.delta / self.downtime_delta_ns

    def attributed_share(self, query: str) -> float:
        """Summed downtime-delta share of contributors matching ``query``.

        This is the acceptance-gate quantity: a +journal-cost
        perturbation must show ``attributed_share("journal.commit")``
        ≥ 80.
        """
        return sum(
            self.share_of_downtime_delta(e)
            for e in self.downtime_attribution
            if query in e.key
        )

    def headline(self) -> str:
        lines = []
        downtime = self.figures.get("downtime_ns")
        if downtime is None or downtime.delta == 0:
            return "downtime unchanged"
        sign = "+" if downtime.delta > 0 else ""
        head = f"downtime {sign}{downtime.delta / 1e6:.3f} ms"
        movers = [e for e in self.downtime_attribution if e.delta * downtime.delta > 0]
        if movers:
            top = movers[0]
            head += (
                f"; {self.share_of_downtime_delta(top):.1f}% of the delta "
                f"from {top.key}"
            )
        lines.append(head)
        return lines[0]

    # ------------------------------------------------------------ rendering
    def as_dict(self) -> dict[str, Any]:
        return {
            "base": self.base_label,
            "fresh": self.fresh_label,
            "headline": self.headline(),
            "figures": {k: e.as_dict() for k, e in self.figures.items()},
            "downtime_attribution": [
                {**e.as_dict(), "share_of_delta_pct": round(self.share_of_downtime_delta(e), 2)}
                for e in self.downtime_attribution
            ],
            "total_attribution": [e.as_dict() for e in self.total_attribution],
            "span_deltas": [e.as_dict() for e in self.span_deltas],
            "metric_deltas": [e.as_dict() for e in self.metric_deltas],
        }

    def render_text(self) -> str:
        lines = [f"=== repro diff: {self.base_label} -> {self.fresh_label} ==="]
        lines.append(self.headline())
        lines.append("")
        lines.append("-- figures")
        for name in FIGURE_NAMES:
            entry = self.figures.get(name)
            if entry is None:
                continue
            lines.append(
                f"  {name:20s} {entry.base:>14.0f} -> {entry.fresh:>14.0f} "
                f"({entry.delta:+.0f})"
            )
        lines.append("")
        lines.append("-- downtime delta, by critical-path contributor")
        for entry in self.downtime_attribution[:12]:
            lines.append(
                f"  {entry.key:45s} {entry.delta:>+12.0f} ns "
                f"{self.share_of_downtime_delta(entry):>7.1f}% of delta"
            )
        if not self.downtime_attribution:
            lines.append("  (no critical-path data in one of the snapshots)")
        lines.append("")
        lines.append("-- biggest span movers (total ns)")
        for entry in self.span_deltas[:10]:
            lines.append(f"  {entry.key:45s} {entry.delta:>+12.0f} ns")
        lines.append("")
        lines.append("-- biggest metric movers")
        for entry in self.metric_deltas[:10]:
            lines.append(f"  {entry.key:55s} {entry.delta:>+12.0f}")
        return "\n".join(lines) + "\n"

    def render_markdown(self) -> str:
        lines = [f"### repro diff: `{self.base_label}` → `{self.fresh_label}`", ""]
        lines.append(f"**{self.headline()}**")
        lines.append("")
        lines.append("| figure | base | fresh | delta |")
        lines.append("|---|---:|---:|---:|")
        for name in FIGURE_NAMES:
            entry = self.figures.get(name)
            if entry is None:
                continue
            lines.append(
                f"| {name} | {entry.base:.0f} | {entry.fresh:.0f} "
                f"| {entry.delta:+.0f} |"
            )
        lines.append("")
        lines.append("| downtime contributor | delta (ns) | share of delta |")
        lines.append("|---|---:|---:|")
        for entry in self.downtime_attribution[:12]:
            lines.append(
                f"| `{entry.key}` | {entry.delta:+.0f} "
                f"| {self.share_of_downtime_delta(entry):.1f}% |"
            )
        lines.append("")
        return "\n".join(lines) + "\n"


def _align(
    base: dict[str, float], fresh: dict[str, float], kind: str
) -> list[DeltaEntry]:
    entries = [
        DeltaEntry(key, kind, base.get(key, 0.0), fresh.get(key, 0.0))
        for key in sorted(set(base) | set(fresh))
    ]
    entries = [e for e in entries if e.delta]
    entries.sort(key=lambda e: (-abs(e.delta), e.key))
    return entries


def diff_runs(base: RunSnapshot, fresh: RunSnapshot) -> RunDiff:
    """Align two snapshots by stable keys and rank every movement."""
    diff = RunDiff(base_label=base.label, fresh_label=fresh.label)
    for name in FIGURE_NAMES:
        diff.figures[name] = DeltaEntry(
            name,
            "figure",
            float(base.figures.get(name, 0)),
            float(fresh.figures.get(name, 0)),
        )

    def contributions(snapshot: RunSnapshot, anchor: str) -> dict[str, float]:
        return {
            c["name"]: float(c["duration_ns"])
            for c in snapshot.critical.get(anchor, [])
        }

    diff.downtime_attribution = _align(
        contributions(base, "downtime"), contributions(fresh, "downtime"), "critical"
    )
    diff.total_attribution = _align(
        contributions(base, "total"), contributions(fresh, "total"), "critical"
    )
    diff.span_deltas = _align(
        {k: float(v["total_ns"]) for k, v in base.spans.items()},
        {k: float(v["total_ns"]) for k, v in fresh.spans.items()},
        "span",
    )
    diff.metric_deltas = _align(
        {k: float(v) for k, v in base.metrics.items() if not isinstance(v, dict)},
        {k: float(v) for k, v in fresh.metrics.items() if not isinstance(v, dict)},
        "metric",
    )
    return diff


# ---------------------------------------------------------------------------
# Run-spec resolution (CLI / ratchet entry point)
# ---------------------------------------------------------------------------

def resolve_run(spec: str) -> RunSnapshot:
    """A snapshot from a file path or a ``k=v,flag`` run spec.

    Grammar: comma-separated items among ``seed=N``, ``vm``,
    ``journal-cost-ns=N`` (perturbs the cost model), ``profile-ns=N``
    (attaches the profiler), ``label=...``.  A path to an existing
    ``.json`` snapshot short-circuits the run.
    """
    if os.path.exists(spec):
        return RunSnapshot.load(spec)
    seed: int | str = 1
    vm = False
    journal_cost_ns: int | None = None
    profile_ns: int | None = None
    label = spec
    for item in filter(None, (part.strip() for part in spec.split(","))):
        if item == "vm":
            vm = True
        elif "=" in item:
            key, value = item.split("=", 1)
            if key == "seed":
                seed = int(value) if value.isdigit() else value
            elif key == "journal-cost-ns":
                journal_cost_ns = int(value)
            elif key == "profile-ns":
                profile_ns = int(value)
            elif key == "label":
                label = value
            else:
                raise ValueError(f"unknown run-spec key {key!r} in {spec!r}")
        else:
            raise ValueError(
                f"bad run-spec item {item!r} in {spec!r} "
                "(expected k=v, 'vm', or a snapshot path)"
            )
    costs = None
    if journal_cost_ns is not None:
        from repro.sim.costs import DEFAULT_COSTS

        costs = dataclasses.replace(DEFAULT_COSTS, journal_commit_ns=journal_cost_ns)
    from repro.telemetry.runs import run_seeded_migration

    tb = run_seeded_migration(
        seed=seed, vm=vm, costs=costs, profile_interval_ns=profile_ns
    )
    return RunSnapshot.capture(
        tb,
        label=label,
        meta={
            "spec": spec,
            "seed": seed,
            "vm": vm,
            "journal_cost_ns": journal_cost_ns,
        },
    )
