"""Telemetry exporters: JSONL, Chrome trace_event, Prometheus text.

* :func:`to_jsonl` — every event and span as one JSON object per line;
  the machine-readable dump CI diffs across runs.
* :func:`to_chrome_trace` — the Chrome ``trace_event`` JSON format
  (object form, ``{"traceEvents": [...]}``) loadable in Perfetto or
  chrome://tracing; parties map to processes, tracks to threads.
* :func:`to_prometheus` — a Prometheus text-exposition snapshot of the
  metrics registry (dots become underscores; labels are preserved).

All exporters are pure functions of the telemetry state: they never
advance the clock or mutate anything, so exporting mid-run is safe.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.telemetry.metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    metric_key,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry import Telemetry


def json_safe(value: Any) -> Any:
    """Coerce payload values into the JSON universe (bytes become hex)."""
    if isinstance(value, (bytes, bytearray)):
        return value.hex()
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


_json_safe = json_safe


# ---------------------------------------------------------------------- jsonl

def to_jsonl(telemetry: "Telemetry") -> str:
    """Events and spans, one JSON object per line, in causal order."""
    lines = []
    for event in telemetry.trace.events:
        lines.append(
            json.dumps(
                {
                    "type": "event",
                    "t_ns": event.t_ns,
                    "category": event.category,
                    "name": event.name,
                    "payload": _json_safe(event.payload),
                },
                sort_keys=True,
            )
        )
    for span in telemetry.tracer.spans:
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "span_id": span.span_id,
                    "name": span.name,
                    "party": span.party,
                    "track": span.track,
                    "start_ns": span.start_ns,
                    "end_ns": span.end_ns,
                    "parent_id": span.parent_id,
                    "status": span.status,
                    "attrs": _json_safe(span.attrs),
                },
                sort_keys=True,
            )
        )
    return "\n".join(lines) + ("\n" if lines else "")


# --------------------------------------------------------------- chrome trace

def to_chrome_trace(
    telemetry: "Telemetry",
    network: "Any | None" = None,
    critical: "Any | None" = None,
) -> dict[str, Any]:
    """The run as a Chrome ``trace_event`` object (ts/dur in microseconds).

    Finished spans become complete ("X") events; unfinished spans and
    plain trace events become instants ("i") so nothing is silently
    dropped.  Virtual time maps one-to-one onto trace time.

    Two optional overlays extend the base export backward-compatibly:

    * ``network`` — a :class:`~repro.net.network.Network`; each transfer
      record becomes an "X" slice on a ``wire`` process, and delivered
      records whose receiving span adopted them get flow arrows
      ("s"/"f" events keyed on the wire sequence number) from the slice
      to the receiving span's track.
    * ``critical`` — an :class:`~repro.telemetry.criticalpath.ExplainReport`
      (or single ``CriticalPathReport``); its attributed segments render
      as "X" slices on a ``critical-path`` process so the blame timeline
      sits directly under the spans it explains.
    """
    pids: dict[str, int] = {}
    tids: dict[tuple[str, str], int] = {}
    trace_events: list[dict[str, Any]] = []

    def pid_for(party: str) -> int:
        if party not in pids:
            pids[party] = len(pids) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "process_name",
                    "pid": pids[party],
                    "args": {"name": party},
                }
            )
        return pids[party]

    def tid_for(party: str, track: str) -> int:
        key = (party, track)
        if key not in tids:
            tids[key] = len([k for k in tids if k[0] == party]) + 1
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid_for(party),
                    "tid": tids[key],
                    "args": {"name": f"{party}/{track}" if track else party},
                }
            )
        return tids[key]

    for span in telemetry.tracer.spans:
        pid = pid_for(span.party)
        tid = tid_for(span.party, span.track)
        if span.finished:
            trace_events.append(
                {
                    "ph": "X",
                    "name": span.name,
                    "cat": "span",
                    "ts": span.start_ns / 1_000,
                    "dur": span.duration_ns / 1_000,
                    "pid": pid,
                    "tid": tid,
                    "args": _json_safe({"status": span.status, **span.attrs}),
                }
            )
        else:
            trace_events.append(
                {
                    "ph": "i",
                    "name": f"{span.name} (unfinished)",
                    "cat": "span",
                    "ts": span.start_ns / 1_000,
                    "pid": pid,
                    "tid": tid,
                    "s": "t",
                    "args": _json_safe(span.attrs),
                }
            )
    events_pid = pid_for("events")
    events_tid = tid_for("events", "")
    for event in telemetry.trace.events:
        if event.category == "span":
            continue  # spans are already rendered as X events above
        trace_events.append(
            {
                "ph": "i",
                "name": f"{event.category}.{event.name}",
                "cat": event.category,
                "ts": event.t_ns / 1_000,
                "pid": events_pid,
                "tid": events_tid,
                "s": "t",
                "args": _json_safe(event.payload),
            }
        )

    if network is not None:
        span_by_id = {s.span_id: s for s in telemetry.tracer.spans}
        wire_pid = pid_for("wire")
        wire_tid = tid_for("wire", "")
        for record in network.log:
            end_ns = record.t_done_ns
            if end_ns is None:
                end_ns = record.t_send_ns
            trace_events.append(
                {
                    "ph": "X",
                    "name": record.label,
                    "cat": "wire",
                    "ts": record.t_send_ns / 1_000,
                    "dur": max(end_ns - record.t_send_ns, 0) / 1_000,
                    "pid": wire_pid,
                    "tid": wire_tid,
                    "args": {
                        "seq": record.seq,
                        "bytes": record.n_bytes,
                        "status": record.status,
                        "duplicate": record.duplicate,
                        "reordered": record.reordered,
                    },
                }
            )
            recv = span_by_id.get(record.recv_span_id)
            if record.status != "delivered" or recv is None:
                continue
            trace_events.append(
                {
                    "ph": "s",
                    "id": record.seq,
                    "name": f"wire/{record.label}",
                    "cat": "wire-flow",
                    "ts": record.t_send_ns / 1_000,
                    "pid": wire_pid,
                    "tid": wire_tid,
                }
            )
            trace_events.append(
                {
                    "ph": "f",
                    "bp": "e",
                    "id": record.seq,
                    "name": f"wire/{record.label}",
                    "cat": "wire-flow",
                    "ts": end_ns / 1_000,
                    "pid": pid_for(recv.party),
                    "tid": tid_for(recv.party, recv.track),
                }
            )

    if critical is not None:
        reports = getattr(critical, "reports", None)
        if reports is None:
            reports = [critical]
        cp_pid = pid_for("critical-path")
        for report in reports:
            if report is None:
                continue
            tid = tid_for("critical-path", report.anchor)
            for segment in report.segments:
                trace_events.append(
                    {
                        "ph": "X",
                        "name": segment.blame,
                        "cat": "critical-path",
                        "ts": segment.start_ns / 1_000,
                        "dur": segment.duration_ns / 1_000,
                        "pid": cp_pid,
                        "tid": tid,
                        "args": {"kind": segment.kind, "anchor": report.anchor},
                    }
                )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------- prometheus

def _prom_name(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


def _prom_escape(value: Any) -> str:
    """Escape a label value per the text exposition format.

    Order matters: backslashes first, else the escapes themselves get
    re-escaped.  Newlines must become the two-character sequence ``\\n``
    or the line-oriented format breaks mid-series.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_labels(labels: dict[str, Any], extra: dict[str, Any] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{_prom_name(str(k))}="{_prom_escape(merged[k])}"' for k in sorted(merged)
    )
    return "{" + inner + "}"


# --------------------------------------------------------- aggregate records
#
# Sketches and profiles are *aggregate* artifacts (one per fleet window /
# per run, not one per event), so they ship as self-describing JSONL
# records that round-trip through :func:`record_from_dict`.

def sketch_record(name: str, sketch: Any) -> dict[str, Any]:
    """One quantile sketch as a typed, round-trip-able JSONL record."""
    return {"type": "sketch", "name": name, "sketch": sketch.to_dict()}


def profile_record(profile: Any) -> dict[str, Any]:
    """One sampling profile as a typed, round-trip-able JSONL record."""
    return {"type": "profile", "profile": profile.as_dict()}


def records_to_jsonl(records: list[dict[str, Any]]) -> str:
    """Records as JSONL, stable key order (CI diffs these byte-wise)."""
    lines = [json.dumps(json_safe(r), sort_keys=True) for r in records]
    return "\n".join(lines) + ("\n" if lines else "")


def record_from_dict(payload: dict[str, Any]) -> Any:
    """Rebuild the typed object a record serialized (inverse of the
    ``*_record`` constructors); unknown types come back as the raw dict."""
    kind = payload.get("type")
    if kind == "sketch":
        from repro.telemetry.sketch import QuantileSketch

        return payload["name"], QuantileSketch.from_dict(payload["sketch"])
    if kind == "profile":
        from repro.telemetry.profiler import Profile

        return Profile.from_dict(payload["profile"])
    return payload


def records_from_jsonl(text: str) -> list[Any]:
    """Parse a JSONL dump back into typed objects via record_from_dict."""
    return [
        record_from_dict(json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


def _prom_header(lines: list[str], seen: set[str], name: str, source: str,
                 kind: str) -> None:
    if name not in seen:
        seen.add(name)
        lines.append(f"# HELP {name} {source} ({kind})")
        lines.append(f"# TYPE {name} {kind}")


def to_prometheus(metrics: MetricsRegistry) -> str:
    """Prometheus text exposition format of the registry's current state.

    Every family gets ``# HELP``/``# TYPE`` lines, and gauges and
    histograms whose names carry the repo-native ``_ns`` suffix also
    emit a derived ``_seconds`` family (values divided by 1e9) so the
    exposition parses cleanly under promtool's unit conventions.  The
    base ``_ns`` series are kept — dashboards and the CI gates key on
    them — and the derived families are grouped after the base pass so
    each family's samples stay contiguous.
    """
    lines: list[str] = []
    derived: list[str] = []
    seen_types: set[str] = set()
    derived_seen: set[str] = set()
    # Sort by the canonical series key *string*: total, deterministic,
    # and safe with mixed-type label values (tuple-of-items sorting
    # raises TypeError comparing an int label against a str one).
    for instrument in sorted(metrics, key=lambda i: metric_key(i.name, i.labels)):
        name = _prom_name(instrument.name)
        _prom_header(lines, seen_types, name, instrument.name, instrument.kind)
        secs = name[: -len("_ns")] + "_seconds" if name.endswith("_ns") else None
        if isinstance(instrument, (CounterMetric, GaugeMetric)):
            labels = _prom_labels(instrument.labels)
            lines.append(f"{name}{labels} {instrument.value}")
            if secs and isinstance(instrument, GaugeMetric):
                _prom_header(derived, derived_seen, secs, instrument.name, "gauge")
                derived.append(f"{secs}{labels} {instrument.value / 1e9}")
        elif isinstance(instrument, HistogramMetric):
            running = 0
            for bound, count in zip(instrument.buckets, instrument.bucket_counts):
                running += count
                lines.append(
                    f"{name}_bucket{_prom_labels(instrument.labels, {'le': bound})} {running}"
                )
            lines.append(
                f"{name}_bucket{_prom_labels(instrument.labels, {'le': '+Inf'})} {instrument.count}"
            )
            lines.append(f"{name}_sum{_prom_labels(instrument.labels)} {instrument.sum}")
            lines.append(f"{name}_count{_prom_labels(instrument.labels)} {instrument.count}")
            if secs:
                _prom_header(derived, derived_seen, secs, instrument.name, "histogram")
                running = 0
                for bound, count in zip(instrument.buckets, instrument.bucket_counts):
                    running += count
                    derived.append(
                        f"{secs}_bucket{_prom_labels(instrument.labels, {'le': bound / 1e9})} {running}"
                    )
                derived.append(
                    f"{secs}_bucket{_prom_labels(instrument.labels, {'le': '+Inf'})} {instrument.count}"
                )
                derived.append(
                    f"{secs}_sum{_prom_labels(instrument.labels)} {instrument.sum / 1e9}"
                )
                derived.append(
                    f"{secs}_count{_prom_labels(instrument.labels)} {instrument.count}"
                )
    lines.extend(derived)
    return "\n".join(lines) + ("\n" if lines else "")
